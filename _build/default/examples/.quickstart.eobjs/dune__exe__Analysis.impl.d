examples/analysis.ml: Archex Format List Milp
