examples/analysis.mli:
