examples/data_collection.ml: Archex Array Components Format Geometry List Milp Option Radio Sys Unix
