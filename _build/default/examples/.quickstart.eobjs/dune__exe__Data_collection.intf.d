examples/data_collection.mli:
