examples/localization.ml: Archex Array Format Geometry List Milp Radio Unix
