examples/localization.mli:
