examples/quickstart.ml: Archex Components Format Geometry List Netgraph Option Radio
