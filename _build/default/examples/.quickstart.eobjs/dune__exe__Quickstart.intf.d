examples/quickstart.mli:
