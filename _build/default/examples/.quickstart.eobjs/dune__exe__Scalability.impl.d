examples/scalability.ml: Archex Format Milp Printf Unix
