examples/scalability.mli:
