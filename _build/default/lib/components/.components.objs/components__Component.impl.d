lib/components/component.ml: Format String
