lib/components/component.mli: Format
