lib/components/library.ml: Component Format Hashtbl List
