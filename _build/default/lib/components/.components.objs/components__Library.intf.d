lib/components/library.mli: Component Format
