lib/components/parser.ml: Buffer Component In_channel Library List Printf String
