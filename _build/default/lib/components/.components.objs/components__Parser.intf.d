lib/components/parser.mli: Library
