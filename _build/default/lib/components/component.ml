type role = Sensor | Relay | Sink | Anchor

let role_name = function
  | Sensor -> "sensor"
  | Relay -> "relay"
  | Sink -> "sink"
  | Anchor -> "anchor"

let role_of_name s =
  match String.lowercase_ascii s with
  | "sensor" -> Some Sensor
  | "relay" -> Some Relay
  | "sink" | "base" | "base-station" -> Some Sink
  | "anchor" -> Some Anchor
  | _ -> None

type t = {
  name : string;
  role : role;
  cost : float;
  tx_power_dbm : float;
  antenna_gain_dbi : float;
  sensitivity_dbm : float;
  radio_tx_ma : float;
  radio_rx_ma : float;
  active_ma : float;
  sleep_ua : float;
  bit_rate_kbps : float;
}

let make ~name ~role ~cost ?(tx_power_dbm = 0.) ?(antenna_gain_dbi = 0.)
    ?(sensitivity_dbm = -97.) ?(radio_tx_ma = 29.) ?(radio_rx_ma = 24.) ?(active_ma = 6.)
    ?(sleep_ua = 1.0) ?(bit_rate_kbps = 250.) () =
  {
    name;
    role;
    cost;
    tx_power_dbm;
    antenna_gain_dbi;
    sensitivity_dbm;
    radio_tx_ma;
    radio_rx_ma;
    active_ma;
    sleep_ua;
    bit_rate_kbps;
  }

let validate c =
  if c.name = "" then Error "component with empty name"
  else if c.cost < 0. then Error (c.name ^ ": negative cost")
  else if c.radio_tx_ma < 0. || c.radio_rx_ma < 0. || c.active_ma < 0. || c.sleep_ua < 0. then
    Error (c.name ^ ": negative current")
  else if c.bit_rate_kbps <= 0. then Error (c.name ^ ": non-positive bit rate")
  else if c.sensitivity_dbm >= 0. then Error (c.name ^ ": sensitivity must be negative dBm")
  else Ok ()

let pp ppf c =
  Format.fprintf ppf "%s(%s, $%g, %g dBm, %g dBi)" c.name (role_name c.role) c.cost
    c.tx_power_dbm c.antenna_gain_dbi
