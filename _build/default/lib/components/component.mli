(** Library components (devices) and their attributes.

    A component is a concrete device that can realize a template node:
    a sensor, relay, sink (base station) or localization anchor.  Its
    attributes drive every constraint family of the paper: cost (the
    objective), TX power and antenna gain (link quality), current draws
    (energy/lifetime). *)

type role =
  | Sensor  (** End device generating data. *)
  | Relay  (** Forwarding-only router. *)
  | Sink  (** Base station collecting data. *)
  | Anchor  (** Fixed reference node of a localization system. *)

val role_name : role -> string

val role_of_name : string -> role option

type t = {
  name : string;
  role : role;
  cost : float;  (** Dollars. *)
  tx_power_dbm : float;
  antenna_gain_dbi : float;
  sensitivity_dbm : float;  (** Minimum decodable RSS. *)
  radio_tx_ma : float;  (** Radio current while transmitting. *)
  radio_rx_ma : float;  (** Radio current while receiving. *)
  active_ma : float;  (** MCU + sensors while awake (non-radio). *)
  sleep_ua : float;  (** Sleep current, microamps. *)
  bit_rate_kbps : float;
}

val make :
  name:string ->
  role:role ->
  cost:float ->
  ?tx_power_dbm:float ->
  ?antenna_gain_dbi:float ->
  ?sensitivity_dbm:float ->
  ?radio_tx_ma:float ->
  ?radio_rx_ma:float ->
  ?active_ma:float ->
  ?sleep_ua:float ->
  ?bit_rate_kbps:float ->
  unit ->
  t
(** Defaults model a CC2530-class 2.4 GHz transceiver: 0 dBm TX, 0 dBi
    antenna, -97 dBm sensitivity, 29/24 mA TX/RX, 6 mA active, 1 µA
    sleep, 250 kbps. *)

val validate : t -> (unit, string) result
(** Sanity checks: non-negative cost and currents, positive bit rate,
    sensitivity below 0 dBm. *)

val pp : Format.formatter -> t -> unit
