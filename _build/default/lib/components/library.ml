type t = { items : Component.t list }

let of_list comps =
  let seen = Hashtbl.create 16 in
  let rec check = function
    | [] -> Ok { items = comps }
    | (c : Component.t) :: rest -> (
        match Component.validate c with
        | Error e -> Error e
        | Ok () ->
            if Hashtbl.mem seen c.Component.name then
              Error ("duplicate component name: " ^ c.Component.name)
            else begin
              Hashtbl.add seen c.Component.name ();
              check rest
            end)
  in
  check comps

let of_list_exn comps =
  match of_list comps with Ok t -> t | Error e -> invalid_arg ("Library.of_list_exn: " ^ e)

let components t = t.items

let size t = List.length t.items

let find t name = List.find_opt (fun (c : Component.t) -> c.Component.name = name) t.items

let find_exn t name =
  match find t name with Some c -> c | None -> raise Not_found

let with_role t role = List.filter (fun (c : Component.t) -> c.Component.role = role) t.items

let cheapest t role =
  match with_role t role with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun (best : Component.t) (c : Component.t) ->
             if c.Component.cost < best.Component.cost then c else best)
           first rest)

let pp ppf t =
  Format.fprintf ppf "library(%d components)" (size t)

let builtin =
  let mk = Component.make in
  of_list_exn
    [
      (* Sensors: the device itself is free (owned); options cost. *)
      mk ~name:"sensor-std" ~role:Component.Sensor ~cost:0. ~tx_power_dbm:0. ();
      mk ~name:"sensor-hp" ~role:Component.Sensor ~cost:4. ~tx_power_dbm:4.5 ~radio_tx_ma:34. ();
      mk ~name:"sensor-ant" ~role:Component.Sensor ~cost:9. ~tx_power_dbm:4.5
        ~antenna_gain_dbi:3. ~radio_tx_ma:34. ();
      (* Relays: routing devices purchased per deployment. *)
      mk ~name:"relay-basic" ~role:Component.Relay ~cost:15. ~tx_power_dbm:0. ();
      mk ~name:"relay-power" ~role:Component.Relay ~cost:22. ~tx_power_dbm:4.5 ~radio_tx_ma:34.
        ();
      mk ~name:"relay-ant" ~role:Component.Relay ~cost:30. ~tx_power_dbm:4.5
        ~antenna_gain_dbi:3. ~radio_tx_ma:34. ();
      mk ~name:"relay-amp" ~role:Component.Relay ~cost:46. ~tx_power_dbm:10.
        ~antenna_gain_dbi:3. ~radio_tx_ma:80. ~sensitivity_dbm:(-100.) ();
      (* Low-power variants: pricier silicon, smaller currents. *)
      mk ~name:"relay-lp" ~role:Component.Relay ~cost:34. ~tx_power_dbm:0. ~radio_tx_ma:21.
        ~radio_rx_ma:18. ~active_ma:3.5 ~sleep_ua:0.4 ();
      mk ~name:"relay-lp-ant" ~role:Component.Relay ~cost:52. ~tx_power_dbm:4.5
        ~antenna_gain_dbi:3. ~radio_tx_ma:25. ~radio_rx_ma:18. ~active_ma:3.5 ~sleep_ua:0.4 ();
      (* Sink: one per network, mains powered in practice. *)
      mk ~name:"sink-std" ~role:Component.Sink ~cost:80. ~tx_power_dbm:4.5
        ~antenna_gain_dbi:3. ~radio_tx_ma:34. ();
      (* Localization anchors. *)
      mk ~name:"anchor-basic" ~role:Component.Anchor ~cost:35. ~tx_power_dbm:0. ();
      mk ~name:"anchor-power" ~role:Component.Anchor ~cost:45. ~tx_power_dbm:4.5
        ~radio_tx_ma:34. ();
      mk ~name:"anchor-ant" ~role:Component.Anchor ~cost:55. ~tx_power_dbm:4.5
        ~antenna_gain_dbi:3. ~radio_tx_ma:34. ();
    ]
