(** Component libraries: named collections of devices.

    The mapping problem associates every used template node with one
    device drawn from the library entries whose role matches the node's
    role (paper §2, "component sizing"). *)

type t

val of_list : Component.t list -> (t, string) result
(** Build a library; fails on duplicate names or invalid components. *)

val of_list_exn : Component.t list -> t
(** @raise Invalid_argument on the same conditions. *)

val components : t -> Component.t list
(** In insertion order. *)

val size : t -> int

val find : t -> string -> Component.t option

val find_exn : t -> string -> Component.t
(** @raise Not_found *)

val with_role : t -> Component.role -> Component.t list
(** Devices implementing a role, in insertion order. *)

val cheapest : t -> Component.role -> Component.t option

val pp : Format.formatter -> t -> unit

(** {1 Built-in reference library}

    Modelled on commercial 2.4 GHz Zigbee parts (TI CC2530/CC2591
    class): per role, variants trading dollar cost against TX power,
    external antenna gain, and low-power current profiles.  Sensors
    have zero dollar cost, as in the paper's data-collection example
    (their purchase is not part of the optimization), but antenna/power
    options on sensors carry a small incremental cost. *)

val builtin : t
