let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

type partial = {
  mutable role : Component.role option;
  mutable cost : float option;
  mutable fields : (string * float) list;
}

let finish name lineno p =
  match (p.role, p.cost) with
  | None, _ -> Error (Printf.sprintf "line %d: component %s has no role" lineno name)
  | _, None -> Error (Printf.sprintf "line %d: component %s has no cost" lineno name)
  | Some role, Some cost ->
      let f key default =
        match List.assoc_opt key p.fields with Some v -> v | None -> default
      in
      Ok
        (Component.make ~name ~role ~cost
           ~tx_power_dbm:(f "tx_power_dbm" 0.)
           ~antenna_gain_dbi:(f "antenna_gain_dbi" 0.)
           ~sensitivity_dbm:(f "sensitivity_dbm" (-97.))
           ~radio_tx_ma:(f "radio_tx_ma" 29.)
           ~radio_rx_ma:(f "radio_rx_ma" 24.)
           ~active_ma:(f "active_ma" 6.)
           ~sleep_ua:(f "sleep_ua" 1.)
           ~bit_rate_kbps:(f "bit_rate_kbps" 250.)
           ())

let known_keys =
  [
    "tx_power_dbm";
    "antenna_gain_dbi";
    "sensitivity_dbm";
    "radio_tx_ma";
    "radio_rx_ma";
    "active_ma";
    "sleep_ua";
    "bit_rate_kbps";
  ]

let parse text =
  let lines = String.split_on_char '\n' text in
  let comps = ref [] in
  let current = ref None (* (name, start line, partial) *) in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      if !error = None then begin
        let line = String.trim (strip_comment raw) in
        if line = "" then ()
        else
          match !current with
          | None -> (
              match String.split_on_char ' ' line with
              | [ "component"; name; "{" ] ->
                  current := Some (name, lineno, { role = None; cost = None; fields = [] })
              | _ -> fail (Printf.sprintf "line %d: expected 'component <name> {'" lineno))
          | Some (name, start, p) ->
              if line = "}" then begin
                match finish name start p with
                | Ok c ->
                    comps := c :: !comps;
                    current := None
                | Error e -> fail e
              end
              else begin
                match String.index_opt line '=' with
                | None -> fail (Printf.sprintf "line %d: expected 'key = value' or '}'" lineno)
                | Some eq ->
                    let key = String.trim (String.sub line 0 eq) in
                    let value =
                      String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
                    in
                    if key = "role" then begin
                      match Component.role_of_name value with
                      | Some r -> p.role <- Some r
                      | None -> fail (Printf.sprintf "line %d: unknown role %S" lineno value)
                    end
                    else begin
                      match float_of_string_opt value with
                      | None ->
                          fail (Printf.sprintf "line %d: bad numeric value %S" lineno value)
                      | Some v ->
                          if key = "cost" then p.cost <- Some v
                          else if List.mem key known_keys then
                            p.fields <- (key, v) :: p.fields
                          else fail (Printf.sprintf "line %d: unknown key %S" lineno key)
                    end
              end
      end)
    lines;
  match (!error, !current) with
  | Some e, _ -> Error e
  | None, Some (name, start, _) ->
      Error (Printf.sprintf "line %d: component %s not closed" start name)
  | None, None -> Library.of_list (List.rev !comps)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error e -> Error e

let to_string lib =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (c : Component.t) ->
      Buffer.add_string buf (Printf.sprintf "component %s {\n" c.Component.name);
      Buffer.add_string buf
        (Printf.sprintf "  role = %s\n" (Component.role_name c.Component.role));
      let field k v = Buffer.add_string buf (Printf.sprintf "  %s = %.12g\n" k v) in
      field "cost" c.Component.cost;
      field "tx_power_dbm" c.Component.tx_power_dbm;
      field "antenna_gain_dbi" c.Component.antenna_gain_dbi;
      field "sensitivity_dbm" c.Component.sensitivity_dbm;
      field "radio_tx_ma" c.Component.radio_tx_ma;
      field "radio_rx_ma" c.Component.radio_rx_ma;
      field "active_ma" c.Component.active_ma;
      field "sleep_ua" c.Component.sleep_ua;
      field "bit_rate_kbps" c.Component.bit_rate_kbps;
      Buffer.add_string buf "}\n")
    (Library.components lib);
  Buffer.contents buf
