(** Text format for component libraries.

    The paper's tool reads the component library as a text file; this
    is our equivalent format:

    {v
    # comment
    component relay-basic {
      role = relay
      cost = 15
      tx_power_dbm = 0
      antenna_gain_dbi = 0
      sensitivity_dbm = -97
      radio_tx_ma = 29
      radio_rx_ma = 24
      active_ma = 6
      sleep_ua = 1
      bit_rate_kbps = 250
    }
    v}

    [role] and [cost] are mandatory; other keys default as in
    {!Component.make}.  Errors carry 1-based line numbers. *)

val parse : string -> (Library.t, string) result

val parse_file : string -> (Library.t, string) result

val to_string : Library.t -> string
(** Render a library back to the text format ([parse (to_string l)]
    round-trips). *)
