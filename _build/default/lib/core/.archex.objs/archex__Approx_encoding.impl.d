lib/core/approx_encoding.ml: Array Encode_common Hashtbl List Milp Netgraph Option Path_gen Printf
