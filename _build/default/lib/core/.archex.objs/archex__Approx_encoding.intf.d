lib/core/approx_encoding.mli: Encode_common Instance Netgraph Path_gen
