lib/core/encode_common.ml: Array Components Energy Float Geometry Hashtbl Instance Int List Milp Netgraph Objective Printf Radio Requirements Template
