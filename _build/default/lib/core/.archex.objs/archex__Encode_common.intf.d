lib/core/encode_common.mli: Components Instance Milp
