lib/core/full_encoding.ml: Array Encode_common Hashtbl Instance List Milp Netgraph Option Printf Requirements Template
