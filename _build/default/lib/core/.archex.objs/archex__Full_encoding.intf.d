lib/core/full_encoding.mli: Encode_common Instance
