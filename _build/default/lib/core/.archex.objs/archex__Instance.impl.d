lib/core/instance.ml: Array Components Energy Float Fun Hashtbl Int List Netgraph Objective Option Radio Requirements String Template
