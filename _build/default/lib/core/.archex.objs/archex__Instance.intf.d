lib/core/instance.mli: Components Energy Netgraph Objective Radio Requirements Template
