lib/core/kstar.ml: Float List Milp Option Solution Solve
