lib/core/kstar.mli: Instance Milp Solution Solve
