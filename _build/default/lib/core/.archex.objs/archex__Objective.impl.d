lib/core/objective.ml: Format List
