lib/core/objective.mli: Format
