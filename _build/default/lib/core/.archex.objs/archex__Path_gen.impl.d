lib/core/path_gen.ml: Array Components Float Hashtbl Instance List Netgraph Option Printf Radio Requirements Template
