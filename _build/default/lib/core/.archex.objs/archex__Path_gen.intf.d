lib/core/path_gen.mli: Instance Netgraph Stdlib
