lib/core/requirements.ml: Array Format Geometry List Printf
