lib/core/requirements.mli: Format Geometry
