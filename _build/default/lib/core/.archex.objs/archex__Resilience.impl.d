lib/core/resilience.ml: Float Format Instance List Netgraph Printf Requirements Solution String Template
