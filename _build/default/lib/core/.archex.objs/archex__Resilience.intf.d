lib/core/resilience.mli: Format Instance Solution
