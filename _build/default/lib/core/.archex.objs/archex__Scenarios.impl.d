lib/core/scenarios.ml: Array Components Float Fun Geometry Instance Int List Objective Option Printf Radio Requirements Template
