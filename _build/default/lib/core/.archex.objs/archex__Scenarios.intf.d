lib/core/scenarios.mli: Instance Objective
