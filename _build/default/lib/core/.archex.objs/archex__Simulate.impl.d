lib/core/simulate.ml: Array Components Energy Float Hashtbl Instance List Netgraph Option Printf Radio Random Requirements Solution Template
