lib/core/simulate.mli: Instance Solution
