lib/core/solution.ml: Approx_encoding Array Components Encode_common Energy Float Format Full_encoding Hashtbl Instance List Milp Netgraph Option Printf Radio Requirements Template
