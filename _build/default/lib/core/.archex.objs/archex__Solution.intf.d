lib/core/solution.mli: Approx_encoding Components Format Full_encoding Instance Milp Netgraph
