lib/core/solve.ml: Approx_encoding Encode_common Full_encoding Milp Solution Unix
