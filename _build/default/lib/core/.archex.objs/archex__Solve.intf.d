lib/core/solve.mli: Instance Milp Solution
