lib/core/template.ml: Array Components Format Geometry Hashtbl List Netgraph
