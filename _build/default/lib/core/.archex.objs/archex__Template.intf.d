lib/core/template.mli: Components Format Geometry Netgraph
