module Lin = Milp.Lin
module Model = Milp.Model
module Path = Netgraph.Path

type route_selection = {
  req_index : int;
  src : int;
  dst : int;
  pool : Path.t array;
  slots : int array array;
}

type t = {
  ctx : Encode_common.t;
  selections : route_selection list;
  generation : Path_gen.result;
}

let encode ?(kstar = 10) ?(loc_kstar = 20) inst =
  match Path_gen.generate ~kstar inst with
  | Error e -> Error e
  | Ok generation ->
      let ctx = Encode_common.create inst in
      let model = Encode_common.model ctx in
      (* Global per-edge usage accumulator across all routes. *)
      let usage : (int * int, Lin.t) Hashtbl.t = Hashtbl.create 256 in
      let bump_edge (i, j) term =
        let cur = Option.value ~default:Lin.zero (Hashtbl.find_opt usage (i, j)) in
        Hashtbl.replace usage (i, j) (Lin.add cur term)
      in
      let selections =
        List.map
          (fun (p : Path_gen.route_pool) ->
            let pool = Array.of_list p.Path_gen.pool in
            let nk = Array.length pool in
            let slots =
              Array.init p.Path_gen.replicas (fun r ->
                  Array.init nk (fun k ->
                      Model.add_binary model
                        (Printf.sprintf "sel_r%d_rep%d_c%d" p.Path_gen.req_index r k)))
            in
            (* One candidate per replica slot. *)
            Array.iteri
              (fun r svars ->
                let sum = Lin.of_list (Array.to_list (Array.map (fun v -> (1., v)) svars)) in
                Model.add_constr model
                  ~name:(Printf.sprintf "one_path_r%d_rep%d" p.Path_gen.req_index r)
                  sum Model.Eq 1.)
              slots;
            (* (1d): replicas must be pairwise link-disjoint — exclude
               edge-sharing candidate pairs across slots. *)
            for r1 = 0 to p.Path_gen.replicas - 1 do
              for r2 = r1 + 1 to p.Path_gen.replicas - 1 do
                for k1 = 0 to nk - 1 do
                  for k2 = 0 to nk - 1 do
                    if not (Path.edge_disjoint pool.(k1) pool.(k2)) then
                      Model.add_constr model
                        (Lin.of_list [ (1., slots.(r1).(k1)); (1., slots.(r2).(k2)) ])
                        Model.Le 1.
                  done
                done
              done
            done;
            (* Symmetry breaking: slot r picks a lower candidate index
               than slot r+1 (valid because slots are interchangeable
               and disjointness forbids re-picking a candidate). *)
            for r = 0 to p.Path_gen.replicas - 2 do
              let rank svars =
                Lin.of_list
                  (Array.to_list (Array.mapi (fun k v -> (float_of_int k, v)) svars))
              in
              Model.add_constr model
                (Lin.add_const (Lin.sub (rank slots.(r)) (rank slots.(r + 1))) 1.)
                Model.Le 0.
            done;
            (* Edge usage terms. *)
            Array.iteri
              (fun _r svars ->
                Array.iteri
                  (fun k v ->
                    List.iter (fun e -> bump_edge e (Lin.var v)) (Path.edges pool.(k)))
                  svars)
              slots;
            {
              req_index = p.Path_gen.req_index;
              src = p.Path_gen.src;
              dst = p.Path_gen.dst;
              pool;
              slots;
            })
          generation.Path_gen.pools
      in
      (* Tie usage to shared edge binaries (creates LQ rows) and feed
         the energy accounting. *)
      Hashtbl.iter
        (fun (i, j) expr ->
          Encode_common.add_edge_usage ctx i j expr;
          Encode_common.constrain_used_edge ctx i j expr)
        usage;
      (* Localization pruning (paper §4.2). *)
      Encode_common.set_localization_candidates ctx
        (Path_gen.localization_candidates inst ~kstar:loc_kstar);
      Encode_common.finalize ctx;
      Ok { ctx; selections; generation }
