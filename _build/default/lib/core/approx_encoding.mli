(** The compact path encoding built from Algorithm 1 candidate pools
    (paper §3).

    Every required route replica gets one selection binary per candidate
    path in its pair's pool ("NewCons": exactly one candidate is chosen
    per replica).  Edge binaries exist only for links appearing in some
    candidate, so the routing constraints (1a)–(1c) are omitted — path
    validity is guaranteed by construction — and the link-quality and
    energy constraints range over candidate edges only.  Disjointness
    (1d) becomes pairwise exclusion of edge-sharing candidates assigned
    to different replicas; a symmetry-breaking order on replica slots
    trims the branch & bound tree. *)

type route_selection = {
  req_index : int;
  src : int;
  dst : int;
  pool : Netgraph.Path.t array;  (** Candidate paths of this pair. *)
  slots : int array array;
      (** [slots.(r).(k)] is the selection binary of candidate [k] for
          replica [r]. *)
}

type t = {
  ctx : Encode_common.t;
  selections : route_selection list;
  generation : Path_gen.result;
}

val encode : ?kstar:int -> ?loc_kstar:int -> Instance.t -> (t, string) result
(** Build the complete MILP.  [kstar] is Algorithm 1's [K*] for routes
    (default 10); [loc_kstar] prunes localization reachability pairs
    (default 20, paper §4.2).  The model inside the returned context is
    finalized and ready to solve. *)
