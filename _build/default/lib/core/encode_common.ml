module Lin = Milp.Lin
module Model = Milp.Model

type t = {
  inst : Instance.t;
  model : Model.t;
  node_use : int array;
  sizing : (Components.Component.t * int) list array;
  edges : (int * int, int) Hashtbl.t;
  tx_usage : Lin.t array;  (* per node: # path crossings leaving the node *)
  rx_usage : Lin.t array;
  mutable loc_candidates : (int * int list) list;
  mutable reach : ((int * int) * int) list;
  mutable finalized : bool;
}

let model ctx = ctx.model

let instance ctx = ctx.inst

let node_use_var ctx i = ctx.node_use.(i)

let sizing_vars ctx i = ctx.sizing.(i)

let edge_vars ctx = Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.edges []

let rss_floor_dbm ctx = ctx.inst.Instance.noise_dbm +. Instance.min_snr_db ctx.inst

(* Net antenna/TX contribution of the device selected at a node. *)
let tx_gain_expr ctx i =
  List.fold_left
    (fun acc ((c : Components.Component.t), v) ->
      Lin.add_term acc (c.Components.Component.tx_power_dbm +. c.Components.Component.antenna_gain_dbi) v)
    Lin.zero ctx.sizing.(i)

let gain_expr ctx i =
  List.fold_left
    (fun acc ((c : Components.Component.t), v) ->
      Lin.add_term acc c.Components.Component.antenna_gain_dbi v)
    Lin.zero ctx.sizing.(i)

let rss_expr ctx i j =
  let pl = ctx.inst.Instance.pl.(i).(j) in
  Lin.add_const (Lin.add (tx_gain_expr ctx i) (gain_expr ctx j)) (-.pl)

let create inst =
  let template = inst.Instance.template in
  let n = Template.nnodes template in
  let model = Model.create ~name:"archex" () in
  let node_use =
    Array.init n (fun i ->
        Model.add_binary model (Printf.sprintf "use_%s" (Template.node template i).Template.name))
  in
  let sizing =
    Array.init n (fun i ->
        List.map
          (fun (_, c) ->
            let v =
              Model.add_binary model
                (Printf.sprintf "map_%s_%s" c.Components.Component.name
                   (Template.node template i).Template.name)
            in
            (c, v))
          (Instance.devices_for inst i))
  in
  (* Exactly one device on a used node, none otherwise: Σ_l m_li = α_i.
     Fixed nodes are pinned used. *)
  for i = 0 to n - 1 do
    let sum = Lin.of_list (List.map (fun (_, v) -> (1., v)) sizing.(i)) in
    Model.add_constr model ~name:(Printf.sprintf "sizing_%d" i)
      (Lin.sub sum (Lin.var node_use.(i)))
      Model.Eq 0.;
    if (Template.node template i).Template.fixed then
      Model.add_constr model
        ~name:(Printf.sprintf "fixed_%d" i)
        (Lin.var node_use.(i))
        Model.Eq 1.
  done;
  {
    inst;
    model;
    node_use;
    sizing;
    edges = Hashtbl.create 64;
    tx_usage = Array.make n Lin.zero;
    rx_usage = Array.make n Lin.zero;
    loc_candidates = [];
    reach = [];
    finalized = false;
  }

(* Big-M for the link-quality row: with e_ij = 0 the row must be slack
   for any sizing, including "no device" (all m = 0, RSS = -PL). *)
let lq_big_m ctx i j floor =
  let pl = ctx.inst.Instance.pl.(i).(j) in
  let worst = -.pl in
  Float.max 1. (floor -. worst +. 1.)

let edge_var ctx i j =
  match Hashtbl.find_opt ctx.edges (i, j) with
  | Some v -> v
  | None ->
      if not (Netgraph.Digraph.mem_edge ctx.inst.Instance.graph i j) then
        invalid_arg (Printf.sprintf "Encode_common.edge_var: (%d, %d) is not a candidate link" i j);
      let v = Model.add_binary ctx.model (Printf.sprintf "e_%d_%d" i j) in
      Hashtbl.add ctx.edges (i, j) v;
      (* An active link needs both endpoints deployed. *)
      Model.add_constr ctx.model
        ~name:(Printf.sprintf "e_src_%d_%d" i j)
        (Lin.sub (Lin.var v) (Lin.var ctx.node_use.(i)))
        Model.Le 0.;
      Model.add_constr ctx.model
        ~name:(Printf.sprintf "e_dst_%d_%d" i j)
        (Lin.sub (Lin.var v) (Lin.var ctx.node_use.(j)))
        Model.Le 0.;
      (* Link quality (2b), linearized: RSS_ij >= floor - M (1 - e). *)
      let floor = rss_floor_dbm ctx in
      let m = lq_big_m ctx i j floor in
      Model.add_constr ctx.model
        ~name:(Printf.sprintf "lq_%d_%d" i j)
        (Lin.sub (rss_expr ctx i j) (Lin.term m v))
        Model.Ge (floor -. m);
      v

let add_edge_usage ctx i j expr =
  ctx.tx_usage.(i) <- Lin.add ctx.tx_usage.(i) expr;
  ctx.rx_usage.(j) <- Lin.add ctx.rx_usage.(j) expr

let constrain_used_edge ctx i j expr =
  let e = edge_var ctx i j in
  (* e >= every binary term of the usage expression… *)
  Lin.iter
    (fun v c ->
      if c > 0. then
        Model.add_constr ctx.model
          (Lin.sub (Lin.var e) (Lin.var v))
          Model.Ge 0.)
    expr;
  (* …and e <= total usage, so links no path selects stay off. *)
  Model.add_constr ctx.model (Lin.sub (Lin.var e) expr) Model.Le 0.

let set_localization_candidates ctx cands = ctx.loc_candidates <- cands

let localization_candidates ctx = ctx.loc_candidates

let reach_vars ctx = ctx.reach

(* ---------------- energy and lifetime ---------------- *)

let needs_energy ctx =
  ctx.inst.Instance.requirements.Requirements.min_lifetime_years <> None
  || List.exists (fun (_, c) -> c = Objective.Energy) ctx.inst.Instance.objective

(* Per-node charge expression (mA·s per reporting period), linear in the
   auxiliary products w = m * usage (see DESIGN.md, linearization). *)
let node_charge_expr ctx i =
  let inst = ctx.inst in
  let proto = inst.Instance.protocol in
  let period = proto.Energy.Tdma.report_period_s in
  let slot = proto.Energy.Tdma.slot_s in
  let bits = Energy.Tdma.packet_bits proto in
  let etx = Instance.etx_bound inst in
  let route_cap = float_of_int (Int.max 1 (Requirements.total_path_count inst.Instance.requirements)) in
  let charge = ref Lin.zero in
  List.iter
    (fun ((c : Components.Component.t), mv) ->
      let airtime = float_of_int bits /. (c.Components.Component.bit_rate_kbps *. 1000.) in
      let sleep_ma = c.Components.Component.sleep_ua /. 1000. in
      (* Auxiliary products w = m_li * usage_i, one per direction. *)
      let product name usage =
        if Lin.is_constant usage then Lin.scale (Lin.constant usage) (Lin.var mv)
        else begin
          let w =
            Model.add_var ctx.model ~lb:0. ~ub:route_cap
              (Printf.sprintf "w%s_%d_%s" name i c.Components.Component.name)
          in
          Model.add_constr ctx.model
            (Lin.sub (Lin.var w) (Lin.term route_cap mv))
            Model.Le 0.;
          Model.add_constr ctx.model (Lin.sub (Lin.var w) usage) Model.Le 0.;
          (* w >= usage - R (1 - m): tight when the device is selected. *)
          Model.add_constr ctx.model
            (Lin.add_const
               (Lin.sub (Lin.sub (Lin.var w) usage) (Lin.term route_cap mv))
               route_cap)
            Model.Ge 0.;
          Lin.var w
        end
      in
      let wtx = product "tx" ctx.tx_usage.(i) in
      let wrx = product "rx" ctx.rx_usage.(i) in
      (* Radio + awake-slot active draw minus the sleep current the
         awake time displaces, per TX/RX event… *)
      let tx_coef =
        (etx *. airtime *. c.Components.Component.radio_tx_ma)
        +. (slot *. c.Components.Component.active_ma)
        -. (slot *. sleep_ma)
      in
      let rx_coef =
        (etx *. airtime *. c.Components.Component.radio_rx_ma)
        +. (slot *. c.Components.Component.active_ma)
        -. (slot *. sleep_ma)
      in
      (* …plus baseline sleep for the whole period when this device is
         the one deployed. *)
      charge :=
        Lin.add !charge
          (Lin.sum
             [ Lin.scale tx_coef wtx; Lin.scale rx_coef wrx; Lin.term (sleep_ma *. period) mv ]))
    ctx.sizing.(i);
  !charge

let add_energy ctx =
  let inst = ctx.inst in
  let n = Template.nnodes inst.Instance.template in
  let period = inst.Instance.protocol.Energy.Tdma.report_period_s in
  let charges = Array.init n (fun i -> node_charge_expr ctx i) in
  (match inst.Instance.requirements.Requirements.min_lifetime_years with
  | None -> ()
  | Some years ->
      (* (3a): battery / avg-current >= L*  ⇔  charge-per-period bounded. *)
      let budget =
        inst.Instance.battery.Energy.Lifetime.capacity_mah *. 3600. *. period
        /. (years *. Energy.Lifetime.seconds_per_year)
      in
      Array.iteri
        (fun i q ->
          (* Base stations are mains-powered: the lifetime requirement
             applies to battery nodes only. *)
          let role = (Template.node inst.Instance.template i).Template.role in
          if role <> Components.Component.Sink then
            Model.add_constr ctx.model ~name:(Printf.sprintf "lifetime_%d" i) q Model.Le budget)
        charges);
  charges

(* ---------------- localization ---------------- *)

let eval_path_loss ctx anchor eval_pt =
  let loc = (Template.node ctx.inst.Instance.template anchor).Template.loc in
  Radio.Channel.path_loss ctx.inst.Instance.channel loc eval_pt

let add_localization ctx =
  match ctx.inst.Instance.requirements.Requirements.localization with
  | None -> ()
  | Some loc ->
      let anchors =
        Template.find_role ctx.inst.Instance.template Components.Component.Anchor
      in
      let floor = loc.Requirements.loc_min_rss_dbm in
      let candidates_for j =
        match List.assoc_opt j ctx.loc_candidates with
        | Some l -> l
        | None -> anchors
      in
      Array.iteri
        (fun j pt ->
          let cands = candidates_for j in
          let cover = ref Lin.zero in
          List.iter
            (fun i ->
              let pl = eval_path_loss ctx i pt in
              let r = Model.add_binary ctx.model (Printf.sprintf "reach_%d_%d" i j) in
              ctx.reach <- ((i, j), r) :: ctx.reach;
              (* (4a): r ⇒ α_i ∧ RSS >= floor. *)
              Model.add_constr ctx.model
                (Lin.sub (Lin.var r) (Lin.var ctx.node_use.(i)))
                Model.Le 0.;
              let worst = -.pl in
              let m = Float.max 1. (floor -. worst +. 1.) in
              let rss = Lin.add_const (tx_gain_expr ctx i) (-.pl) in
              Model.add_constr ctx.model
                ~name:(Printf.sprintf "locq_%d_%d" i j)
                (Lin.sub rss (Lin.term m r))
                Model.Ge (floor -. m);
              cover := Lin.add_term !cover 1. r)
            cands;
          (* (4b): every test point covered by >= N anchors. *)
          Model.add_constr ctx.model
            ~name:(Printf.sprintf "cover_%d" j)
            !cover Model.Ge
            (float_of_int loc.Requirements.min_anchors))
        loc.Requirements.eval_points

(* ---------------- objective ---------------- *)

let dollar_expr ctx =
  let acc = ref Lin.zero in
  Array.iter
    (fun svars ->
      List.iter
        (fun ((c : Components.Component.t), v) ->
          acc := Lin.add_term !acc c.Components.Component.cost v)
        svars)
    ctx.sizing;
  !acc

let node_count_expr ctx =
  Array.fold_left (fun acc v -> Lin.add_term acc 1. v) Lin.zero ctx.node_use

let dsod_expr ctx =
  match ctx.inst.Instance.requirements.Requirements.localization with
  | None -> Lin.zero
  | Some loc ->
      List.fold_left
        (fun acc ((i, j), r) ->
          let anchor_loc = (Template.node ctx.inst.Instance.template i).Template.loc in
          let d = Geometry.Point.dist anchor_loc loc.Requirements.eval_points.(j) in
          Lin.add_term acc d r)
        Lin.zero ctx.reach

let finalize ctx =
  if ctx.finalized then invalid_arg "Encode_common.finalize: already finalized";
  ctx.finalized <- true;
  let charges = if needs_energy ctx then add_energy ctx else [||] in
  add_localization ctx;
  let period = ctx.inst.Instance.protocol.Energy.Tdma.report_period_s in
  let concern_expr = function
    | Objective.Dollar_cost -> dollar_expr ctx
    | Objective.Node_count -> node_count_expr ctx
    | Objective.Dsod -> dsod_expr ctx
    | Objective.Energy ->
        (* Average network current in µA: Σ_i q_i / T * 1000. *)
        Lin.scale (1000. /. period) (Array.fold_left Lin.add Lin.zero charges)
  in
  let obj =
    List.fold_left
      (fun acc (w, c) -> Lin.add acc (Lin.scale w (concern_expr c)))
      Lin.zero ctx.inst.Instance.objective
  in
  Model.set_objective ctx.model Model.Minimize obj
