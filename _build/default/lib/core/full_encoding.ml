module Lin = Milp.Lin
module Model = Milp.Model

type path_vars = {
  req_index : int;
  replica : int;
  edge_of_var : ((int * int) * int) list;
}

type t = { ctx : Encode_common.t; paths : path_vars list }

let encode inst =
  let ctx = Encode_common.create inst in
  let model = Encode_common.model ctx in
  let graph = inst.Instance.graph in
  let n = Template.nnodes inst.Instance.template in
  let all_edges = Netgraph.Digraph.edges graph in
  let usage : (int * int, Lin.t) Hashtbl.t = Hashtbl.create 256 in
  let bump_edge key term =
    let cur = Option.value ~default:Lin.zero (Hashtbl.find_opt usage key) in
    Hashtbl.replace usage key (Lin.add cur term)
  in
  let paths = ref [] in
  List.iteri
    (fun req_index (r : Requirements.route) ->
      let replicas =
        Array.init r.Requirements.replicas (fun replica ->
            (* One binary per candidate link for this path replica. *)
            let vars =
              List.map
                (fun (i, j, _) ->
                  let v =
                    Model.add_binary model
                      (Printf.sprintf "a_r%d_rep%d_%d_%d" req_index replica i j)
                  in
                  bump_edge (i, j) (Lin.var v);
                  ((i, j), v))
                all_edges
            in
            (* (1a): flow balance at every node. *)
            for node = 0 to n - 1 do
              let out_flow =
                Lin.of_list
                  (List.filter_map
                     (fun ((i, _), v) -> if i = node then Some (1., v) else None)
                     vars)
              in
              let in_flow =
                Lin.of_list
                  (List.filter_map
                     (fun ((_, j), v) -> if j = node then Some (1., v) else None)
                     vars)
              in
              let z =
                if node = r.Requirements.src then 1.
                else if node = r.Requirements.dst then -1.
                else 0.
              in
              Model.add_constr model
                ~name:(Printf.sprintf "flow_r%d_rep%d_n%d" req_index replica node)
                (Lin.sub out_flow in_flow) Model.Eq z;
              (* (1c): at most one successor and one predecessor. *)
              Model.add_constr model out_flow Model.Le 1.;
              Model.add_constr model in_flow Model.Le 1.
            done;
            (* (1e): hop bounds, including any latency-induced bound. *)
            List.iter
              (fun { Requirements.hop_sense; hops } ->
                let total = Lin.of_list (List.map (fun (_, v) -> (1., v)) vars) in
                let sense =
                  match hop_sense with `Le -> Model.Le | `Ge -> Model.Ge | `Eq -> Model.Eq
                in
                Model.add_constr model total sense (float_of_int hops))
              (Instance.effective_hop_bounds inst r);
            vars)
      in
      (* (1d): replicas are pairwise link-disjoint. *)
      for r1 = 0 to Array.length replicas - 1 do
        for r2 = r1 + 1 to Array.length replicas - 1 do
          List.iter2
            (fun (e1, v1) (e2, v2) ->
              assert (e1 = e2);
              Model.add_constr model (Lin.of_list [ (1., v1); (1., v2) ]) Model.Le 1.)
            replicas.(r1) replicas.(r2)
        done
      done;
      Array.iteri
        (fun replica vars ->
          paths := { req_index; replica; edge_of_var = vars } :: !paths)
        replicas)
    inst.Instance.requirements.Requirements.routes;
  (* (1b) + LQ rows via the shared helper, plus energy accounting. *)
  Hashtbl.iter
    (fun (i, j) expr ->
      Encode_common.add_edge_usage ctx i j expr;
      Encode_common.constrain_used_edge ctx i j expr)
    usage;
  Encode_common.finalize ctx;
  { ctx; paths = List.rev !paths }
