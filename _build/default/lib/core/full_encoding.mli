(** Exhaustive path encoding (paper §2, constraints (1a)–(1e)).

    Every required path replica gets one binary per candidate link of
    the template — the [n²]-variable encoding the paper uses as the
    exact baseline.  Flow-balance (1a), edge implication (1b, emitted
    through {!Encode_common.constrain_used_edge}), loop-freedom (1c),
    replica disjointness (1d) and hop bounds (1e) are generated
    explicitly.  This encoding explores all topologies but its size
    explodes with the template, which is exactly the paper's motivation
    for Algorithm 1. *)

type path_vars = {
  req_index : int;
  replica : int;
  edge_of_var : ((int * int) * int) list;  (** [(i, j), a^ρ_ij)]. *)
}

type t = { ctx : Encode_common.t; paths : path_vars list }

val encode : Instance.t -> t
(** Build the complete MILP (finalized, ready to solve). *)
