type t = {
  template : Template.t;
  library : Components.Library.t;
  channel : Radio.Channel.t;
  protocol : Energy.Tdma.t;
  battery : Energy.Lifetime.battery;
  noise_dbm : float;
  modulation : Radio.Modulation.t;
  requirements : Requirements.t;
  objective : Objective.t;
  pl : float array array;
  graph : Netgraph.Digraph.t;
}

let roles_present template =
  let seen = Hashtbl.create 4 in
  Array.iter
    (fun (n : Template.node) -> Hashtbl.replace seen n.Template.role ())
    (Template.nodes template);
  Hashtbl.fold (fun r () acc -> r :: acc) seen []

let create ?(noise_dbm = -100.) ?(modulation = Radio.Modulation.Qpsk)
    ?(protocol = Energy.Tdma.make ()) ?(battery = Energy.Lifetime.default_battery)
    ?max_path_loss ~template ~library ~channel ~requirements ~objective () =
  match Requirements.validate requirements ~nnodes:(Template.nnodes template) with
  | Error e -> Error ("invalid requirements: " ^ e)
  | Ok () ->
      let missing =
        List.filter
          (fun role -> Components.Library.with_role library role = [])
          (roles_present template)
      in
      if missing <> [] then
        Error
          ("library has no device for role(s): "
          ^ String.concat ", " (List.map Components.Component.role_name missing))
      else if objective = [] then Error "empty objective"
      else begin
        let pl = Radio.Channel.path_loss_matrix channel (Template.locations template) in
        let graph = Template.candidate_links ?max_path_loss template ~pl in
        Ok
          {
            template;
            library;
            channel;
            protocol;
            battery;
            noise_dbm;
            modulation;
            requirements;
            objective;
            pl;
            graph;
          }
      end

let create_exn ?noise_dbm ?modulation ?protocol ?battery ?max_path_loss ~template ~library
    ~channel ~requirements ~objective () =
  match
    create ?noise_dbm ?modulation ?protocol ?battery ?max_path_loss ~template ~library ~channel
      ~requirements ~objective ()
  with
  | Ok t -> t
  | Error e -> invalid_arg ("Instance.create: " ^ e)

let min_snr_db t =
  let r = t.requirements in
  let candidates =
    List.filter_map Fun.id
      [
        r.Requirements.min_snr_db;
        Option.map (fun rss -> rss -. t.noise_dbm) r.Requirements.min_rss_dbm;
        Option.map (fun ber -> Radio.Modulation.snr_for_ber t.modulation ber) r.Requirements.max_ber;
      ]
  in
  List.fold_left Float.max 0. candidates

let etx_bound t =
  let snr = min_snr_db t in
  Radio.Link_budget.etx ~modulation:t.modulation
    ~packet_bits:(Energy.Tdma.packet_bits t.protocol)
    ~snr_db:snr ()

let effective_hop_bounds t (r : Requirements.route) =
  match r.Requirements.max_latency_s with
  | None -> r.Requirements.hop_bounds
  | Some latency ->
      let sf = Energy.Tdma.superframe_s t.protocol in
      let hops = int_of_float (Float.floor (latency /. sf)) in
      { Requirements.hop_sense = `Le; hops = Int.max 1 hops } :: r.Requirements.hop_bounds

let devices_for t i =
  let role = (Template.node t.template i).Template.role in
  let all = Components.Library.components t.library in
  List.filteri (fun _ _ -> true) all
  |> List.mapi (fun idx c -> (idx, c))
  |> List.filter (fun (_, (c : Components.Component.t)) -> c.Components.Component.role = role)
