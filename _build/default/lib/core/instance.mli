(** A complete exploration-problem instance: template + library +
    physics + requirements + objective.

    Derived data (the all-pairs path-loss matrix and the candidate-link
    graph) is computed once at construction and shared by both the full
    and the approximate encodings. *)

type t = {
  template : Template.t;
  library : Components.Library.t;
  channel : Radio.Channel.t;
  protocol : Energy.Tdma.t;
  battery : Energy.Lifetime.battery;
  noise_dbm : float;  (** Background noise + interference floor. *)
  modulation : Radio.Modulation.t;
  requirements : Requirements.t;
  objective : Objective.t;
  (* Derived: *)
  pl : float array array;  (** All-pairs path loss over template nodes. *)
  graph : Netgraph.Digraph.t;  (** Candidate links, weight = path loss. *)
}

val create :
  ?noise_dbm:float ->
  ?modulation:Radio.Modulation.t ->
  ?protocol:Energy.Tdma.t ->
  ?battery:Energy.Lifetime.battery ->
  ?max_path_loss:float ->
  template:Template.t ->
  library:Components.Library.t ->
  channel:Radio.Channel.t ->
  requirements:Requirements.t ->
  objective:Objective.t ->
  unit ->
  (t, string) result
(** Defaults: noise -100 dBm, QPSK, the paper's TDMA parameters, two AA
    batteries.  Validates requirements against the template and checks
    the library offers at least one device per role present. *)

val create_exn :
  ?noise_dbm:float ->
  ?modulation:Radio.Modulation.t ->
  ?protocol:Energy.Tdma.t ->
  ?battery:Energy.Lifetime.battery ->
  ?max_path_loss:float ->
  template:Template.t ->
  library:Components.Library.t ->
  channel:Radio.Channel.t ->
  requirements:Requirements.t ->
  objective:Objective.t ->
  unit ->
  t
(** @raise Invalid_argument on validation failure. *)

val min_snr_db : t -> float
(** The effective SNR floor implied by the requirements: the maximum of
    the explicit [min_snr_db], the SNR of [min_rss_dbm] over the noise
    floor, and the SNR implied by [max_ber] through the modulation
    curve.  Falls back to 0 dB when no link-quality requirement is
    given (an undecodable link is never useful). *)

val etx_bound : t -> float
(** Conservative expected-transmissions bound used to linearize the
    energy constraints: the ETX at the effective SNR floor.  Every link
    admitted by the link-quality constraints has ETX at most this. *)

val effective_hop_bounds : t -> Requirements.route -> Requirements.hop_bound list
(** The route's explicit hop bounds plus the bound induced by its
    latency deadline: under the collision-free TDMA schedule a packet
    advances one hop per superframe, so
    [hops <= floor (latency / superframe)]. *)

val devices_for : t -> int -> (int * Components.Component.t) list
(** Library entries (with their library index) whose role matches
    template node [i]. *)
