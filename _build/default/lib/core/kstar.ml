type step = { kstar : int; outcome : Solve.outcome; objective : float option }

type result = {
  steps : step list;
  best : (int * Solution.t) option;
  stopped_because : [ `Time_threshold | `No_improvement | `Schedule_exhausted ];
}

let default_schedule = [ 1; 3; 5; 10; 20 ]

let search ?(schedule = default_schedule) ?(time_threshold_s = 60.) ?(min_improvement = 0.005)
    ?options inst =
  let steps = ref [] in
  let best = ref None in
  let prev_obj = ref None in
  let stopped = ref `Schedule_exhausted in
  let rec go = function
    | [] -> ()
    | kstar :: rest -> (
        match Solve.run ?options inst (Solve.Approx { kstar; loc_kstar = kstar }) with
        | Error _ ->
            (* Pool generation failed for this K*; try a larger one. *)
            go rest
        | Ok outcome ->
            let objective =
              Option.map (fun _ -> outcome.Solve.mip.Milp.Branch_bound.objective)
                outcome.Solve.solution
            in
            steps := { kstar; outcome; objective } :: !steps;
            (match (outcome.Solve.solution, !best) with
            | Some sol, None -> best := Some (kstar, sol)
            | Some sol, Some (_, prev)
              when outcome.Solve.mip.Milp.Branch_bound.objective
                   < prev.Solution.mip.Milp.Branch_bound.objective -. 1e-9 ->
                best := Some (kstar, sol)
            | _ -> ());
            if outcome.Solve.stats.Solve.solve_time_s > time_threshold_s then
              stopped := `Time_threshold
            else begin
              let improved =
                match (objective, !prev_obj) with
                | Some now, Some before ->
                    before -. now > min_improvement *. Float.max 1e-9 (Float.abs before)
                | Some _, None -> true
                | None, _ -> true
              in
              (match objective with Some o -> prev_obj := Some o | None -> ());
              if improved then go rest else stopped := `No_improvement
            end)
  in
  go schedule;
  { steps = List.rev !steps; best = !best; stopped_because = !stopped }
