type concern = Dollar_cost | Energy | Node_count | Dsod

type t = (float * concern) list

let dollar = [ (1., Dollar_cost) ]

let energy = [ (1., Energy) ]

let dsod = [ (1., Dsod) ]

let combine a b = List.map (fun (w, c) -> (0.5 *. w, c)) (a @ b)

let concern_name = function
  | Dollar_cost -> "$ cost"
  | Energy -> "energy"
  | Node_count -> "#nodes"
  | Dsod -> "DSOD"

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
    (fun ppf (w, c) -> Format.fprintf ppf "%g*%s" w (concern_name c))
    ppf t
