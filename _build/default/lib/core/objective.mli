(** Objective functions: weighted combinations of design concerns
    (paper §2, "Cost function").

    Concern values are normalized inside the encoder so that the weights
    are unitless user knobs, as in the paper's "equally weighted
    combination" experiments. *)

type concern =
  | Dollar_cost  (** Sum of selected component costs. *)
  | Energy  (** Total network charge per reporting period (mA·s). *)
  | Node_count  (** Number of used nodes. *)
  | Dsod
      (** Localization accuracy proxy (Redondi & Amaldi's linearized
          Cramér–Rao surrogate): sum over test points of the distances
          to the anchors that cover them — favouring placements whose
          covering anchors are close to the points they range. *)

type t = (float * concern) list
(** Weighted sum, e.g. [[ (1., Dollar_cost) ]] or
    [[ (0.5, Dollar_cost); (0.5, Energy) ]]. *)

val dollar : t

val energy : t

val dsod : t

val combine : t -> t -> t
(** Equal-weight combination of two objectives (each rescaled by 1/2). *)

val concern_name : concern -> string

val pp : Format.formatter -> t -> unit
