type hop_bound = { hop_sense : [ `Le | `Ge | `Eq ]; hops : int }

type route = {
  src : int;
  dst : int;
  replicas : int;
  hop_bounds : hop_bound list;
  max_latency_s : float option;
}

type localization = {
  min_anchors : int;
  loc_min_rss_dbm : float;
  eval_points : Geometry.Point.t array;
}

type t = {
  routes : route list;
  min_rss_dbm : float option;
  min_snr_db : float option;
  max_ber : float option;
  min_lifetime_years : float option;
  localization : localization option;
}

let empty =
  {
    routes = [];
    min_rss_dbm = None;
    min_snr_db = None;
    max_ber = None;
    min_lifetime_years = None;
    localization = None;
  }

let add_route ?(replicas = 1) ?(hop_bounds = []) ?max_latency_s t ~src ~dst =
  { t with routes = t.routes @ [ { src; dst; replicas; hop_bounds; max_latency_s } ] }

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let validate t ~nnodes =
  let check_route r =
    if r.src < 0 || r.src >= nnodes then Error (Printf.sprintf "route src %d out of range" r.src)
    else if r.dst < 0 || r.dst >= nnodes then
      Error (Printf.sprintf "route dst %d out of range" r.dst)
    else if r.src = r.dst then Error "route with identical endpoints"
    else if r.replicas < 1 then Error "route with replicas < 1"
    else if List.exists (fun h -> h.hops < 1) r.hop_bounds then Error "hop bound < 1"
    else
      match r.max_latency_s with
      | Some l when l <= 0. -> Error "non-positive latency bound"
      | Some _ | None -> Ok ()
  in
  let rec check_all = function
    | [] -> Ok ()
    | r :: rest -> ( match check_route r with Ok () -> check_all rest | Error e -> Error e)
  in
  let* () = check_all t.routes in
  let* () =
    match t.max_ber with
    | Some b when b <= 0. || b >= 0.5 -> Error "max_ber outside (0, 0.5)"
    | _ -> Ok ()
  in
  let* () =
    match t.min_lifetime_years with
    | Some y when y <= 0. -> Error "non-positive lifetime requirement"
    | _ -> Ok ()
  in
  match t.localization with
  | Some l ->
      if l.min_anchors < 1 then Error "min_anchors < 1"
      else if Array.length l.eval_points = 0 then Error "localization without eval points"
      else Ok ()
  | None -> Ok ()

let total_path_count t = List.fold_left (fun acc r -> acc + r.replicas) 0 t.routes

let pp ppf t =
  Format.fprintf ppf "requirements(%d routes/%d paths%s%s%s%s)" (List.length t.routes)
    (total_path_count t)
    (match t.min_rss_dbm with Some v -> Printf.sprintf ", rss>=%g" v | None -> "")
    (match t.min_snr_db with Some v -> Printf.sprintf ", snr>=%g" v | None -> "")
    (match t.min_lifetime_years with Some v -> Printf.sprintf ", life>=%gy" v | None -> "")
    (match t.localization with
    | Some l -> Printf.sprintf ", loc(N=%d, %d pts)" l.min_anchors (Array.length l.eval_points)
    | None -> "")
