(** Typed system requirements (the elaborated form of the pattern
    specification).

    Node references are template indices; {!Spec.Elaborate} (in the
    [spec] library) produces the same structure from the textual
    pattern language, and scenario builders construct it directly. *)

type hop_bound = { hop_sense : [ `Le | `Ge | `Eq ]; hops : int }

type route = {
  src : int;  (** Template index of the source. *)
  dst : int;  (** Template index of the destination. *)
  replicas : int;  (** Required number of mutually disjoint paths (>= 1). *)
  hop_bounds : hop_bound list;  (** Constraint (1e), possibly several. *)
  max_latency_s : float option;
      (** End-to-end delivery deadline; under TDMA a packet advances one
          hop per superframe, so this induces a hop upper bound (see
          {!Instance.effective_hop_bounds}). *)
}

type localization = {
  min_anchors : int;  (** Constraint (4b): N. *)
  loc_min_rss_dbm : float;  (** RSS threshold of (4a). *)
  eval_points : Geometry.Point.t array;  (** The mobile-node test grid. *)
}

type t = {
  routes : route list;
  min_rss_dbm : float option;  (** Constraint (2b) on every used link. *)
  min_snr_db : float option;  (** SNR variant of (2b). *)
  max_ber : float option;  (** BER variant, translated via the modulation. *)
  min_lifetime_years : float option;  (** Constraint (3a). *)
  localization : localization option;
}

val empty : t

val add_route :
  ?replicas:int ->
  ?hop_bounds:hop_bound list ->
  ?max_latency_s:float ->
  t ->
  src:int ->
  dst:int ->
  t
(** Append a route requirement ([has_path] pattern; [replicas > 1] is
    the [disjoint_links] pattern). *)

val validate : t -> nnodes:int -> (unit, string) result
(** Check index ranges, replica counts, thresholds. *)

val total_path_count : t -> int
(** Sum of replicas over all routes, i.e. |Q+| in Algorithm 1. *)

val pp : Format.formatter -> t -> unit
