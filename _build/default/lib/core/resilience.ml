type fault = Node_failure of int | Link_failure of int * int

type report = {
  fault : fault;
  surviving_routes : int;
  total_routes : int;
  lost_sources : int list;
}

let path_avoids fault path =
  match fault with
  | Node_failure n -> not (List.mem n path)
  | Link_failure (u, v) -> not (List.mem (u, v) (Netgraph.Path.edges path))

let route_survives (sol : Solution.t) ~req fault =
  let replicas =
    List.filter (fun rr -> rr.Solution.rr_req = req) sol.Solution.routes
  in
  replicas <> [] && List.exists (fun rr -> path_avoids fault rr.Solution.rr_path) replicas

let analyze inst (sol : Solution.t) fault =
  let nroutes = List.length inst.Instance.requirements.Requirements.routes in
  let routes = inst.Instance.requirements.Requirements.routes in
  let surviving = ref 0 and lost = ref [] in
  List.iteri
    (fun req (r : Requirements.route) ->
      if route_survives sol ~req fault then incr surviving
      else lost := r.Requirements.src :: !lost)
    routes;
  { fault; surviving_routes = !surviving; total_routes = nroutes; lost_sources = List.rev !lost }

let single_node_faults inst sol =
  let candidates =
    List.filter
      (fun i -> not (Template.node inst.Instance.template i).Template.fixed)
      sol.Solution.used_nodes
  in
  List.map (fun i -> analyze inst sol (Node_failure i)) candidates

let single_link_faults inst sol =
  List.map (fun (u, v) -> analyze inst sol (Link_failure (u, v))) sol.Solution.active_edges

let worst_case_survival reports =
  List.fold_left
    (fun acc r ->
      if r.total_routes = 0 then acc
      else Float.min acc (float_of_int r.surviving_routes /. float_of_int r.total_routes))
    1.0 reports

let pp_fault ppf = function
  | Node_failure n -> Format.fprintf ppf "node %d fails" n
  | Link_failure (u, v) -> Format.fprintf ppf "link (%d, %d) fails" u v

let pp_report ppf r =
  Format.fprintf ppf "%a: %d/%d routes survive%s" pp_fault r.fault r.surviving_routes
    r.total_routes
    (if r.lost_sources = [] then ""
     else
       Printf.sprintf " (lost sources: %s)"
         (String.concat ", " (List.map string_of_int r.lost_sources)))
