(** Post-synthesis fault-resiliency analysis.

    The paper motivates disjoint path replicas as "resiliency to network
    faults"; this module quantifies it on a synthesized solution: for
    every single-node (or single-link) failure, which sensors keep at
    least one intact route to their destination? *)

type fault = Node_failure of int | Link_failure of int * int

type report = {
  fault : fault;
  surviving_routes : int;  (** Routes with at least one intact replica. *)
  total_routes : int;
  lost_sources : int list;  (** Template indices of disconnected sources. *)
}

val route_survives : Solution.t -> req:int -> fault -> bool
(** Does requirement [req] keep at least one replica that avoids the
    failed element?  (The destination failing kills every replica;
    a failed source does too.) *)

val single_node_faults : Instance.t -> Solution.t -> report list
(** One report per used non-fixed node (relay/anchor failures; fixed
    sensors and sinks are not candidate faults — losing the base
    station trivially loses everything). *)

val single_link_faults : Instance.t -> Solution.t -> report list
(** One report per active link. *)

val worst_case_survival : report list -> float
(** Minimum fraction of surviving routes over all faults in the list
    ([1.0] for an empty list). *)

val pp_report : Format.formatter -> report -> unit
