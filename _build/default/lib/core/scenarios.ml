module Point = Geometry.Point
module Comp = Components.Component

type data_collection_params = {
  dc_width : float;
  dc_height : float;
  dc_rooms_x : int;
  dc_rooms_y : int;
  dc_sensors : int;
  dc_relay_grid : int * int;
  dc_replicas : int;
  dc_sensor_placement : [ `Rooms | `Perimeter ];
  dc_min_snr_db : float;
  dc_min_lifetime_years : float;
  dc_seed : int;
}

let default_data_collection =
  {
    dc_width = 55.;
    dc_height = 30.;
    dc_rooms_x = 4;
    dc_rooms_y = 3;
    dc_sensors = 10;
    dc_relay_grid = (5, 3);
    dc_replicas = 2;
    dc_sensor_placement = `Rooms;
    dc_min_snr_db = 20.;
    dc_min_lifetime_years = 5.;
    dc_seed = 42;
  }

(* Deterministic jitter so sensors are not exactly at room centres. *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !state /. float_of_int 0x3FFFFFFF

let clamp lo hi v = Float.max lo (Float.min hi v)

let perimeter_positions p =
  (* Evenly spaced along the outer walls, inset by 1.5 m. *)
  let inset = 1.5 in
  let w = p.dc_width -. (2. *. inset) and h = p.dc_height -. (2. *. inset) in
  let perimeter = 2. *. (w +. h) in
  List.init p.dc_sensors (fun i ->
      let t = float_of_int i /. float_of_int p.dc_sensors *. perimeter in
      let x, y =
        if t < w then (t, 0.)
        else if t < w +. h then (w, t -. w)
        else if t < (2. *. w) +. h then ((2. *. w) +. h -. t, h)
        else (0., perimeter -. t)
      in
      Point.make (inset +. x) (inset +. y))

let sensor_positions p =
  let rand = lcg p.dc_seed in
  let centers =
    Geometry.Building.room_centers ~width:p.dc_width ~height:p.dc_height ~rooms_x:p.dc_rooms_x
      ~rooms_y:p.dc_rooms_y
  in
  let ncenters = List.length centers in
  let arr = Array.of_list centers in
  List.init p.dc_sensors (fun i ->
      let c = arr.(i mod ncenters) in
      let jx = (rand () -. 0.5) *. 4. and jy = (rand () -. 0.5) *. 4. in
      Point.make
        (clamp 1. (p.dc_width -. 1.) (c.Point.x +. jx))
        (clamp 1. (p.dc_height -. 1.) (c.Point.y +. jy)))

let data_collection ?(objective = Objective.dollar) p =
  let place =
    match p.dc_sensor_placement with
    | `Rooms -> sensor_positions
    | `Perimeter -> perimeter_positions
  in
  let plan =
    Geometry.Building.office ~seed:p.dc_seed ~width:p.dc_width ~height:p.dc_height
      ~rooms_x:p.dc_rooms_x ~rooms_y:p.dc_rooms_y ()
  in
  let sensors = place p in
  let sink_loc = Point.make (p.dc_width /. 2.) (p.dc_height /. 2.) in
  let gx, gy = p.dc_relay_grid in
  let relays = Geometry.Building.candidate_grid plan ~nx:gx ~ny:gy in
  let nodes =
    List.mapi
      (fun i loc -> { Template.name = Printf.sprintf "s%d" i; role = Comp.Sensor; loc; fixed = true })
      sensors
    @ [ { Template.name = "sink"; role = Comp.Sink; loc = sink_loc; fixed = true } ]
    @ List.mapi
        (fun i loc ->
          { Template.name = Printf.sprintf "r%d" i; role = Comp.Relay; loc; fixed = false })
        relays
  in
  let template = Template.create nodes in
  let sink_idx = Option.get (Template.index_of template "sink") in
  let requirements =
    List.fold_left
      (fun acc i ->
        let src = Option.get (Template.index_of template (Printf.sprintf "s%d" i)) in
        Requirements.add_route ~replicas:p.dc_replicas acc ~src ~dst:sink_idx)
      Requirements.empty
      (List.init p.dc_sensors Fun.id)
  in
  let requirements =
    {
      requirements with
      Requirements.min_snr_db = Some p.dc_min_snr_db;
      min_lifetime_years =
        (if p.dc_min_lifetime_years > 0. then Some p.dc_min_lifetime_years else None);
    }
  in
  Instance.create ~template ~library:Components.Library.builtin
    ~channel:(Radio.Channel.multi_wall_2_4ghz plan)
    ~requirements ~objective ()

type localization_params = {
  loc_width : float;
  loc_height : float;
  loc_rooms_x : int;
  loc_rooms_y : int;
  loc_anchor_grid : int * int;
  loc_eval_grid : int * int;
  loc_min_anchors : int;
  loc_min_rss_dbm : float;
  loc_seed : int;
}

let default_localization =
  {
    loc_width = 60.;
    loc_height = 35.;
    loc_rooms_x = 4;
    loc_rooms_y = 3;
    loc_anchor_grid = (5, 4);
    loc_eval_grid = (6, 5);
    loc_min_anchors = 3;
    loc_min_rss_dbm = -80.;
    loc_seed = 42;
  }

let localization ?(objective = Objective.dollar) p =
  let plan =
    Geometry.Building.office ~seed:p.loc_seed ~width:p.loc_width ~height:p.loc_height
      ~rooms_x:p.loc_rooms_x ~rooms_y:p.loc_rooms_y ()
  in
  let ax, ay = p.loc_anchor_grid in
  let anchors = Geometry.Building.candidate_grid plan ~nx:ax ~ny:ay in
  let ex, ey = p.loc_eval_grid in
  let evals = Geometry.Building.candidate_grid plan ~nx:ex ~ny:ey in
  let nodes =
    List.mapi
      (fun i loc ->
        { Template.name = Printf.sprintf "a%d" i; role = Comp.Anchor; loc; fixed = false })
      anchors
  in
  let template = Template.create nodes in
  let requirements =
    {
      Requirements.empty with
      Requirements.localization =
        Some
          {
            Requirements.min_anchors = p.loc_min_anchors;
            loc_min_rss_dbm = p.loc_min_rss_dbm;
            eval_points = Array.of_list evals;
          };
    }
  in
  Instance.create ~template ~library:Components.Library.builtin
    ~channel:(Radio.Channel.multi_wall_2_4ghz plan)
    ~requirements ~objective ()

let scaled_data_collection ~total_nodes ~end_devices ?(replicas = 1) ?(seed = 42) () =
  if end_devices < 1 then invalid_arg "scaled_data_collection: no end devices";
  if total_nodes < end_devices + 2 then
    invalid_arg "scaled_data_collection: total_nodes too small";
  let relays = total_nodes - end_devices - 1 in
  (* Relay grid as square as possible; floor area grows with the node
     count so densities stay realistic. *)
  let gx = Int.max 2 (int_of_float (Float.ceil (Float.sqrt (float_of_int relays)))) in
  let gy = Int.max 1 ((relays + gx - 1) / gx) in
  (* Cells are sized so that most sensors cannot reach the sink in one
     hop within the link-quality budget: routing through relays (and
     hence the candidate-path pool) actually matters. *)
  let width = 20. *. float_of_int gx and height = 16. *. float_of_int gy in
  let p =
    {
      dc_width = width;
      dc_height = height;
      dc_rooms_x = Int.max 2 (gx / 2);
      dc_rooms_y = Int.max 2 (gy / 2);
      dc_sensors = end_devices;
      dc_relay_grid = (gx, gy);
      dc_replicas = replicas;
      dc_sensor_placement = `Perimeter;
      dc_min_snr_db = 20.;
      dc_min_lifetime_years = 0.;
      dc_seed = seed;
    }
  in
  data_collection p
