(** Ready-made experiment scenarios mirroring the paper's two design
    examples (§4.1 data collection, §4.2 localization), parameterized
    by size.

    Instance sizes are scaled relative to the paper (which used CPLEX
    on a workstation); the shapes of the templates — fixed sensors in
    rooms, one sink, a grid of relay candidates inside a multi-room
    office floor — follow §4.  See DESIGN.md §2 for the substitution
    notes. *)

type data_collection_params = {
  dc_width : float;  (** Floor width, metres (paper plan: 80). *)
  dc_height : float;  (** Floor height (paper plan: 45). *)
  dc_rooms_x : int;
  dc_rooms_y : int;
  dc_sensors : int;  (** Number of fixed sensors (paper: 35). *)
  dc_relay_grid : int * int;  (** Relay candidate grid (paper: ~100 candidates). *)
  dc_replicas : int;  (** Disjoint routes per sensor (paper: 2). *)
  dc_sensor_placement : [ `Rooms | `Perimeter ];
      (** [`Rooms]: jittered room centres; [`Perimeter]: evenly spaced
          along the outer walls (forces multi-hop routing, used by the
          scalability templates). *)
  dc_min_snr_db : float;  (** Paper: 20 dB. *)
  dc_min_lifetime_years : float;  (** Paper: 5 y. *)
  dc_seed : int;
}

val default_data_collection : data_collection_params
(** A laptop-scale instance: 60 m x 35 m, 4x3 rooms, 12 sensors, 6x4
    relay grid (~37 nodes total), 2 disjoint routes per sensor. *)

val data_collection :
  ?objective:Objective.t -> data_collection_params -> (Instance.t, string) result
(** Build the data-collection instance (default objective: dollar
    cost).  Sensors are placed round-robin in room centres (jittered
    deterministically by [dc_seed]), the sink in the middle of the
    floor, relay candidates on the grid. *)

type localization_params = {
  loc_width : float;
  loc_height : float;
  loc_rooms_x : int;
  loc_rooms_y : int;
  loc_anchor_grid : int * int;  (** Anchor candidate positions (paper: 150). *)
  loc_eval_grid : int * int;  (** Evaluation points (paper: 135). *)
  loc_min_anchors : int;  (** Paper: 3. *)
  loc_min_rss_dbm : float;  (** Paper: -80 dBm. *)
  loc_seed : int;
}

val default_localization : localization_params
(** Laptop-scale: 5x4 anchor candidates, 6x5 evaluation points. *)

val localization :
  ?objective:Objective.t -> localization_params -> (Instance.t, string) result
(** Build the localization instance (default objective: dollar cost).
    The network is star-shaped: no routes, only coverage constraints. *)

val scaled_data_collection :
  total_nodes:int -> end_devices:int -> ?replicas:int -> ?seed:int -> unit ->
  (Instance.t, string) result
(** The Table 3/4 template family: given a target total node count and
    number of routed end devices, derive a floor size and relay grid
    with roughly that many nodes.  Uses single routes
    ([replicas = 1]) by default, SNR >= 20 dB, no lifetime bound (as in
    the scalability study the objective is dollar cost). *)
