type params = { periods : int; max_retries : int; seed : int }

let default_params = { periods = 1000; max_retries = 8; seed = 7 }

type node_stats = {
  ns_node : int;
  ns_tx_attempts : int;
  ns_rx_packets : int;
  ns_charge_mas : float;
  ns_lifetime_years : float;
}

type t = {
  delivered : int;
  generated : int;
  delivery_ratio : float;
  mean_attempts_per_hop : float;
  node_stats : node_stats list;
  min_lifetime_years : float;
}

(* Per-hop packet success rate under the actual sizing. *)
let hop_psr inst (sol : Solution.t) i j =
  let tx =
    match Solution.device_of sol i with
    | Some c -> c.Components.Component.tx_power_dbm +. c.Components.Component.antenna_gain_dbi
    | None -> 0.
  in
  let rx =
    match Solution.device_of sol j with
    | Some c -> c.Components.Component.antenna_gain_dbi
    | None -> 0.
  in
  let rss = -.inst.Instance.pl.(i).(j) +. tx +. rx in
  let snr = rss -. inst.Instance.noise_dbm in
  Radio.Modulation.packet_success_rate inst.Instance.modulation ~snr_db:snr
    ~packet_bits:(Energy.Tdma.packet_bits inst.Instance.protocol)

let run ?(params = default_params) inst (sol : Solution.t) =
  let rng = Random.State.make [| params.seed |] in
  let proto = inst.Instance.protocol in
  let bits = Energy.Tdma.packet_bits proto in
  let tx_attempts = Hashtbl.create 16 and rx_packets = Hashtbl.create 16 in
  let bump tbl k n = Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  let delivered = ref 0 and generated = ref 0 in
  let hop_attempts = ref 0 and hops_crossed = ref 0 in
  (* Pre-compute per-route hop PSRs. *)
  let routes =
    List.map
      (fun rr ->
        List.map (fun (i, j) -> (i, j, hop_psr inst sol i j)) (Netgraph.Path.edges rr.Solution.rr_path))
      sol.Solution.routes
  in
  for _ = 1 to params.periods do
    List.iter
      (fun hops ->
        incr generated;
        let alive = ref true in
        List.iter
          (fun (i, j, psr) ->
            if !alive then begin
              (* Retry until success or retry budget exhausted. *)
              let attempts = ref 0 in
              let through = ref false in
              while (not !through) && !attempts < params.max_retries do
                incr attempts;
                if Random.State.float rng 1.0 < psr then through := true
              done;
              bump tx_attempts i !attempts;
              hop_attempts := !hop_attempts + !attempts;
              if !through then begin
                incr hops_crossed;
                bump rx_packets j 1
              end
              else alive := false
            end)
          hops;
        if !alive then incr delivered)
      routes
  done;
  let total_time = float_of_int params.periods *. proto.Energy.Tdma.report_period_s in
  let node_stats =
    List.map
      (fun (i, (c : Components.Component.t)) ->
        let ntx = Option.value ~default:0 (Hashtbl.find_opt tx_attempts i) in
        let nrx = Option.value ~default:0 (Hashtbl.find_opt rx_packets i) in
        let airtime = float_of_int bits /. (c.Components.Component.bit_rate_kbps *. 1000.) in
        let radio =
          (float_of_int ntx *. airtime *. c.Components.Component.radio_tx_ma)
          +. (float_of_int nrx *. airtime *. c.Components.Component.radio_rx_ma)
        in
        let awake_s = float_of_int (ntx + nrx) *. proto.Energy.Tdma.slot_s in
        let active = c.Components.Component.active_ma *. awake_s in
        let sleep =
          c.Components.Component.sleep_ua /. 1000. *. Float.max 0. (total_time -. awake_s)
        in
        let charge = radio +. active +. sleep in
        let avg_ma = charge /. total_time in
        let life =
          Energy.Lifetime.lifetime_s inst.Instance.battery ~avg_current_ma:avg_ma
          /. Energy.Lifetime.seconds_per_year
        in
        {
          ns_node = i;
          ns_tx_attempts = ntx;
          ns_rx_packets = nrx;
          ns_charge_mas = charge;
          ns_lifetime_years = life;
        })
      sol.Solution.devices
  in
  let min_lifetime =
    List.fold_left
      (fun acc ns ->
        let role = (Template.node inst.Instance.template ns.ns_node).Template.role in
        if role = Components.Component.Sink then acc else Float.min acc ns.ns_lifetime_years)
      infinity node_stats
  in
  {
    delivered = !delivered;
    generated = !generated;
    delivery_ratio =
      (if !generated = 0 then 1.0 else float_of_int !delivered /. float_of_int !generated);
    mean_attempts_per_hop =
      (if !hops_crossed = 0 then 1.0 else float_of_int !hop_attempts /. float_of_int !hops_crossed);
    node_stats;
    min_lifetime_years = min_lifetime;
  }

let check_against_guarantees inst (_sol : Solution.t) sim =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let etx_bound = Instance.etx_bound inst in
  (* 5% sampling-noise allowance on the empirical ETX. *)
  if sim.mean_attempts_per_hop > (etx_bound *. 1.05) +. 0.05 then
    err "empirical ETX %.3f exceeds the encoder bound %.3f" sim.mean_attempts_per_hop etx_bound;
  (match inst.Instance.requirements.Requirements.min_lifetime_years with
  | Some years ->
      if sim.min_lifetime_years < years *. 0.95 then
        err "simulated lifetime %.2f y below the %.2f y requirement" sim.min_lifetime_years years
  | None -> ());
  if sim.delivery_ratio < 0.5 then
    err "delivery ratio %.2f suspiciously low for admitted links" sim.delivery_ratio;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
