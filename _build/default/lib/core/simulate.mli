(** Monte-Carlo validation of a synthesized architecture.

    The paper lists "combination of our methods with simulation" as
    future work and positions the optimizer as providing system-level
    bounds that reduce the simulations needed.  This module closes that
    loop in the small: it replays the synthesized routes packet by
    packet against the stochastic link model (per-attempt success drawn
    from the packet-success-rate of each hop), and reports empirical
    delivery ratios, per-node charge and lifetime — which can then be
    compared against the MILP's analytical guarantees
    (conservative ETX bound, lifetime floor). *)

type params = {
  periods : int;  (** Reporting periods to simulate. *)
  max_retries : int;  (** Per-hop attempts before the packet is dropped. *)
  seed : int;
}

val default_params : params
(** 1000 periods, 8 retries, seed 7. *)

type node_stats = {
  ns_node : int;
  ns_tx_attempts : int;
  ns_rx_packets : int;
  ns_charge_mas : float;  (** Simulated charge over the whole run. *)
  ns_lifetime_years : float;  (** Battery / simulated average current. *)
}

type t = {
  delivered : int;
  generated : int;
  delivery_ratio : float;
  mean_attempts_per_hop : float;  (** Empirical ETX across all hops. *)
  node_stats : node_stats list;  (** Per used node. *)
  min_lifetime_years : float;  (** Over battery (non-sink) nodes. *)
}

val run : ?params:params -> Instance.t -> Solution.t -> t
(** Simulate periodic data collection over the solution's routes.
    Deterministic for a fixed [seed]. *)

val check_against_guarantees : Instance.t -> Solution.t -> t -> (unit, string list) result
(** The optimizer's bounds must be conservative: empirical ETX at most
    the encoder's {!Instance.etx_bound} (within sampling noise), and
    simulated lifetime at least the required minimum (when one was
    specified).  Violations indicate an encoder/model bug. *)
