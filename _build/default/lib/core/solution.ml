module BB = Milp.Branch_bound
module Path = Netgraph.Path
module Comp = Components.Component

type route_result = { rr_req : int; rr_replica : int; rr_path : Path.t }

type t = {
  mip : BB.result;
  used_nodes : int list;
  devices : (int * Comp.t) list;
  active_edges : (int * int) list;
  routes : route_result list;
  dollar_cost : float;
  node_count : int;
  avg_current_ma : (int * float) list;
  lifetimes_years : (int * float) list;
  reachable_counts : int array;
}

let device_of sol i = List.assoc_opt i sol.devices

let is_sink inst i =
  (Template.node inst.Instance.template i).Template.role = Comp.Sink

let lifetime_stats ?(exclude_sinks = true) inst sol agg =
  let values =
    List.filter_map
      (fun (i, y) -> if exclude_sinks && is_sink inst i then None else Some y)
      sol.lifetimes_years
  in
  match values with [] -> infinity | _ -> agg values

let avg_lifetime_years ?exclude_sinks inst sol =
  lifetime_stats ?exclude_sinks inst sol (fun vs ->
      List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs))

let min_lifetime_years ?exclude_sinks inst sol =
  lifetime_stats ?exclude_sinks inst sol (fun vs -> List.fold_left Float.min infinity vs)

let avg_reachable sol =
  let n = Array.length sol.reachable_counts in
  if n = 0 then 0.
  else Array.fold_left (fun a c -> a +. float_of_int c) 0. sol.reachable_counts /. float_of_int n

let total_avg_current_ma sol = List.fold_left (fun acc (_, c) -> acc +. c) 0. sol.avg_current_ma

(* ------------------------------------------------------------------ *)
(* Shared extraction: everything except the routes comes from the
   encoding context.                                                   *)
(* ------------------------------------------------------------------ *)

let rss_of inst sol i j =
  let tx =
    match device_of sol i with
    | Some c -> c.Comp.tx_power_dbm +. c.Comp.antenna_gain_dbi
    | None -> 0.
  in
  let rx = match device_of sol j with Some c -> c.Comp.antenna_gain_dbi | None -> 0. in
  -.inst.Instance.pl.(i).(j) +. tx +. rx

(* Physics-level per-node energy from the extracted routes. *)
let energy_metrics inst devices routes =
  let proto = inst.Instance.protocol in
  let bits = Energy.Tdma.packet_bits proto in
  let tx_links = Hashtbl.create 16 and rx_links = Hashtbl.create 16 in
  let push tbl node link =
    Hashtbl.replace tbl node (link :: Option.value ~default:[] (Hashtbl.find_opt tbl node))
  in
  let sol_stub = (* device lookup shim used before the record exists *)
    fun i -> List.assoc_opt i devices
  in
  let rss i j =
    let tx =
      match sol_stub i with Some c -> c.Comp.tx_power_dbm +. c.Comp.antenna_gain_dbi | None -> 0.
    in
    let rx = match sol_stub j with Some c -> c.Comp.antenna_gain_dbi | None -> 0. in
    -.inst.Instance.pl.(i).(j) +. tx +. rx
  in
  List.iter
    (fun rr ->
      List.iter
        (fun (i, j) ->
          let snr = rss i j -. inst.Instance.noise_dbm in
          let etx =
            Radio.Link_budget.etx ~modulation:inst.Instance.modulation ~packet_bits:bits
              ~snr_db:snr ()
          in
          let airtime c = float_of_int bits /. (c.Comp.bit_rate_kbps *. 1000.) in
          (match sol_stub i with
          | Some c ->
              push tx_links i { Energy.Lifetime.etx; airtime_s = airtime c }
          | None -> ());
          match sol_stub j with
          | Some c -> push rx_links j { Energy.Lifetime.etx; airtime_s = airtime c }
          | None -> ())
        (Path.edges rr.rr_path))
    routes;
  List.map
    (fun (i, c) ->
      let tx = Option.value ~default:[] (Hashtbl.find_opt tx_links i) in
      let rx = Option.value ~default:[] (Hashtbl.find_opt rx_links i) in
      let q = Energy.Lifetime.node_charge_per_period_mas c proto ~tx_links:tx ~rx_links:rx in
      let avg_ma = q /. proto.Energy.Tdma.report_period_s in
      let life =
        Energy.Lifetime.lifetime_s inst.Instance.battery ~avg_current_ma:avg_ma
        /. Energy.Lifetime.seconds_per_year
      in
      (i, avg_ma, life))
    devices

let reachability inst devices =
  match inst.Instance.requirements.Requirements.localization with
  | None -> [||]
  | Some loc ->
      let anchors = Template.find_role inst.Instance.template Comp.Anchor in
      Array.map
        (fun pt ->
          List.length
            (List.filter
               (fun i ->
                 match List.assoc_opt i devices with
                 | None -> false
                 | Some c ->
                     let pl =
                       Radio.Channel.path_loss inst.Instance.channel
                         (Template.node inst.Instance.template i).Template.loc pt
                     in
                     -.pl +. c.Comp.tx_power_dbm +. c.Comp.antenna_gain_dbi
                     >= loc.Requirements.loc_min_rss_dbm)
               anchors))
        loc.Requirements.eval_points

let extract_base ctx (mip : BB.result) routes =
  let inst = Encode_common.instance ctx in
  let n = Template.nnodes inst.Instance.template in
  let bin v = BB.value mip v > 0.5 in
  let used = ref [] in
  for i = n - 1 downto 0 do
    if bin (Encode_common.node_use_var ctx i) then used := i :: !used
  done;
  let devices =
    List.filter_map
      (fun i ->
        let chosen =
          List.find_opt (fun (_, v) -> bin v) (Encode_common.sizing_vars ctx i)
        in
        Option.map (fun (c, _) -> (i, c)) chosen)
      !used
  in
  let active_edges =
    List.sort compare
      (List.filter_map
         (fun ((i, j), v) -> if bin v then Some (i, j) else None)
         (Encode_common.edge_vars ctx))
  in
  let dollar = List.fold_left (fun acc (_, c) -> acc +. c.Comp.cost) 0. devices in
  let energy = energy_metrics inst devices routes in
  {
    mip;
    used_nodes = !used;
    devices;
    active_edges;
    routes;
    dollar_cost = dollar;
    node_count = List.length !used;
    avg_current_ma = List.map (fun (i, ma, _) -> (i, ma)) energy;
    lifetimes_years = List.map (fun (i, _, y) -> (i, y)) energy;
    reachable_counts = reachability inst devices;
  }

let of_approx (enc : Approx_encoding.t) mip =
  if mip.BB.solution = None then invalid_arg "Solution.of_approx: no incumbent";
  let bin v = BB.value mip v > 0.5 in
  let routes =
    List.concat_map
      (fun (sel : Approx_encoding.route_selection) ->
        Array.to_list
          (Array.mapi
             (fun r svars ->
               let k = ref (-1) in
               Array.iteri (fun idx v -> if bin v then k := idx) svars;
               if !k < 0 then
                 invalid_arg "Solution.of_approx: replica slot without selected candidate";
               {
                 rr_req = sel.Approx_encoding.req_index;
                 rr_replica = r;
                 rr_path = sel.Approx_encoding.pool.(!k);
               })
             sel.Approx_encoding.slots))
      enc.Approx_encoding.selections
  in
  extract_base enc.Approx_encoding.ctx mip routes

let of_full (enc : Full_encoding.t) mip =
  if mip.BB.solution = None then invalid_arg "Solution.of_full: no incumbent";
  let bin v = BB.value mip v > 0.5 in
  let inst = Encode_common.instance enc.Full_encoding.ctx in
  let routes =
    List.map
      (fun (pv : Full_encoding.path_vars) ->
        let succ = Hashtbl.create 8 in
        List.iter
          (fun ((i, j), v) -> if bin v then Hashtbl.replace succ i j)
          pv.Full_encoding.edge_of_var;
        let route = List.nth inst.Instance.requirements.Requirements.routes pv.Full_encoding.req_index in
        let rec follow acc node guard =
          if guard > Template.nnodes inst.Instance.template then
            invalid_arg "Solution.of_full: cyclic path extraction"
          else if node = route.Requirements.dst then List.rev (node :: acc)
          else
            match Hashtbl.find_opt succ node with
            | Some next -> follow (node :: acc) next (guard + 1)
            | None -> invalid_arg "Solution.of_full: broken path"
        in
        {
          rr_req = pv.Full_encoding.req_index;
          rr_replica = pv.Full_encoding.replica;
          rr_path = follow [] route.Requirements.src 0;
        })
      enc.Full_encoding.paths
  in
  extract_base enc.Full_encoding.ctx mip routes

(* ------------------------------------------------------------------ *)
(* Independent validation                                              *)
(* ------------------------------------------------------------------ *)

let check inst sol =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let reqs = inst.Instance.requirements in
  let routes_arr = Array.of_list reqs.Requirements.routes in
  (* Routes. *)
  List.iter
    (fun rr ->
      let r = routes_arr.(rr.rr_req) in
      if not (Path.is_valid inst.Instance.graph rr.rr_path) then
        err "route %d/%d: invalid path" rr.rr_req rr.rr_replica;
      if Path.source rr.rr_path <> Some r.Requirements.src then
        err "route %d/%d: wrong source" rr.rr_req rr.rr_replica;
      if Path.destination rr.rr_path <> Some r.Requirements.dst then
        err "route %d/%d: wrong destination" rr.rr_req rr.rr_replica;
      List.iter
        (fun { Requirements.hop_sense; hops } ->
          let h = Path.length rr.rr_path in
          let ok =
            match hop_sense with `Le -> h <= hops | `Ge -> h >= hops | `Eq -> h = hops
          in
          if not ok then err "route %d/%d: hop bound violated (%d)" rr.rr_req rr.rr_replica h)
        (Instance.effective_hop_bounds inst r);
      (* Nodes on the path must be used with a device. *)
      List.iter
        (fun node ->
          if device_of sol node = None then
            err "route %d/%d: node %d lacks a device" rr.rr_req rr.rr_replica node)
        rr.rr_path)
    sol.routes;
  (* Replica counts and disjointness. *)
  Array.iteri
    (fun idx (r : Requirements.route) ->
      let members = List.filter (fun rr -> rr.rr_req = idx) sol.routes in
      if List.length members <> r.Requirements.replicas then
        err "route %d: %d replicas extracted, %d required" idx (List.length members)
          r.Requirements.replicas;
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                if not (Path.edge_disjoint a.rr_path b.rr_path) then
                  err "route %d: replicas %d and %d share a link" idx a.rr_replica b.rr_replica)
              rest;
            pairs rest
      in
      pairs members)
    routes_arr;
  (* Link quality on every link of every route. *)
  let floor = inst.Instance.noise_dbm +. Instance.min_snr_db inst in
  List.iter
    (fun rr ->
      List.iter
        (fun (i, j) ->
          let rss = rss_of inst sol i j in
          if rss < floor -. 1e-6 then
            err "link (%d, %d): RSS %.1f dBm below floor %.1f" i j rss floor)
        (Path.edges rr.rr_path))
    sol.routes;
  (* Lifetime. *)
  (match reqs.Requirements.min_lifetime_years with
  | None -> ()
  | Some years ->
      List.iter
        (fun (i, y) ->
          if (not (is_sink inst i)) && y < years -. 1e-9 then
            err "node %d: lifetime %.2f y below requirement %.2f y" i y years)
        sol.lifetimes_years);
  (* Localization coverage. *)
  (match reqs.Requirements.localization with
  | None -> ()
  | Some loc ->
      Array.iteri
        (fun j c ->
          if c < loc.Requirements.min_anchors then
            err "eval point %d: covered by %d anchors, %d required" j c
              loc.Requirements.min_anchors)
        sol.reachable_counts);
  (* Sizing / fixed nodes. *)
  Array.iteri
    (fun i (n : Template.node) ->
      if n.Template.fixed && not (List.mem i sol.used_nodes) then
        err "fixed node %d (%s) unused" i n.Template.name)
    (Template.nodes inst.Instance.template);
  List.iter
    (fun (i, (c : Comp.t)) ->
      if c.Comp.role <> (Template.node inst.Instance.template i).Template.role then
        err "node %d: device role mismatch" i)
    sol.devices;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp_summary inst ppf sol =
  Format.fprintf ppf
    "@[<v>status: %s@ nodes: %d@ cost: $%.0f@ avg lifetime: %.2f y@ avg current: %.3f mA@ routes: %d@ reachable: %.2f@]"
    (Milp.Status.mip_status_to_string sol.mip.BB.status)
    sol.node_count sol.dollar_cost (avg_lifetime_years inst sol) (total_avg_current_ma sol)
    (List.length sol.routes) (avg_reachable sol)
