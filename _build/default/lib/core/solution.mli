(** Typed solutions extracted from a solved MILP, with physics-level
    metrics recomputed from first principles (not from solver values) —
    the paper's "correctness guarantees" are checked against the radio
    and energy models, not just against the encoding. *)

type route_result = {
  rr_req : int;  (** Requirement (route) index. *)
  rr_replica : int;
  rr_path : Netgraph.Path.t;
}

type t = {
  mip : Milp.Branch_bound.result;
  used_nodes : int list;  (** Template indices, ascending. *)
  devices : (int * Components.Component.t) list;  (** Node -> device. *)
  active_edges : (int * int) list;
  routes : route_result list;
  dollar_cost : float;
  node_count : int;
  avg_current_ma : (int * float) list;  (** Per used node. *)
  lifetimes_years : (int * float) list;  (** Per used node. *)
  reachable_counts : int array;
      (** Localization: per evaluation point, # used anchors whose
          recomputed RSS meets the threshold. *)
}

val device_of : t -> int -> Components.Component.t option

val avg_lifetime_years : ?exclude_sinks:bool -> Instance.t -> t -> float
(** Mean lifetime over used battery nodes ([exclude_sinks] defaults to
    [true]: base stations are mains-powered). *)

val min_lifetime_years : ?exclude_sinks:bool -> Instance.t -> t -> float

val avg_reachable : t -> float
(** Mean of [reachable_counts] (0 when no localization requirement). *)

val total_avg_current_ma : t -> float

val of_approx : Approx_encoding.t -> Milp.Branch_bound.result -> t
(** Extract from a solved approximate encoding.
    @raise Invalid_argument if the result carries no solution. *)

val of_full : Full_encoding.t -> Milp.Branch_bound.result -> t
(** Extract from a solved full encoding. *)

val check : Instance.t -> t -> (unit, string list) result
(** Independent validation: route well-formedness and endpoints,
    replica disjointness, per-link RSS floor, lifetime requirement,
    localization coverage, sizing consistency.  Returns all violations
    found. *)

val pp_summary : Instance.t -> Format.formatter -> t -> unit
