type strategy = Full_enum | Approx of { kstar : int; loc_kstar : int }

let approx ?(kstar = 10) ?(loc_kstar = 20) () = Approx { kstar; loc_kstar }

type stats = { nvars : int; nconstrs : int; encode_time_s : float; solve_time_s : float }

type outcome = {
  solution : Solution.t option;
  status : Milp.Status.mip_status;
  stats : stats;
  mip : Milp.Branch_bound.result;
  model : Milp.Model.t;
}

type encoding = E_full of Full_encoding.t | E_approx of Approx_encoding.t

let ctx_of = function
  | E_full e -> e.Full_encoding.ctx
  | E_approx e -> e.Approx_encoding.ctx

let encode inst = function
  | Full_enum -> Ok (E_full (Full_encoding.encode inst))
  | Approx { kstar; loc_kstar } -> (
      match Approx_encoding.encode ~kstar ~loc_kstar inst with
      | Ok e -> Ok (E_approx e)
      | Error e -> Error e)

let encode_size inst strategy =
  match encode inst strategy with
  | Error e -> Error e
  | Ok enc ->
      let m = Encode_common.model (ctx_of enc) in
      Ok (Milp.Model.nvars m, Milp.Model.nconstrs m)

let run ?(options = Milp.Branch_bound.default_options) inst strategy =
  let t0 = Unix.gettimeofday () in
  match encode inst strategy with
  | Error e -> Error e
  | Ok enc ->
      let t1 = Unix.gettimeofday () in
      let model = Encode_common.model (ctx_of enc) in
      let mip = Milp.Branch_bound.solve ~options model in
      let t2 = Unix.gettimeofday () in
      let solution =
        match mip.Milp.Branch_bound.solution with
        | None -> None
        | Some _ -> (
            match enc with
            | E_full e -> Some (Solution.of_full e mip)
            | E_approx e -> Some (Solution.of_approx e mip))
      in
      Ok
        {
          solution;
          status = mip.Milp.Branch_bound.status;
          stats =
            {
              nvars = Milp.Model.nvars model;
              nconstrs = Milp.Model.nconstrs model;
              encode_time_s = t1 -. t0;
              solve_time_s = t2 -. t1;
            };
          mip;
          model;
        }

let run_exn ?options inst strategy =
  match run ?options inst strategy with
  | Error e -> failwith ("Solve.run_exn: encoding failed: " ^ e)
  | Ok { solution = None; status; _ } ->
      failwith
        ("Solve.run_exn: no solution (" ^ Milp.Status.mip_status_to_string status ^ ")")
  | Ok { solution = Some s; _ } -> s
