type node = {
  name : string;
  role : Components.Component.role;
  loc : Geometry.Point.t;
  fixed : bool;
}

type t = { nodes : node array; by_name : (string, int) Hashtbl.t }

let create node_list =
  let nodes = Array.of_list node_list in
  let by_name = Hashtbl.create (Array.length nodes) in
  Array.iteri
    (fun i n ->
      if n.name = "" then invalid_arg "Template.create: empty node name";
      if Hashtbl.mem by_name n.name then
        invalid_arg ("Template.create: duplicate node name " ^ n.name);
      Hashtbl.add by_name n.name i)
    nodes;
  { nodes; by_name }

let nnodes t = Array.length t.nodes

let node t i = t.nodes.(i)

let nodes t = t.nodes

let index_of t name = Hashtbl.find_opt t.by_name name

let find_role t role =
  let acc = ref [] in
  for i = Array.length t.nodes - 1 downto 0 do
    if t.nodes.(i).role = role then acc := i :: !acc
  done;
  !acc

let fixed_indices t =
  let acc = ref [] in
  for i = Array.length t.nodes - 1 downto 0 do
    if t.nodes.(i).fixed then acc := i :: !acc
  done;
  !acc

let locations t = Array.map (fun n -> n.loc) t.nodes

(* Role-based link filtering: data flows from sensors through relays
   (and anchors, which can also route in mixed deployments) into sinks.
   A sensor only transmits; a sink only receives. *)
let link_allowed (src : node) (dst : node) =
  let open Components.Component in
  match (src.role, dst.role) with
  | _, Sensor -> false
  | Sink, _ -> false
  | (Sensor | Relay | Anchor), (Relay | Anchor | Sink) -> true

let candidate_links ?(max_path_loss = 130.) t ~pl =
  let n = nnodes t in
  if Array.length pl <> n then invalid_arg "Template.candidate_links: pl size mismatch";
  let g = Netgraph.Digraph.create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && link_allowed t.nodes.(i) t.nodes.(j) && pl.(i).(j) <= max_path_loss then
        Netgraph.Digraph.add_edge g ~w:pl.(i).(j) i j
    done
  done;
  g

let pp ppf t =
  let count role = List.length (find_role t role) in
  Format.fprintf ppf "template(%d nodes: %d sensors, %d relays, %d sinks, %d anchors)"
    (nnodes t)
    (count Components.Component.Sensor)
    (count Components.Component.Relay)
    (count Components.Component.Sink)
    (count Components.Component.Anchor)
