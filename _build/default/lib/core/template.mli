(** Network templates: the fixed node set with configurable links
    (paper §2).

    A template assigns every candidate node a name, a role, a location
    on the floor plan, and a [fixed] flag (fixed nodes — e.g. the
    sensors and the base station of the data-collection example — must
    appear in every configuration; non-fixed nodes are candidate
    locations the optimizer may or may not use). *)

type node = {
  name : string;
  role : Components.Component.role;
  loc : Geometry.Point.t;
  fixed : bool;
}

type t

val create : node list -> t
(** @raise Invalid_argument on duplicate or empty node names. *)

val nnodes : t -> int

val node : t -> int -> node
(** Node by index (0-based). *)

val nodes : t -> node array

val index_of : t -> string -> int option
(** Index of a node by name. *)

val find_role : t -> Components.Component.role -> int list
(** Indices of all nodes with a role, ascending. *)

val fixed_indices : t -> int list

val locations : t -> Geometry.Point.t array

val candidate_links :
  ?max_path_loss:float ->
  t ->
  pl:float array array ->
  Netgraph.Digraph.t
(** Directed candidate-link graph over template nodes, edge weight =
    path loss.  Links with loss above [max_path_loss] (default: the
    best-case link budget would still be below any plausible
    sensitivity, 130 dB) are omitted; sensors never act as routers, so
    edges into a sensor are only created from nowhere — concretely,
    sensor nodes get outgoing edges but no incoming ones, and sink
    nodes get incoming edges but no outgoing ones. *)

val pp : Format.formatter -> t -> unit
