lib/energy/csma.ml: Components Lifetime List
