lib/energy/csma.mli: Components Lifetime
