lib/energy/lifetime.ml: Components Float List Tdma
