lib/energy/lifetime.mli: Components Tdma
