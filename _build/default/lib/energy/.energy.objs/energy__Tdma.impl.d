lib/energy/tdma.ml: Format
