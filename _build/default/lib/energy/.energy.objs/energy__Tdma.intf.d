lib/energy/tdma.mli: Format
