type t = {
  cca_s : float;
  mean_backoff_s : float;
  idle_listen_fraction : float;
  collision_probability : float;
}

let make ?(cca_s = 128e-6) ?(mean_backoff_s = 1.2e-3) ?(idle_listen_fraction = 0.005)
    ?(collision_probability = 0.05) () =
  if idle_listen_fraction < 0. || idle_listen_fraction > 1. then
    invalid_arg "Csma.make: idle_listen_fraction outside [0, 1]";
  if collision_probability < 0. || collision_probability >= 1. then
    invalid_arg "Csma.make: collision_probability outside [0, 1)";
  if cca_s < 0. || mean_backoff_s < 0. then invalid_arg "Csma.make: negative duration";
  { cca_s; mean_backoff_s; idle_listen_fraction; collision_probability }

let attempts t ~etx = etx /. (1. -. t.collision_probability)

let tx_charge_mas t (c : Components.Component.t) ~etx ~airtime_s =
  let n = attempts t ~etx in
  let listen = (t.cca_s +. t.mean_backoff_s) *. c.Components.Component.radio_rx_ma in
  let send = airtime_s *. c.Components.Component.radio_tx_ma in
  n *. (listen +. send)

let rx_charge_mas t (c : Components.Component.t) ~etx ~airtime_s =
  attempts t ~etx *. airtime_s *. c.Components.Component.radio_rx_ma

let node_charge_per_period_mas t (c : Components.Component.t) ~period_s ~tx_links ~rx_links =
  let radio =
    List.fold_left
      (fun acc (l : Lifetime.link_tx) ->
        acc +. tx_charge_mas t c ~etx:l.Lifetime.etx ~airtime_s:l.Lifetime.airtime_s)
      0. tx_links
    +. List.fold_left
         (fun acc (l : Lifetime.link_tx) ->
           acc +. rx_charge_mas t c ~etx:l.Lifetime.etx ~airtime_s:l.Lifetime.airtime_s)
         0. rx_links
  in
  let idle = t.idle_listen_fraction *. period_s *. c.Components.Component.radio_rx_ma in
  let sleep =
    (1. -. t.idle_listen_fraction) *. period_s *. (c.Components.Component.sleep_ua /. 1000.)
  in
  radio +. idle +. sleep
