(** Contention-based (CSMA/CA) protocol energy model.

    The paper notes that "similar constraints can be used to compute
    [the energy] for contention-based protocols"; this module provides
    that model: unslotted CSMA/CA in the style of IEEE 802.15.4, where
    each transmission attempt pays clear-channel assessment (CCA) and a
    random backoff, collisions add retries on top of the channel-error
    retries, and nodes must idle-listen instead of sleeping on a
    schedule. *)

type t = {
  cca_s : float;  (** Clear-channel assessment duration per attempt. *)
  mean_backoff_s : float;  (** Average random backoff per attempt. *)
  idle_listen_fraction : float;
      (** Fraction of the period the radio listens for traffic
          (low-power-listening duty cycle), in [0, 1]. *)
  collision_probability : float;  (** Per-attempt collision probability. *)
}

val make :
  ?cca_s:float ->
  ?mean_backoff_s:float ->
  ?idle_listen_fraction:float ->
  ?collision_probability:float ->
  unit ->
  t
(** Defaults: 128 µs CCA, 1.2 ms mean backoff (802.15.4 BE=3), 0.5%%
    idle-listening duty cycle, 5%% collisions.
    @raise Invalid_argument on out-of-range probabilities. *)

val attempts : t -> etx:float -> float
(** Expected transmission attempts including collisions:
    [etx / (1 - p_coll)]. *)

val tx_charge_mas : t -> Components.Component.t -> etx:float -> airtime_s:float -> float
(** Charge to push one packet through a link: attempts × (backoff CCA
    listening at RX current + payload at TX current). *)

val node_charge_per_period_mas :
  t ->
  Components.Component.t ->
  period_s:float ->
  tx_links:Lifetime.link_tx list ->
  rx_links:Lifetime.link_tx list ->
  float
(** Like {!Lifetime.node_charge_per_period_mas} but under CSMA: adds
    idle listening at the RX current for the configured duty cycle and
    collision-inflated retransmissions.  Always at least the TDMA charge
    for the same traffic. *)
