type battery = { voltage_v : float; capacity_mah : float }

let default_battery = { voltage_v = 3.0; capacity_mah = 1500. }

type link_tx = { etx : float; airtime_s : float }

let seconds_per_year = 365.25 *. 24. *. 3600.

let tx_charge_mas (c : Components.Component.t) l = l.etx *. l.airtime_s *. c.Components.Component.radio_tx_ma

let rx_charge_mas (c : Components.Component.t) l = l.etx *. l.airtime_s *. c.Components.Component.radio_rx_ma

let node_charge_per_period_mas (c : Components.Component.t) (proto : Tdma.t) ~tx_links ~rx_links =
  let radio =
    List.fold_left (fun acc l -> acc +. tx_charge_mas c l) 0. tx_links
    +. List.fold_left (fun acc l -> acc +. rx_charge_mas c l) 0. rx_links
  in
  let awake_slots = List.length tx_links + List.length rx_links in
  let awake_s = float_of_int awake_slots *. proto.Tdma.slot_s in
  let active = c.Components.Component.active_ma *. awake_s in
  let sleep_s = Float.max 0. (proto.Tdma.report_period_s -. awake_s) in
  let sleep = c.Components.Component.sleep_ua /. 1000. *. sleep_s in
  radio +. active +. sleep

let lifetime_s b ~avg_current_ma =
  if avg_current_ma <= 0. then infinity else b.capacity_mah *. 3600. /. avg_current_ma

let lifetime_years c proto b ~tx_links ~rx_links =
  let q = node_charge_per_period_mas c proto ~tx_links ~rx_links in
  let avg_ma = q /. proto.Tdma.report_period_s in
  lifetime_s b ~avg_current_ma:avg_ma /. seconds_per_year
