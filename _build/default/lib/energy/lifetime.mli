(** Node energy accounting and lifetime (paper constraints (3a)–(3b)).

    We account charge (mA·s) per reporting period rather than per
    superframe: every TX/RX of a packet costs its ETX-scaled airtime at
    the radio current, awake slots cost the active current, and the rest
    of the period sleeps.  Lifetime is battery charge divided by average
    current.  This is the same arithmetic as the paper's per-superframe
    formulation with the superframe aligned to the reporting period. *)

type battery = { voltage_v : float; capacity_mah : float }

val default_battery : battery
(** Two 1.5 V AA cells of 1500 mAh (the paper's assumption): 3 V,
    1500 mAh. *)

type link_tx = {
  etx : float;  (** Expected transmissions (>= 1). *)
  airtime_s : float;  (** Time on air of one packet attempt. *)
}

val tx_charge_mas : Components.Component.t -> link_tx -> float
(** Charge (mA·s) drawn by the radio to push one packet through the
    link: [etx * airtime * radio_tx_ma].  Equation (3b). *)

val rx_charge_mas : Components.Component.t -> link_tx -> float
(** Charge to receive it: [etx * airtime * radio_rx_ma] (the receiver
    listens for every transmission attempt). *)

val node_charge_per_period_mas :
  Components.Component.t ->
  Tdma.t ->
  tx_links:link_tx list ->
  rx_links:link_tx list ->
  float
(** Total charge per reporting period: radio TX/RX for all routed
    packets + active current in the awake slots (one slot per TX and
    one per RX) + sleep current for the remainder of the period. *)

val lifetime_s : battery -> avg_current_ma:float -> float
(** [capacity / current], in seconds; [infinity] at zero current. *)

val lifetime_years :
  Components.Component.t ->
  Tdma.t ->
  battery ->
  tx_links:link_tx list ->
  rx_links:link_tx list ->
  float
(** End-to-end helper: node lifetime in years under periodic traffic. *)

val seconds_per_year : float
