type t = {
  slots_per_frame : int;
  slot_s : float;
  packet_bytes : int;
  report_period_s : float;
}

let make ?(slots_per_frame = 16) ?(slot_s = 1e-3) ?(packet_bytes = 50)
    ?(report_period_s = 30.) () =
  if slots_per_frame <= 0 then invalid_arg "Tdma.make: slots_per_frame <= 0";
  if slot_s <= 0. then invalid_arg "Tdma.make: slot_s <= 0";
  if packet_bytes <= 0 then invalid_arg "Tdma.make: packet_bytes <= 0";
  if report_period_s <= 0. then invalid_arg "Tdma.make: report_period_s <= 0";
  { slots_per_frame; slot_s; packet_bytes; report_period_s }

let superframe_s t = float_of_int t.slots_per_frame *. t.slot_s

let packet_bits t = 8 * t.packet_bytes

let packet_airtime_s t ~bit_rate_kbps =
  if bit_rate_kbps <= 0. then invalid_arg "Tdma.packet_airtime_s: non-positive bit rate";
  float_of_int (packet_bits t) /. (bit_rate_kbps *. 1000.)

let pp ppf t =
  Format.fprintf ppf "tdma(%d slots x %gms, %dB packets, period %gs)" t.slots_per_frame
    (t.slot_s *. 1000.) t.packet_bytes t.report_period_s
