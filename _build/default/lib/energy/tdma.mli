(** Collision-free TDMA protocol model (paper §2, energy constraints).

    Nodes wake only in dedicated slots for sending/receiving; a
    superframe has [n] slots of [slot_s] seconds each.  Application
    traffic is periodic: each sensor generates one packet every
    [report_period_s] seconds, which travels along its route, costing
    one TX slot and one RX slot per hop per period. *)

type t = {
  slots_per_frame : int;
  slot_s : float;  (** Slot duration in seconds. *)
  packet_bytes : int;
  report_period_s : float;  (** Data-generation period of every sensor. *)
}

val make :
  ?slots_per_frame:int ->
  ?slot_s:float ->
  ?packet_bytes:int ->
  ?report_period_s:float ->
  unit ->
  t
(** Defaults mirror the paper's data-collection example: 16 slots of
    1 ms, 50-byte packets, 30 s reporting period.
    @raise Invalid_argument on non-positive values. *)

val superframe_s : t -> float
(** [slots_per_frame * slot_s]. *)

val packet_bits : t -> int

val packet_airtime_s : t -> bit_rate_kbps:float -> float
(** Time on air of one packet at the given rate. *)

val pp : Format.formatter -> t -> unit
