lib/geometry/building.ml: Floorplan List Point Segment
