lib/geometry/building.mli: Floorplan Point
