lib/geometry/floorplan.ml: Format List Point Segment String
