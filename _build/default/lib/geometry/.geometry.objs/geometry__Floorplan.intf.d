lib/geometry/floorplan.mli: Format Point Segment
