lib/geometry/svg.ml: Buffer Floorplan In_channel List Out_channel Point Printf Result Segment String
