lib/geometry/svg.mli: Floorplan Point Segment
