(* Small deterministic LCG so the generated plans do not depend on the
   global Random state. *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !state /. float_of_int 0x3FFFFFFF

let wall material a b = { Floorplan.seg = Segment.make a b; material }

(* A partition from [a] to [b] with a door gap of [door] metres placed
   at fraction [frac] of its length: two wall segments. *)
let partition_with_door material a b ~door ~frac =
  let len = Point.dist a b in
  if door >= len then []
  else begin
    let usable = len -. door in
    let start = frac *. usable in
    let t0 = start /. len and t1 = (start +. door) /. len in
    let p0 = Point.lerp a b t0 and p1 = Point.lerp a b t1 in
    [ wall material a p0; wall material p1 b ]
  end

let office ?(seed = 42) ?(door_width = 1.2) ?(outer = Floorplan.Concrete)
    ?(inner = Floorplan.Drywall) ~width ~height ~rooms_x ~rooms_y () =
  if rooms_x <= 0 || rooms_y <= 0 then invalid_arg "Building.office: non-positive room count";
  let rand = lcg seed in
  let p = Point.make in
  let outer_walls =
    [
      wall outer (p 0. 0.) (p width 0.);
      wall outer (p width 0.) (p width height);
      wall outer (p width height) (p 0. height);
      wall outer (p 0. height) (p 0. 0.);
    ]
  in
  let cell_w = width /. float_of_int rooms_x in
  let cell_h = height /. float_of_int rooms_y in
  let inner_walls = ref [] in
  (* Vertical partitions between horizontally adjacent rooms. *)
  for i = 1 to rooms_x - 1 do
    for j = 0 to rooms_y - 1 do
      let x = float_of_int i *. cell_w in
      let y0 = float_of_int j *. cell_h and y1 = float_of_int (j + 1) *. cell_h in
      let frac = 0.15 +. (0.7 *. rand ()) in
      inner_walls :=
        partition_with_door inner (p x y0) (p x y1) ~door:door_width ~frac @ !inner_walls
    done
  done;
  (* Horizontal partitions between vertically adjacent rooms. *)
  for j = 1 to rooms_y - 1 do
    for i = 0 to rooms_x - 1 do
      let y = float_of_int j *. cell_h in
      let x0 = float_of_int i *. cell_w and x1 = float_of_int (i + 1) *. cell_w in
      let frac = 0.15 +. (0.7 *. rand ()) in
      inner_walls :=
        partition_with_door inner (p x0 y) (p x1 y) ~door:door_width ~frac @ !inner_walls
    done
  done;
  Floorplan.create ~width ~height (outer_walls @ List.rev !inner_walls)

let corridor ?(seed = 42) ?(door_width = 1.2) ?(corridor_width = 2.4)
    ?(outer = Floorplan.Concrete) ?(inner = Floorplan.Drywall) ~width ~height ~rooms_per_side ()
    =
  if rooms_per_side <= 0 then invalid_arg "Building.corridor: non-positive room count";
  if corridor_width >= height then invalid_arg "Building.corridor: corridor wider than building";
  let rand = lcg seed in
  let p = Point.make in
  let outer_walls =
    [
      wall outer (p 0. 0.) (p width 0.);
      wall outer (p width 0.) (p width height);
      wall outer (p width height) (p 0. height);
      wall outer (p 0. height) (p 0. 0.);
    ]
  in
  let y_lo = (height -. corridor_width) /. 2. in
  let y_hi = y_lo +. corridor_width in
  let room_w = width /. float_of_int rooms_per_side in
  let walls = ref [] in
  (* Corridor walls with a door per office. *)
  for i = 0 to rooms_per_side - 1 do
    let x0 = float_of_int i *. room_w and x1 = float_of_int (i + 1) *. room_w in
    let frac_s = 0.2 +. (0.6 *. rand ()) and frac_n = 0.2 +. (0.6 *. rand ()) in
    walls :=
      partition_with_door inner (p x0 y_lo) (p x1 y_lo) ~door:door_width ~frac:frac_s
      @ partition_with_door inner (p x0 y_hi) (p x1 y_hi) ~door:door_width ~frac:frac_n
      @ !walls
  done;
  (* Party walls between adjacent offices (full-height, no doors). *)
  for i = 1 to rooms_per_side - 1 do
    let x = float_of_int i *. room_w in
    walls :=
      wall inner (p x 0.) (p x y_lo) :: wall inner (p x y_hi) (p x height) :: !walls
  done;
  Floorplan.create ~width ~height (outer_walls @ List.rev !walls)

let corridor_room_centers ~width ~height ~rooms_per_side ?(corridor_width = 2.4) () =
  let room_w = width /. float_of_int rooms_per_side in
  let y_lo = (height -. corridor_width) /. 2. in
  let south = y_lo /. 2. and north = height -. (y_lo /. 2.) in
  List.init rooms_per_side (fun i -> Point.make ((float_of_int i +. 0.5) *. room_w) south)
  @ List.init rooms_per_side (fun i -> Point.make ((float_of_int i +. 0.5) *. room_w) north)

let candidate_grid fp ~nx ~ny =
  if nx <= 0 || ny <= 0 then invalid_arg "Building.candidate_grid: non-positive grid";
  let w = Floorplan.width fp and h = Floorplan.height fp in
  let dx = w /. float_of_int nx and dy = h /. float_of_int ny in
  let pts = ref [] in
  for j = ny - 1 downto 0 do
    for i = nx - 1 downto 0 do
      let x = (float_of_int i +. 0.5) *. dx and y = (float_of_int j +. 0.5) *. dy in
      pts := Point.make x y :: !pts
    done
  done;
  !pts

let room_centers ~width ~height ~rooms_x ~rooms_y =
  let cw = width /. float_of_int rooms_x and ch = height /. float_of_int rooms_y in
  let pts = ref [] in
  for j = rooms_y - 1 downto 0 do
    for i = rooms_x - 1 downto 0 do
      pts :=
        Point.make ((float_of_int i +. 0.5) *. cw) ((float_of_int j +. 0.5) *. ch) :: !pts
    done
  done;
  !pts
