(** Synthetic office-building generator.

    The paper evaluates on the floor plan of a real building (an SVG
    input).  We generate a deterministic synthetic equivalent: a
    rectangular floor ringed by concrete outer walls and partitioned
    into a grid of rooms by drywall partitions, each partition carrying
    a door gap (signals through an open door cross no wall).  The
    generator is seeded so experiments are reproducible. *)

val office :
  ?seed:int ->
  ?door_width:float ->
  ?outer:Floorplan.material ->
  ?inner:Floorplan.material ->
  width:float ->
  height:float ->
  rooms_x:int ->
  rooms_y:int ->
  unit ->
  Floorplan.t
(** [office ~width ~height ~rooms_x ~rooms_y ()] builds the plan.
    Defaults: [seed = 42], [door_width = 1.2] m, concrete outer walls,
    drywall partitions.
    @raise Invalid_argument on non-positive room counts. *)

val corridor :
  ?seed:int ->
  ?door_width:float ->
  ?corridor_width:float ->
  ?outer:Floorplan.material ->
  ?inner:Floorplan.material ->
  width:float ->
  height:float ->
  rooms_per_side:int ->
  unit ->
  Floorplan.t
(** A corridor building: a central east-west corridor with
    [rooms_per_side] offices on each side, each office opening onto the
    corridor through a door.  The common shape of the hotel/hospital
    deployments in the indoor-positioning literature the paper cites.
    Defaults: corridor 2.4 m wide, doors 1.2 m, concrete shell, drywall
    partitions.
    @raise Invalid_argument on non-positive room counts or a corridor
    wider than the building. *)

val corridor_room_centers :
  width:float -> height:float -> rooms_per_side:int -> ?corridor_width:float -> unit -> Point.t list
(** Center of every office of the corresponding {!corridor} plan, south
    side first, then north, west to east. *)

val candidate_grid : Floorplan.t -> nx:int -> ny:int -> Point.t list
(** [nx * ny] interior points on a regular grid (candidate device or
    evaluation locations), inset by half a cell from the boundary,
    ordered row-major bottom-to-top. *)

val room_centers : width:float -> height:float -> rooms_x:int -> rooms_y:int -> Point.t list
(** Center point of every room of the corresponding {!office} plan. *)
