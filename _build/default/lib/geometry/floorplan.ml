type material =
  | Drywall
  | Wood
  | Glass
  | Brick
  | Concrete
  | Custom of string * float

let attenuation_db = function
  | Drywall -> 3.0
  | Wood -> 4.0
  | Glass -> 2.0
  | Brick -> 8.0
  | Concrete -> 12.0
  | Custom (_, db) -> db

let material_name = function
  | Drywall -> "drywall"
  | Wood -> "wood"
  | Glass -> "glass"
  | Brick -> "brick"
  | Concrete -> "concrete"
  | Custom (name, _) -> name

let material_of_name ?(attenuation = 5.0) name =
  match String.lowercase_ascii name with
  | "drywall" -> Drywall
  | "wood" -> Wood
  | "glass" -> Glass
  | "brick" -> Brick
  | "concrete" -> Concrete
  | other -> Custom (other, attenuation)

type wall = { seg : Segment.t; material : material }

type t = { fp_width : float; fp_height : float; fp_walls : wall list }

let create ~width ~height walls =
  if width <= 0. || height <= 0. then invalid_arg "Floorplan.create: non-positive dimensions";
  { fp_width = width; fp_height = height; fp_walls = walls }

let width fp = fp.fp_width

let height fp = fp.fp_height

let walls fp = fp.fp_walls

let nwalls fp = List.length fp.fp_walls

let add_wall fp w = { fp with fp_walls = w :: fp.fp_walls }

let contains fp p =
  p.Point.x >= 0. && p.Point.x <= fp.fp_width && p.Point.y >= 0. && p.Point.y <= fp.fp_height

let crossings fp p q =
  let link = Segment.make p q in
  List.filter (fun w -> Segment.intersects_proper link w.seg) fp.fp_walls

let wall_attenuation fp p q =
  List.fold_left (fun acc w -> acc +. attenuation_db w.material) 0. (crossings fp p q)

let pp ppf fp =
  Format.fprintf ppf "floorplan %gx%g m, %d walls" fp.fp_width fp.fp_height (nwalls fp)
