(** Floor plans: a rectangular deployment area with attenuating walls.

    The multi-wall path-loss model (paper §2, "Link quality
    constraints") adds a per-wall attenuation term for every wall the
    direct transmitter→receiver segment crosses; this module supplies
    the crossing count weighted by wall material. *)

type material =
  | Drywall
  | Wood
  | Glass
  | Brick
  | Concrete
  | Custom of string * float  (** Name and attenuation in dB. *)

val attenuation_db : material -> float
(** Per-crossing attenuation.  Defaults (literature values for 2.4 GHz):
    drywall 3 dB, wood 4 dB, glass 2 dB, brick 8 dB, concrete 12 dB. *)

val material_name : material -> string

val material_of_name : ?attenuation:float -> string -> material
(** Case-insensitive lookup; unknown names become [Custom] with
    [attenuation] (default 5 dB). *)

type wall = { seg : Segment.t; material : material }

type t
(** An immutable floor plan. *)

val create : width:float -> height:float -> wall list -> t
(** [create ~width ~height walls]; dimensions in metres.
    @raise Invalid_argument on non-positive dimensions. *)

val width : t -> float

val height : t -> float

val walls : t -> wall list

val nwalls : t -> int

val add_wall : t -> wall -> t

val contains : t -> Point.t -> bool
(** Point within the area rectangle (inclusive). *)

val crossings : t -> Point.t -> Point.t -> wall list
(** Walls properly crossed by the open segment [p -> q]. *)

val wall_attenuation : t -> Point.t -> Point.t -> float
(** Total crossing attenuation in dB along the direct path. *)

val pp : Format.formatter -> t -> unit
