type t = { x : float; y : float }

let make x y = { x; y }

let zero = { x = 0.; y = 0. }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y }

let scale k a = { x = k *. a.x; y = k *. a.y }

let dot a b = (a.x *. b.x) +. (a.y *. b.y)

let cross a b = (a.x *. b.y) -. (a.y *. b.x)

let norm a = Float.hypot a.x a.y

let dist a b = norm (sub a b)

let dist2 a b =
  let d = sub a b in
  dot d d

let lerp a b t = add a (scale t (sub b a))

let equal_eps ?(eps = 1e-9) a b = Float.abs (a.x -. b.x) <= eps && Float.abs (a.y -. b.y) <= eps

let pp ppf a = Format.fprintf ppf "(%g, %g)" a.x a.y
