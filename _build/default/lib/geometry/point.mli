(** 2D points/vectors in metres (the floor-plan coordinate system). *)

type t = { x : float; y : float }

val make : float -> float -> t

val zero : t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val dot : t -> t -> float

val cross : t -> t -> float
(** z-component of the 3D cross product; sign gives orientation. *)

val norm : t -> float

val dist : t -> t -> float
(** Euclidean distance. *)

val dist2 : t -> t -> float
(** Squared distance (no sqrt). *)

val lerp : t -> t -> float -> t
(** [lerp a b t] is [a + t (b - a)]. *)

val equal_eps : ?eps:float -> t -> t -> bool
(** Component-wise equality within [eps] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
