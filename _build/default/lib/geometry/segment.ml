type t = { a : Point.t; b : Point.t }

let make a b = { a; b }

let of_coords x1 y1 x2 y2 = { a = Point.make x1 y1; b = Point.make x2 y2 }

let length s = Point.dist s.a s.b

let midpoint s = Point.lerp s.a s.b 0.5

let eps = 1e-9

let orientation p q r =
  let v = Point.cross (Point.sub q p) (Point.sub r p) in
  if v > eps then 1 else if v < -.eps then -1 else 0

let on_segment p s =
  orientation s.a s.b p = 0
  && p.Point.x >= Float.min s.a.Point.x s.b.Point.x -. eps
  && p.Point.x <= Float.max s.a.Point.x s.b.Point.x +. eps
  && p.Point.y >= Float.min s.a.Point.y s.b.Point.y -. eps
  && p.Point.y <= Float.max s.a.Point.y s.b.Point.y +. eps

let intersects s1 s2 =
  let o1 = orientation s1.a s1.b s2.a in
  let o2 = orientation s1.a s1.b s2.b in
  let o3 = orientation s2.a s2.b s1.a in
  let o4 = orientation s2.a s2.b s1.b in
  if o1 <> o2 && o3 <> o4 then true
  else
    (o1 = 0 && on_segment s2.a s1)
    || (o2 = 0 && on_segment s2.b s1)
    || (o3 = 0 && on_segment s1.a s2)
    || (o4 = 0 && on_segment s1.b s2)

let intersects_proper s1 s2 =
  let o1 = orientation s1.a s1.b s2.a in
  let o2 = orientation s1.a s1.b s2.b in
  let o3 = orientation s2.a s2.b s1.a in
  let o4 = orientation s2.a s2.b s1.b in
  o1 * o2 < 0 && o3 * o4 < 0

let intersection_point s1 s2 =
  (* Solve s1.a + t (s1.b - s1.a) = s2.a + u (s2.b - s2.a). *)
  let r = Point.sub s1.b s1.a and s = Point.sub s2.b s2.a in
  let denom = Point.cross r s in
  if Float.abs denom < eps then None
  else begin
    let qp = Point.sub s2.a s1.a in
    let t = Point.cross qp s /. denom in
    let u = Point.cross qp r /. denom in
    if t >= -.eps && t <= 1. +. eps && u >= -.eps && u <= 1. +. eps then
      Some (Point.lerp s1.a s1.b t)
    else None
  end

let pp ppf s = Format.fprintf ppf "[%a - %a]" Point.pp s.a Point.pp s.b
