(** Line segments and intersection tests.

    The multi-wall channel model counts how many wall segments the
    straight line between transmitter and receiver crosses; the only
    geometric primitive it needs is a robust segment/segment
    intersection test. *)

type t = { a : Point.t; b : Point.t }

val make : Point.t -> Point.t -> t

val of_coords : float -> float -> float -> float -> t
(** [of_coords x1 y1 x2 y2]. *)

val length : t -> float

val midpoint : t -> Point.t

val orientation : Point.t -> Point.t -> Point.t -> int
(** [-1] clockwise, [0] collinear (within epsilon), [1] counter-clockwise. *)

val on_segment : Point.t -> t -> bool
(** Collinear-and-within-bounding-box test. *)

val intersects : t -> t -> bool
(** [true] if the closed segments share at least one point (including
    touching endpoints and collinear overlap). *)

val intersects_proper : t -> t -> bool
(** [true] only for a proper crossing: the segments intersect at a
    single interior point of both.  This is the predicate used for wall
    crossings — a link grazing a wall endpoint is not attenuated. *)

val intersection_point : t -> t -> Point.t option
(** The crossing point of two properly intersecting segments. *)

val pp : Format.formatter -> t -> unit
