(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type node_role = string

type parsed = { plan : Floorplan.t; nodes : (node_role * Point.t) list }

(* A hand-rolled scanner for the tag subset we accept.  It finds
   [<name attr="value" ...>] occurrences and returns (name, attrs). *)
type tag = { tag_name : string; attrs : (string * string) list }

let is_name_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | ':' -> true | _ -> false

let scan_tags (s : string) : tag list =
  let n = String.length s in
  let tags = ref [] in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '<' && !i + 1 < n && s.[!i + 1] <> '/' && s.[!i + 1] <> '!' && s.[!i + 1] <> '?'
    then begin
      (* tag name *)
      let j = ref (!i + 1) in
      while !j < n && is_name_char s.[!j] do
        incr j
      done;
      let name = String.sub s (!i + 1) (!j - !i - 1) in
      (* attributes until '>' *)
      let attrs = ref [] in
      let k = ref !j in
      let stop = ref false in
      while (not !stop) && !k < n do
        if s.[!k] = '>' then stop := true
        else if is_name_char s.[!k] then begin
          let a0 = !k in
          while !k < n && is_name_char s.[!k] do
            incr k
          done;
          let aname = String.sub s a0 (!k - a0) in
          (* skip spaces, expect = " value " *)
          while !k < n && (s.[!k] = ' ' || s.[!k] = '\t' || s.[!k] = '\n') do
            incr k
          done;
          if !k < n && s.[!k] = '=' then begin
            incr k;
            while !k < n && (s.[!k] = ' ' || s.[!k] = '\t' || s.[!k] = '\n') do
              incr k
            done;
            if !k < n && (s.[!k] = '"' || s.[!k] = '\'') then begin
              let quote = s.[!k] in
              incr k;
              let v0 = !k in
              while !k < n && s.[!k] <> quote do
                incr k
              done;
              let v = String.sub s v0 (!k - v0) in
              if !k < n then incr k;
              attrs := (aname, v) :: !attrs
            end
          end
        end
        else incr k
      done;
      tags := { tag_name = name; attrs = List.rev !attrs } :: !tags;
      i := !k + 1
    end
    else incr i
  done;
  List.rev !tags

let attr t name = List.assoc_opt name t.attrs

let float_attr t name =
  match attr t name with
  | None -> Error (Printf.sprintf "<%s>: missing attribute %s" t.tag_name name)
  | Some v -> (
      (* tolerate unit suffixes like "80mm" or "1024px" *)
      let v = String.trim v in
      let numeric_prefix =
        let len = String.length v in
        let rec go i =
          if i < len then
            match v.[i] with
            | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> go (i + 1)
            | _ -> i
          else i
        in
        String.sub v 0 (go 0)
      in
      match float_of_string_opt numeric_prefix with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "<%s>: bad numeric attribute %s=%S" t.tag_name name v))

let ( let* ) = Result.bind

let class_of t = match attr t "class" with Some c -> String.trim c | None -> ""

let parse (doc : string) : (parsed, string) result =
  let tags = scan_tags doc in
  let rec find_svg = function
    | [] -> Error "no <svg> element"
    | t :: _ when t.tag_name = "svg" -> Ok t
    | _ :: rest -> find_svg rest
  in
  let* svg = find_svg tags in
  let* width = float_attr svg "width" in
  let* height = float_attr svg "height" in
  let walls = ref [] and nodes = ref [] in
  let err = ref None in
  let record_err e = if !err = None then err := Some e in
  let material_of t =
    let c = class_of t in
    if c = "" then Floorplan.Drywall else Floorplan.material_of_name c
  in
  List.iter
    (fun t ->
      match t.tag_name with
      | "line" -> (
          match
            let* x1 = float_attr t "x1" in
            let* y1 = float_attr t "y1" in
            let* x2 = float_attr t "x2" in
            let* y2 = float_attr t "y2" in
            Ok { Floorplan.seg = Segment.of_coords x1 y1 x2 y2; material = material_of t }
          with
          | Ok w -> walls := w :: !walls
          | Error e -> record_err e)
      | "rect" -> (
          match
            let* x = float_attr t "x" in
            let* y = float_attr t "y" in
            let* w = float_attr t "width" in
            let* h = float_attr t "height" in
            Ok (x, y, w, h)
          with
          | Ok (x, y, w, h) ->
              let m = material_of t in
              let add a b = walls := { Floorplan.seg = Segment.make a b; material = m } :: !walls in
              let p = Point.make in
              add (p x y) (p (x +. w) y);
              add (p (x +. w) y) (p (x +. w) (y +. h));
              add (p (x +. w) (y +. h)) (p x (y +. h));
              add (p x (y +. h)) (p x y)
          | Error e -> record_err e)
      | "circle" -> (
          match
            let* cx = float_attr t "cx" in
            let* cy = float_attr t "cy" in
            Ok (cx, cy)
          with
          | Ok (cx, cy) ->
              let role = if class_of t = "" then "node" else class_of t in
              nodes := (role, Point.make cx cy) :: !nodes
          | Error e -> record_err e)
      | _ -> ())
    tags;
  match !err with
  | Some e -> Error e
  | None ->
      Ok { plan = Floorplan.create ~width ~height (List.rev !walls); nodes = List.rev !nodes }

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

type style = { stroke : string; stroke_width : float; fill : string; opacity : float }

let default_style = { stroke = "#000"; stroke_width = 1.0; fill = "none"; opacity = 1.0 }

type element =
  | Line of Segment.t * style
  | Rect of Point.t * float * float * style
  | Circle of Point.t * float * style
  | Polyline of Point.t list * style
  | Text of Point.t * string * float * string

type scene = { s_width : float; s_height : float; mutable elements : element list }

let scene ~width ~height = { s_width = width; s_height = height; elements = [] }

let add sc e = sc.elements <- e :: sc.elements

let default_wall_color = function
  | Floorplan.Concrete -> "#333333"
  | Floorplan.Brick -> "#8b4513"
  | Floorplan.Drywall -> "#999999"
  | Floorplan.Wood -> "#c8a165"
  | Floorplan.Glass -> "#7ec8e3"
  | Floorplan.Custom _ -> "#666666"

let add_floorplan ?(wall_color = default_wall_color) sc fp =
  List.iter
    (fun (w : Floorplan.wall) ->
      let width = match w.material with Floorplan.Concrete -> 2.5 | _ -> 1.2 in
      add sc
        (Line (w.seg, { default_style with stroke = wall_color w.material; stroke_width = width })))
    (Floorplan.walls fp)

let render ?(scale = 12.) sc =
  let buf = Buffer.create 4096 in
  let px x = x *. scale in
  let py y = (sc.s_height -. y) *. scale in
  let style_attrs st =
    Printf.sprintf "stroke=\"%s\" stroke-width=\"%g\" fill=\"%s\" opacity=\"%g\"" st.stroke
      st.stroke_width st.fill st.opacity
  in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%g\" height=\"%g\" viewBox=\"0 0 %g %g\">\n"
       (px sc.s_width) (scale *. sc.s_height) (px sc.s_width) (scale *. sc.s_height));
  Buffer.add_string buf "<rect x=\"0\" y=\"0\" width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  List.iter
    (fun e ->
      match e with
      | Line (s, st) ->
          Buffer.add_string buf
            (Printf.sprintf "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" %s/>\n"
               (px s.Segment.a.Point.x) (py s.Segment.a.Point.y) (px s.Segment.b.Point.x)
               (py s.Segment.b.Point.y) (style_attrs st))
      | Rect (o, w, h, st) ->
          Buffer.add_string buf
            (Printf.sprintf "<rect x=\"%g\" y=\"%g\" width=\"%g\" height=\"%g\" %s/>\n"
               (px o.Point.x)
               (py (o.Point.y +. h))
               (px w) (scale *. h) (style_attrs st))
      | Circle (c, r, st) ->
          Buffer.add_string buf
            (Printf.sprintf "<circle cx=\"%g\" cy=\"%g\" r=\"%g\" %s/>\n" (px c.Point.x)
               (py c.Point.y) (r *. scale) (style_attrs st))
      | Polyline (pts, st) ->
          let coords =
            String.concat " "
              (List.map (fun p -> Printf.sprintf "%g,%g" (px p.Point.x) (py p.Point.y)) pts)
          in
          Buffer.add_string buf (Printf.sprintf "<polyline points=\"%s\" %s/>\n" coords (style_attrs st))
      | Text (p, txt, size, color) ->
          Buffer.add_string buf
            (Printf.sprintf "<text x=\"%g\" y=\"%g\" font-size=\"%g\" fill=\"%s\">%s</text>\n"
               (px p.Point.x) (py p.Point.y) size color txt))
    (List.rev sc.elements);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file ?scale path sc =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (render ?scale sc))
