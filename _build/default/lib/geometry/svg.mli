(** Minimal SVG reader and writer.

    The paper's tool takes the floor plan as an SVG file storing the
    space dimensions, obstacles (walls) and device locations, and we
    also emit the result figures (Fig. 1a–1c) as SVG.  Only the tiny
    subset needed for those two jobs is supported:

    {ul
    {- reading: [<svg width height>], [<line x1 y1 x2 y2 class>] (wall;
       class names a material), [<rect x y width height class>] (four
       walls), [<circle cx cy r class>] (a node; class names a role);}
    {- writing: scenes of lines, rectangles, circles, polylines and
       text.}} *)

(** {1 Reading} *)

type node_role = string
(** The [class] attribute of a circle, e.g. ["sensor"], ["sink"],
    ["relay"], ["anchor"], ["eval"]. *)

type parsed = {
  plan : Floorplan.t;
  nodes : (node_role * Point.t) list;  (** In document order. *)
}

val parse : string -> (parsed, string) result
(** Parse an SVG document from a string.  Unknown elements are skipped;
    malformed required attributes produce [Error]. *)

val parse_file : string -> (parsed, string) result

(** {1 Writing} *)

type style = {
  stroke : string;  (** CSS color, or ["none"]. *)
  stroke_width : float;
  fill : string;
  opacity : float;
}

val default_style : style
(** Black 1px stroke, no fill, opaque. *)

type element =
  | Line of Segment.t * style
  | Rect of Point.t * float * float * style  (** Origin, width, height. *)
  | Circle of Point.t * float * style  (** Center, radius. *)
  | Polyline of Point.t list * style
  | Text of Point.t * string * float * string  (** Anchor, content, font size, color. *)

type scene

val scene : width:float -> height:float -> scene
(** A drawing surface in floor-plan coordinates (metres); rendering
    scales to pixels and flips the y-axis so that y grows upwards. *)

val add : scene -> element -> unit

val add_floorplan : ?wall_color:(Floorplan.material -> string) -> scene -> Floorplan.t -> unit
(** Draw every wall (default colors by material: concrete dark,
    drywall light …). *)

val render : ?scale:float -> scene -> string
(** Render to an SVG document string; [scale] (default 12) is pixels
    per metre. *)

val write_file : ?scale:float -> string -> scene -> unit
