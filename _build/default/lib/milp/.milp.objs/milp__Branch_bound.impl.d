lib/milp/branch_bound.ml: Array Float List Logs Model Pqueue Presolve Simplex Status Unix
