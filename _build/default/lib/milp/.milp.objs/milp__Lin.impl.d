lib/milp/lin.ml: Float Format Int List Map
