lib/milp/lin.mli: Format
