lib/milp/lp_format.ml: Buffer Float Fun Lin List Model Printf String
