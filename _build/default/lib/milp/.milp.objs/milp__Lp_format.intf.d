lib/milp/lp_format.mli: Model
