lib/milp/lp_reader.ml: Hashtbl In_channel Lin List Model Printf String
