lib/milp/lp_reader.mli: Model
