lib/milp/model.ml: Float Format Lin Printf Vec
