lib/milp/model.mli: Format Lin
