lib/milp/pqueue.mli:
