lib/milp/presolve.ml: Array Float Model Printf Simplex
