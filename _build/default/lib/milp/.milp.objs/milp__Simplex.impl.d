lib/milp/simplex.ml: Array Float Lin Model Status Unix
