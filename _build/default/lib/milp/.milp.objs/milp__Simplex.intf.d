lib/milp/simplex.mli: Model Status
