lib/milp/status.ml:
