lib/milp/status.mli:
