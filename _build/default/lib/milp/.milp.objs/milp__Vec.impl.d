lib/milp/vec.ml: Array Printf
