lib/milp/vec.mli:
