module Imap = Map.Make (Int)

type t = { coeffs : float Imap.t; cst : float }

let drop_zero m = Imap.filter (fun _ c -> c <> 0.) m

let zero = { coeffs = Imap.empty; cst = 0. }

let const c = { coeffs = Imap.empty; cst = c }

let term c v = if c = 0. then zero else { coeffs = Imap.singleton v c; cst = 0. }

let var v = term 1.0 v

let add_term e c v =
  if c = 0. then e
  else
    let upd = function
      | None -> Some c
      | Some c0 -> if c0 +. c = 0. then None else Some (c0 +. c)
    in
    { e with coeffs = Imap.update v upd e.coeffs }

let add_const e c = { e with cst = e.cst +. c }

let of_list l = List.fold_left (fun acc (c, v) -> add_term acc c v) zero l

let add a b =
  let merged =
    Imap.union (fun _ ca cb -> if ca +. cb = 0. then None else Some (ca +. cb)) a.coeffs b.coeffs
  in
  { coeffs = merged; cst = a.cst +. b.cst }

let scale k e =
  if k = 0. then zero
  else { coeffs = Imap.map (fun c -> k *. c) e.coeffs; cst = k *. e.cst }

let neg e = scale (-1.) e

let sub a b = add a (neg b)

let constant e = e.cst

let coeff e v = match Imap.find_opt v e.coeffs with Some c -> c | None -> 0.

let terms e = Imap.bindings e.coeffs

let nterms e = Imap.cardinal e.coeffs

let is_constant e = Imap.is_empty e.coeffs

let iter f e = Imap.iter f e.coeffs

let fold f e init = Imap.fold f e.coeffs init

let map_coeffs f e = { e with coeffs = drop_zero (Imap.map f e.coeffs) }

let eval value e = Imap.fold (fun v c acc -> acc +. (c *. value v)) e.coeffs e.cst

let sum l = List.fold_left add zero l

let equal a b = a.cst = b.cst && Imap.equal Float.equal a.coeffs b.coeffs

let pp ?(var_name = fun v -> "x" ^ string_of_int v) ppf e =
  let first = ref true in
  let print_term v c =
    let mag = Float.abs c in
    let sign = if c < 0. then "-" else "+" in
    if !first then begin
      if c < 0. then Format.pp_print_string ppf "-";
      first := false
    end
    else Format.fprintf ppf " %s " sign;
    if mag = 1.0 then Format.pp_print_string ppf (var_name v)
    else Format.fprintf ppf "%g %s" mag (var_name v)
  in
  Imap.iter print_term e.coeffs;
  if e.cst <> 0. || !first then
    if !first then Format.fprintf ppf "%g" e.cst
    else if e.cst > 0. then Format.fprintf ppf " + %g" e.cst
    else Format.fprintf ppf " - %g" (Float.abs e.cst)

module Infix = struct
  let ( ++ ) = add
  let ( -- ) = sub
  let ( *: ) = scale
end
