(** Sparse linear expressions over integer variable identifiers.

    A linear expression is a finite map from variable ids to coefficients
    plus a constant term.  Variable ids are the integers returned by
    {!Model.add_var}; this module is deliberately independent of {!Model}
    so that constraint generators can build expressions without holding a
    model handle. *)

type t
(** An immutable sparse linear expression. *)

val zero : t
(** The expression [0]. *)

val const : float -> t
(** [const c] is the expression [c]. *)

val term : float -> int -> t
(** [term c v] is the expression [c * x_v]. *)

val var : int -> t
(** [var v] is [term 1.0 v]. *)

val of_list : (float * int) list -> t
(** [of_list terms] sums [c * x_v] for every [(c, v)] in [terms];
    repeated variables are merged by addition. *)

val add : t -> t -> t
(** Pointwise sum. *)

val sub : t -> t -> t
(** Pointwise difference. *)

val scale : float -> t -> t
(** [scale k e] multiplies every coefficient and the constant by [k]. *)

val add_term : t -> float -> int -> t
(** [add_term e c v] is [add e (term c v)]. *)

val add_const : t -> float -> t
(** [add_const e c] adds [c] to the constant term. *)

val constant : t -> float
(** Constant term of the expression. *)

val coeff : t -> int -> float
(** [coeff e v] is the coefficient of [x_v] in [e] (0 when absent). *)

val terms : t -> (int * float) list
(** Non-zero terms as [(var, coef)] pairs in increasing variable order. *)

val nterms : t -> int
(** Number of variables with a non-zero coefficient. *)

val is_constant : t -> bool
(** [true] iff the expression has no variable term. *)

val iter : (int -> float -> unit) -> t -> unit
(** Iterate over non-zero terms in increasing variable order. *)

val fold : (int -> float -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over non-zero terms in increasing variable order. *)

val map_coeffs : (float -> float) -> t -> t
(** Apply a function to every coefficient (not the constant). *)

val eval : (int -> float) -> t -> float
(** [eval value e] evaluates [e] under the assignment [value]. *)

val sum : t list -> t
(** Sum of a list of expressions. *)

val neg : t -> t
(** [neg e] is [scale (-1.) e]. *)

val equal : t -> t -> bool
(** Structural equality up to coefficient equality. *)

val pp : ?var_name:(int -> string) -> Format.formatter -> t -> unit
(** Pretty-print, e.g. [3 x2 - x5 + 1.5].  [var_name] defaults to
    [fun v -> "x" ^ string_of_int v]. *)

(** Infix operators for expression construction; designed to be
    locally opened: [Lin.Infix.(var i ++ scale 2. (var j))]. *)
module Infix : sig
  val ( ++ ) : t -> t -> t
  (** Alias for {!add}. *)

  val ( -- ) : t -> t -> t
  (** Alias for {!sub}. *)

  val ( *: ) : float -> t -> t
  (** Alias for {!scale}. *)
end
