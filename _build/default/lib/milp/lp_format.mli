(** CPLEX LP-format writer.

    Exports a {!Model.t} as a [.lp] text file readable by CPLEX, Gurobi,
    GLPK, SCIP, lp_solve, … — useful for debugging the encoder against a
    reference solver and for inspecting generated problems. *)

val to_string : Model.t -> string
(** Render the model in LP format. *)

val to_channel : out_channel -> Model.t -> unit

val to_file : string -> Model.t -> unit
(** [to_file path m] writes [m] to [path]. *)
