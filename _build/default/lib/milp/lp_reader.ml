(* A small tokenizer + section-driven parser for the LP subset.  The
   grammar is line-oriented only in its comments; expressions may wrap,
   so we tokenize the whole document and track sections by keyword. *)

type token =
  | Word of string  (* identifier *)
  | Num of float
  | Plus
  | Minus
  | Le
  | Ge
  | EqT
  | Colon
  | Section of string  (* minimize / maximize / subject_to / bounds / generals / binaries / end *)

exception Err of string

let fail line fmt = Printf.ksprintf (fun s -> raise (Err (Printf.sprintf "line %d: %s" line s))) fmt

let is_word_start c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '_' | '#' -> true | _ -> false

let is_word_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '#' | '!' | '[' | ']' -> true
  | _ -> false

let is_digit c = match c with '0' .. '9' -> true | _ -> false

(* Keywords may span two words ("Subject To"); normalize during a second
   pass over raw word tokens. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '\\' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_word_start c then begin
      let start = !i in
      while !i < n && is_word_char src.[!i] do
        incr i
      done;
      toks := (Word (String.sub src start (!i - start)), !line) :: !toks
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      while
        !i < n
        && (is_digit src.[!i] || src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = 'E'
           || ((src.[!i] = '+' || src.[!i] = '-') && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
      do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      match float_of_string_opt text with
      | Some f -> toks := (Num f, !line) :: !toks
      | None -> fail !line "malformed number %S" text
    end
    else begin
      (match c with
      | '+' -> toks := (Plus, !line) :: !toks
      | '-' -> toks := (Minus, !line) :: !toks
      | ':' -> toks := (Colon, !line) :: !toks
      | '<' | '>' | '=' ->
          let op =
            if c = '=' then EqT
            else begin
              (* accept <=, >=, <, > *)
              if !i + 1 < n && src.[!i + 1] = '=' then incr i;
              if c = '<' then Le else Ge
            end
          in
          toks := (op, !line) :: !toks
      | _ -> fail !line "unexpected character %C" c);
      incr i
    end
  done;
  List.rev !toks

(* Merge section keywords. *)
let normalize toks =
  let lower w = String.lowercase_ascii w in
  let rec go acc = function
    | [] -> List.rev acc
    | (Word a, l) :: (Word b, _) :: rest
      when lower a = "subject" && lower b = "to" ->
        go ((Section "subject_to", l) :: acc) rest
    | (Word w, l) :: rest -> (
        match lower w with
        | "minimize" | "minimise" | "min" -> go ((Section "minimize", l) :: acc) rest
        | "maximize" | "maximise" | "max" -> go ((Section "maximize", l) :: acc) rest
        | "st" | "s.t." -> go ((Section "subject_to", l) :: acc) rest
        | "bounds" | "bound" -> go ((Section "bounds", l) :: acc) rest
        | "generals" | "general" | "gen" | "integers" | "int" ->
            go ((Section "generals", l) :: acc) rest
        | "binaries" | "binary" | "bin" -> go ((Section "binaries", l) :: acc) rest
        | "end" -> go ((Section "end", l) :: acc) rest
        | "free" -> go ((Word "!free", l) :: acc) rest
        | "inf" | "infinity" -> go ((Num infinity, l) :: acc) rest
        | _ -> go ((Word w, l) :: acc) rest)
    | t :: rest -> go (t :: acc) rest
  in
  go [] toks

type pstate = {
  model : Model.t;
  vars : (string, int) Hashtbl.t;
  mutable toks : (token * int) list;
}

let var_of st name =
  match Hashtbl.find_opt st.vars name with
  | Some v -> v
  | None ->
      (* LP default bounds: [0, +inf). *)
      let v = Model.add_var st.model ~lb:0. ~ub:infinity name in
      Hashtbl.add st.vars name v;
      v

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

(* Parse a linear expression: [sign] [coef] var ... ; stops at a
   relation, section, or colon-labelled row start. *)
let parse_expr st =
  let expr = ref Lin.zero in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (Plus, _) | Some (Minus, _) | Some (Num _, _) | Some (Word _, _) -> (
        let sign = ref 1.0 in
        let rec eat_signs () =
          match peek st with
          | Some (Plus, _) ->
              advance st;
              eat_signs ()
          | Some (Minus, _) ->
              advance st;
              sign := -. !sign;
              eat_signs ()
          | _ -> ()
        in
        eat_signs ();
        match peek st with
        | Some (Num f, _) -> (
            advance st;
            match peek st with
            | Some (Word w, _) when w <> "!free" ->
                advance st;
                expr := Lin.add_term !expr (!sign *. f) (var_of st w)
            | _ -> expr := Lin.add_const !expr (!sign *. f))
        | Some (Word w, l) ->
            if w = "!free" then fail l "unexpected 'free' in expression";
            advance st;
            expr := Lin.add_term !expr !sign (var_of st w)
        | Some (_, l) -> fail l "expected a term"
        | None -> continue := false)
    | _ -> continue := false
  done;
  !expr

(* Optional "name :" prefix. *)
let parse_label st =
  match st.toks with
  | (Word w, _) :: (Colon, _) :: rest when w <> "!free" ->
      st.toks <- rest;
      Some w
  | _ -> None

let parse_objective st =
  ignore (parse_label st);
  parse_expr st

let parse_rows st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (Section _, _) | None -> continue := false
    | _ ->
        let name = parse_label st in
        let lhs = parse_expr st in
        let sense, line =
          match peek st with
          | Some (Le, l) ->
              advance st;
              (Model.Le, l)
          | Some (Ge, l) ->
              advance st;
              (Model.Ge, l)
          | Some (EqT, l) ->
              advance st;
              (Model.Eq, l)
          | Some (_, l) -> fail l "expected a relation"
          | None -> fail 0 "unexpected end of input in a row"
        in
        (* The LP grammar requires a constant right-hand side; parsing a
           full expression here would swallow the next row's label. *)
        let sign = ref 1.0 in
        let rec signs () =
          match peek st with
          | Some (Minus, _) ->
              advance st;
              sign := -. !sign;
              signs ()
          | Some (Plus, _) ->
              advance st;
              signs ()
          | _ -> ()
        in
        signs ();
        (match peek st with
        | Some (Num f, _) ->
            advance st;
            Model.add_constr st.model ?name lhs sense (!sign *. f)
        | _ -> fail line "right-hand side must be constant")
  done

(* Bounds lines: "lo <= x <= hi", "x <= hi", "x >= lo", "x free",
   "x = v". *)
let parse_bounds st =
  let continue = ref true in
  while !continue do
    match st.toks with
    | (Section _, _) :: _ | [] -> continue := false
    | _ -> (
        (* leading number or -inf: "lo <= x <= hi" *)
        let read_signed_num () =
          let sign = ref 1.0 in
          let rec signs () =
            match peek st with
            | Some (Minus, _) ->
                advance st;
                sign := -. !sign;
                signs ()
            | Some (Plus, _) ->
                advance st;
                signs ()
            | _ -> ()
          in
          signs ();
          match peek st with
          | Some (Num f, _) ->
              advance st;
              Some (!sign *. f)
          | _ -> None
        in
        match read_signed_num () with
        | Some lo -> (
            match st.toks with
            | (Le, _) :: (Word x, _) :: rest -> (
                st.toks <- rest;
                let v = var_of st x in
                Model.set_bounds st.model v lo (Model.var_ub st.model v);
                match st.toks with
                | (Le, l) :: rest2 -> (
                    st.toks <- rest2;
                    match read_signed_num () with
                    | Some hi -> Model.set_bounds st.model v lo hi
                    | None -> fail l "expected an upper bound")
                | _ -> ())
            | (t, l) :: _ ->
                ignore t;
                fail l "expected '<= var' after a bound value"
            | [] -> fail 0 "dangling bound")
        | None -> (
            match st.toks with
            | (Word x, _) :: (Word "!free", _) :: rest ->
                st.toks <- rest;
                let v = var_of st x in
                Model.set_bounds st.model v neg_infinity infinity
            | (Word "!free", _) :: _ -> fail 0 "free without a variable"
            | (Word x, _) :: (Le, l) :: rest -> (
                st.toks <- rest;
                let v = var_of st x in
                match read_signed_num () with
                | Some hi -> Model.set_bounds st.model v (Model.var_lb st.model v) hi
                | None -> fail l "expected an upper bound")
            | (Word x, _) :: (Ge, l) :: rest -> (
                st.toks <- rest;
                let v = var_of st x in
                match read_signed_num () with
                | Some lo -> Model.set_bounds st.model v lo (Model.var_ub st.model v)
                | None -> fail l "expected a lower bound")
            | (Word x, _) :: (EqT, l) :: rest -> (
                st.toks <- rest;
                let v = var_of st x in
                match read_signed_num () with
                | Some value -> Model.set_bounds st.model v value value
                | None -> fail l "expected a value")
            | (_, l) :: _ -> fail l "malformed bounds line"
            | [] -> ()))
  done

(* Integrality sections just list variable names.  The Model API fixes a
   variable's kind at creation, so we collect them and rebuild. *)
let parse_name_list st =
  let names = ref [] in
  let continue = ref true in
  while !continue do
    match st.toks with
    | (Word w, _) :: rest when w <> "!free" ->
        st.toks <- rest;
        names := w :: !names
    | _ -> continue := false
  done;
  List.rev !names

let parse text =
  try
    let toks = normalize (tokenize text) in
    let st = { model = Model.create ~name:"lp" (); vars = Hashtbl.create 64; toks } in
    let direction = ref Model.Minimize in
    let objective = ref Lin.zero in
    let generals = ref [] and binaries = ref [] in
    let rec sections () =
      match peek st with
      | None -> ()
      | Some (Section "minimize", _) ->
          advance st;
          direction := Model.Minimize;
          objective := parse_objective st;
          sections ()
      | Some (Section "maximize", _) ->
          advance st;
          direction := Model.Maximize;
          objective := parse_objective st;
          sections ()
      | Some (Section "subject_to", _) ->
          advance st;
          parse_rows st;
          sections ()
      | Some (Section "bounds", _) ->
          advance st;
          parse_bounds st;
          sections ()
      | Some (Section "generals", _) ->
          advance st;
          generals := !generals @ parse_name_list st;
          sections ()
      | Some (Section "binaries", _) ->
          advance st;
          binaries := !binaries @ parse_name_list st;
          sections ()
      | Some (Section "end", _) -> ()
      | Some (Section s, l) -> fail l "unknown section %s" s
      | Some (_, l) -> fail l "expected a section keyword"
    in
    sections ();
    Model.set_objective st.model !direction !objective;
    (* Rebuild with integrality applied (Model fixes kinds at creation). *)
    let src = st.model in
    let final = Model.create ~name:"lp" () in
    for v = 0 to Model.nvars src - 1 do
      let name = Model.var_name src v in
      let kind =
        if List.mem name !binaries then Model.Binary
        else if List.mem name !generals then Model.Integer
        else Model.Continuous
      in
      ignore
        (Model.add_var final ~lb:(Model.var_lb src v) ~ub:(Model.var_ub src v) ~kind name)
    done;
    Model.iter_constrs
      (fun _ c -> Model.add_constr final ~name:c.Model.c_name c.Model.c_expr c.Model.c_sense c.Model.c_rhs)
      src;
    let dir, obj = Model.objective src in
    Model.set_objective final dir obj;
    Ok final
  with Err e -> Error e

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error e -> Error e
