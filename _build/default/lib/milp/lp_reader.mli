(** CPLEX LP-format reader (the subset {!Lp_format} emits).

    Supports [Minimize]/[Maximize], [Subject To] rows with [<=], [>=],
    [=], a [Bounds] section (including [free], [-inf], [+inf]),
    [Generals] and [Binaries] sections, and [\\]-style or
    end-of-line comments.  Round-trips models written by
    {!Lp_format.to_string}, and reads hand-written or
    externally-generated files in the same subset — useful for feeding
    the solver problems produced by other tools and for differential
    testing. *)

val parse : string -> (Model.t, string) result
(** Parse an LP document.  Variables are created in first-appearance
    order; errors carry line numbers. *)

val parse_file : string -> (Model.t, string) result
