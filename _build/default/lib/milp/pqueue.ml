type 'a entry = { key : float; value : 'a }

type 'a t = { mutable heap : 'a entry array; mutable len : int }

let create () = { heap = [||]; len = 0 }

let is_empty q = q.len = 0

let length q = q.len

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.heap.(i).key < q.heap.(parent).key then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.len && q.heap.(l).key < q.heap.(!smallest).key then smallest := l;
  if r < q.len && q.heap.(r).key < q.heap.(!smallest).key then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q key value =
  let e = { key; value } in
  if q.len = Array.length q.heap then begin
    let ncap = if q.len = 0 then 16 else 2 * q.len in
    let nheap = Array.make ncap e in
    Array.blit q.heap 0 nheap 0 q.len;
    q.heap <- nheap
  end;
  q.heap.(q.len) <- e;
  q.len <- q.len + 1;
  sift_up q (q.len - 1)

let pop q =
  if q.len = 0 then None
  else begin
    let top = q.heap.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.heap.(0) <- q.heap.(q.len);
      sift_down q 0
    end;
    Some (top.key, top.value)
  end

let peek_key q = if q.len = 0 then None else Some q.heap.(0).key

let fold f init q =
  let acc = ref init in
  for i = 0 to q.len - 1 do
    acc := f !acc q.heap.(i).key q.heap.(i).value
  done;
  !acc
