(** Minimal binary min-heap keyed by floats (used by branch & bound for
    best-bound node selection, and by graph shortest-path routines). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q key v] inserts [v] with priority [key] (smaller pops first). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key entry. *)

val peek_key : 'a t -> float option
(** Key of the minimum entry without removing it. *)

val fold : ('acc -> float -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Fold over entries in unspecified order. *)
