type problem = {
  ncols : int;
  rows : (int * float) array array;
  senses : Model.sense array;
  rhs : float array;
  obj : float array;
  obj_const : float;
}

type result = {
  status : Status.lp_status;
  objective : float;
  primal : float array;
  iterations : int;
}

let of_model m =
  let n = Model.nvars m in
  let dir, obj_expr = Model.objective m in
  let sign = match dir with Model.Minimize -> 1.0 | Model.Maximize -> -1.0 in
  let obj = Array.make n 0. in
  Lin.iter (fun v c -> if v < n then obj.(v) <- sign *. c) obj_expr;
  let cons = Model.constrs m in
  let rows =
    Array.map
      (fun (c : Model.constr) -> Array.of_list (Lin.terms c.Model.c_expr))
      cons
  in
  let senses = Array.map (fun (c : Model.constr) -> c.Model.c_sense) cons in
  let rhs = Array.map (fun (c : Model.constr) -> c.Model.c_rhs) cons in
  { ncols = n; rows; senses; rhs; obj; obj_const = sign *. Lin.constant obj_expr }

(* Nonbasic variable status.  Basic variables are tracked via [basis]. *)
type vstat = Basic | At_lower | At_upper | Free_zero

type state = {
  p : problem;
  m : int;  (* rows *)
  ntot : int;  (* structural + slack + artificial columns *)
  cols : (int * float) array array;  (* sparse columns, length ntot *)
  lb : float array;  (* working bounds, length ntot *)
  ub : float array;
  stat : vstat array;
  basis : int array;  (* column basic in each row *)
  binv : float array array;  (* dense basis inverse, m x m *)
  xb : float array;  (* values of basic variables per row *)
  cost : float array;  (* current-phase cost, length ntot *)
  mutable niter : int;
  mutable degen_count : int;
  mutable bland : bool;
}

let pivot_tol = 1e-9

let nb_value st j =
  match st.stat.(j) with
  | At_lower -> st.lb.(j)
  | At_upper -> st.ub.(j)
  | Free_zero -> 0.
  | Basic -> invalid_arg "nb_value: basic"

(* Build sparse columns for structural variables from the rows, and
   single-entry columns for slacks; artificial columns are appended by
   [init_state] with their sign. *)
let build_cols p m =
  let n = p.ncols in
  let counts = Array.make n 0 in
  Array.iter (fun row -> Array.iter (fun (j, _) -> counts.(j) <- counts.(j) + 1) row) p.rows;
  let cols = Array.make (n + (2 * m)) [||] in
  let fill = Array.make n 0 in
  for j = 0 to n - 1 do
    cols.(j) <- Array.make counts.(j) (0, 0.)
  done;
  Array.iteri
    (fun i row ->
      Array.iter
        (fun (j, a) ->
          cols.(j).(fill.(j)) <- (i, a);
          fill.(j) <- fill.(j) + 1)
        row)
    p.rows;
  cols

let init_state p ~lb:wlb ~ub:wub =
  let m = Array.length p.rows in
  let n = p.ncols in
  let ntot = n + (2 * m) in
  let cols = build_cols p m in
  let lb = Array.make ntot 0. and ub = Array.make ntot infinity in
  Array.blit wlb 0 lb 0 n;
  Array.blit wub 0 ub 0 n;
  (* Slack bounds encode the row sense: a.x + s = b. *)
  for i = 0 to m - 1 do
    let s = n + i in
    cols.(s) <- [| (i, 1.0) |];
    match p.senses.(i) with
    | Model.Le ->
        lb.(s) <- 0.;
        ub.(s) <- infinity
    | Model.Ge ->
        lb.(s) <- neg_infinity;
        ub.(s) <- 0.
    | Model.Eq ->
        lb.(s) <- 0.;
        ub.(s) <- 0.
  done;
  let stat = Array.make ntot At_lower in
  for j = 0 to n - 1 do
    stat.(j) <-
      (if Float.is_finite lb.(j) then At_lower
       else if Float.is_finite ub.(j) then At_upper
       else Free_zero)
  done;
  (* Row residuals under the nonbasic assignment. *)
  let resid = Array.copy p.rhs in
  for j = 0 to n - 1 do
    let v =
      match stat.(j) with
      | At_lower -> lb.(j)
      | At_upper -> ub.(j)
      | Free_zero | Basic -> 0.
    in
    if v <> 0. then Array.iter (fun (i, a) -> resid.(i) <- resid.(i) -. (a *. v)) cols.(j)
  done;
  let basis = Array.make m 0 in
  let binv = Array.init m (fun _ -> Array.make m 0.) in
  let xb = Array.make m 0. in
  let cost = Array.make ntot 0. in
  for i = 0 to m - 1 do
    let s = n + i and art = n + m + i in
    let r = resid.(i) in
    if r >= lb.(s) -. 1e-12 && r <= ub.(s) +. 1e-12 then begin
      (* Slack basic at the residual value; artificial unused. *)
      basis.(i) <- s;
      stat.(s) <- Basic;
      xb.(i) <- r;
      binv.(i).(i) <- 1.0;
      cols.(art) <- [| (i, 1.0) |];
      ub.(art) <- 0.
    end
    else begin
      (* Slack pinned at its nearest bound (0 in all senses); an
         artificial with sign g carries the residual: x_art = |r| >= 0. *)
      let g = if r >= 0. then 1.0 else -1.0 in
      cols.(art) <- [| (i, g) |];
      stat.(s) <- At_lower;
      (match p.senses.(i) with
      | Model.Ge -> stat.(s) <- At_upper
      | Model.Le | Model.Eq -> ());
      basis.(i) <- art;
      stat.(art) <- Basic;
      xb.(i) <- Float.abs r;
      binv.(i).(i) <- g;
      cost.(art) <- 1.0 (* phase-1 cost *)
    end
  done;
  { p; m; ntot; cols; lb; ub; stat; basis; binv; xb; cost;
    niter = 0; degen_count = 0; bland = false }

(* y = c_B^T B^{-1} *)
let dual_prices st =
  let y = Array.make st.m 0. in
  for i = 0 to st.m - 1 do
    let cb = st.cost.(st.basis.(i)) in
    if cb <> 0. then begin
      let row = st.binv.(i) in
      for k = 0 to st.m - 1 do
        y.(k) <- y.(k) +. (cb *. row.(k))
      done
    end
  done;
  y

let reduced_cost st y j =
  let d = ref st.cost.(j) in
  Array.iter (fun (i, a) -> d := !d -. (y.(i) *. a)) st.cols.(j);
  !d

(* Select the entering column, or None at (phase-)optimality. *)
let price st ~dual_tol =
  let y = dual_prices st in
  let best = ref None and best_score = ref dual_tol in
  let consider j =
    if st.stat.(j) <> Basic && st.lb.(j) < st.ub.(j) then begin
      let d = reduced_cost st y j in
      let score =
        match st.stat.(j) with
        | At_lower -> -.d
        | At_upper -> d
        | Free_zero -> Float.abs d
        | Basic -> 0.
      in
      if score > !best_score then
        if st.bland then begin
          if !best = None then begin
            best := Some (j, d);
            best_score := dual_tol (* keep first (smallest index) *)
          end
        end
        else begin
          best := Some (j, d);
          best_score := score
        end
    end
  in
  for j = 0 to st.ntot - 1 do
    match !best with
    | Some _ when st.bland -> ()
    | _ -> consider j
  done;
  !best

(* w = B^{-1} A_j *)
let ftran st j =
  let w = Array.make st.m 0. in
  Array.iter
    (fun (r, a) ->
      if a <> 0. then
        for i = 0 to st.m - 1 do
          w.(i) <- w.(i) +. (st.binv.(i).(r) *. a)
        done)
    st.cols.(j);
  w

type ratio_outcome =
  | Unbounded
  | Bound_flip of float
  | Leave of { row : int; t : float; to_upper : bool }

let ratio_test st j sigma w =
  let span = st.ub.(j) -. st.lb.(j) in
  let best_t = ref (if Float.is_finite span then span else infinity) in
  let leave = ref None in
  for i = 0 to st.m - 1 do
    let wi = w.(i) in
    if Float.abs wi > pivot_tol then begin
      let k = st.basis.(i) in
      let dx = -.sigma *. wi in
      let t, to_upper =
        if dx > 0. then
          (if Float.is_finite st.ub.(k) then (st.ub.(k) -. st.xb.(i)) /. dx else infinity), true
        else (if Float.is_finite st.lb.(k) then (st.lb.(k) -. st.xb.(i)) /. dx else infinity), false
      in
      let t = Float.max t 0. in
      let better =
        t < !best_t -. 1e-12
        || (t <= !best_t +. 1e-12
            &&
            match !leave with
            | None -> true
            | Some (r, _) ->
                if st.bland then st.basis.(i) < st.basis.(r)
                else Float.abs wi > Float.abs w.(r))
      in
      if better then begin
        best_t := Float.min t !best_t;
        leave := Some (i, to_upper)
      end
    end
  done;
  match !leave with
  | None -> if Float.is_finite !best_t then Bound_flip !best_t else Unbounded
  | Some (r, to_upper) ->
      if Float.is_finite span && span <= !best_t then Bound_flip span
      else if Float.is_finite !best_t then Leave { row = r; t = !best_t; to_upper }
      else Unbounded

let apply_step st j sigma w t =
  if t <> 0. then
    for i = 0 to st.m - 1 do
      st.xb.(i) <- st.xb.(i) -. (sigma *. w.(i) *. t)
    done;
  ignore j

let pivot st j sigma w r t ~to_upper =
  let enter_val = nb_value st j +. (sigma *. t) in
  let leaving = st.basis.(r) in
  st.stat.(leaving) <- (if to_upper then At_upper else At_lower);
  (* Snap the leaving variable exactly onto its bound. *)
  st.basis.(r) <- j;
  st.stat.(j) <- Basic;
  st.xb.(r) <- enter_val;
  (* binv := E * binv with the elementary transform defined by w, row r. *)
  let wr = w.(r) in
  let brow = st.binv.(r) in
  for k = 0 to st.m - 1 do
    brow.(k) <- brow.(k) /. wr
  done;
  for i = 0 to st.m - 1 do
    if i <> r then begin
      let f = w.(i) in
      if Float.abs f > 0. then begin
        let row = st.binv.(i) in
        for k = 0 to st.m - 1 do
          row.(k) <- row.(k) -. (f *. brow.(k))
        done
      end
    end
  done

(* Rebuild binv and xb from scratch (numerical hygiene). *)
let refactorize st =
  let m = st.m in
  (* Assemble the basis matrix and invert via Gauss-Jordan with partial
     pivoting. *)
  let a = Array.init m (fun _ -> Array.make m 0.) in
  let inv = Array.init m (fun i -> Array.init m (fun k -> if i = k then 1.0 else 0.)) in
  for i = 0 to m - 1 do
    Array.iter (fun (r, c) -> a.(r).(i) <- c) st.cols.(st.basis.(i))
  done;
  let ok = ref true in
  for col = 0 to m - 1 do
    if !ok then begin
      let piv = ref col in
      for i = col + 1 to m - 1 do
        if Float.abs a.(i).(col) > Float.abs a.(!piv).(col) then piv := i
      done;
      if Float.abs a.(!piv).(col) < 1e-12 then ok := false
      else begin
        if !piv <> col then begin
          let tmp = a.(col) in
          a.(col) <- a.(!piv);
          a.(!piv) <- tmp;
          let tmp = inv.(col) in
          inv.(col) <- inv.(!piv);
          inv.(!piv) <- tmp
        end;
        let d = a.(col).(col) in
        for k = 0 to m - 1 do
          a.(col).(k) <- a.(col).(k) /. d;
          inv.(col).(k) <- inv.(col).(k) /. d
        done;
        for i = 0 to m - 1 do
          if i <> col then begin
            let f = a.(i).(col) in
            if f <> 0. then
              for k = 0 to m - 1 do
                a.(i).(k) <- a.(i).(k) -. (f *. a.(col).(k));
                inv.(i).(k) <- inv.(i).(k) -. (f *. inv.(col).(k))
              done
          end
        done
      end
    end
  done;
  if !ok then begin
    for i = 0 to m - 1 do
      Array.blit inv.(i) 0 st.binv.(i) 0 m
    done;
    (* xb = B^{-1} (b - N x_N) *)
    let resid = Array.copy st.p.rhs in
    for j = 0 to st.ntot - 1 do
      if st.stat.(j) <> Basic then begin
        let v = nb_value st j in
        if v <> 0. then
          Array.iter (fun (i, a) -> resid.(i) <- resid.(i) -. (a *. v)) st.cols.(j)
      end
    done;
    for i = 0 to m - 1 do
      let acc = ref 0. in
      let row = st.binv.(i) in
      for k = 0 to m - 1 do
        acc := !acc +. (row.(k) *. resid.(k))
      done;
      st.xb.(i) <- !acc
    done
  end

let current_objective st =
  let total = ref 0. in
  for j = 0 to st.ntot - 1 do
    if st.stat.(j) <> Basic && st.cost.(j) <> 0. then
      total := !total +. (st.cost.(j) *. nb_value st j)
  done;
  for i = 0 to st.m - 1 do
    let c = st.cost.(st.basis.(i)) in
    if c <> 0. then total := !total +. (c *. st.xb.(i))
  done;
  !total

(* Run simplex iterations under the current [st.cost] until no entering
   column is found.  Returns [Ok ()] at phase optimality. *)
let optimize st ~max_iterations ~dual_tol ~deadline =
  let refactor_period = 512 in
  let rec loop () =
    if st.niter >= max_iterations then Error Status.Lp_iteration_limit
    else if
      Float.is_finite deadline
      && st.niter land 63 = 0
      && Unix.gettimeofday () > deadline
    then Error Status.Lp_iteration_limit
    else
      match price st ~dual_tol with
      | None -> Ok ()
      | Some (j, d) -> (
          let sigma =
            match st.stat.(j) with
            | At_lower -> 1.0
            | At_upper -> -1.0
            | Free_zero -> if d < 0. then 1.0 else -1.0
            | Basic -> assert false
          in
          st.niter <- st.niter + 1;
          if st.niter mod refactor_period = 0 then refactorize st;
          let w = ftran st j in
          match ratio_test st j sigma w with
          | Unbounded -> Error Status.Lp_unbounded
          | Bound_flip t ->
              apply_step st j sigma w t;
              st.stat.(j) <- (match st.stat.(j) with At_lower -> At_upper | _ -> At_lower);
              st.degen_count <- 0;
              st.bland <- false;
              loop ()
          | Leave { row; t; to_upper } ->
              if t <= 1e-10 then begin
                st.degen_count <- st.degen_count + 1;
                if st.degen_count > 200 then st.bland <- true
              end
              else begin
                st.degen_count <- 0;
                st.bland <- false
              end;
              apply_step st j sigma w t;
              pivot st j sigma w row t ~to_upper;
              loop ())
  in
  loop ()

let extract_primal st =
  let n = st.p.ncols in
  let x = Array.make n 0. in
  for j = 0 to n - 1 do
    if st.stat.(j) <> Basic then x.(j) <- nb_value st j
  done;
  for i = 0 to st.m - 1 do
    let k = st.basis.(i) in
    if k < n then x.(k) <- st.xb.(i)
  done;
  x

let true_objective st x =
  let acc = ref st.p.obj_const in
  for j = 0 to st.p.ncols - 1 do
    acc := !acc +. (st.p.obj.(j) *. x.(j))
  done;
  !acc

let solve ?max_iterations ?(feas_tol = 1e-7) ?(deadline = infinity) p ~lb ~ub =
  let m = Array.length p.rows in
  (* Reject inverted working bounds up-front (branch & bound can create
     them); an empty box is infeasible. *)
  let inverted = ref false in
  for j = 0 to p.ncols - 1 do
    if lb.(j) > ub.(j) +. 1e-12 then inverted := true
  done;
  if !inverted then
    { status = Status.Lp_infeasible; objective = infinity;
      primal = Array.make p.ncols 0.; iterations = 0 }
  else begin
    let st = init_state p ~lb ~ub in
    let max_iterations =
      match max_iterations with
      | Some k -> k
      | None -> 50_000 + (50 * (m + p.ncols))
    in
    (* Phase 1: minimize total artificial value (cost set by init). *)
    let phase1_needed = ref false in
    for i = 0 to m - 1 do
      if st.basis.(i) >= p.ncols + m then phase1_needed := true
    done;
    let phase1 =
      if !phase1_needed then optimize st ~max_iterations ~dual_tol:1e-9 ~deadline
      else Ok ()
    in
    match phase1 with
    | Error s -> { status = s; objective = infinity; primal = extract_primal st; iterations = st.niter }
    | Ok () ->
        let infeas = current_objective st in
        if !phase1_needed && infeas > feas_tol *. 10. then
          { status = Status.Lp_infeasible; objective = infinity;
            primal = extract_primal st; iterations = st.niter }
        else begin
          (* Seal artificials and install the phase-2 cost. *)
          for i = 0 to m - 1 do
            let art = p.ncols + m + i in
            st.ub.(art) <- 0.;
            st.lb.(art) <- 0.;
            st.cost.(art) <- 0.
          done;
          Array.blit p.obj 0 st.cost 0 p.ncols;
          st.bland <- false;
          st.degen_count <- 0;
          match optimize st ~max_iterations ~dual_tol:1e-7 ~deadline with
          | Error s ->
              let x = extract_primal st in
              let objective = if s = Status.Lp_iteration_limit then true_objective st x else neg_infinity in
              { status = s; objective; primal = x; iterations = st.niter }
          | Ok () ->
              refactorize st;
              let x = extract_primal st in
              { status = Status.Lp_optimal; objective = true_objective st x;
                primal = x; iterations = st.niter }
        end
  end

let solve_model ?max_iterations m =
  let p = of_model m in
  let n = p.ncols in
  let lb = Array.init n (Model.var_lb m) and ub = Array.init n (Model.var_ub m) in
  let r = solve ?max_iterations p ~lb ~ub in
  match fst (Model.objective m) with
  | Model.Minimize -> r
  | Model.Maximize ->
      let objective =
        match r.status with
        | Status.Lp_unbounded -> infinity
        | Status.Lp_infeasible -> neg_infinity
        | Status.Lp_optimal | Status.Lp_iteration_limit -> -.r.objective
      in
      { r with objective }
