(** Bounded-variable primal simplex for linear programs.

    Solves [min c^T x  s.t.  A x {<=,>=,=} b,  l <= x <= u] using the
    two-phase method: artificial variables give an identity starting
    basis; phase 1 minimizes total artificial value, phase 2 the true
    objective.  The basis inverse is kept explicitly (dense) and updated
    by elementary row operations at each pivot; Dantzig pricing with an
    automatic switch to Bland's rule under prolonged degeneracy
    guarantees termination.

    Variable bounds may be infinite.  Maximization is handled by the
    caller negating the objective (see {!Branch_bound} and {!solve_model}).

    The solver works on an immutable {!problem} snapshot so that branch &
    bound can re-solve with modified bounds without rebuilding rows. *)

type problem = {
  ncols : int;  (** Number of structural variables. *)
  rows : (int * float) array array;  (** Sparse rows: [(col, coef)] lists. *)
  senses : Model.sense array;
  rhs : float array;
  obj : float array;  (** Minimization coefficients, length [ncols]. *)
  obj_const : float;
}

type result = {
  status : Status.lp_status;
  objective : float;  (** Meaningful when [status = Lp_optimal]. *)
  primal : float array;  (** Length [ncols]; variable values. *)
  iterations : int;
}

val of_model : Model.t -> problem
(** Snapshot a model's rows into solver form.  Maximization objectives
    are negated (callers must negate reported objectives back). *)

val solve :
  ?max_iterations:int ->
  ?feas_tol:float ->
  ?deadline:float ->
  problem ->
  lb:float array ->
  ub:float array ->
  result
(** Solve the LP relaxation with the given working bounds (arrays of
    length [ncols]; entries may be [neg_infinity]/[infinity]).
    [max_iterations] defaults to [50_000 + 50 * (rows + cols)].
    [feas_tol] (default [1e-7]) is the primal feasibility tolerance.
    [deadline] is an absolute [Unix.gettimeofday] instant after which
    the solve aborts with [Lp_iteration_limit] (checked every few
    iterations) — branch & bound uses it to make its wall-clock limit
    hold even when a single LP is huge. *)

val solve_model : ?max_iterations:int -> Model.t -> result
(** Convenience wrapper: snapshot the model, use its declared bounds and
    solve, converting the objective sign back for maximization models.
    Integrality is ignored (LP relaxation). *)
