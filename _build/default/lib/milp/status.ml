(* Shared solution-status types for the LP and MILP solvers. *)

type lp_status =
  | Lp_optimal
  | Lp_infeasible
  | Lp_unbounded
  | Lp_iteration_limit

type mip_status =
  | Mip_optimal
  | Mip_infeasible
  | Mip_unbounded
  | Mip_feasible  (* stopped at a limit with an incumbent *)
  | Mip_unknown   (* stopped at a limit without an incumbent *)

let lp_status_to_string = function
  | Lp_optimal -> "optimal"
  | Lp_infeasible -> "infeasible"
  | Lp_unbounded -> "unbounded"
  | Lp_iteration_limit -> "iteration-limit"

let mip_status_to_string = function
  | Mip_optimal -> "optimal"
  | Mip_infeasible -> "infeasible"
  | Mip_unbounded -> "unbounded"
  | Mip_feasible -> "feasible"
  | Mip_unknown -> "unknown"
