(** Solver status codes shared by {!Simplex} and {!Branch_bound}. *)

type lp_status =
  | Lp_optimal
  | Lp_infeasible
  | Lp_unbounded
  | Lp_iteration_limit  (** Stopped before convergence. *)

type mip_status =
  | Mip_optimal  (** Incumbent proven optimal (within gap tolerances). *)
  | Mip_infeasible
  | Mip_unbounded
  | Mip_feasible  (** Stopped at a limit with an incumbent in hand. *)
  | Mip_unknown
      (** Stopped at a limit with no incumbent, or exhausted the tree
          under a caller-supplied cutoff. *)

val lp_status_to_string : lp_status -> string

val mip_status_to_string : mip_status -> string
