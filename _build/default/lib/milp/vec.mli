(** Minimal growable vector (OCaml 5.1 has no [Dynarray]). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-range index. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument on out-of-range index. *)

val add_last : 'a t -> 'a -> unit

val to_array : 'a t -> 'a array

val of_array : 'a array -> 'a t

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
