lib/netgraph/digraph.ml: Array Format Hashtbl List Printf
