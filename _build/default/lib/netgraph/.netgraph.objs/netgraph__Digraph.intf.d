lib/netgraph/digraph.mli: Format
