lib/netgraph/dijkstra.ml: Array Digraph Float List
