lib/netgraph/dijkstra.mli: Digraph
