lib/netgraph/maxflow.ml: Array Digraph Float Hashtbl List Option Printf Queue
