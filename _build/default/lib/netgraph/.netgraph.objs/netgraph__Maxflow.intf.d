lib/netgraph/maxflow.mli: Digraph Path
