lib/netgraph/path.ml: Digraph Format Hashtbl Int List
