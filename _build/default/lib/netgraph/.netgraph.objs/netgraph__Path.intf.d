lib/netgraph/path.mli: Digraph Format
