lib/netgraph/yen.ml: Dijkstra Hashtbl List Path Set
