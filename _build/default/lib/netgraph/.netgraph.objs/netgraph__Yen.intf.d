lib/netgraph/yen.mli: Digraph Path
