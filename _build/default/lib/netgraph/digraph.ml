(* Adjacency is a per-node hashtable keyed by neighbour id; [order]
   remembers insertion order so traversals are deterministic. *)
type adj = { tbl : (int, float) Hashtbl.t; mutable order : int list (* reversed *) }

type t = { n : int; fwd : adj array; bwd : adj array; mutable ecount : int }

let mk_adj () = { tbl = Hashtbl.create 4; order = [] }

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { n; fwd = Array.init n (fun _ -> mk_adj ()); bwd = Array.init n (fun _ -> mk_adj ()); ecount = 0 }

let nnodes g = g.n

let nedges g = g.ecount

let check g u name =
  if u < 0 || u >= g.n then
    invalid_arg (Printf.sprintf "Digraph.%s: node %d out of range [0, %d)" name u g.n)

let add_dir a u v w =
  let existed = Hashtbl.mem a.(u).tbl v in
  Hashtbl.replace a.(u).tbl v w;
  if not existed then a.(u).order <- v :: a.(u).order;
  existed

let add_edge g ?(w = 1.0) u v =
  check g u "add_edge";
  check g v "add_edge";
  if u = v then invalid_arg "Digraph.add_edge: self-loop";
  let existed = add_dir g.fwd u v w in
  let _ = add_dir g.bwd v u w in
  if not existed then g.ecount <- g.ecount + 1

let add_undirected g ?w u v =
  add_edge g ?w u v;
  add_edge g ?w v u

let mem_edge g u v =
  check g u "mem_edge";
  check g v "mem_edge";
  Hashtbl.mem g.fwd.(u).tbl v

let weight_opt g u v =
  check g u "weight";
  check g v "weight";
  Hashtbl.find_opt g.fwd.(u).tbl v

let weight g u v =
  match weight_opt g u v with Some w -> w | None -> raise Not_found

let set_weight g u v w =
  if not (mem_edge g u v) then raise Not_found;
  Hashtbl.replace g.fwd.(u).tbl v w;
  Hashtbl.replace g.bwd.(v).tbl u w

let neighbours a u =
  List.rev_map (fun v -> (v, Hashtbl.find a.(u).tbl v)) a.(u).order

let succ g u =
  check g u "succ";
  neighbours g.fwd u

let pred g u =
  check g u "pred";
  neighbours g.bwd u

let out_degree g u =
  check g u "out_degree";
  Hashtbl.length g.fwd.(u).tbl

let in_degree g u =
  check g u "in_degree";
  Hashtbl.length g.bwd.(u).tbl

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun (v, w) -> f u v w) (neighbours g.fwd u)
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v w -> acc := f u v w !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun u v w acc -> (u, v, w) :: acc) g [])

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v, w) -> add_edge g ~w u v) es;
  g

let copy g =
  let h = create g.n in
  iter_edges (fun u v w -> add_edge h ~w u v) g;
  h

let transpose g =
  let h = create g.n in
  iter_edges (fun u v w -> add_edge h ~w v u) g;
  h

let reachable g s =
  check g s "reachable";
  let seen = Array.make g.n false in
  let rec visit u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter (fun (v, _) -> visit v) (succ g u)
    end
  in
  visit s;
  seen

let pp ppf g =
  Format.fprintf ppf "digraph(%d nodes, %d edges)" g.n g.ecount
