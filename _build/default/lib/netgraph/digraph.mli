(** Weighted directed graphs over a fixed set of nodes [0 .. n-1].

    Edges carry a float weight (the path-loss estimate in the wireless
    encoding; any non-negative cost in general).  Adjacency is stored
    both forward and backward, so successor and predecessor queries are
    O(out-degree) / O(in-degree).  Edge weights are mutable — Algorithm 1
    "disconnects" a path by raising its edge weights to [infinity] —
    but the node set is fixed at creation. *)

type t

val create : int -> t
(** [create n] is a graph with nodes [0 .. n-1] and no edges. *)

val nnodes : t -> int

val nedges : t -> int
(** Number of directed edges. *)

val add_edge : t -> ?w:float -> int -> int -> unit
(** [add_edge g u v] adds the directed edge [u -> v] with weight [w]
    (default [1.0]).  Re-adding an existing edge overwrites its weight.
    @raise Invalid_argument on self-loops or out-of-range nodes. *)

val add_undirected : t -> ?w:float -> int -> int -> unit
(** Adds both [u -> v] and [v -> u]. *)

val mem_edge : t -> int -> int -> bool

val weight : t -> int -> int -> float
(** @raise Not_found if the edge is absent. *)

val weight_opt : t -> int -> int -> float option

val set_weight : t -> int -> int -> float -> unit
(** @raise Not_found if the edge is absent. *)

val succ : t -> int -> (int * float) list
(** Successors with weights, in insertion order. *)

val pred : t -> int -> (int * float) list

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val iter_edges : (int -> int -> float -> unit) -> t -> unit
(** Iterate over all edges [(u, v, w)]. *)

val fold_edges : (int -> int -> float -> 'a -> 'a) -> t -> 'a -> 'a

val edges : t -> (int * int * float) list

val of_edges : int -> (int * int * float) list -> t
(** [of_edges n es] builds the graph in one call. *)

val copy : t -> t
(** Deep copy (edge weights are independent). *)

val transpose : t -> t
(** Graph with every edge reversed. *)

val reachable : t -> int -> bool array
(** [reachable g s] marks every node reachable from [s] (including [s]). *)

val pp : Format.formatter -> t -> unit
