(** Dijkstra shortest paths with optional node/edge masking.

    Masks are what Yen's algorithm needs: the spur computation must
    ignore the root-path nodes and the outgoing edges already used by
    shorter candidate paths, without mutating the graph. *)

val shortest_path :
  ?banned_node:(int -> bool) ->
  ?banned_edge:(int -> int -> bool) ->
  Digraph.t ->
  src:int ->
  dst:int ->
  (float * int list) option
(** [shortest_path g ~src ~dst] returns [(cost, nodes)] for a minimum
    total-weight path [src -> ... -> dst], or [None] if unreachable.
    The node list includes both endpoints.  Banned nodes other than
    [src]/[dst] are not traversed; banned edges are skipped.
    @raise Invalid_argument on negative edge weights encountered during
    the search. *)

val distances :
  ?banned_node:(int -> bool) ->
  ?banned_edge:(int -> int -> bool) ->
  Digraph.t ->
  src:int ->
  float array
(** Single-source distances ([infinity] when unreachable). *)
