(* Unit-capacity Edmonds-Karp specialised to edge-disjoint paths: the
   residual graph is a set of directed unit edges; a BFS augmenting path
   flips its edges. *)

type residual = {
  n : int;
  fwd : (int * int, bool) Hashtbl.t;  (* edge present in residual *)
  adj : (int, int list) Hashtbl.t;  (* static neighbour lists, both directions *)
}

let build ?(ignore_infinite = true) g =
  let n = Digraph.nnodes g in
  let fwd = Hashtbl.create 256 in
  let adj = Hashtbl.create 64 in
  let add_adj u v =
    let l = Option.value ~default:[] (Hashtbl.find_opt adj u) in
    if not (List.mem v l) then Hashtbl.replace adj u (v :: l)
  in
  Digraph.iter_edges
    (fun u v w ->
      if (not ignore_infinite) || Float.is_finite w then begin
        Hashtbl.replace fwd (u, v) true;
        if not (Hashtbl.mem fwd (v, u)) then Hashtbl.replace fwd (v, u) false;
        add_adj u v;
        add_adj v u
      end)
    g;
  { n; fwd; adj }

let bfs r ~src ~dst =
  let prev = Array.make r.n (-1) in
  let seen = Array.make r.n false in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.push src queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if
          (not seen.(v))
          && Option.value ~default:false (Hashtbl.find_opt r.fwd (u, v))
        then begin
          seen.(v) <- true;
          prev.(v) <- u;
          if v = dst then found := true else Queue.push v queue
        end)
      (Option.value ~default:[] (Hashtbl.find_opt r.adj u))
  done;
  if !found then Some prev else None

let augment r prev ~src ~dst =
  let rec go v =
    if v <> src then begin
      let u = prev.(v) in
      Hashtbl.replace r.fwd (u, v) false;
      Hashtbl.replace r.fwd (v, u) true;
      go u
    end
  in
  go dst

let check g ~src ~dst name =
  let n = Digraph.nnodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg (Printf.sprintf "Maxflow.%s: endpoint out of range" name);
  if src = dst then invalid_arg (Printf.sprintf "Maxflow.%s: src = dst" name)

let run ?ignore_infinite g ~src ~dst =
  let r = build ?ignore_infinite g in
  let flow = ref 0 in
  let continue = ref true in
  while !continue do
    match bfs r ~src ~dst with
    | Some prev ->
        augment r prev ~src ~dst;
        incr flow
    | None -> continue := false
  done;
  (r, !flow)

let edge_disjoint_capacity ?ignore_infinite g ~src ~dst =
  check g ~src ~dst "edge_disjoint_capacity";
  snd (run ?ignore_infinite g ~src ~dst)

let disjoint_paths g ~src ~dst =
  check g ~src ~dst "disjoint_paths";
  let r, flow = run g ~src ~dst in
  (* Decompose the flow: saturated original edges are those whose
     forward residual is now false while the edge existed in g. *)
  let used = Hashtbl.create 64 in
  Digraph.iter_edges
    (fun u v w ->
      if
        Float.is_finite w
        && not (Option.value ~default:true (Hashtbl.find_opt r.fwd (u, v)))
      then Hashtbl.replace used (u, v) true)
    g;
  let paths = ref [] in
  for _ = 1 to flow do
    (* Walk from src along used edges, consuming them. *)
    let rec walk acc u =
      if u = dst then List.rev (u :: acc)
      else begin
        let next =
          List.find_opt
            (fun (v, _) -> Option.value ~default:false (Hashtbl.find_opt used (u, v)))
            (Digraph.succ g u)
        in
        match next with
        | Some (v, _) ->
            Hashtbl.replace used (u, v) false;
            walk (u :: acc) v
        | None -> List.rev (u :: acc) (* should not happen on a valid flow *)
      end
    in
    paths := walk [] src :: !paths
  done;
  List.rev !paths
