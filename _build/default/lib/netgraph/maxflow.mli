(** Edge-disjoint path capacity via unit-capacity max-flow
    (Edmonds–Karp).

    Menger's theorem: the maximum number of pairwise edge-disjoint
    [s -> t] paths equals the minimum [s-t] edge cut.  Algorithm 1 uses
    this to distinguish "the pool construction failed" from "the graph
    cannot support that many disjoint replicas at all", and the
    validator uses it as an upper bound on achievable replication. *)

val edge_disjoint_capacity :
  ?ignore_infinite:bool -> Digraph.t -> src:int -> dst:int -> int
(** Maximum number of pairwise edge-disjoint simple paths from [src] to
    [dst].  Edges with non-finite weight are excluded when
    [ignore_infinite] (default [true]) — matching the convention that
    Algorithm 1 disconnects edges by setting their weight to infinity.
    Returns 0 when [dst] is unreachable.
    @raise Invalid_argument if [src = dst] or out of range. *)

val disjoint_paths : Digraph.t -> src:int -> dst:int -> Path.t list
(** A maximum set of edge-disjoint paths realizing
    {!edge_disjoint_capacity} (path count equals the capacity). *)
