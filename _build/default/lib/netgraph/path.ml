type t = int list

let rec edges = function
  | [] | [ _ ] -> []
  | u :: (v :: _ as rest) -> (u, v) :: edges rest

let length p = Int.max 0 (List.length p - 1)

let cost g p = List.fold_left (fun acc (u, v) -> acc +. Digraph.weight g u v) 0. (edges p)

let is_simple p =
  let seen = Hashtbl.create (List.length p) in
  List.for_all
    (fun u ->
      if Hashtbl.mem seen u then false
      else begin
        Hashtbl.add seen u ();
        true
      end)
    p

let is_valid g p =
  p <> []
  && is_simple p
  && List.for_all (fun (u, v) -> Digraph.mem_edge g u v) (edges p)

let source = function [] -> None | u :: _ -> Some u

let rec destination = function [] -> None | [ u ] -> Some u | _ :: rest -> destination rest

let interior p =
  match p with
  | [] | [ _ ] | [ _; _ ] -> []
  | _ :: rest -> List.filteri (fun i _ -> i < List.length rest - 1) rest

let node_disjoint a b =
  let ia = interior a and ib = interior b in
  let in_b = Hashtbl.create 16 in
  List.iter (fun u -> Hashtbl.replace in_b u ()) ib;
  (* also endpoints of one must not be interior of the other *)
  let endpoints p =
    match (source p, destination p) with
    | Some s, Some d -> [ s; d ]
    | _ -> []
  in
  List.for_all (fun u -> not (Hashtbl.mem in_b u)) ia
  && List.for_all (fun u -> not (Hashtbl.mem in_b u)) (endpoints a)
  &&
  let in_a = Hashtbl.create 16 in
  List.iter (fun u -> Hashtbl.replace in_a u ()) ia;
  List.for_all (fun u -> not (Hashtbl.mem in_a u)) (endpoints b)

let shared_edges a b =
  let eb = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace eb e ()) (edges b);
  List.filter (fun e -> Hashtbl.mem eb e) (edges a)

let edge_disjoint a b = shared_edges a b = []

let equal a b = a = b

let pp ppf p =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
    Format.pp_print_int ppf p
