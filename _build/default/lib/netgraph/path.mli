(** Utilities over node-list paths (as produced by {!Dijkstra} and
    {!Yen}).  A path is a list of distinct node ids; consecutive pairs
    are its edges. *)

type t = int list
(** A loopless path, both endpoints included. *)

val edges : t -> (int * int) list
(** Consecutive node pairs of the path, in order. *)

val length : t -> int
(** Number of hops, i.e. [List.length p - 1] ([0] for the empty and
    singleton paths). *)

val cost : Digraph.t -> t -> float
(** Total edge weight along the path.
    @raise Not_found if an edge is missing from the graph. *)

val is_valid : Digraph.t -> t -> bool
(** All edges present, no repeated node, length >= 1 node. *)

val is_simple : t -> bool
(** No repeated node. *)

val source : t -> int option

val destination : t -> int option

val node_disjoint : t -> t -> bool
(** No shared node except possibly shared endpoints. *)

val edge_disjoint : t -> t -> bool
(** No shared directed edge. *)

val shared_edges : t -> t -> (int * int) list
(** Directed edges present in both paths. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** e.g. [0 -> 3 -> 7]. *)
