module Pset = Set.Make (struct
  type t = int list

  let compare = compare
end)

(* Candidate pool ordered by cost; a plain sorted association list is
   fine because K is small (the paper uses K* between 1 and 20). *)
let insert_candidate candidates (cost, path) =
  let rec go = function
    | [] -> [ (cost, path) ]
    | (c, p) :: rest as l ->
        if p = path then l (* duplicate *)
        else if cost < c then (cost, path) :: l
        else (c, p) :: go rest
  in
  go candidates

let prefix_n path n =
  let rec go acc i = function
    | _ when i = n -> List.rev acc
    | [] -> List.rev acc
    | x :: rest -> go (x :: acc) (i + 1) rest
  in
  go [] 0 path

let nth_opt_path path i = List.nth_opt path i

let k_shortest g ~src ~dst ~k =
  if k < 0 then invalid_arg "Yen.k_shortest: negative k";
  if src = dst then invalid_arg "Yen.k_shortest: src = dst";
  if k = 0 then []
  else
    match Dijkstra.shortest_path g ~src ~dst with
    | None -> []
    | Some first ->
        let accepted = ref [ first ] in
        let accepted_set = ref (Pset.singleton (snd first)) in
        let candidates = ref [] in
        let continue = ref true in
        while List.length !accepted < k && !continue do
          let _, last_path = List.hd (List.rev !accepted) in
          let hops = List.length last_path - 1 in
          (* Spur from every node of the previous path except the
             destination. *)
          for i = 0 to hops - 1 do
            let root = prefix_n last_path (i + 1) in
            let spur = List.nth root i in
            (* Edges leaving the spur node along any accepted/candidate
               path sharing this root are banned. *)
            let banned_edges = Hashtbl.create 8 in
            let consider_path p =
              if prefix_n p (i + 1) = root then
                match (nth_opt_path p i, nth_opt_path p (i + 1)) with
                | Some u, Some v -> Hashtbl.replace banned_edges (u, v) ()
                | _ -> ()
            in
            List.iter (fun (_, p) -> consider_path p) !accepted;
            List.iter (fun (_, p) -> consider_path p) !candidates;
            (* Root nodes except the spur are banned. *)
            let banned_nodes = Hashtbl.create 8 in
            List.iter (fun u -> if u <> spur then Hashtbl.replace banned_nodes u ()) root;
            let spur_result =
              Dijkstra.shortest_path g
                ~banned_node:(fun v -> Hashtbl.mem banned_nodes v)
                ~banned_edge:(fun u v -> Hashtbl.mem banned_edges (u, v))
                ~src:spur ~dst
            in
            match spur_result with
            | None -> ()
            | Some (_, spur_path) ->
                let total = List.rev_append (List.rev root) (List.tl spur_path) in
                if Path.is_simple total && not (Pset.mem total !accepted_set) then begin
                  let cost = Path.cost g total in
                  candidates := insert_candidate !candidates (cost, total)
                end
          done;
          match !candidates with
          | [] -> continue := false
          | best :: rest ->
              candidates := rest;
              accepted := !accepted @ [ best ];
              accepted_set := Pset.add (snd best) !accepted_set
        done;
        !accepted
