(** Yen's K-shortest loopless paths (Yen, Management Science 1971).

    This is the pruning engine of the paper's Algorithm 1: candidate
    network routes are the K best paths between a source/destination
    pair under path-loss edge weights.

    The implementation follows the classical scheme: the best path comes
    from Dijkstra; each subsequent path is the cheapest "spur" deviation
    from an already-accepted path, computed with the root-path nodes
    banned and the already-used continuation edges banned. *)

val k_shortest :
  Digraph.t -> src:int -> dst:int -> k:int -> (float * Path.t) list
(** [k_shortest g ~src ~dst ~k] returns up to [k] loopless paths in
    non-decreasing cost order (fewer if the graph contains fewer
    distinct paths).  Returns [[]] when [dst] is unreachable.
    @raise Invalid_argument if [k < 0] or the endpoints coincide. *)
