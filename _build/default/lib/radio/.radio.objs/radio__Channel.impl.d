lib/radio/channel.ml: Array Float Geometry Hashtbl
