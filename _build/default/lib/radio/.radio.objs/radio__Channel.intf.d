lib/radio/channel.mli: Geometry
