lib/radio/link_budget.ml: Float Modulation
