lib/radio/link_budget.mli: Modulation
