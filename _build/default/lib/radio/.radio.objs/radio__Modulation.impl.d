lib/radio/modulation.ml: Float String
