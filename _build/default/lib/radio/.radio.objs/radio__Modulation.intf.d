lib/radio/modulation.mli:
