type link_params = {
  tx_dbm : float;
  tx_gain_dbi : float;
  rx_gain_dbi : float;
  noise_dbm : float;
}

let rss ~path_loss_db p = p.tx_dbm +. p.tx_gain_dbi +. p.rx_gain_dbi -. path_loss_db

let rss_to_snr ~rss_dbm ~noise_dbm = rss_dbm -. noise_dbm

let snr ~path_loss_db p = rss_to_snr ~rss_dbm:(rss ~path_loss_db p) ~noise_dbm:p.noise_dbm

let etx ?(max_etx = 100.) ~modulation ~packet_bits ~snr_db () =
  let psr = Modulation.packet_success_rate modulation ~snr_db ~packet_bits in
  if psr <= 1. /. max_etx then max_etx else Float.min max_etx (1. /. psr)
