(** Link-budget arithmetic: RSS, SNR and expected transmissions (ETX).

    Implements equation (2a) of the paper,
    [RSS_ij = -PL_ij + tx_i + g_i + g_j] (path loss entering with a
    negative sign since our {!Channel.path_loss} is a positive dB loss),
    and the ETX model used by the energy constraints (3b): interference
    is folded into a per-link background noise floor, packets are
    retransmitted until success, so [ETX = 1 / PSR(SNR)]. *)

type link_params = {
  tx_dbm : float;  (** Transmit power. *)
  tx_gain_dbi : float;  (** Transmitter antenna gain. *)
  rx_gain_dbi : float;  (** Receiver antenna gain. *)
  noise_dbm : float;  (** Background noise + interference floor. *)
}

val rss : path_loss_db:float -> link_params -> float
(** Received signal strength in dBm. *)

val snr : path_loss_db:float -> link_params -> float
(** [rss - noise] in dB. *)

val etx :
  ?max_etx:float ->
  modulation:Modulation.t ->
  packet_bits:int ->
  snr_db:float ->
  unit ->
  float
(** Expected number of transmissions for one packet to get through;
    clamped to [max_etx] (default 100) to keep MILP coefficients
    bounded. *)

val rss_to_snr : rss_dbm:float -> noise_dbm:float -> float
