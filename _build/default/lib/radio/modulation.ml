type t = Bpsk | Qpsk | Fsk_noncoherent | Oqpsk_dsss

let name = function
  | Bpsk -> "bpsk"
  | Qpsk -> "qpsk"
  | Fsk_noncoherent -> "fsk"
  | Oqpsk_dsss -> "oqpsk-dsss"

let of_name s =
  match String.lowercase_ascii s with
  | "bpsk" -> Some Bpsk
  | "qpsk" -> Some Qpsk
  | "fsk" | "fsk-noncoherent" -> Some Fsk_noncoherent
  | "oqpsk" | "oqpsk-dsss" | "802.15.4" -> Some Oqpsk_dsss
  | _ -> None

(* Abramowitz & Stegun 7.1.26: erfc(x) = t (a1 + t (a2 + ...)) e^{-x^2},
   t = 1 / (1 + p x), for x >= 0; symmetry gives negative arguments. *)
let erfc x =
  let ax = Float.abs x in
  let p = 0.3275911 in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429 in
  let t = 1. /. (1. +. (p *. ax)) in
  let poly = t *. (a1 +. (t *. (a2 +. (t *. (a3 +. (t *. (a4 +. (t *. a5)))))))) in
  let v = poly *. Float.exp (-.(ax *. ax)) in
  if x >= 0. then v else 2. -. v

let q_function x = 0.5 *. erfc (x /. Float.sqrt 2.)

let db_to_lin db = Float.pow 10. (db /. 10.)

let clamp_ber b = Float.max 1e-16 (Float.min 0.5 b)

let ber scheme ~snr_db =
  let g = db_to_lin snr_db in
  let raw =
    match scheme with
    | Bpsk | Qpsk ->
        (* Coherent (O)QPSK has the same per-bit BER as BPSK. *)
        q_function (Float.sqrt (2. *. g))
    | Fsk_noncoherent -> 0.5 *. Float.exp (-.g /. 2.)
    | Oqpsk_dsss ->
        (* DSSS processing gain of ~9 dB before the QPSK detector; a
           standard engineering approximation of the 802.15.4 PHY. *)
        q_function (Float.sqrt (2. *. g *. db_to_lin 9.))
  in
  clamp_ber raw

let packet_success_rate scheme ~snr_db ~packet_bits =
  if packet_bits <= 0 then invalid_arg "packet_success_rate: non-positive packet size";
  Float.pow (1. -. ber scheme ~snr_db) (float_of_int packet_bits)

let snr_for_ber scheme target =
  if target <= 0. || target >= 0.5 then
    invalid_arg "snr_for_ber: target must be in (0, 0.5)";
  (* ber is monotone decreasing in snr; bisect on [-40, 60] dB. *)
  let lo = ref (-40.) and hi = ref 60. in
  for _ = 1 to 80 do
    let mid = 0.5 *. (!lo +. !hi) in
    if ber scheme ~snr_db:mid > target then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)
