(** Digital modulation schemes and their bit-error-rate curves.

    The paper's link-quality constraints support RSS, SNR and BER
    metrics; BER additionally drives the expected-transmissions (ETX)
    term of the energy constraints.  Curves are the standard AWGN
    formulas evaluated per-bit. *)

type t =
  | Bpsk
  | Qpsk  (** The paper's data-collection example uses QPSK. *)
  | Fsk_noncoherent
  | Oqpsk_dsss  (** IEEE 802.15.4 2.4 GHz PHY approximation. *)

val name : t -> string

val of_name : string -> t option
(** Case-insensitive; returns [None] for unknown names. *)

val erfc : float -> float
(** Complementary error function (Abramowitz & Stegun 7.1.26
    approximation, absolute error < 1.5e-7), needed because the OCaml
    stdlib has no [erfc]. *)

val q_function : float -> float
(** Gaussian tail [Q(x) = erfc(x / sqrt 2) / 2]. *)

val ber : t -> snr_db:float -> float
(** Bit error rate at the given per-bit signal-to-noise ratio, clamped
    to [[1e-16, 0.5]]. *)

val packet_success_rate : t -> snr_db:float -> packet_bits:int -> float
(** [(1 - ber)^packet_bits]. *)

val snr_for_ber : t -> float -> float
(** Inverse of {!ber} by bisection: the SNR (dB) at which the scheme
    attains the given BER.  Useful to translate a BER requirement into a
    linear SNR bound for the MILP. *)
