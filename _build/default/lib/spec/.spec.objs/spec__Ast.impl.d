lib/spec/ast.ml: Format
