lib/spec/elaborate.ml: Archex Ast Components Float Format Geometry Hashtbl List Option String
