lib/spec/elaborate.mli: Archex Ast Geometry
