lib/spec/lexer.ml: Ast Buffer Format List Printf String
