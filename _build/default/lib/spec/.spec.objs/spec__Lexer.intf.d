lib/spec/lexer.mli: Ast
