lib/spec/parser.ml: Ast Format In_channel Lexer List Printf
