type position = { line : int; col : int }

type value = Num of float | Str of string | Ident of string

type pattern = {
  binder : string option;
  head : string;
  args : (value * position) list;
  pat_pos : position;
}

type objective_term = { weight : float; concern : string }

type item =
  | Pattern of pattern
  | Objective of { maximize : bool; terms : objective_term list; obj_pos : position }
  | Set of { key : string; value : value; set_pos : position }

type t = item list

let pp_position ppf p = Format.fprintf ppf "line %d, column %d" p.line p.col

let pp_value ppf = function
  | Num f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Ident s -> Format.pp_print_string ppf s
