(** Abstract syntax of the pattern-based specification language.

    The paper (§1, §4) describes compact, human-readable specifications
    compiled from a pattern-based formal language; patterns like
    [p = has_path(A, B)], [disjoint_links(p1, p2)],
    [min_signal_to_noise(20)], [min_network_lifetime(5)] and
    [min_reachable_devices(3, -80)] appear verbatim in the paper's
    examples.  The grammar:

    {v
    spec      := item*
    item      := [ident '='] ident '(' args ')'          (pattern)
               | 'objective' dir objterm ('+' objterm)*  (objective)
               | 'set' ident '=' value                   (parameter)
    dir       := 'minimize' | 'maximize'
    objterm   := [number '*'] ident
    args      := value (',' value)*
    value     := number | string | ident
    v}

    Comments run from [#] to end of line. *)

type position = { line : int; col : int }

type value =
  | Num of float
  | Str of string  (** Double-quoted. *)
  | Ident of string

type pattern = {
  binder : string option;  (** [p1 = has_path(...)] binds [p1]. *)
  head : string;  (** Pattern name, e.g. [has_path]. *)
  args : (value * position) list;
  pat_pos : position;
}

type objective_term = { weight : float; concern : string }

type item =
  | Pattern of pattern
  | Objective of { maximize : bool; terms : objective_term list; obj_pos : position }
  | Set of { key : string; value : value; set_pos : position }

type t = item list

val pp_position : Format.formatter -> position -> unit

val pp_value : Format.formatter -> value -> unit
