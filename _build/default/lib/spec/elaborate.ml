module Req = Archex.Requirements
module Template = Archex.Template
module Comp = Components.Component

type t = {
  requirements : Req.t;
  objective : Archex.Objective.t;
  settings : (string * Ast.value) list;
}

let known_patterns =
  [
    "has_path";
    "disjoint_links";
    "max_hops";
    "min_hops";
    "exact_hops";
    "min_signal_to_noise";
    "min_rss";
    "max_bit_error_rate";
    "min_network_lifetime";
    "min_reachable_devices";
    "max_latency";
  ]

(* Mutable route under construction. *)
type route_acc = {
  src : int;
  dst : int;
  mutable replicas : int;
  mutable hop_bounds : Req.hop_bound list;
  mutable latency : float option;
  mutable alive : bool;
}

type env = {
  template : Template.t;
  eval_points : Geometry.Point.t array option;
  routes : route_acc list ref;  (** In declaration order. *)
  binders : (string, route_acc list) Hashtbl.t;
  mutable min_rss : float option;
  mutable min_snr : float option;
  mutable max_ber : float option;
  mutable min_lifetime : float option;
  mutable localization : Req.localization option;
  mutable objective : Archex.Objective.t option;
  mutable settings : (string * Ast.value) list;
}

exception Err of string

let fail pos fmt =
  Format.kasprintf (fun s -> raise (Err (Format.asprintf "%a: %s" Ast.pp_position pos s))) fmt

let role_group = function
  | "sensors" -> Some Comp.Sensor
  | "relays" -> Some Comp.Relay
  | "sinks" -> Some Comp.Sink
  | "anchors" -> Some Comp.Anchor
  | _ -> None

(* Singular role names act as a group of one when no node carries that
   exact name — so specs can say [has_path(sensors, sink)] regardless of
   how the floor plan numbered its base station. *)
let singular_role = function
  | "sensor" -> Some Comp.Sensor
  | "relay" -> Some Comp.Relay
  | "sink" -> Some Comp.Sink
  | "anchor" -> Some Comp.Anchor
  | _ -> None

(* A node reference: a single node or a whole role group. *)
let resolve_nodes env pos name =
  match role_group name with
  | Some role -> (
      match Template.find_role env.template role with
      | [] -> fail pos "role group %s is empty in this template" name
      | l -> l)
  | None -> (
      match Template.index_of env.template name with
      | Some i -> [ i ]
      | None -> (
          match singular_role name with
          | Some role -> (
              match Template.find_role env.template role with
              | [] -> fail pos "role group %s is empty in this template" name
              | l -> l)
          | None -> fail pos "unknown node %s" name))

let arg_ident pos (v, p) =
  match v with
  | Ast.Ident s -> s
  | other -> fail p "expected an identifier, found %a (in pattern at %a)" Ast.pp_value other Ast.pp_position pos

let arg_num pos (v, p) =
  match v with
  | Ast.Num f -> f
  | other -> fail p "expected a number, found %a (in pattern at %a)" Ast.pp_value other Ast.pp_position pos

let arity pos head expected args =
  if List.length args <> expected then
    fail pos "%s expects %d argument(s), got %d" head expected (List.length args)

let lookup_binder env pos name =
  match Hashtbl.find_opt env.binders name with
  | Some routes -> routes
  | None -> fail pos "unknown path name %s (bind it with '%s = has_path(...)')" name name

let do_has_path env (p : Ast.pattern) =
  arity p.Ast.pat_pos "has_path" 2 p.Ast.args;
  let srcs = resolve_nodes env p.Ast.pat_pos (arg_ident p.Ast.pat_pos (List.nth p.Ast.args 0)) in
  let dsts = resolve_nodes env p.Ast.pat_pos (arg_ident p.Ast.pat_pos (List.nth p.Ast.args 1)) in
  (match dsts with
  | [ _ ] -> ()
  | _ -> fail p.Ast.pat_pos "has_path destination must be a single node");
  let dst = List.hd dsts in
  let fresh =
    List.filter_map
      (fun src ->
        if src = dst then None
        else begin
          let r = { src; dst; replicas = 1; hop_bounds = []; latency = None; alive = true } in
          env.routes := !(env.routes) @ [ r ];
          Some r
        end)
      srcs
  in
  if fresh = [] then fail p.Ast.pat_pos "has_path produced no routes (source equals destination?)";
  match p.Ast.binder with
  | Some b ->
      if Hashtbl.mem env.binders b then fail p.Ast.pat_pos "path name %s already bound" b;
      Hashtbl.add env.binders b fresh
  | None -> ()

(* Merge two bound families: for every endpoint pair they share, one
   extra disjoint replica; the duplicate route is dropped. *)
let do_disjoint env (p : Ast.pattern) =
  arity p.Ast.pat_pos "disjoint_links" 2 p.Ast.args;
  let f1 = lookup_binder env p.Ast.pat_pos (arg_ident p.Ast.pat_pos (List.nth p.Ast.args 0)) in
  let f2 = lookup_binder env p.Ast.pat_pos (arg_ident p.Ast.pat_pos (List.nth p.Ast.args 1)) in
  let matched = ref false in
  List.iter
    (fun r2 ->
      match
        List.find_opt (fun r1 -> r1.alive && r1 != r2 && r1.src = r2.src && r1.dst = r2.dst) f1
      with
      | Some r1 when r2.alive ->
          matched := true;
          r1.replicas <- r1.replicas + r2.replicas;
          r1.hop_bounds <- r1.hop_bounds @ r2.hop_bounds;
          (r1.latency <-
             (match (r1.latency, r2.latency) with
             | None, l | l, None -> l
             | Some a, Some b -> Some (Float.min a b)));
          r2.alive <- false
      | _ -> ())
    f2;
  if not !matched then
    fail p.Ast.pat_pos "disjoint_links: the two path families share no endpoint pair"

let do_hops env sense (p : Ast.pattern) =
  arity p.Ast.pat_pos p.Ast.head 2 p.Ast.args;
  let family = lookup_binder env p.Ast.pat_pos (arg_ident p.Ast.pat_pos (List.nth p.Ast.args 0)) in
  let n = arg_num p.Ast.pat_pos (List.nth p.Ast.args 1) in
  if Float.of_int (int_of_float n) <> n || n < 1. then
    fail p.Ast.pat_pos "%s: hop count must be a positive integer" p.Ast.head;
  List.iter
    (fun r -> r.hop_bounds <- { Req.hop_sense = sense; hops = int_of_float n } :: r.hop_bounds)
    family

let do_latency env (p : Ast.pattern) =
  arity p.Ast.pat_pos "max_latency" 2 p.Ast.args;
  let family = lookup_binder env p.Ast.pat_pos (arg_ident p.Ast.pat_pos (List.nth p.Ast.args 0)) in
  let seconds = arg_num p.Ast.pat_pos (List.nth p.Ast.args 1) in
  if seconds <= 0. then fail p.Ast.pat_pos "max_latency: deadline must be positive";
  List.iter
    (fun r ->
      r.latency <-
        (match r.latency with None -> Some seconds | Some prev -> Some (Float.min prev seconds)))
    family

let do_reachable env (p : Ast.pattern) =
  arity p.Ast.pat_pos "min_reachable_devices" 2 p.Ast.args;
  let n = arg_num p.Ast.pat_pos (List.nth p.Ast.args 0) in
  let rss = arg_num p.Ast.pat_pos (List.nth p.Ast.args 1) in
  if n < 1. || Float.of_int (int_of_float n) <> n then
    fail p.Ast.pat_pos "min_reachable_devices: first argument must be a positive integer";
  match env.eval_points with
  | None ->
      fail p.Ast.pat_pos
        "min_reachable_devices needs evaluation points (none supplied by the tool)"
  | Some pts ->
      env.localization <-
        Some
          { Req.min_anchors = int_of_float n; loc_min_rss_dbm = rss; eval_points = pts }

let do_pattern env (p : Ast.pattern) =
  let num1 () =
    arity p.Ast.pat_pos p.Ast.head 1 p.Ast.args;
    arg_num p.Ast.pat_pos (List.hd p.Ast.args)
  in
  match p.Ast.head with
  | "has_path" -> do_has_path env p
  | "disjoint_links" -> do_disjoint env p
  | "max_hops" -> do_hops env `Le p
  | "min_hops" -> do_hops env `Ge p
  | "exact_hops" -> do_hops env `Eq p
  | "min_signal_to_noise" -> env.min_snr <- Some (num1 ())
  | "min_rss" -> env.min_rss <- Some (num1 ())
  | "max_bit_error_rate" -> env.max_ber <- Some (num1 ())
  | "min_network_lifetime" -> env.min_lifetime <- Some (num1 ())
  | "min_reachable_devices" -> do_reachable env p
  | "max_latency" -> do_latency env p
  | other ->
      fail p.Ast.pat_pos "unknown pattern %s (known: %s)" other (String.concat ", " known_patterns)

let concern_of pos = function
  | "cost" | "dollar" -> Archex.Objective.Dollar_cost
  | "energy" -> Archex.Objective.Energy
  | "nodes" | "node_count" -> Archex.Objective.Node_count
  | "dsod" -> Archex.Objective.Dsod
  | other -> fail pos "unknown objective concern %s (known: cost, energy, nodes, dsod)" other

let do_item env = function
  | Ast.Pattern p -> do_pattern env p
  | Ast.Objective { maximize; terms; obj_pos } ->
      if maximize then fail obj_pos "objectives are costs: use minimize";
      if env.objective <> None then fail obj_pos "duplicate objective";
      env.objective <-
        Some (List.map (fun t -> (t.Ast.weight, concern_of obj_pos t.Ast.concern)) terms)
  | Ast.Set { key; value; set_pos = _ } -> env.settings <- env.settings @ [ (key, value) ]

let elaborate ?eval_points ~template items =
  let env =
    {
      template;
      eval_points;
      routes = ref [];
      binders = Hashtbl.create 16;
      min_rss = None;
      min_snr = None;
      max_ber = None;
      min_lifetime = None;
      localization = None;
      objective = None;
      settings = [];
    }
  in
  try
    List.iter (do_item env) items;
    let routes =
      List.filter_map
        (fun r ->
          if r.alive then
            Some
              {
                Req.src = r.src;
                dst = r.dst;
                replicas = r.replicas;
                hop_bounds = List.rev r.hop_bounds;
                max_latency_s = r.latency;
              }
          else None)
        !(env.routes)
    in
    let requirements =
      {
        Req.routes;
        min_rss_dbm = env.min_rss;
        min_snr_db = env.min_snr;
        max_ber = env.max_ber;
        min_lifetime_years = env.min_lifetime;
        localization = env.localization;
      }
    in
    match Req.validate requirements ~nnodes:(Template.nnodes template) with
    | Error e -> Error ("invalid requirements: " ^ e)
    | Ok () ->
        Ok
          {
            requirements;
            objective = Option.value ~default:Archex.Objective.dollar env.objective;
            settings = env.settings;
          }
  with Err e -> Error e
