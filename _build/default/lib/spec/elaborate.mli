(** Elaboration: checked translation of a parsed specification into the
    core's typed {!Archex.Requirements.t} and {!Archex.Objective.t}.

    Supported patterns (those of the paper's examples plus close kin):

    {ul
    {- [p = has_path(src, dst)] — require a route.  [src]/[dst] are
       template node names, or the role groups [sensors]/[relays]/
       [anchors]/[sinks], which expand to one route per member (the
       binder then names the whole family);}
    {- [disjoint_links(p1, p2)] — the two bound route families must be
       link-disjoint; for families over the same endpoint pair this
       merges them into replicated disjoint routes (constraint (1d));}
    {- [max_hops(p, n)], [min_hops(p, n)], [exact_hops(p, n)] —
       constraint (1e);}
    {- [min_signal_to_noise(db)], [min_rss(dbm)],
       [max_bit_error_rate(ber)] — link quality (2b);}
    {- [min_network_lifetime(years)] — energy (3a);}
    {- [min_reachable_devices(n, rss_dbm)] — localization (4a)-(4b);
       evaluation points are supplied by the caller (e.g. from the SVG
       floor plan).}}

    Objective concerns: [cost], [energy], [nodes], [dsod].

    [set key = value] items are collected verbatim into [settings] for
    the embedding tool (channel/protocol/battery parameters, K*, …). *)

type t = {
  requirements : Archex.Requirements.t;
  objective : Archex.Objective.t;  (** Defaults to dollar cost. *)
  settings : (string * Ast.value) list;
}

val elaborate :
  ?eval_points:Geometry.Point.t array ->
  template:Archex.Template.t ->
  Ast.t ->
  (t, string) result
(** Type-check and translate.  Fails with a positioned message on
    unknown patterns, arity errors, unbound path names, unknown nodes,
    or a [min_reachable_devices] pattern without [eval_points]. *)

val known_patterns : string list
(** Names accepted by {!elaborate} (for help text and tests). *)
