type token =
  | Ident of string
  | Number of float
  | String of string
  | Lparen
  | Rparen
  | Comma
  | Equals
  | Plus
  | Star
  | Eof

type spanned = { tok : token; pos : Ast.position }

let token_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Number f -> Printf.sprintf "number %g" f
  | String s -> Printf.sprintf "string %S" s
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Comma -> "','"
  | Equals -> "'='"
  | Plus -> "'+'"
  | Star -> "'*'"
  | Eof -> "end of input"

let is_ident_start c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_ident_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true | _ -> false

let is_digit c = match c with '0' .. '9' -> true | _ -> false

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let i = ref 0 in
  let error = ref None in
  let pos () = { Ast.line = !line; col = !i - !bol + 1 } in
  let fail msg =
    if !error = None then
      error := Some (Format.asprintf "%a: %s" Ast.pp_position (pos ()) msg)
  in
  let push tok p = toks := { tok; pos = p } :: !toks in
  while !i < n && !error = None do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let p = pos () in
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (Ident (String.sub src start (!i - start))) p
    end
    else if is_digit c || ((c = '-' || c = '+') && !i + 1 < n && (is_digit src.[!i + 1] || src.[!i + 1] = '.'))
            || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let p = pos () in
      let start = !i in
      incr i;
      while
        !i < n
        && (is_digit src.[!i] || src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = 'E'
           || ((src.[!i] = '-' || src.[!i] = '+')
              && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
      do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      match float_of_string_opt text with
      | Some f -> push (Number f) p
      | None -> fail (Printf.sprintf "malformed number %S" text)
    end
    else if c = '"' then begin
      let p = pos () in
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while !i < n && not !closed do
        if src.[!i] = '"' then closed := true
        else begin
          if src.[!i] = '\n' then begin
            incr line;
            bol := !i + 1
          end;
          Buffer.add_char buf src.[!i]
        end;
        incr i
      done;
      if !closed then push (String (Buffer.contents buf)) p else fail "unterminated string"
    end
    else begin
      let p = pos () in
      (match c with
      | '(' -> push Lparen p
      | ')' -> push Rparen p
      | ',' -> push Comma p
      | '=' -> push Equals p
      | '+' -> push Plus p
      | '*' -> push Star p
      | _ -> fail (Printf.sprintf "unexpected character %C" c));
      incr i
    end
  done;
  match !error with
  | Some e -> Error e
  | None ->
      push Eof (pos ());
      Ok (List.rev !toks)
