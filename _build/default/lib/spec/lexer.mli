(** Tokenizer for the specification language. *)

type token =
  | Ident of string
  | Number of float
  | String of string
  | Lparen
  | Rparen
  | Comma
  | Equals
  | Plus
  | Star
  | Eof

type spanned = { tok : token; pos : Ast.position }

val tokenize : string -> (spanned list, string) result
(** Whole-input tokenization; errors name the offending position.
    [#] comments are skipped.  Numbers accept sign, decimals and
    exponent; identifiers are [[A-Za-z_][A-Za-z0-9_.-]*]. *)

val token_name : token -> string
(** For error messages. *)
