type state = { mutable toks : Lexer.spanned list }

exception Parse_error of string

let fail pos msg =
  raise (Parse_error (Format.asprintf "%a: %s" Ast.pp_position pos msg))

let peek st =
  match st.toks with [] -> assert false | s :: _ -> s

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  let s = peek st in
  if s.Lexer.tok = tok then advance st
  else fail s.Lexer.pos (Printf.sprintf "expected %s, found %s" what (Lexer.token_name s.Lexer.tok))

let parse_value st =
  let s = peek st in
  match s.Lexer.tok with
  | Lexer.Number f ->
      advance st;
      (Ast.Num f, s.Lexer.pos)
  | Lexer.String str ->
      advance st;
      (Ast.Str str, s.Lexer.pos)
  | Lexer.Ident id ->
      advance st;
      (Ast.Ident id, s.Lexer.pos)
  | t -> fail s.Lexer.pos (Printf.sprintf "expected a value, found %s" (Lexer.token_name t))

let parse_args st =
  let s = peek st in
  if s.Lexer.tok = Lexer.Rparen then []
  else begin
    let rec more acc =
      let v = parse_value st in
      let s = peek st in
      match s.Lexer.tok with
      | Lexer.Comma ->
          advance st;
          more (v :: acc)
      | _ -> List.rev (v :: acc)
    in
    more []
  end

let parse_pattern st binder head pat_pos =
  expect st Lexer.Lparen "'('";
  let args = parse_args st in
  expect st Lexer.Rparen "')'";
  Ast.Pattern { Ast.binder; head; args; pat_pos }

(* objective minimize cost | objective minimize 0.5 * cost + 0.5 * energy *)
let parse_objective st obj_pos =
  let s = peek st in
  let maximize =
    match s.Lexer.tok with
    | Lexer.Ident "minimize" ->
        advance st;
        false
    | Lexer.Ident "maximize" ->
        advance st;
        true
    | t -> fail s.Lexer.pos (Printf.sprintf "expected minimize/maximize, found %s" (Lexer.token_name t))
  in
  let parse_term () =
    let s = peek st in
    match s.Lexer.tok with
    | Lexer.Number w ->
        advance st;
        expect st Lexer.Star "'*'";
        let s2 = peek st in
        (match s2.Lexer.tok with
        | Lexer.Ident c ->
            advance st;
            { Ast.weight = w; concern = c }
        | t -> fail s2.Lexer.pos (Printf.sprintf "expected concern name, found %s" (Lexer.token_name t)))
    | Lexer.Ident c ->
        advance st;
        { Ast.weight = 1.0; concern = c }
    | t -> fail s.Lexer.pos (Printf.sprintf "expected objective term, found %s" (Lexer.token_name t))
  in
  let rec terms acc =
    let t = parse_term () in
    let s = peek st in
    if s.Lexer.tok = Lexer.Plus then begin
      advance st;
      terms (t :: acc)
    end
    else List.rev (t :: acc)
  in
  Ast.Objective { maximize; terms = terms []; obj_pos }

let parse_set st set_pos =
  let s = peek st in
  match s.Lexer.tok with
  | Lexer.Ident key ->
      advance st;
      expect st Lexer.Equals "'='";
      let value, _ = parse_value st in
      Ast.Set { key; value; set_pos }
  | t -> fail s.Lexer.pos (Printf.sprintf "expected parameter name, found %s" (Lexer.token_name t))

let parse_item st =
  let s = peek st in
  match s.Lexer.tok with
  | Lexer.Ident "objective" ->
      advance st;
      parse_objective st s.Lexer.pos
  | Lexer.Ident "set" ->
      advance st;
      parse_set st s.Lexer.pos
  | Lexer.Ident first -> (
      advance st;
      let s2 = peek st in
      match s2.Lexer.tok with
      | Lexer.Equals ->
          (* binder = head(args) *)
          advance st;
          let s3 = peek st in
          (match s3.Lexer.tok with
          | Lexer.Ident head ->
              advance st;
              parse_pattern st (Some first) head s.Lexer.pos
          | t ->
              fail s3.Lexer.pos
                (Printf.sprintf "expected pattern name after '=', found %s" (Lexer.token_name t)))
      | Lexer.Lparen -> parse_pattern st None first s.Lexer.pos
      | t ->
          fail s2.Lexer.pos
            (Printf.sprintf "expected '(' or '=' after %S, found %s" first (Lexer.token_name t)))
  | t -> fail s.Lexer.pos (Printf.sprintf "expected a specification item, found %s" (Lexer.token_name t))

let parse src =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks } in
      try
        let items = ref [] in
        while (peek st).Lexer.tok <> Lexer.Eof do
          items := parse_item st :: !items
        done;
        Ok (List.rev !items)
      with Parse_error e -> Error e)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error e -> Error e
