(** Recursive-descent parser: token stream -> {!Ast.t}. *)

val parse : string -> (Ast.t, string) result
(** Parse a full specification.  Error messages carry positions. *)

val parse_file : string -> (Ast.t, string) result
