test/test_archex.mli:
