test/test_components.ml: Alcotest Astring Component Components Float Hashtbl Library List Option Parser Printf QCheck2 QCheck_alcotest Result
