test/test_energy.ml: Alcotest Components Csma Energy Float Lifetime List Printf QCheck2 QCheck_alcotest Tdma
