test/test_geometry.ml: Alcotest Astring Building Float Floorplan Geometry List Point QCheck2 QCheck_alcotest Result Segment Svg
