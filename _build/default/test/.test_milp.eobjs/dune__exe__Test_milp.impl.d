test/test_milp.ml: Alcotest Array Astring Branch_bound Float Fmt Lin List Lp_format Lp_reader Milp Model Pqueue Presolve Printf QCheck2 QCheck_alcotest Random Result Simplex Status Vec
