test/test_netgraph.ml: Alcotest Array Digraph Dijkstra Float Int List Maxflow Netgraph Path QCheck2 QCheck_alcotest Yen
