test/test_radio.ml: Alcotest Array Channel Float Geometry Link_budget List Modulation Printf QCheck2 QCheck_alcotest Radio
