test/test_spec.ml: Alcotest Archex Array Astring Components Geometry List Printf QCheck_alcotest Result Spec
