(* Tests for the component library: attribute validation, library
   operations, the built-in reference library, and the text-format
   parser (including a full round-trip property). *)

let qt = QCheck_alcotest.to_alcotest

open Components

let mk = Component.make

(* ------------------------------------------------------------------ *)
(* Component                                                           *)
(* ------------------------------------------------------------------ *)

let test_component_defaults () =
  let c = mk ~name:"x" ~role:Component.Relay ~cost:10. () in
  Alcotest.(check (float 1e-9)) "tx" 0. c.Component.tx_power_dbm;
  Alcotest.(check (float 1e-9)) "sensitivity" (-97.) c.Component.sensitivity_dbm;
  Alcotest.(check (float 1e-9)) "bit rate" 250. c.Component.bit_rate_kbps

let test_component_validation () =
  let ok c = Alcotest.(check bool) "valid" true (Result.is_ok (Component.validate c)) in
  let bad c = Alcotest.(check bool) "invalid" true (Result.is_error (Component.validate c)) in
  ok (mk ~name:"ok" ~role:Component.Sensor ~cost:0. ());
  bad (mk ~name:"" ~role:Component.Sensor ~cost:0. ());
  bad (mk ~name:"neg" ~role:Component.Sensor ~cost:(-1.) ());
  bad (mk ~name:"cur" ~role:Component.Sensor ~cost:1. ~radio_tx_ma:(-2.) ());
  bad (mk ~name:"rate" ~role:Component.Sensor ~cost:1. ~bit_rate_kbps:0. ());
  bad (mk ~name:"sens" ~role:Component.Sensor ~cost:1. ~sensitivity_dbm:3. ())

let test_roles () =
  Alcotest.(check (option string)) "sink aliases" (Some "sink")
    (Option.map Component.role_name (Component.role_of_name "base-station"));
  Alcotest.(check bool) "unknown role" true (Component.role_of_name "gateway" = None)

(* ------------------------------------------------------------------ *)
(* Library                                                             *)
(* ------------------------------------------------------------------ *)

let small_lib () =
  Library.of_list_exn
    [
      mk ~name:"a" ~role:Component.Relay ~cost:10. ();
      mk ~name:"b" ~role:Component.Relay ~cost:5. ();
      mk ~name:"c" ~role:Component.Sink ~cost:50. ();
    ]

let test_library_lookup () =
  let l = small_lib () in
  Alcotest.(check int) "size" 3 (Library.size l);
  Alcotest.(check bool) "find" true (Library.find l "b" <> None);
  Alcotest.(check bool) "find missing" true (Library.find l "zz" = None);
  Alcotest.check_raises "find_exn missing" Not_found (fun () -> ignore (Library.find_exn l "zz"))

let test_library_roles () =
  let l = small_lib () in
  Alcotest.(check int) "relays" 2 (List.length (Library.with_role l Component.Relay));
  Alcotest.(check int) "anchors" 0 (List.length (Library.with_role l Component.Anchor));
  match Library.cheapest l Component.Relay with
  | Some c -> Alcotest.(check string) "cheapest" "b" c.Component.name
  | None -> Alcotest.fail "expected a relay"

let test_library_duplicate_rejected () =
  let r =
    Library.of_list
      [ mk ~name:"dup" ~role:Component.Relay ~cost:1. (); mk ~name:"dup" ~role:Component.Sink ~cost:2. () ]
  in
  Alcotest.(check bool) "duplicate" true (Result.is_error r)

let test_builtin_complete () =
  (* Every role is available, so any template can be sized. *)
  List.iter
    (fun role ->
      Alcotest.(check bool)
        (Component.role_name role ^ " present")
        true
        (Library.with_role Library.builtin role <> []))
    [ Component.Sensor; Component.Relay; Component.Sink; Component.Anchor ];
  (* Sensors are free, as in the paper's example. *)
  match Library.cheapest Library.builtin Component.Sensor with
  | Some c -> Alcotest.(check (float 1e-9)) "free sensor" 0. c.Component.cost
  | None -> Alcotest.fail "no sensors"

let test_builtin_tradeoffs () =
  (* The library must actually offer trade-offs: a more expensive relay
     with more TX power, and a low-power relay with smaller currents. *)
  let basic = Library.find_exn Library.builtin "relay-basic" in
  let power = Library.find_exn Library.builtin "relay-power" in
  let lp = Library.find_exn Library.builtin "relay-lp" in
  Alcotest.(check bool) "power costs more" true (power.Component.cost > basic.Component.cost);
  Alcotest.(check bool) "power txs more" true
    (power.Component.tx_power_dbm > basic.Component.tx_power_dbm);
  Alcotest.(check bool) "lp draws less" true
    (lp.Component.radio_rx_ma < basic.Component.radio_rx_ma)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let sample =
  {|# reference library
component relay-basic {
  role = relay
  cost = 15          # dollars
  tx_power_dbm = 0
}
component snk {
  role = sink
  cost = 80
  antenna_gain_dbi = 3
}|}

let test_parser_sample () =
  match Parser.parse sample with
  | Error e -> Alcotest.fail e
  | Ok lib ->
      Alcotest.(check int) "two components" 2 (Library.size lib);
      let r = Library.find_exn lib "relay-basic" in
      Alcotest.(check (float 1e-9)) "cost" 15. r.Component.cost;
      Alcotest.(check (float 1e-9)) "default rx current" 24. r.Component.radio_rx_ma;
      let s = Library.find_exn lib "snk" in
      Alcotest.(check (float 1e-9)) "gain" 3. s.Component.antenna_gain_dbi

let expect_error text fragment =
  match Parser.parse text with
  | Ok _ -> Alcotest.fail ("expected parse error mentioning " ^ fragment)
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" e fragment)
        true
        (Astring.String.is_infix ~affix:fragment e)

let test_parser_errors () =
  expect_error "component x {\n cost = 1\n}" "no role";
  expect_error "component x {\n role = relay\n}" "no cost";
  expect_error "component x {\n role = pigeon\n cost = 1\n}" "unknown role";
  expect_error "component x {\n role = relay\n cost = abc\n}" "bad numeric";
  expect_error "component x {\n role = relay\n cost = 1\n wat = 2\n}" "unknown key";
  expect_error "component x {\n role = relay\n cost = 1" "not closed";
  expect_error "stuff\n" "expected 'component"

let test_parser_line_numbers () =
  match Parser.parse "component x {\n role = relay\n cost = oops\n}" with
  | Error e -> Alcotest.(check bool) "line 3" true (Astring.String.is_infix ~affix:"line 3" e)
  | Ok _ -> Alcotest.fail "expected error"

let test_parser_roundtrip_builtin () =
  let text = Parser.to_string Library.builtin in
  match Parser.parse text with
  | Error e -> Alcotest.fail e
  | Ok lib2 ->
      Alcotest.(check int) "same size" (Library.size Library.builtin) (Library.size lib2);
      List.iter2
        (fun (a : Component.t) (b : Component.t) ->
          Alcotest.(check string) "name" a.Component.name b.Component.name;
          Alcotest.(check (float 1e-9)) "cost" a.Component.cost b.Component.cost;
          Alcotest.(check (float 1e-9)) "tx" a.Component.tx_power_dbm b.Component.tx_power_dbm;
          Alcotest.(check (float 1e-9)) "sleep" a.Component.sleep_ua b.Component.sleep_ua)
        (Library.components Library.builtin)
        (Library.components lib2)

let gen_component =
  QCheck2.Gen.(
    let* idx = int_range 0 10000 in
    let* role = oneofl [ Component.Sensor; Component.Relay; Component.Sink; Component.Anchor ] in
    let* cost = float_range 0. 500. in
    let* tx = float_range (-10.) 20. in
    let* gain = float_range 0. 12. in
    let* txma = float_range 0.1 200. in
    return (mk ~name:(Printf.sprintf "c%d" idx) ~role ~cost ~tx_power_dbm:tx
              ~antenna_gain_dbi:gain ~radio_tx_ma:txma ()))

let prop_parser_roundtrip =
  QCheck2.Test.make ~name:"parser: print/parse round-trips arbitrary libraries" ~count:100
    QCheck2.Gen.(list_size (int_range 1 8) gen_component)
    (fun comps ->
      (* Deduplicate names to form a valid library. *)
      let seen = Hashtbl.create 8 in
      let comps =
        List.filter
          (fun (c : Component.t) ->
            if Hashtbl.mem seen c.Component.name then false
            else begin
              Hashtbl.add seen c.Component.name ();
              true
            end)
          comps
      in
      match Library.of_list comps with
      | Error _ -> true
      | Ok lib -> (
          match Parser.parse (Parser.to_string lib) with
          | Error _ -> false
          | Ok lib2 ->
              List.for_all2
                (fun (a : Component.t) (b : Component.t) ->
                  a.Component.name = b.Component.name
                  && Float.abs (a.Component.cost -. b.Component.cost) < 1e-9
                  && Float.abs (a.Component.tx_power_dbm -. b.Component.tx_power_dbm) < 1e-9
                  && a.Component.role = b.Component.role)
                (Library.components lib) (Library.components lib2)))

let () =
  Alcotest.run "components"
    [
      ( "component",
        [
          Alcotest.test_case "defaults" `Quick test_component_defaults;
          Alcotest.test_case "validation" `Quick test_component_validation;
          Alcotest.test_case "roles" `Quick test_roles;
        ] );
      ( "library",
        [
          Alcotest.test_case "lookup" `Quick test_library_lookup;
          Alcotest.test_case "role filters" `Quick test_library_roles;
          Alcotest.test_case "duplicates rejected" `Quick test_library_duplicate_rejected;
          Alcotest.test_case "builtin covers all roles" `Quick test_builtin_complete;
          Alcotest.test_case "builtin trade-offs" `Quick test_builtin_tradeoffs;
        ] );
      ( "parser",
        [
          Alcotest.test_case "sample" `Quick test_parser_sample;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "line numbers" `Quick test_parser_line_numbers;
          Alcotest.test_case "builtin round-trip" `Quick test_parser_roundtrip_builtin;
          qt prop_parser_roundtrip;
        ] );
    ]
