(* Tests for the energy substrate: TDMA protocol arithmetic and
   node-lifetime accounting against hand-computed references. *)

open Energy

let qt = QCheck_alcotest.to_alcotest

let check_close name ?(tol = 1e-9) expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" name expected got)
    true
    (Float.abs (expected -. got) <= tol)

(* ------------------------------------------------------------------ *)
(* Tdma                                                                *)
(* ------------------------------------------------------------------ *)

let test_tdma_defaults () =
  let t = Tdma.make () in
  Alcotest.(check int) "slots" 16 t.Tdma.slots_per_frame;
  check_close "superframe" 0.016 (Tdma.superframe_s t);
  Alcotest.(check int) "packet bits" 400 (Tdma.packet_bits t);
  check_close "airtime at 250 kbps" 0.0016 (Tdma.packet_airtime_s t ~bit_rate_kbps:250.)

let test_tdma_validation () =
  Alcotest.check_raises "bad slots" (Invalid_argument "Tdma.make: slots_per_frame <= 0")
    (fun () -> ignore (Tdma.make ~slots_per_frame:0 ()));
  Alcotest.check_raises "bad slot time" (Invalid_argument "Tdma.make: slot_s <= 0") (fun () ->
      ignore (Tdma.make ~slot_s:0. ()));
  Alcotest.check_raises "bad packet" (Invalid_argument "Tdma.make: packet_bytes <= 0") (fun () ->
      ignore (Tdma.make ~packet_bytes:0 ()));
  Alcotest.check_raises "bad airtime rate"
    (Invalid_argument "Tdma.packet_airtime_s: non-positive bit rate") (fun () ->
      ignore (Tdma.packet_airtime_s (Tdma.make ()) ~bit_rate_kbps:0.))

(* ------------------------------------------------------------------ *)
(* Lifetime                                                            *)
(* ------------------------------------------------------------------ *)

let device =
  Components.Component.make ~name:"dev" ~role:Components.Component.Relay ~cost:1.
    ~radio_tx_ma:30. ~radio_rx_ma:20. ~active_ma:5. ~sleep_ua:2. ()

let test_link_charges () =
  let link = { Lifetime.etx = 2.; airtime_s = 0.002 } in
  check_close "tx charge" (2. *. 0.002 *. 30.) (Lifetime.tx_charge_mas device link);
  check_close "rx charge" (2. *. 0.002 *. 20.) (Lifetime.rx_charge_mas device link)

let test_node_charge_hand_computed () =
  let proto = Tdma.make ~slots_per_frame:16 ~slot_s:1e-3 ~packet_bytes:50 ~report_period_s:10. () in
  let link = { Lifetime.etx = 1.; airtime_s = 0.0016 } in
  (* 1 TX + 1 RX link:
     radio = 0.0016*30 + 0.0016*20 = 0.08 mA.s
     active = 5 mA * 2 slots * 1 ms = 0.01
     sleep = 0.002 mA * (10 - 0.002) s = 0.019996 *)
  let q = Lifetime.node_charge_per_period_mas device proto ~tx_links:[ link ] ~rx_links:[ link ] in
  check_close "hand computed" ~tol:1e-9 (0.08 +. 0.01 +. 0.019996) q

let test_lifetime_s () =
  let b = { Lifetime.voltage_v = 3.; capacity_mah = 1000. } in
  check_close "1 mA for 1000 mAh = 1000 h" (1000. *. 3600.) (Lifetime.lifetime_s b ~avg_current_ma:1.);
  Alcotest.(check bool) "zero current lives forever" true
    (Lifetime.lifetime_s b ~avg_current_ma:0. = infinity)

let test_lifetime_years_sleep_only () =
  (* A node with no traffic: lifetime set by sleep current alone.
     1500 mAh at 1 uA = 1.5e6 h ~ 171 years. *)
  let idle =
    Components.Component.make ~name:"idle" ~role:Components.Component.Relay ~cost:0.
      ~sleep_ua:1. ()
  in
  let proto = Tdma.make () in
  let y = Lifetime.lifetime_years idle proto Lifetime.default_battery ~tx_links:[] ~rx_links:[] in
  check_close "sleep-only lifetime" ~tol:0.5 171.2 y

let test_lifetime_decreases_with_traffic () =
  let proto = Tdma.make () in
  let link = { Lifetime.etx = 1.5; airtime_s = 0.0016 } in
  let quiet = Lifetime.lifetime_years device proto Lifetime.default_battery ~tx_links:[] ~rx_links:[] in
  let busy =
    Lifetime.lifetime_years device proto Lifetime.default_battery
      ~tx_links:[ link; link; link ] ~rx_links:[ link ]
  in
  Alcotest.(check bool) "traffic shortens life" true (busy < quiet)

let prop_lifetime_monotone_in_etx =
  QCheck2.Test.make ~name:"lifetime: higher ETX never extends life" ~count:100
    QCheck2.Gen.(tup2 (float_range 1. 10.) (float_range 1. 10.))
    (fun (e1, e2) ->
      let proto = Tdma.make () in
      let lo = Float.min e1 e2 and hi = Float.max e1 e2 in
      let life e =
        Lifetime.lifetime_years device proto Lifetime.default_battery
          ~tx_links:[ { Lifetime.etx = e; airtime_s = 0.0016 } ]
          ~rx_links:[]
      in
      life hi <= life lo +. 1e-9)

let prop_charge_additive =
  QCheck2.Test.make ~name:"lifetime: radio charge additive over links" ~count:100
    QCheck2.Gen.(list_size (int_range 0 6) (float_range 1. 5.))
    (fun etxs ->
      let proto = Tdma.make () in
      let links = List.map (fun e -> { Lifetime.etx = e; airtime_s = 0.001 }) etxs in
      let q = Lifetime.node_charge_per_period_mas device proto ~tx_links:links ~rx_links:[] in
      let base = Lifetime.node_charge_per_period_mas device proto ~tx_links:[] ~rx_links:[] in
      let radio = List.fold_left (fun acc l -> acc +. Lifetime.tx_charge_mas device l) 0. links in
      (* Each awake slot displaces sleep and adds active draw. *)
      let slots = float_of_int (List.length links) in
      let delta = slots *. 0.001 *. (5. -. 0.002) in
      Float.abs (q -. (base +. radio +. delta)) < 1e-9)


(* ------------------------------------------------------------------ *)
(* Csma                                                                *)
(* ------------------------------------------------------------------ *)

let test_csma_attempts () =
  let c = Csma.make ~collision_probability:0.2 () in
  check_close "collision-inflated attempts" (1.5 /. 0.8) (Csma.attempts c ~etx:1.5)

let test_csma_validation () =
  Alcotest.(check bool) "bad duty" true
    (try ignore (Csma.make ~idle_listen_fraction:1.5 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad collision" true
    (try ignore (Csma.make ~collision_probability:1.0 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative cca" true
    (try ignore (Csma.make ~cca_s:(-1.) ()); false
     with Invalid_argument _ -> true)

let test_csma_costs_more_than_tdma () =
  (* For the same traffic, contention always costs at least as much as
     the collision-free schedule: CCA + backoff + idle listening. *)
  let c = Csma.make () in
  let proto = Tdma.make () in
  let link = { Lifetime.etx = 1.2; airtime_s = 0.0016 } in
  let tdma_q =
    Lifetime.node_charge_per_period_mas device proto ~tx_links:[ link ] ~rx_links:[ link ]
  in
  let csma_q =
    Csma.node_charge_per_period_mas c device ~period_s:proto.Tdma.report_period_s
      ~tx_links:[ link ] ~rx_links:[ link ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "csma (%.3f) >= tdma (%.3f)" csma_q tdma_q)
    true (csma_q >= tdma_q)

let test_csma_tx_charge_components () =
  let c = Csma.make ~cca_s:1e-3 ~mean_backoff_s:2e-3 ~collision_probability:0. () in
  (* 1 attempt: listen 3 ms at 20 mA + send 2 ms at 30 mA. *)
  let q = Csma.tx_charge_mas c device ~etx:1. ~airtime_s:2e-3 in
  check_close "cca+backoff+payload" ((3e-3 *. 20.) +. (2e-3 *. 30.)) q

let prop_csma_monotone_in_collisions =
  QCheck2.Test.make ~name:"csma: more collisions, more charge" ~count:100
    QCheck2.Gen.(tup2 (float_range 0. 0.8) (float_range 0. 0.8))
    (fun (p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      let q p =
        Csma.node_charge_per_period_mas
          (Csma.make ~collision_probability:p ())
          device ~period_s:30.
          ~tx_links:[ { Lifetime.etx = 1.5; airtime_s = 0.0016 } ]
          ~rx_links:[]
      in
      q hi >= q lo -. 1e-12)

let () =
  Alcotest.run "energy"
    [
      ( "tdma",
        [
          Alcotest.test_case "defaults" `Quick test_tdma_defaults;
          Alcotest.test_case "validation" `Quick test_tdma_validation;
        ] );
      ( "csma",
        [
          Alcotest.test_case "attempts" `Quick test_csma_attempts;
          Alcotest.test_case "validation" `Quick test_csma_validation;
          Alcotest.test_case "costs more than tdma" `Quick test_csma_costs_more_than_tdma;
          Alcotest.test_case "tx charge parts" `Quick test_csma_tx_charge_components;
          qt prop_csma_monotone_in_collisions;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "link charges" `Quick test_link_charges;
          Alcotest.test_case "node charge" `Quick test_node_charge_hand_computed;
          Alcotest.test_case "lifetime seconds" `Quick test_lifetime_s;
          Alcotest.test_case "sleep-only lifetime" `Quick test_lifetime_years_sleep_only;
          Alcotest.test_case "traffic shortens life" `Quick test_lifetime_decreases_with_traffic;
          qt prop_lifetime_monotone_in_etx;
          qt prop_charge_additive;
        ] );
    ]
