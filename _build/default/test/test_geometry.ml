(* Tests for the geometry substrate: points, segment intersection,
   floor plans and wall crossings, the synthetic building generator,
   and SVG reading/writing. *)

open Geometry

let _qt = QCheck_alcotest.to_alcotest

let pt = Point.make

(* ------------------------------------------------------------------ *)
(* Point                                                               *)
(* ------------------------------------------------------------------ *)

let test_point_arithmetic () =
  let a = pt 1. 2. and b = pt 3. 5. in
  Alcotest.(check (float 1e-9)) "dist" (Float.sqrt 13.) (Point.dist a b);
  Alcotest.(check (float 1e-9)) "dist2" 13. (Point.dist2 a b);
  Alcotest.(check (float 1e-9)) "dot" 13. (Point.dot a b);
  Alcotest.(check (float 1e-9)) "cross" (-1.) (Point.cross a b);
  Alcotest.(check bool) "add/sub inverse" true
    (Point.equal_eps (Point.sub (Point.add a b) b) a)

let test_point_lerp () =
  let a = pt 0. 0. and b = pt 10. 20. in
  Alcotest.(check bool) "midpoint" true (Point.equal_eps (Point.lerp a b 0.5) (pt 5. 10.));
  Alcotest.(check bool) "t=0" true (Point.equal_eps (Point.lerp a b 0.) a);
  Alcotest.(check bool) "t=1" true (Point.equal_eps (Point.lerp a b 1.) b)

let prop_dist_triangle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"point: triangle inequality" ~count:300
       QCheck2.Gen.(
         let c = float_range (-100.) 100. in
         tup6 c c c c c c)
       (fun (ax, ay, bx, by, cx, cy) ->
         let a = pt ax ay and b = pt bx by and c = pt cx cy in
         Point.dist a c <= Point.dist a b +. Point.dist b c +. 1e-9))

(* ------------------------------------------------------------------ *)
(* Segment                                                             *)
(* ------------------------------------------------------------------ *)

let test_segment_proper_crossing () =
  let s1 = Segment.of_coords 0. 0. 10. 10. in
  let s2 = Segment.of_coords 0. 10. 10. 0. in
  Alcotest.(check bool) "crosses" true (Segment.intersects_proper s1 s2);
  Alcotest.(check bool) "also intersects" true (Segment.intersects s1 s2)

let test_segment_touching_endpoint_not_proper () =
  let s1 = Segment.of_coords 0. 0. 5. 5. in
  let s2 = Segment.of_coords 5. 5. 10. 0. in
  Alcotest.(check bool) "touch counts as intersects" true (Segment.intersects s1 s2);
  Alcotest.(check bool) "touch is not proper" false (Segment.intersects_proper s1 s2)

let test_segment_parallel_disjoint () =
  let s1 = Segment.of_coords 0. 0. 10. 0. in
  let s2 = Segment.of_coords 0. 1. 10. 1. in
  Alcotest.(check bool) "no intersection" false (Segment.intersects s1 s2);
  Alcotest.(check bool) "no proper" false (Segment.intersects_proper s1 s2)

let test_segment_collinear_overlap () =
  let s1 = Segment.of_coords 0. 0. 5. 0. in
  let s2 = Segment.of_coords 3. 0. 8. 0. in
  Alcotest.(check bool) "collinear overlap intersects" true (Segment.intersects s1 s2);
  Alcotest.(check bool) "but not properly" false (Segment.intersects_proper s1 s2)

let test_segment_intersection_point () =
  let s1 = Segment.of_coords 0. 0. 10. 0. in
  let s2 = Segment.of_coords 5. (-5.) 5. 5. in
  match Segment.intersection_point s1 s2 with
  | Some p -> Alcotest.(check bool) "(5, 0)" true (Point.equal_eps ~eps:1e-9 p (pt 5. 0.))
  | None -> Alcotest.fail "expected an intersection"

let test_segment_length_midpoint () =
  let s = Segment.of_coords 0. 0. 3. 4. in
  Alcotest.(check (float 1e-9)) "length" 5. (Segment.length s);
  Alcotest.(check bool) "midpoint" true (Point.equal_eps (Segment.midpoint s) (pt 1.5 2.))

let test_segment_t_shape () =
  (* One segment's endpoint in the interior of the other: intersects but
     not a proper crossing. *)
  let s1 = Segment.of_coords 0. 0. 10. 0. in
  let s2 = Segment.of_coords 5. 0. 5. 5. in
  Alcotest.(check bool) "T intersects" true (Segment.intersects s1 s2);
  Alcotest.(check bool) "T not proper" false (Segment.intersects_proper s1 s2)

(* ------------------------------------------------------------------ *)
(* Floorplan                                                           *)
(* ------------------------------------------------------------------ *)

let plan_with_wall () =
  Floorplan.create ~width:20. ~height:10.
    [ { Floorplan.seg = Segment.of_coords 10. 0. 10. 10.; material = Floorplan.Concrete } ]

let test_floorplan_crossing () =
  let fp = plan_with_wall () in
  Alcotest.(check int) "crosses the wall" 1 (List.length (Floorplan.crossings fp (pt 2. 5.) (pt 18. 5.)));
  Alcotest.(check (float 1e-9)) "concrete attenuation" 12.
    (Floorplan.wall_attenuation fp (pt 2. 5.) (pt 18. 5.));
  Alcotest.(check int) "same side no crossing" 0
    (List.length (Floorplan.crossings fp (pt 2. 2.) (pt 8. 8.)))

let test_floorplan_materials () =
  Alcotest.(check (float 1e-9)) "drywall" 3. (Floorplan.attenuation_db Floorplan.Drywall);
  Alcotest.(check (float 1e-9)) "custom" 7.5
    (Floorplan.attenuation_db (Floorplan.Custom ("fence", 7.5)));
  Alcotest.(check string) "name" "concrete" (Floorplan.material_name Floorplan.Concrete);
  (match Floorplan.material_of_name "BRICK" with
  | Floorplan.Brick -> ()
  | _ -> Alcotest.fail "case-insensitive lookup");
  match Floorplan.material_of_name ~attenuation:2. "plastic" with
  | Floorplan.Custom ("plastic", 2.) -> ()
  | _ -> Alcotest.fail "unknown material becomes custom"

let test_floorplan_contains () =
  let fp = plan_with_wall () in
  Alcotest.(check bool) "inside" true (Floorplan.contains fp (pt 5. 5.));
  Alcotest.(check bool) "boundary" true (Floorplan.contains fp (pt 0. 0.));
  Alcotest.(check bool) "outside" false (Floorplan.contains fp (pt 21. 5.))

let test_floorplan_rejects_bad_dims () =
  Alcotest.check_raises "bad dims"
    (Invalid_argument "Floorplan.create: non-positive dimensions") (fun () ->
      ignore (Floorplan.create ~width:0. ~height:5. []))

(* ------------------------------------------------------------------ *)
(* Building generator                                                  *)
(* ------------------------------------------------------------------ *)

let test_building_deterministic () =
  let a = Building.office ~width:40. ~height:20. ~rooms_x:3 ~rooms_y:2 () in
  let b = Building.office ~width:40. ~height:20. ~rooms_x:3 ~rooms_y:2 () in
  Alcotest.(check int) "same wall count" (Floorplan.nwalls a) (Floorplan.nwalls b);
  let c = Building.office ~seed:7 ~width:40. ~height:20. ~rooms_x:3 ~rooms_y:2 () in
  Alcotest.(check int) "seeded variant same structure" (Floorplan.nwalls a) (Floorplan.nwalls c)

let test_building_wall_count () =
  (* 4 outer walls + (rooms_x-1)*rooms_y vertical + (rooms_y-1)*rooms_x
     horizontal partitions, each split in two by a door. *)
  let fp = Building.office ~width:40. ~height:20. ~rooms_x:3 ~rooms_y:2 () in
  let expected = 4 + (2 * 2 * 2) + (1 * 3 * 2) in
  Alcotest.(check int) "wall segments" expected (Floorplan.nwalls fp)

let test_building_doors_pass () =
  (* Every partition has a door, so every pair of adjacent room centres
     has strictly less attenuation than a full-height wall would give:
     in fact many center-to-center links cross at most 1 segment. *)
  let fp = Building.office ~width:40. ~height:20. ~rooms_x:2 ~rooms_y:1 ~door_width:8. () in
  (* With an 8 m door on a 20 m partition, the straight line between the
     two room centres often passes through the gap.  At minimum the
     attenuation must be at most one drywall. *)
  let att = Floorplan.wall_attenuation fp (pt 10. 10.) (pt 30. 10.) in
  Alcotest.(check bool) "at most one drywall" true (att <= 3.0 +. 1e-9)

let test_building_rejects_bad_rooms () =
  Alcotest.check_raises "no rooms"
    (Invalid_argument "Building.office: non-positive room count") (fun () ->
      ignore (Building.office ~width:10. ~height:10. ~rooms_x:0 ~rooms_y:1 ()))

let test_candidate_grid () =
  let fp = Floorplan.create ~width:10. ~height:10. [] in
  let pts = Building.candidate_grid fp ~nx:2 ~ny:2 in
  Alcotest.(check int) "count" 4 (List.length pts);
  Alcotest.(check bool) "all inside" true (List.for_all (Floorplan.contains fp) pts);
  match pts with
  | first :: _ -> Alcotest.(check bool) "inset" true (Point.equal_eps first (pt 2.5 2.5))
  | [] -> Alcotest.fail "no points"

let test_room_centers () =
  let cs = Building.room_centers ~width:40. ~height:20. ~rooms_x:2 ~rooms_y:2 in
  Alcotest.(check int) "count" 4 (List.length cs);
  Alcotest.(check bool) "first centre" true (Point.equal_eps (List.hd cs) (pt 10. 5.))

let test_corridor_structure () =
  let fp = Building.corridor ~width:40. ~height:16. ~rooms_per_side:4 () in
  (* 4 outer + per office 2 corridor-wall segments per side (door split)
     = 4 sides? count: 2 sides x 4 offices x 2 segments + party walls
     2 x 3 = 4 + 16 + 6. *)
  Alcotest.(check int) "wall segments" (4 + 16 + 6) (Floorplan.nwalls fp);
  (* A link down the corridor centre crosses no wall. *)
  Alcotest.(check (float 1e-9)) "corridor is clear" 0.
    (Floorplan.wall_attenuation fp (pt 1. 8.) (pt 39. 8.));
  (* Office-to-office through the party wall is attenuated. *)
  Alcotest.(check bool) "party wall attenuates" true
    (Floorplan.wall_attenuation fp (pt 5. 3.) (pt 15. 3.) >= 3.)

let test_corridor_room_centers () =
  let cs = Building.corridor_room_centers ~width:40. ~height:16. ~rooms_per_side:4 () in
  Alcotest.(check int) "8 offices" 8 (List.length cs);
  let fp = Building.corridor ~width:40. ~height:16. ~rooms_per_side:4 () in
  Alcotest.(check bool) "centers inside" true (List.for_all (Floorplan.contains fp) cs)

let test_corridor_validation () =
  Alcotest.(check bool) "no rooms" true
    (try
       ignore (Building.corridor ~width:10. ~height:10. ~rooms_per_side:0 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "corridor too wide" true
    (try
       ignore (Building.corridor ~corridor_width:12. ~width:10. ~height:10. ~rooms_per_side:2 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* SVG                                                                 *)
(* ------------------------------------------------------------------ *)

let sample_svg =
  {|<?xml version="1.0"?>
<svg xmlns="http://www.w3.org/2000/svg" width="50" height="30">
  <!-- walls -->
  <line x1="10" y1="0" x2="10" y2="30" class="concrete"/>
  <rect x="20" y="5" width="10" height="10" class="drywall"/>
  <circle cx="5" cy="5" r="0.5" class="sensor"/>
  <circle cx="45" cy="25" r="0.5" class="sink"/>
  <circle cx="25" cy="25" r="0.5" class="eval"/>
  <circle cx="30" cy="12" r="0.5"/>
</svg>|}

let test_svg_parse () =
  match Svg.parse sample_svg with
  | Error e -> Alcotest.fail e
  | Ok { plan; nodes } ->
      Alcotest.(check (float 1e-9)) "width" 50. (Floorplan.width plan);
      Alcotest.(check (float 1e-9)) "height" 30. (Floorplan.height plan);
      (* 1 line + 4 rect sides. *)
      Alcotest.(check int) "walls" 5 (Floorplan.nwalls plan);
      Alcotest.(check int) "nodes" 4 (List.length nodes);
      let roles = List.map fst nodes in
      Alcotest.(check (list string)) "roles in order" [ "sensor"; "sink"; "eval"; "node" ] roles

let test_svg_parse_errors () =
  Alcotest.(check bool) "no svg element" true (Result.is_error (Svg.parse "<html></html>"));
  Alcotest.(check bool) "bad numeric attr" true
    (Result.is_error (Svg.parse {|<svg width="w" height="3"><line x1="0" y1="0" x2="1" y2="1"/></svg>|}))

let test_svg_units_tolerated () =
  match Svg.parse {|<svg width="80mm" height="45mm"></svg>|} with
  | Ok { plan; _ } -> Alcotest.(check (float 1e-9)) "unit suffix stripped" 80. (Floorplan.width plan)
  | Error e -> Alcotest.fail e

let test_svg_roundtrip () =
  (* Render a scene, re-parse it, and compare wall counts. *)
  let fp = Building.office ~width:30. ~height:20. ~rooms_x:2 ~rooms_y:2 () in
  let sc = Svg.scene ~width:30. ~height:20. in
  Svg.add_floorplan sc fp;
  Svg.add sc (Svg.Circle (pt 3. 3., 0.5, { Svg.default_style with fill = "#2a2" }));
  let rendered = Svg.render sc in
  Alcotest.(check bool) "looks like svg" true (Astring.String.is_prefix ~affix:"<svg" rendered);
  match Svg.parse rendered with
  | Ok { nodes; _ } -> Alcotest.(check int) "circle survives" 1 (List.length nodes)
  | Error e -> Alcotest.fail e

let test_svg_scene_elements () =
  let sc = Svg.scene ~width:10. ~height:10. in
  Svg.add sc (Svg.Line (Segment.of_coords 0. 0. 5. 5., Svg.default_style));
  Svg.add sc (Svg.Rect (pt 1. 1., 2., 2., Svg.default_style));
  Svg.add sc (Svg.Polyline ([ pt 0. 0.; pt 1. 2.; pt 3. 1. ], Svg.default_style));
  Svg.add sc (Svg.Text (pt 5. 5., "hello", 10., "#000"));
  let s = Svg.render ~scale:10. sc in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("contains " ^ affix) true (Astring.String.is_infix ~affix s))
    [ "<line"; "<rect"; "<polyline"; "<text"; "hello" ]

let () =
  Alcotest.run "geometry"
    [
      ( "point",
        [
          Alcotest.test_case "arithmetic" `Quick test_point_arithmetic;
          Alcotest.test_case "lerp" `Quick test_point_lerp;
          prop_dist_triangle;
        ] );
      ( "segment",
        [
          Alcotest.test_case "proper crossing" `Quick test_segment_proper_crossing;
          Alcotest.test_case "endpoint touch" `Quick test_segment_touching_endpoint_not_proper;
          Alcotest.test_case "parallel" `Quick test_segment_parallel_disjoint;
          Alcotest.test_case "collinear overlap" `Quick test_segment_collinear_overlap;
          Alcotest.test_case "intersection point" `Quick test_segment_intersection_point;
          Alcotest.test_case "length and midpoint" `Quick test_segment_length_midpoint;
          Alcotest.test_case "T shape" `Quick test_segment_t_shape;
        ] );
      ( "floorplan",
        [
          Alcotest.test_case "crossings and attenuation" `Quick test_floorplan_crossing;
          Alcotest.test_case "materials" `Quick test_floorplan_materials;
          Alcotest.test_case "contains" `Quick test_floorplan_contains;
          Alcotest.test_case "bad dimensions" `Quick test_floorplan_rejects_bad_dims;
        ] );
      ( "building",
        [
          Alcotest.test_case "deterministic" `Quick test_building_deterministic;
          Alcotest.test_case "wall count" `Quick test_building_wall_count;
          Alcotest.test_case "doors pass signal" `Quick test_building_doors_pass;
          Alcotest.test_case "bad room count" `Quick test_building_rejects_bad_rooms;
          Alcotest.test_case "candidate grid" `Quick test_candidate_grid;
          Alcotest.test_case "room centers" `Quick test_room_centers;
          Alcotest.test_case "corridor structure" `Quick test_corridor_structure;
          Alcotest.test_case "corridor room centers" `Quick test_corridor_room_centers;
          Alcotest.test_case "corridor validation" `Quick test_corridor_validation;
        ] );
      ( "svg",
        [
          Alcotest.test_case "parse sample" `Quick test_svg_parse;
          Alcotest.test_case "parse errors" `Quick test_svg_parse_errors;
          Alcotest.test_case "unit suffixes" `Quick test_svg_units_tolerated;
          Alcotest.test_case "round trip" `Quick test_svg_roundtrip;
          Alcotest.test_case "scene elements" `Quick test_svg_scene_elements;
        ] );
    ]
