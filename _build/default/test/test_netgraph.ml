(* Tests for the graph substrate: digraph operations, Dijkstra with
   node/edge masks, Yen's K-shortest loopless paths (including a check
   against brute-force path enumeration), and path utilities. *)

open Netgraph

let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Digraph                                                             *)
(* ------------------------------------------------------------------ *)

let test_digraph_basic () =
  let g = Digraph.create 4 in
  Digraph.add_edge g ~w:2. 0 1;
  Digraph.add_edge g ~w:3. 1 2;
  Digraph.add_edge g 2 3;
  Alcotest.(check int) "nodes" 4 (Digraph.nnodes g);
  Alcotest.(check int) "edges" 3 (Digraph.nedges g);
  Alcotest.(check bool) "mem" true (Digraph.mem_edge g 0 1);
  Alcotest.(check bool) "not mem reverse" false (Digraph.mem_edge g 1 0);
  Alcotest.(check (float 1e-9)) "weight" 2. (Digraph.weight g 0 1);
  Alcotest.(check (float 1e-9)) "default weight" 1. (Digraph.weight g 2 3)

let test_digraph_overwrite () =
  let g = Digraph.create 2 in
  Digraph.add_edge g ~w:1. 0 1;
  Digraph.add_edge g ~w:5. 0 1;
  Alcotest.(check int) "edge count unchanged" 1 (Digraph.nedges g);
  Alcotest.(check (float 1e-9)) "weight overwritten" 5. (Digraph.weight g 0 1)

let test_digraph_set_weight () =
  let g = Digraph.create 2 in
  Digraph.add_edge g ~w:1. 0 1;
  Digraph.set_weight g 0 1 7.;
  Alcotest.(check (float 1e-9)) "fwd" 7. (Digraph.weight g 0 1);
  Alcotest.(check (float 1e-9)) "bwd view" 7. (List.assoc 0 (Digraph.pred g 1));
  Alcotest.check_raises "missing edge" Not_found (fun () -> Digraph.set_weight g 1 0 1.)

let test_digraph_rejects_self_loop () =
  let g = Digraph.create 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.add_edge: self-loop") (fun () ->
      Digraph.add_edge g 1 1)

let test_digraph_degrees () =
  let g = Digraph.of_edges 4 [ (0, 1, 1.); (0, 2, 1.); (3, 0, 1.) ] in
  Alcotest.(check int) "out" 2 (Digraph.out_degree g 0);
  Alcotest.(check int) "in" 1 (Digraph.in_degree g 0);
  Alcotest.(check int) "pred count" 1 (List.length (Digraph.pred g 0))

let test_digraph_transpose () =
  let g = Digraph.of_edges 3 [ (0, 1, 2.); (1, 2, 3.) ] in
  let t = Digraph.transpose g in
  Alcotest.(check bool) "reversed" true (Digraph.mem_edge t 1 0);
  Alcotest.(check (float 1e-9)) "weight kept" 3. (Digraph.weight t 2 1)

let test_digraph_reachable () =
  let g = Digraph.of_edges 5 [ (0, 1, 1.); (1, 2, 1.); (3, 4, 1.) ] in
  let r = Digraph.reachable g 0 in
  Alcotest.(check bool) "self" true r.(0);
  Alcotest.(check bool) "transitive" true r.(2);
  Alcotest.(check bool) "disconnected" false r.(3)

let test_digraph_copy_independent () =
  let g = Digraph.of_edges 2 [ (0, 1, 1.) ] in
  let h = Digraph.copy g in
  Digraph.set_weight h 0 1 9.;
  Alcotest.(check (float 1e-9)) "original untouched" 1. (Digraph.weight g 0 1)

let test_digraph_undirected () =
  let g = Digraph.create 2 in
  Digraph.add_undirected g ~w:4. 0 1;
  Alcotest.(check bool) "both ways" true (Digraph.mem_edge g 0 1 && Digraph.mem_edge g 1 0)

(* ------------------------------------------------------------------ *)
(* Dijkstra                                                            *)
(* ------------------------------------------------------------------ *)

let diamond () =
  Digraph.of_edges 4 [ (0, 1, 1.); (0, 2, 4.); (1, 2, 1.); (1, 3, 5.); (2, 3, 1.) ]

let test_dijkstra_shortest () =
  match Dijkstra.shortest_path (diamond ()) ~src:0 ~dst:3 with
  | Some (cost, path) ->
      Alcotest.(check (float 1e-9)) "cost" 3. cost;
      Alcotest.(check (list int)) "path" [ 0; 1; 2; 3 ] path
  | None -> Alcotest.fail "expected a path"

let test_dijkstra_unreachable () =
  let g = Digraph.of_edges 3 [ (0, 1, 1.) ] in
  Alcotest.(check bool) "unreachable" true (Dijkstra.shortest_path g ~src:0 ~dst:2 = None)

let test_dijkstra_banned_node () =
  let r = Dijkstra.shortest_path (diamond ()) ~banned_node:(fun v -> v = 1) ~src:0 ~dst:3 in
  match r with
  | Some (cost, path) ->
      Alcotest.(check (float 1e-9)) "detour cost" 5. cost;
      Alcotest.(check (list int)) "detour path" [ 0; 2; 3 ] path
  | None -> Alcotest.fail "expected a detour"

let test_dijkstra_banned_edge () =
  let r =
    Dijkstra.shortest_path (diamond ()) ~banned_edge:(fun u v -> u = 2 && v = 3) ~src:0 ~dst:3
  in
  match r with
  | Some (cost, path) ->
      Alcotest.(check (float 1e-9)) "cost without (2,3)" 6. cost;
      Alcotest.(check (list int)) "path without (2,3)" [ 0; 1; 3 ] path
  | None -> Alcotest.fail "expected a path"

let test_dijkstra_infinite_weight_skipped () =
  let g = Digraph.of_edges 3 [ (0, 1, infinity); (0, 2, 1.); (2, 1, 1.) ] in
  match Dijkstra.shortest_path g ~src:0 ~dst:1 with
  | Some (cost, _) -> Alcotest.(check (float 1e-9)) "avoids inf edge" 2. cost
  | None -> Alcotest.fail "expected a path"

let test_dijkstra_src_eq_dst () =
  match Dijkstra.shortest_path (diamond ()) ~src:2 ~dst:2 with
  | Some (cost, path) ->
      Alcotest.(check (float 1e-9)) "zero cost" 0. cost;
      Alcotest.(check (list int)) "trivial path" [ 2 ] path
  | None -> Alcotest.fail "expected the trivial path"

let test_dijkstra_negative_weight_rejected () =
  let g = Digraph.of_edges 2 [ (0, 1, -1.) ] in
  Alcotest.check_raises "negative weight" (Invalid_argument "Dijkstra: negative edge weight")
    (fun () -> ignore (Dijkstra.shortest_path g ~src:0 ~dst:1))

(* Random graphs: distances computed by Dijkstra equal Bellman-Ford. *)
let random_graph_gen =
  QCheck2.Gen.(
    let* n = int_range 2 9 in
    let* edges =
      list_size
        (int_range 1 (n * (n - 1)))
        (let* u = int_range 0 (n - 1) in
         let* v = int_range 0 (n - 1) in
         let* w = float_range 0.1 10. in
         return (u, v, w))
    in
    return (n, List.filter (fun (u, v, _) -> u <> v) edges))

let bellman_ford g src =
  let n = Digraph.nnodes g in
  let dist = Array.make n infinity in
  dist.(src) <- 0.;
  for _ = 1 to n do
    Digraph.iter_edges (fun u v w -> if dist.(u) +. w < dist.(v) then dist.(v) <- dist.(u) +. w) g
  done;
  dist

let prop_dijkstra_vs_bellman_ford =
  QCheck2.Test.make ~name:"dijkstra: distances match Bellman-Ford" ~count:200 random_graph_gen
    (fun (n, edges) ->
      let g = Digraph.of_edges n edges in
      let d1 = Dijkstra.distances g ~src:0 in
      let d2 = bellman_ford g 0 in
      Array.for_all2
        (fun a b -> (a = infinity && b = infinity) || Float.abs (a -. b) < 1e-9)
        d1 d2)

(* ------------------------------------------------------------------ *)
(* Path utilities                                                      *)
(* ------------------------------------------------------------------ *)

let test_path_edges_length () =
  Alcotest.(check (list (pair int int))) "edges" [ (1, 2); (2, 5) ] (Path.edges [ 1; 2; 5 ]);
  Alcotest.(check int) "length" 2 (Path.length [ 1; 2; 5 ]);
  Alcotest.(check int) "singleton" 0 (Path.length [ 3 ]);
  Alcotest.(check int) "empty" 0 (Path.length [])

let test_path_validity () =
  let g = Digraph.of_edges 4 [ (0, 1, 1.); (1, 2, 1.) ] in
  Alcotest.(check bool) "valid" true (Path.is_valid g [ 0; 1; 2 ]);
  Alcotest.(check bool) "missing edge" false (Path.is_valid g [ 0; 2 ]);
  Alcotest.(check bool) "repeated node" false (Path.is_simple [ 0; 1; 0 ]);
  Alcotest.(check bool) "empty invalid" false (Path.is_valid g [])

let test_path_cost () =
  let g = Digraph.of_edges 3 [ (0, 1, 2.5); (1, 2, 1.5) ] in
  Alcotest.(check (float 1e-9)) "cost" 4. (Path.cost g [ 0; 1; 2 ])

let test_path_endpoints () =
  Alcotest.(check (option int)) "source" (Some 7) (Path.source [ 7; 8; 9 ]);
  Alcotest.(check (option int)) "destination" (Some 9) (Path.destination [ 7; 8; 9 ]);
  Alcotest.(check (option int)) "empty source" None (Path.source [])

let test_path_disjointness () =
  Alcotest.(check bool) "edge disjoint" true (Path.edge_disjoint [ 0; 1; 3 ] [ 0; 2; 3 ]);
  Alcotest.(check bool) "shares an edge" false (Path.edge_disjoint [ 0; 1; 3 ] [ 0; 1; 2; 3 ]);
  Alcotest.(check (list (pair int int)))
    "shared edges" [ (0, 1) ]
    (Path.shared_edges [ 0; 1; 3 ] [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "node disjoint" true (Path.node_disjoint [ 0; 1; 3 ] [ 0; 2; 3 ]);
  Alcotest.(check bool) "node shared" false (Path.node_disjoint [ 0; 1; 3 ] [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Yen                                                                 *)
(* ------------------------------------------------------------------ *)

let yen_example () =
  Digraph.of_edges 6
    [
      (0, 1, 3.);
      (0, 2, 2.);
      (1, 3, 4.);
      (2, 1, 1.);
      (2, 3, 2.);
      (2, 4, 3.);
      (3, 4, 2.);
      (3, 5, 1.);
      (4, 5, 2.);
    ]

let test_yen_worked_example () =
  let ps = Yen.k_shortest (yen_example ()) ~src:0 ~dst:5 ~k:3 in
  let costs = List.map fst ps and paths = List.map snd ps in
  Alcotest.(check (list (float 1e-9))) "costs" [ 5.; 7.; 8. ] costs;
  Alcotest.(check (list (list int)))
    "paths"
    [ [ 0; 2; 3; 5 ]; [ 0; 2; 4; 5 ]; [ 0; 1; 3; 5 ] ]
    paths

let test_yen_k_one_is_dijkstra () =
  let g = yen_example () in
  let yen = Yen.k_shortest g ~src:0 ~dst:5 ~k:1 in
  let dij = Dijkstra.shortest_path g ~src:0 ~dst:5 in
  match (yen, dij) with
  | [ (c1, p1) ], Some (c2, p2) ->
      Alcotest.(check (float 1e-9)) "same cost" c2 c1;
      Alcotest.(check (list int)) "same path" p2 p1
  | _ -> Alcotest.fail "k=1 should produce exactly the Dijkstra path"

let test_yen_unreachable () =
  let g = Digraph.of_edges 3 [ (0, 1, 1.) ] in
  Alcotest.(check int) "no paths" 0 (List.length (Yen.k_shortest g ~src:0 ~dst:2 ~k:4))

let test_yen_fewer_than_k () =
  let g = Digraph.of_edges 4 [ (0, 1, 1.); (1, 3, 1.); (0, 2, 2.); (2, 3, 2.) ] in
  let ps = Yen.k_shortest g ~src:0 ~dst:3 ~k:10 in
  Alcotest.(check int) "exactly the existing paths" 2 (List.length ps)

let test_yen_rejects_bad_args () =
  let g = Digraph.create 3 in
  Alcotest.check_raises "src = dst" (Invalid_argument "Yen.k_shortest: src = dst") (fun () ->
      ignore (Yen.k_shortest g ~src:1 ~dst:1 ~k:2));
  Alcotest.check_raises "negative k" (Invalid_argument "Yen.k_shortest: negative k") (fun () ->
      ignore (Yen.k_shortest g ~src:0 ~dst:1 ~k:(-1)))

(* Brute-force all simple paths for cross-checking Yen. *)
let all_simple_paths g src dst =
  let acc = ref [] in
  let rec go path node =
    if node = dst then acc := List.rev (node :: path) :: !acc
    else
      List.iter
        (fun (next, w) ->
          if Float.is_finite w && not (List.mem next (node :: path)) then go (node :: path) next)
        (Digraph.succ g node)
  in
  go [] src;
  List.map (fun p -> (Path.cost g p, p)) !acc

let prop_yen_matches_brute_force =
  QCheck2.Test.make ~name:"yen: k best costs match brute-force enumeration" ~count:120
    random_graph_gen (fun (n, edges) ->
      let g = Digraph.of_edges n edges in
      let src = 0 and dst = n - 1 in
      let k = 5 in
      let yen = Yen.k_shortest g ~src ~dst ~k in
      let brute = List.sort (fun (a, _) (b, _) -> compare a b) (all_simple_paths g src dst) in
      let expected_costs = List.filteri (fun i _ -> i < k) (List.map fst brute) in
      let got_costs = List.map fst yen in
      List.length got_costs = List.length expected_costs
      && List.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) got_costs expected_costs)

let prop_yen_paths_simple_and_sorted =
  QCheck2.Test.make ~name:"yen: results are simple, valid, distinct, sorted" ~count:120
    random_graph_gen (fun (n, edges) ->
      let g = Digraph.of_edges n edges in
      let ps = Yen.k_shortest g ~src:0 ~dst:(n - 1) ~k:6 in
      let rec sorted = function
        | (a, _) :: ((b, _) :: _ as rest) -> a <= b +. 1e-9 && sorted rest
        | _ -> true
      in
      let distinct = List.length (List.sort_uniq compare (List.map snd ps)) = List.length ps in
      sorted ps && distinct
      && List.for_all (fun (_, p) -> Path.is_valid g p && Path.source p = Some 0) ps)


(* ------------------------------------------------------------------ *)
(* Maxflow                                                             *)
(* ------------------------------------------------------------------ *)

let test_maxflow_diamond () =
  (* Two edge-disjoint routes 0->3 exist in the diamond. *)
  let g = Digraph.of_edges 4 [ (0, 1, 1.); (0, 2, 1.); (1, 3, 1.); (2, 3, 1.); (1, 2, 1.) ] in
  Alcotest.(check int) "capacity 2" 2 (Maxflow.edge_disjoint_capacity g ~src:0 ~dst:3)

let test_maxflow_bottleneck () =
  (* All routes share the bridge (2, 3): capacity 1. *)
  let g =
    Digraph.of_edges 6
      [ (0, 1, 1.); (0, 2, 1.); (1, 2, 1.); (2, 3, 1.); (3, 4, 1.); (3, 5, 1.); (4, 5, 1.) ]
  in
  Alcotest.(check int) "bridge limits to 1" 1 (Maxflow.edge_disjoint_capacity g ~src:0 ~dst:5)

let test_maxflow_unreachable () =
  let g = Digraph.of_edges 3 [ (0, 1, 1.) ] in
  Alcotest.(check int) "unreachable" 0 (Maxflow.edge_disjoint_capacity g ~src:0 ~dst:2)

let test_maxflow_infinite_edges_ignored () =
  let g = Digraph.of_edges 3 [ (0, 1, infinity); (1, 2, 1.); (0, 2, 1.) ] in
  Alcotest.(check int) "inf edge dropped" 1 (Maxflow.edge_disjoint_capacity g ~src:0 ~dst:2);
  Alcotest.(check int) "inf edge kept on demand" 2
    (Maxflow.edge_disjoint_capacity ~ignore_infinite:false g ~src:0 ~dst:2)

let test_maxflow_paths_are_disjoint () =
  let g = Digraph.of_edges 4 [ (0, 1, 1.); (0, 2, 1.); (1, 3, 1.); (2, 3, 1.); (1, 2, 1.) ] in
  let ps = Maxflow.disjoint_paths g ~src:0 ~dst:3 in
  Alcotest.(check int) "two paths" 2 (List.length ps);
  (match ps with
  | [ a; b ] ->
      Alcotest.(check bool) "edge disjoint" true (Path.edge_disjoint a b);
      List.iter
        (fun p ->
          Alcotest.(check (option int)) "src" (Some 0) (Path.source p);
          Alcotest.(check (option int)) "dst" (Some 3) (Path.destination p))
        ps
  | _ -> Alcotest.fail "expected two paths")

let test_maxflow_validation () =
  let g = Digraph.create 3 in
  Alcotest.(check bool) "src=dst" true
    (try ignore (Maxflow.edge_disjoint_capacity g ~src:1 ~dst:1); false
     with Invalid_argument _ -> true)

(* Menger cross-check: capacity from max-flow equals the brute-force
   maximum disjoint selection out of all simple paths on small graphs. *)
let prop_maxflow_menger =
  QCheck2.Test.make ~name:"maxflow: matches brute-force disjoint selection" ~count:80
    random_graph_gen (fun (n, edges) ->
      let g = Digraph.of_edges n edges in
      let src = 0 and dst = n - 1 in
      let cap = Maxflow.edge_disjoint_capacity g ~src ~dst in
      let all = List.map snd (all_simple_paths g src dst) in
      (* Exponential in theory; graphs are tiny.  Greedy over all
         orderings is too costly, so we do exact search with pruning. *)
      let best = ref 0 in
      let rec go chosen = function
        | [] -> best := Int.max !best (List.length chosen)
        | p :: rest ->
            if List.length chosen + List.length rest + 1 > !best then begin
              if List.for_all (Path.edge_disjoint p) chosen then go (p :: chosen) rest;
              go chosen rest
            end
      in
      if List.length all <= 18 then begin
        go [] all;
        cap = !best
      end
      else true)

let () =
  Alcotest.run "netgraph"
    [
      ( "digraph",
        [
          Alcotest.test_case "basics" `Quick test_digraph_basic;
          Alcotest.test_case "edge overwrite" `Quick test_digraph_overwrite;
          Alcotest.test_case "set_weight" `Quick test_digraph_set_weight;
          Alcotest.test_case "self loops rejected" `Quick test_digraph_rejects_self_loop;
          Alcotest.test_case "degrees" `Quick test_digraph_degrees;
          Alcotest.test_case "transpose" `Quick test_digraph_transpose;
          Alcotest.test_case "reachability" `Quick test_digraph_reachable;
          Alcotest.test_case "copy independence" `Quick test_digraph_copy_independent;
          Alcotest.test_case "undirected helper" `Quick test_digraph_undirected;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "shortest path" `Quick test_dijkstra_shortest;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "banned node" `Quick test_dijkstra_banned_node;
          Alcotest.test_case "banned edge" `Quick test_dijkstra_banned_edge;
          Alcotest.test_case "infinite weights skipped" `Quick
            test_dijkstra_infinite_weight_skipped;
          Alcotest.test_case "src = dst" `Quick test_dijkstra_src_eq_dst;
          Alcotest.test_case "negative weights rejected" `Quick
            test_dijkstra_negative_weight_rejected;
          qt prop_dijkstra_vs_bellman_ford;
        ] );
      ( "path",
        [
          Alcotest.test_case "edges and length" `Quick test_path_edges_length;
          Alcotest.test_case "validity" `Quick test_path_validity;
          Alcotest.test_case "cost" `Quick test_path_cost;
          Alcotest.test_case "endpoints" `Quick test_path_endpoints;
          Alcotest.test_case "disjointness" `Quick test_path_disjointness;
        ] );
      ( "maxflow",
        [
          Alcotest.test_case "diamond" `Quick test_maxflow_diamond;
          Alcotest.test_case "bottleneck" `Quick test_maxflow_bottleneck;
          Alcotest.test_case "unreachable" `Quick test_maxflow_unreachable;
          Alcotest.test_case "infinite edges" `Quick test_maxflow_infinite_edges_ignored;
          Alcotest.test_case "paths disjoint" `Quick test_maxflow_paths_are_disjoint;
          Alcotest.test_case "validation" `Quick test_maxflow_validation;
          qt prop_maxflow_menger;
        ] );
      ( "yen",
        [
          Alcotest.test_case "worked example" `Quick test_yen_worked_example;
          Alcotest.test_case "k=1 is dijkstra" `Quick test_yen_k_one_is_dijkstra;
          Alcotest.test_case "unreachable" `Quick test_yen_unreachable;
          Alcotest.test_case "fewer than k paths" `Quick test_yen_fewer_than_k;
          Alcotest.test_case "argument validation" `Quick test_yen_rejects_bad_args;
          qt prop_yen_matches_brute_force;
          qt prop_yen_paths_simple_and_sorted;
        ] );
    ]
