(* Tests for the radio substrate: erfc accuracy, BER curves, SNR
   inversion, channel models and the link budget / ETX arithmetic. *)

open Radio

let qt = QCheck_alcotest.to_alcotest

let check_close name ?(tol = 1e-6) expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" name expected got)
    true
    (Float.abs (expected -. got) <= tol)

(* ------------------------------------------------------------------ *)
(* Modulation                                                          *)
(* ------------------------------------------------------------------ *)

let test_erfc_known_values () =
  (* Reference values (Abramowitz & Stegun tables). *)
  check_close "erfc(0)" ~tol:2e-7 1.0 (Modulation.erfc 0.);
  check_close "erfc(0.5)" ~tol:2e-7 0.4795001 (Modulation.erfc 0.5);
  check_close "erfc(1)" ~tol:2e-7 0.1572992 (Modulation.erfc 1.);
  check_close "erfc(2)" ~tol:2e-7 0.0046777 (Modulation.erfc 2.);
  check_close "erfc(-1)" ~tol:2e-7 1.8427008 (Modulation.erfc (-1.))

let test_q_function () =
  check_close "Q(0)" ~tol:1e-6 0.5 (Modulation.q_function 0.);
  check_close "Q(1.2816)" ~tol:1e-4 0.1 (Modulation.q_function 1.2816)

let test_ber_reference_points () =
  (* BPSK at Eb/N0 = 4 dB: ber = Q(sqrt(2*10^0.4)) ~ 1.25e-2. *)
  let b = Modulation.ber Modulation.Bpsk ~snr_db:4. in
  check_close "bpsk @4dB" ~tol:2e-3 0.0125 b;
  (* Noncoherent FSK: 0.5 exp(-g/2) at 10 dB -> 0.5 e^{-5} ~ 3.37e-3 *)
  let f = Modulation.ber Modulation.Fsk_noncoherent ~snr_db:10. in
  check_close "fsk @10dB" ~tol:1e-4 (0.5 *. Float.exp (-5.)) f

let test_ber_monotone_decreasing () =
  List.iter
    (fun m ->
      let prev = ref 1.0 in
      for snr = -10 to 15 do
        let b = Modulation.ber m ~snr_db:(float_of_int snr) in
        Alcotest.(check bool)
          (Printf.sprintf "%s monotone at %d dB" (Modulation.name m) snr)
          true (b <= !prev +. 1e-15);
        prev := b
      done)
    [ Modulation.Bpsk; Modulation.Qpsk; Modulation.Fsk_noncoherent; Modulation.Oqpsk_dsss ]

let test_ber_clamped () =
  Alcotest.(check bool) "low snr clamps at 0.5" true
    (Modulation.ber Modulation.Fsk_noncoherent ~snr_db:(-40.) <= 0.5);
  Alcotest.(check bool) "high snr floors at 1e-16" true
    (Modulation.ber Modulation.Bpsk ~snr_db:40. >= 1e-16)

let test_dsss_gain () =
  (* The DSSS processing gain makes OQPSK-DSSS better than plain QPSK
     at equal SNR. *)
  let q = Modulation.ber Modulation.Qpsk ~snr_db:0. in
  let o = Modulation.ber Modulation.Oqpsk_dsss ~snr_db:0. in
  Alcotest.(check bool) "dsss beats qpsk" true (o < q)

let test_snr_for_ber_inverse () =
  List.iter
    (fun m ->
      List.iter
        (fun target ->
          let snr = Modulation.snr_for_ber m target in
          let back = Modulation.ber m ~snr_db:snr in
          Alcotest.(check bool)
            (Printf.sprintf "%s inverse at %g" (Modulation.name m) target)
            true
            (Float.abs (Float.log10 back -. Float.log10 target) < 0.05))
        [ 1e-3; 1e-5 ])
    [ Modulation.Bpsk; Modulation.Fsk_noncoherent ]

let test_snr_for_ber_rejects_bad () =
  Alcotest.check_raises "ber 0.7" (Invalid_argument "snr_for_ber: target must be in (0, 0.5)")
    (fun () -> ignore (Modulation.snr_for_ber Modulation.Bpsk 0.7))

let test_packet_success_rate () =
  let psr = Modulation.packet_success_rate Modulation.Bpsk ~snr_db:8. ~packet_bits:400 in
  let ber = Modulation.ber Modulation.Bpsk ~snr_db:8. in
  check_close "psr definition" ~tol:1e-9 (Float.pow (1. -. ber) 400.) psr;
  Alcotest.(check bool) "psr in [0,1]" true (psr >= 0. && psr <= 1.)

let test_modulation_names () =
  Alcotest.(check bool) "roundtrip" true
    (Modulation.of_name (Modulation.name Modulation.Oqpsk_dsss) = Some Modulation.Oqpsk_dsss);
  Alcotest.(check bool) "unknown" true (Modulation.of_name "chirp" = None)

(* ------------------------------------------------------------------ *)
(* Channel                                                             *)
(* ------------------------------------------------------------------ *)

let p = Geometry.Point.make

let test_log_distance_reference () =
  (* pl0 = 40 at 1 m, n = 3: at 10 m -> 70 dB. *)
  check_close "at 1m" ~tol:1e-9 40. (Channel.path_loss Channel.log_distance_2_4ghz (p 0. 0.) (p 1. 0.));
  check_close "at 10m" ~tol:1e-9 70. (Channel.path_loss Channel.log_distance_2_4ghz (p 0. 0.) (p 10. 0.))

let test_free_space_reference () =
  (* Friis at 2400 MHz, 1 km: 32.44 + 20 log 2400 = 100.05 dB. *)
  let pl = Channel.path_loss (Channel.Free_space { freq_mhz = 2400. }) (p 0. 0.) (p 1000. 0.) in
  check_close "friis 1km" ~tol:0.1 100.05 pl

let test_multiwall_adds_walls () =
  let wall =
    { Geometry.Floorplan.seg = Geometry.Segment.of_coords 5. (-5.) 5. 5.;
      material = Geometry.Floorplan.Concrete }
  in
  let plan = Geometry.Floorplan.create ~width:20. ~height:10. [ wall ] in
  let model = Channel.multi_wall_2_4ghz plan in
  let pl_wall = Channel.path_loss model (p 0. 0.) (p 10. 0.) in
  check_close "log distance + 12 dB" ~tol:1e-9 82. pl_wall

let test_min_distance_clamp () =
  let a = Channel.path_loss Channel.log_distance_2_4ghz (p 0. 0.) (p 0. 0.) in
  let b = Channel.path_loss Channel.log_distance_2_4ghz (p 0. 0.) (p 0.05 0.) in
  check_close "clamped equal" ~tol:1e-9 a b;
  Alcotest.(check bool) "finite" true (Float.is_finite a)

let test_path_loss_matrix () =
  let locs = [| p 0. 0.; p 10. 0.; p 20. 0. |] in
  let m = Channel.path_loss_matrix Channel.log_distance_2_4ghz locs in
  Alcotest.(check bool) "diagonal inf" true (m.(1).(1) = infinity);
  check_close "symmetric here" ~tol:1e-9 m.(0).(1) m.(1).(0);
  Alcotest.(check bool) "monotone in distance" true (m.(0).(2) > m.(0).(1))

let test_itu_indoor () =
  (* 20 log10(2400) + 30 log10(10) - 28 = 67.6 + 30 - 28 = 69.6 dB. *)
  let pl = Channel.path_loss Channel.itu_indoor_2_4ghz (p 0. 0.) (p 10. 0.) in
  check_close "itu at 10m" ~tol:0.1 69.6 pl;
  let with_floor =
    Channel.path_loss
      (Channel.Itu_indoor { freq_mhz = 2400.; power_coeff = 30.; floors = 2 })
      (p 0. 0.) (p 10. 0.)
  in
  check_close "2 floors add 19 dB" ~tol:0.1 (69.6 +. 19.) with_floor

let test_shadowing_deterministic () =
  let m = Channel.with_shadowing ~sigma_db:6. ~seed:3 Channel.log_distance_2_4ghz in
  let a = Channel.path_loss m (p 0. 0.) (p 10. 0.) in
  let b = Channel.path_loss m (p 0. 0.) (p 10. 0.) in
  check_close "same link same loss" a b;
  let base = Channel.path_loss Channel.log_distance_2_4ghz (p 0. 0.) (p 10. 0.) in
  Alcotest.(check bool) "shadowing moves the loss" true (Float.abs (a -. base) > 1e-6);
  (* Different links see different shadowing. *)
  let c = Channel.path_loss m (p 0. 0.) (p 0. 10.) in
  Alcotest.(check bool) "link-dependent" true (Float.abs (a -. c) > 1e-9)

let test_shadowing_statistics () =
  (* Mean offset over many links should be near 0, spread near sigma. *)
  let sigma = 5. in
  let m = Channel.with_shadowing ~sigma_db:sigma ~seed:9 Channel.log_distance_2_4ghz in
  let offsets =
    List.init 400 (fun i ->
        let q = p (10. +. (0.01 *. float_of_int i)) 0. in
        Channel.path_loss m (p 0. 0.) q -. Channel.path_loss Channel.log_distance_2_4ghz (p 0. 0.) q)
  in
  let n = float_of_int (List.length offsets) in
  let mean = List.fold_left ( +. ) 0. offsets /. n in
  let var = List.fold_left (fun a o -> a +. ((o -. mean) ** 2.)) 0. offsets /. n in
  Alcotest.(check bool) (Printf.sprintf "mean %.2f near 0" mean) true (Float.abs mean < 1.);
  Alcotest.(check bool)
    (Printf.sprintf "std %.2f near sigma" (sqrt var))
    true
    (Float.abs (sqrt var -. sigma) < 1.5)

let test_shadowing_validation () =
  Alcotest.(check bool) "no double shadowing" true
    (try
       ignore (Channel.with_shadowing (Channel.with_shadowing Channel.log_distance_2_4ghz));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "no negative sigma" true
    (try
       ignore (Channel.with_shadowing ~sigma_db:(-1.) Channel.log_distance_2_4ghz);
       false
     with Invalid_argument _ -> true)

let test_max_range () =
  let r =
    Channel.max_range Channel.log_distance_2_4ghz ~tx_dbm:0. ~gains_dbi:0. ~sensitivity_dbm:(-97.)
  in
  (* 40 + 30 log10 d = 97 -> d = 10^(57/30) ~ 79.4 m *)
  check_close "range" ~tol:0.5 79.4 r;
  let tighter =
    Channel.max_range Channel.log_distance_2_4ghz ~tx_dbm:0. ~gains_dbi:0. ~sensitivity_dbm:(-80.)
  in
  Alcotest.(check bool) "higher sensitivity shrinks range" true (tighter < r)

let prop_path_loss_monotone =
  QCheck2.Test.make ~name:"channel: loss grows with distance" ~count:200
    QCheck2.Gen.(tup2 (float_range 0.5 100.) (float_range 0.5 100.))
    (fun (d1, d2) ->
      let lo = Float.min d1 d2 and hi = Float.max d1 d2 in
      Channel.path_loss Channel.log_distance_2_4ghz (p 0. 0.) (p lo 0.)
      <= Channel.path_loss Channel.log_distance_2_4ghz (p 0. 0.) (p hi 0.) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Link budget                                                         *)
(* ------------------------------------------------------------------ *)

let params =
  { Link_budget.tx_dbm = 4.5; tx_gain_dbi = 3.; rx_gain_dbi = 0.; noise_dbm = -100. }

let test_rss_snr () =
  check_close "rss" ~tol:1e-9 (-62.5) (Link_budget.rss ~path_loss_db:70. params);
  check_close "snr" ~tol:1e-9 37.5 (Link_budget.snr ~path_loss_db:70. params);
  check_close "rss_to_snr" ~tol:1e-9 20. (Link_budget.rss_to_snr ~rss_dbm:(-80.) ~noise_dbm:(-100.))

let test_etx_limits () =
  let good = Link_budget.etx ~modulation:Modulation.Qpsk ~packet_bits:400 ~snr_db:20. () in
  check_close "clean link ~1" ~tol:1e-3 1.0 good;
  let bad = Link_budget.etx ~modulation:Modulation.Qpsk ~packet_bits:400 ~snr_db:(-10.) () in
  check_close "hopeless link capped" ~tol:1e-9 100. bad;
  let capped = Link_budget.etx ~max_etx:7. ~modulation:Modulation.Qpsk ~packet_bits:400 ~snr_db:(-10.) () in
  check_close "custom cap" ~tol:1e-9 7. capped

let test_etx_monotone_in_snr () =
  let prev = ref infinity in
  for snr = -5 to 20 do
    let e = Link_budget.etx ~modulation:Modulation.Fsk_noncoherent ~packet_bits:400
        ~snr_db:(float_of_int snr) () in
    Alcotest.(check bool) "etx non-increasing" true (e <= !prev +. 1e-12);
    Alcotest.(check bool) "etx >= 1" true (e >= 1. -. 1e-12);
    prev := e
  done

let test_etx_grows_with_packet_size () =
  let small = Link_budget.etx ~modulation:Modulation.Fsk_noncoherent ~packet_bits:100 ~snr_db:8. () in
  let large = Link_budget.etx ~modulation:Modulation.Fsk_noncoherent ~packet_bits:1000 ~snr_db:8. () in
  Alcotest.(check bool) "longer packets retransmit more" true (large > small)

let () =
  Alcotest.run "radio"
    [
      ( "modulation",
        [
          Alcotest.test_case "erfc reference values" `Quick test_erfc_known_values;
          Alcotest.test_case "Q function" `Quick test_q_function;
          Alcotest.test_case "BER reference points" `Quick test_ber_reference_points;
          Alcotest.test_case "BER monotone" `Quick test_ber_monotone_decreasing;
          Alcotest.test_case "BER clamped" `Quick test_ber_clamped;
          Alcotest.test_case "DSSS gain" `Quick test_dsss_gain;
          Alcotest.test_case "snr_for_ber inverse" `Quick test_snr_for_ber_inverse;
          Alcotest.test_case "snr_for_ber validation" `Quick test_snr_for_ber_rejects_bad;
          Alcotest.test_case "packet success rate" `Quick test_packet_success_rate;
          Alcotest.test_case "names" `Quick test_modulation_names;
        ] );
      ( "channel",
        [
          Alcotest.test_case "log distance" `Quick test_log_distance_reference;
          Alcotest.test_case "free space" `Quick test_free_space_reference;
          Alcotest.test_case "multi-wall" `Quick test_multiwall_adds_walls;
          Alcotest.test_case "distance clamp" `Quick test_min_distance_clamp;
          Alcotest.test_case "path loss matrix" `Quick test_path_loss_matrix;
          Alcotest.test_case "ITU indoor" `Quick test_itu_indoor;
          Alcotest.test_case "shadowing deterministic" `Quick test_shadowing_deterministic;
          Alcotest.test_case "shadowing statistics" `Quick test_shadowing_statistics;
          Alcotest.test_case "shadowing validation" `Quick test_shadowing_validation;
          Alcotest.test_case "max range" `Quick test_max_range;
          qt prop_path_loss_monotone;
        ] );
      ( "link_budget",
        [
          Alcotest.test_case "rss and snr" `Quick test_rss_snr;
          Alcotest.test_case "etx limits" `Quick test_etx_limits;
          Alcotest.test_case "etx monotone" `Quick test_etx_monotone_in_snr;
          Alcotest.test_case "etx vs packet size" `Quick test_etx_grows_with_packet_size;
        ] );
    ]
