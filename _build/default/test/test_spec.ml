(* Tests for the specification language: lexer, parser, and the
   elaboration into typed requirements against a template. *)

let _qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks s =
  match Spec.Lexer.tokenize s with
  | Ok l -> List.map (fun t -> t.Spec.Lexer.tok) l
  | Error e -> Alcotest.fail e

let test_lexer_basic () =
  let open Spec.Lexer in
  Alcotest.(check bool) "pattern tokens" true
    (toks "p1 = has_path(s0, sink)"
    = [ Ident "p1"; Equals; Ident "has_path"; Lparen; Ident "s0"; Comma; Ident "sink"; Rparen; Eof ])

let test_lexer_numbers () =
  let open Spec.Lexer in
  Alcotest.(check bool) "ints, floats, negatives" true
    (toks "min_rss(-80.5) 2e3" = [ Ident "min_rss"; Lparen; Number (-80.5); Rparen; Number 2000.; Eof ])

let test_lexer_comments_strings () =
  let open Spec.Lexer in
  Alcotest.(check bool) "comment skipped" true (toks "# nothing here\nx" = [ Ident "x"; Eof ]);
  Alcotest.(check bool) "string" true (toks {|set s = "a b"|}
    = [ Ident "set"; Ident "s"; Equals; String "a b"; Eof ])

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true (Result.is_error (Spec.Lexer.tokenize "p1 @ x"));
  Alcotest.(check bool) "unterminated string" true (Result.is_error (Spec.Lexer.tokenize "\"abc"))

let test_lexer_positions () =
  match Spec.Lexer.tokenize "a\n  b" with
  | Ok [ _; b; _ ] ->
      Alcotest.(check int) "line" 2 b.Spec.Lexer.pos.Spec.Ast.line;
      Alcotest.(check int) "col" 3 b.Spec.Lexer.pos.Spec.Ast.col
  | _ -> Alcotest.fail "expected two tokens"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse s = Spec.Parser.parse s

let test_parser_pattern () =
  match parse "p1 = has_path(s0, sink)\nmin_signal_to_noise(20)" with
  | Ok [ Spec.Ast.Pattern p1; Spec.Ast.Pattern p2 ] ->
      Alcotest.(check (option string)) "binder" (Some "p1") p1.Spec.Ast.binder;
      Alcotest.(check string) "head" "has_path" p1.Spec.Ast.head;
      Alcotest.(check int) "args" 2 (List.length p1.Spec.Ast.args);
      Alcotest.(check (option string)) "no binder" None p2.Spec.Ast.binder
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let test_parser_objective () =
  match parse "objective minimize 0.5 * cost + 0.5 * energy" with
  | Ok [ Spec.Ast.Objective { maximize; terms; _ } ] ->
      Alcotest.(check bool) "minimize" false maximize;
      Alcotest.(check int) "terms" 2 (List.length terms);
      let t = List.hd terms in
      Alcotest.(check (float 1e-9)) "weight" 0.5 t.Spec.Ast.weight;
      Alcotest.(check string) "concern" "cost" t.Spec.Ast.concern
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let test_parser_objective_plain () =
  match parse "objective minimize cost" with
  | Ok [ Spec.Ast.Objective { terms = [ t ]; _ } ] ->
      Alcotest.(check (float 1e-9)) "implicit weight" 1. t.Spec.Ast.weight
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let test_parser_set () =
  match parse "set noise_dbm = -100" with
  | Ok [ Spec.Ast.Set { key; value = Spec.Ast.Num v; _ } ] ->
      Alcotest.(check string) "key" "noise_dbm" key;
      Alcotest.(check (float 1e-9)) "value" (-100.) v
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let expect_parse_error text fragment =
  match parse text with
  | Ok _ -> Alcotest.fail ("expected error mentioning " ^ fragment)
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" e fragment)
        true
        (Astring.String.is_infix ~affix:fragment e)

let test_parser_errors () =
  expect_parse_error "p1 =" "expected pattern name";
  expect_parse_error "has_path(s0" "expected";
  expect_parse_error "objective maximize" "expected objective term";
  expect_parse_error "objective sideways cost" "expected minimize/maximize";
  expect_parse_error "42" "expected a specification item";
  expect_parse_error "p1 = has_path s0" "expected '('"

let test_parser_positions_in_errors () =
  expect_parse_error "ok_pattern(1)\nbroken" "line 2"

(* ------------------------------------------------------------------ *)
(* Elaborate                                                           *)
(* ------------------------------------------------------------------ *)

let template () =
  let p = Geometry.Point.make in
  Archex.Template.create
    [
      { Archex.Template.name = "s0"; role = Components.Component.Sensor; loc = p 0. 0.; fixed = true };
      { Archex.Template.name = "s1"; role = Components.Component.Sensor; loc = p 0. 5.; fixed = true };
      { Archex.Template.name = "sink"; role = Components.Component.Sink; loc = p 9. 3.; fixed = true };
      { Archex.Template.name = "r0"; role = Components.Component.Relay; loc = p 5. 3.; fixed = false };
    ]

let elaborate ?eval_points text =
  match parse text with
  | Error e -> Error e
  | Ok ast -> Spec.Elaborate.elaborate ?eval_points ~template:(template ()) ast

let ok text =
  match elaborate ~eval_points:[| Geometry.Point.make 1. 1. |] text with
  | Ok e -> e
  | Error e -> Alcotest.fail e

let test_elab_has_path () =
  let e = ok "p = has_path(s0, sink)" in
  (match e.Spec.Elaborate.requirements.Archex.Requirements.routes with
  | [ r ] ->
      Alcotest.(check int) "src" 0 r.Archex.Requirements.src;
      Alcotest.(check int) "dst" 2 r.Archex.Requirements.dst;
      Alcotest.(check int) "one replica" 1 r.Archex.Requirements.replicas
  | _ -> Alcotest.fail "expected one route");
  Alcotest.(check bool) "default objective = cost" true
    (e.Spec.Elaborate.objective = Archex.Objective.dollar)

let test_elab_group_expansion () =
  let e = ok "p = has_path(sensors, sink)" in
  Alcotest.(check int) "one route per sensor" 2
    (List.length e.Spec.Elaborate.requirements.Archex.Requirements.routes)

let test_elab_singular_role_fallback () =
  (* "sink" is a node name in this template, but a template naming its
     base station "sink0" must also accept the singular role. *)
  let p = Geometry.Point.make in
  let template2 =
    Archex.Template.create
      [
        { Archex.Template.name = "s0"; role = Components.Component.Sensor; loc = p 0. 0.; fixed = true };
        { Archex.Template.name = "base0"; role = Components.Component.Sink; loc = p 9. 3.; fixed = true };
      ]
  in
  match Spec.Parser.parse "p = has_path(s0, sink)" with
  | Error e -> Alcotest.fail e
  | Ok ast -> (
      match Spec.Elaborate.elaborate ~template:template2 ast with
      | Ok e ->
          Alcotest.(check int) "route to the unique sink" 1
            (List.length e.Spec.Elaborate.requirements.Archex.Requirements.routes)
      | Error e -> Alcotest.fail e)

let test_elab_disjoint_merges () =
  let e = ok "p1 = has_path(s0, sink)\np2 = has_path(s0, sink)\ndisjoint_links(p1, p2)" in
  match e.Spec.Elaborate.requirements.Archex.Requirements.routes with
  | [ r ] -> Alcotest.(check int) "merged into 2 replicas" 2 r.Archex.Requirements.replicas
  | routes -> Alcotest.fail (Printf.sprintf "expected 1 route, got %d" (List.length routes))

let test_elab_group_disjoint () =
  let e =
    ok "p1 = has_path(sensors, sink)\np2 = has_path(sensors, sink)\ndisjoint_links(p1, p2)"
  in
  let routes = e.Spec.Elaborate.requirements.Archex.Requirements.routes in
  Alcotest.(check int) "two merged routes" 2 (List.length routes);
  List.iter
    (fun r -> Alcotest.(check int) "2 replicas each" 2 r.Archex.Requirements.replicas)
    routes

let test_elab_hops () =
  let e = ok "p = has_path(s0, sink)\nmax_hops(p, 4)\nmin_hops(p, 2)" in
  match e.Spec.Elaborate.requirements.Archex.Requirements.routes with
  | [ r ] ->
      Alcotest.(check int) "two bounds" 2 (List.length r.Archex.Requirements.hop_bounds);
      Alcotest.(check bool) "le bound" true
        (List.exists
           (fun h -> h.Archex.Requirements.hop_sense = `Le && h.Archex.Requirements.hops = 4)
           r.Archex.Requirements.hop_bounds)
  | _ -> Alcotest.fail "expected one route"

let test_elab_thresholds () =
  let e =
    ok
      "p = has_path(s0, sink)\nmin_signal_to_noise(20)\nmin_rss(-85)\nmax_bit_error_rate(0.001)\nmin_network_lifetime(5)"
  in
  let r = e.Spec.Elaborate.requirements in
  Alcotest.(check (option (float 1e-9))) "snr" (Some 20.) r.Archex.Requirements.min_snr_db;
  Alcotest.(check (option (float 1e-9))) "rss" (Some (-85.)) r.Archex.Requirements.min_rss_dbm;
  Alcotest.(check (option (float 1e-9))) "ber" (Some 0.001) r.Archex.Requirements.max_ber;
  Alcotest.(check (option (float 1e-9))) "life" (Some 5.) r.Archex.Requirements.min_lifetime_years

let test_elab_latency () =
  let e = ok "p = has_path(s0, sink)\nmax_latency(p, 0.5)\nmax_latency(p, 0.25)" in
  (match e.Spec.Elaborate.requirements.Archex.Requirements.routes with
  | [ r ] ->
      Alcotest.(check (option (float 1e-9))) "tightest deadline kept" (Some 0.25)
        r.Archex.Requirements.max_latency_s
  | _ -> Alcotest.fail "expected one route");
  (match elaborate "p = has_path(s0, sink)\nmax_latency(p, -1)" with
  | Error msg ->
      Alcotest.(check bool) "negative rejected" true
        (Astring.String.is_infix ~affix:"positive" msg)
  | Ok _ -> Alcotest.fail "expected error")

let test_elab_localization () =
  let e = ok "min_reachable_devices(3, -80)" in
  match e.Spec.Elaborate.requirements.Archex.Requirements.localization with
  | Some l ->
      Alcotest.(check int) "anchors" 3 l.Archex.Requirements.min_anchors;
      Alcotest.(check (float 1e-9)) "rss" (-80.) l.Archex.Requirements.loc_min_rss_dbm;
      Alcotest.(check int) "points" 1 (Array.length l.Archex.Requirements.eval_points)
  | None -> Alcotest.fail "expected localization requirement"

let test_elab_objective_and_settings () =
  let e = ok "p = has_path(s0, sink)\nobjective minimize 2 * cost + 1 * energy\nset kstar = 5" in
  Alcotest.(check int) "two concerns" 2 (List.length e.Spec.Elaborate.objective);
  Alcotest.(check bool) "setting recorded" true
    (List.mem_assoc "kstar" e.Spec.Elaborate.settings)

let expect_elab_error ?eval_points text fragment =
  match elaborate ?eval_points text with
  | Ok _ -> Alcotest.fail ("expected elaboration error mentioning " ^ fragment)
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" e fragment)
        true
        (Astring.String.is_infix ~affix:fragment e)

let test_elab_errors () =
  expect_elab_error "p = has_path(nowhere, sink)" "unknown node";
  expect_elab_error "p = has_path(s0)" "expects 2 argument";
  expect_elab_error "disjoint_links(a, b)" "unknown path name";
  expect_elab_error "p = has_path(s0, sink)\nq = has_path(s1, sink)\ndisjoint_links(p, q)"
    "share no endpoint";
  expect_elab_error "teleport(s0, sink)" "unknown pattern";
  expect_elab_error "p = has_path(s0, sink)\nmax_hops(p, 0)" "positive integer";
  expect_elab_error "p = has_path(s0, sink)\np = has_path(s1, sink)" "already bound";
  expect_elab_error "min_reachable_devices(3, -80)" "evaluation points";
  expect_elab_error "p = has_path(s0, sink)\nobjective minimize happiness" "unknown objective";
  expect_elab_error "p = has_path(s0, sink)\nobjective maximize cost" "use minimize";
  expect_elab_error "p = has_path(s0, s0)" "no routes";
  expect_elab_error "p = has_path(s0, sensors)" "single node"

let test_known_patterns_listed () =
  Alcotest.(check bool) "has_path known" true (List.mem "has_path" Spec.Elaborate.known_patterns);
  Alcotest.(check bool) "eleven patterns" true (List.length Spec.Elaborate.known_patterns = 11)

(* End-to-end: the paper's data-collection spec compiles. *)
let test_elab_paper_style_spec () =
  let text =
    {|# data collection requirements (paper 4.1)
p1 = has_path(sensors, sink)
p2 = has_path(sensors, sink)
disjoint_links(p1, p2)
min_signal_to_noise(20)
min_network_lifetime(5)
objective minimize cost
set noise_dbm = -100|}
  in
  let e = ok text in
  let r = e.Spec.Elaborate.requirements in
  Alcotest.(check int) "routes" 2 (List.length r.Archex.Requirements.routes);
  Alcotest.(check int) "total paths" 4 (Archex.Requirements.total_path_count r)

let () =
  Alcotest.run "spec"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "comments/strings" `Quick test_lexer_comments_strings;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "patterns" `Quick test_parser_pattern;
          Alcotest.test_case "weighted objective" `Quick test_parser_objective;
          Alcotest.test_case "plain objective" `Quick test_parser_objective_plain;
          Alcotest.test_case "set" `Quick test_parser_set;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "error positions" `Quick test_parser_positions_in_errors;
        ] );
      ( "elaborate",
        [
          Alcotest.test_case "has_path" `Quick test_elab_has_path;
          Alcotest.test_case "group expansion" `Quick test_elab_group_expansion;
          Alcotest.test_case "singular role fallback" `Quick test_elab_singular_role_fallback;
          Alcotest.test_case "disjoint merge" `Quick test_elab_disjoint_merges;
          Alcotest.test_case "group disjoint" `Quick test_elab_group_disjoint;
          Alcotest.test_case "hop bounds" `Quick test_elab_hops;
          Alcotest.test_case "thresholds" `Quick test_elab_thresholds;
          Alcotest.test_case "latency" `Quick test_elab_latency;
          Alcotest.test_case "localization" `Quick test_elab_localization;
          Alcotest.test_case "objective and settings" `Quick test_elab_objective_and_settings;
          Alcotest.test_case "errors" `Quick test_elab_errors;
          Alcotest.test_case "known patterns" `Quick test_known_patterns_listed;
          Alcotest.test_case "paper-style spec" `Quick test_elab_paper_style_spec;
        ] );
    ]
