(* CI smoke test for the per-family cut separation machinery: solve one
   small Table-1-style data-collection scenario and one generated
   tactical scenario under every single-family restriction (--cuts
   gmi|cover|clique|negcycle|power), plus all-on and all-off, to a
   tight gap, and fail (exit 1) if any final objective or status
   diverges from the all-on run — separation may only change the route
   to the optimum, never the optimum.  Also fails if the all-on run
   applies no cuts at all (the machinery must actually be exercised).
   Prints per-family separated/applied counts so a family that silently
   stops firing shows up in the CI log.
   Wired to `dune build @cuts-smoke`. *)

open Archex

let families_under_test = Milp.Cuts.all_families

let run_config fams inst =
  let cfg =
    Solver_config.(
      default
      |> with_approx ~kstar:4 ()
      |> with_time_limit 60. |> with_rel_gap 1e-6
      |> with_cut_families fams)
  in
  Solve.run cfg inst

let check_scenario name inst =
  let fail = ref false in
  (match run_config Milp.Cuts.all_families inst with
  | Error e ->
      Printf.eprintf "cuts-smoke: %s: encode error: %s\n" name e;
      fail := true
  | Ok base ->
      let b = base.Outcome.mip in
      let ob = b.Milp.Branch_bound.objective in
      let sb = Milp.Status.mip_status_to_string base.Outcome.status in
      Printf.printf "cuts-smoke: %s: all %s obj=%g (%d separated, %d applied, %d nodes)\n"
        name sb ob b.Milp.Branch_bound.cuts_separated b.Milp.Branch_bound.cuts_applied
        b.Milp.Branch_bound.nodes;
      if b.Milp.Branch_bound.cuts_applied = 0 then begin
        Printf.eprintf "cuts-smoke: %s: the all-on run applied no cuts\n" name;
        fail := true
      end;
      List.iter
        (fun fams ->
          let label = Milp.Cuts.families_to_string fams in
          match run_config fams inst with
          | Error e ->
              Printf.eprintf "cuts-smoke: %s/%s: encode error: %s\n" name label e;
              fail := true
          | Ok out ->
              let m = out.Outcome.mip in
              let o = m.Milp.Branch_bound.objective in
              let s = Milp.Status.mip_status_to_string out.Outcome.status in
              Printf.printf
                "cuts-smoke: %s: %-8s %s obj=%g (%d separated, %d applied, %d nodes)\n"
                name label s o m.Milp.Branch_bound.cuts_separated
                m.Milp.Branch_bound.cuts_applied m.Milp.Branch_bound.nodes;
              if s <> sb then begin
                Printf.eprintf "cuts-smoke: %s/%s: status diverged: all=%s got=%s\n"
                  name label sb s;
                fail := true
              end;
              if Float.abs (o -. ob) > 1e-5 *. Float.max 1. (Float.abs ob) then begin
                Printf.eprintf
                  "cuts-smoke: %s/%s: objective diverged: all=%.9g got=%.9g\n" name
                  label ob o;
                fail := true
              end)
        ([] :: List.map (fun f -> [ f ]) families_under_test));
  !fail

let () =
  let table1ish =
    match Scenarios.scaled_data_collection ~total_nodes:14 ~end_devices:4 () with
    | Ok inst -> inst
    | Error e ->
        prerr_endline ("cuts-smoke: scenario error: " ^ e);
        exit 1
  in
  let tac =
    match
      (* Dollar objective: the energy tac-* trees need minutes per
         config even at toy sizes, and a smoke comparison on timeout
         incumbents would flag phantom divergences.  The dollar tree
         proves in seconds and still drives every separator. *)
      Scenario_gen.build
        (Scenario_gen.city_block ~blocks_x:2 ~blocks_y:2 ~sensors:3
           ~relay_grid:(4, 3) ~objective:Scenario_gen.O_dollar
           ~min_lifetime_years:2. ())
    with
    | Ok inst -> inst
    | Error e ->
        prerr_endline ("cuts-smoke: generator error: " ^ e);
        exit 1
  in
  let f1 = check_scenario "dc-small" table1ish in
  let f2 = check_scenario "tac-city2-dollar" tac in
  if f1 || f2 then exit 1
