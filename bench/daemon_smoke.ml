(* Daemon smoke: start an archexd core in-process, submit the Table-1
   scenarios (test scale) over its Unix socket, and assert objective
   parity with the one-shot [Solve.run] path to 1e-6.  Both sides
   solve at rel_gap 1e-6 so parity compares proved optima, not
   incumbents two different searches happened to stop at.

   Exits nonzero on any mismatch, and on a failed drain — the daemon
   joining its pool domains and handler threads is part of the check
   (a leaked domain shows up as [Daemon.run] returning false).

   Run with:  dune exec bench/daemon_smoke.exe  (or @daemon-smoke) *)

let socket_path =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "archexd-smoke-%d.sock" (Unix.getpid ()))

let smoke_kstar = 4
let smoke_gap = 1e-6
let smoke_time_limit = 240.

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Format.printf "FAIL: %s@." s)
    fmt

(* The request a client sends and the equivalent local config must
   describe the same solve; [Daemon.request_config] builds the server
   side from these same pieces. *)
let overrides =
  {
    Server.Protocol.no_overrides with
    Server.Protocol.o_time_limit = Some smoke_time_limit;
    o_rel_gap = Some smoke_gap;
  }

let oneshot_config =
  Archex.Solver_config.(
    default
    |> with_approx ~kstar:smoke_kstar ()
    |> with_time_limit smoke_time_limit
    |> with_rel_gap smoke_gap)

let oneshot w =
  match Server.Workload.instance w with
  | Error e -> Error ("scenario: " ^ e)
  | Ok inst -> (
      match Archex.Solve.run oneshot_config inst with
      | Error e -> Error ("encode: " ^ e)
      | Ok out ->
          Ok
            ( Milp.Status.mip_status_to_string out.Archex.Outcome.status,
              out.Archex.Outcome.mip.Milp.Branch_bound.objective ))

let submit conn name =
  Server.Client.solve conn
    (Server.Protocol.Workload { name; kstar = smoke_kstar })
    overrides

let () =
  let config =
    {
      Server.Daemon.default_config with
      Server.Daemon.c_socket = socket_path;
      c_workers = 2;
      c_cache_capacity = 4;
      c_time_limit = smoke_time_limit;
      c_verbose = false;
    }
  in
  match Server.Daemon.create config with
  | Error e ->
      Format.printf "FAIL: daemon start: %s@." e;
      exit 1
  | Ok d ->
      Format.printf "daemon smoke: %d pool domains, socket %s@."
        (Server.Daemon.workers d) socket_path;
      let clean = ref false in
      let dthread = Thread.create (fun () -> clean := Server.Daemon.run d) () in
      (match Server.Client.connect socket_path with
      | Error e -> fail "connect: %s" e
      | Ok conn ->
          Fun.protect
            ~finally:(fun () -> Server.Client.disconnect conn)
            (fun () ->
              (match Server.Client.ping conn with
              | Ok (Server.Protocol.Pong { workers; _ }) ->
                  if workers <> Server.Daemon.workers d then
                    fail "ping reports %d workers, daemon has %d" workers
                      (Server.Daemon.workers d)
              | Ok _ -> fail "ping: unexpected response frame"
              | Error e -> fail "ping: %s" e);
              List.iter
                (fun name ->
                  match Server.Workload.find name with
                  | Error e -> fail "%s: %s" name e
                  | Ok w -> (
                      match (submit conn name, oneshot w) with
                      | Error e, _ -> fail "%s: submit: %s" name e
                      | _, Error e -> fail "%s: one-shot: %s" name e
                      | Ok (Server.Protocol.Result r), Ok (lstatus, lobj) ->
                          let diff =
                            Float.abs (r.Server.Protocol.r_objective -. lobj)
                          in
                          Format.printf
                            "%-16s daemon %s %.6g (%d nodes) | one-shot %s %.6g | |diff| %.3g@."
                            name r.Server.Protocol.r_status
                            r.Server.Protocol.r_objective r.Server.Protocol.r_nodes
                            lstatus lobj diff;
                          if diff > 1e-6 then
                            fail "%s: daemon and one-shot objectives differ by %g"
                              name diff;
                          if r.Server.Protocol.r_status <> "optimal" then
                            fail "%s: daemon status %s" name
                              r.Server.Protocol.r_status
                      | Ok resp, Ok _ ->
                          fail "%s: unexpected daemon response: %s" name
                            (match resp with
                            | Server.Protocol.Rejected m -> "rejected: " ^ m
                            | Server.Protocol.Error_msg m -> "error: " ^ m
                            | Server.Protocol.Interrupted _ -> "interrupted"
                            | _ -> "wrong frame")))
                [ "dc-small-dollar"; "dc-small-energy"; "dc-small-mixed" ];
              (* A repeat must hit the warm session and land on the same
                 objective. *)
              match submit conn "dc-small-energy" with
              | Ok (Server.Protocol.Result r) ->
                  if not r.Server.Protocol.r_cache_hit then
                    fail "repeat request missed the session cache";
                  Format.printf "%-16s repeat: %s %.6g (%s)@." "dc-small-energy"
                    r.Server.Protocol.r_status r.Server.Protocol.r_objective
                    (if r.Server.Protocol.r_cache_hit then "warm" else "cold")
              | Ok _ -> fail "repeat request: unexpected response frame"
              | Error e -> fail "repeat request: %s" e));
      (* The SIGTERM handler in bin/archexd.ml calls exactly this, so
         driving it directly exercises the drain path it triggers. *)
      Server.Daemon.request_shutdown d;
      Thread.join dthread;
      if not !clean then fail "drain leaked connections or domains";
      if !failures = 0 then begin
        Format.printf "daemon smoke: OK (clean drain)@.";
        exit 0
      end
      else begin
        Format.printf "daemon smoke: %d failure(s)@." !failures;
        exit 1
      end
