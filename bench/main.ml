(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (DAC'18, §4), plus the ablations called out in DESIGN.md
   and Bechamel micro-benchmarks of the hot kernels.

   Instance sizes are scaled relative to the paper (pure-OCaml B&B vs.
   CPLEX on a workstation; see DESIGN.md §2): the claims under test are
   the *shapes* — who wins, by what order of magnitude, where the
   K*-tradeoff bends — not absolute numbers.

   Run with:   dune exec bench/main.exe            (all sections)
               dune exec bench/main.exe -- table3  (one section)
   Sections: table1 table2 table3 table4 sweep parallel kernel kernel2
             presolve figures ablations micro daemon scenarios cuts *)

open Archex

(* Flags start with "--"; anything else selects a section.
   [--cold-start] forces every branch & bound LP to a cold two-phase
   solve (the warm-start ablation); [--no-cuts] disables cutting-plane
   separation; [--no-rc-fixing] disables reduced-cost fixing.  Running
   the same sections with and without the flags measures each feature
   against identical scenarios.  [--workers=N] runs every table section
   with N worker domains ([parallel] always sweeps its own worker
   counts); [--seed=N] sets the diversification seed. *)
let flags, sections =
  List.partition
    (fun a -> String.length a >= 2 && String.sub a 0 2 = "--")
    (List.tl (Array.to_list Sys.argv))

let cold_start = List.mem "--cold-start" flags
let no_cuts = List.mem "--no-cuts" flags
let no_rc_fixing = List.mem "--no-rc-fixing" flags

let arg_str name default =
  List.fold_left
    (fun acc f ->
      match String.index_opt f '=' with
      | Some i when String.sub f 0 i = name ->
          String.sub f (i + 1) (String.length f - i - 1)
      | Some _ | None -> acc)
    default flags

(* [--cuts=gmi,cover,...] restricts separation to the listed families
   ("all"/"none" accepted); [--no-cuts] is the deprecated spelling of
   [--cuts=none].  The [cuts] section always sweeps each family. *)
let cut_families =
  match Milp.Cuts.families_of_string (arg_str "--cuts" (if no_cuts then "none" else "all")) with
  | Ok fs -> fs
  | Error e -> (prerr_endline ("bench: " ^ e); exit 2)

(* [--dense-basis] runs every LP on the pre-PR dense explicit-inverse
   kernel instead of the sparse LU one (the [kernel] section always
   sweeps both). *)
let dense_basis = List.mem "--dense-basis" flags

(* [--no-incremental] restricts the [sweep] section to the
   rebuild-from-scratch ablation; by default it runs both modes and
   compares them. *)
let no_incremental = List.mem "--no-incremental" flags

let arg_int name default =
  List.fold_left
    (fun acc f ->
      match String.index_opt f '=' with
      | Some i when String.sub f 0 i = name -> (
          match int_of_string_opt (String.sub f (i + 1) (String.length f - i - 1)) with
          | Some v -> v
          | None -> acc)
      | Some _ | None -> acc)
    default flags

let nworkers = arg_int "--workers" 1
let seed = arg_int "--seed" 0

(* [--pricing=dantzig] runs every LP with the PR5 partial candidate-list
   Dantzig scan instead of devex (the [kernel2] section always sweeps
   both); [--no-harris] swaps the Harris/bound-flipping ratio tests for
   the classic smallest-ratio ones. *)
let pricing =
  if List.mem "--pricing=dantzig" flags then Milp.Simplex.Dantzig else Milp.Simplex.Devex

let no_harris = List.mem "--no-harris" flags

(* [--no-presolve] skips the PR7 presolve reduction stack and hands the
   solver the model verbatim (the [presolve] section always sweeps
   template / per-step / off). *)
let no_presolve = List.mem "--no-presolve" flags

let mode =
  String.concat "+"
    (List.filter
       (fun s -> s <> "")
       [
         (if cold_start then "cold-start" else "warm-start");
         (if cut_families = [] then "no-cuts"
          else if cut_families = Milp.Cuts.all_families then "cuts"
          else "cuts:" ^ Milp.Cuts.families_to_string cut_families);
         (if no_rc_fixing then "no-rc-fixing" else "rc-fixing");
         (if dense_basis then "dense-basis" else "");
         (if pricing = Milp.Simplex.Dantzig then "dantzig" else "");
         (if no_harris then "no-harris" else "");
         (if no_presolve then "no-presolve" else "");
         (if nworkers > 1 then Printf.sprintf "workers%d" nworkers else "");
       ])

let section_enabled name = match sections with [] -> true | l -> List.mem name l

(* Every table section funnels through this one constructor, so the
   ablation flags and worker count apply uniformly.  Each group of
   toggles is assembled as one record and installed with a single group
   setter, instead of chaining the deprecated flat aliases. *)
let config ?(workers = nworkers) ~time_limit ~rel_gap strategy =
  Solver_config.(
    default
    |> with_strategy strategy
    |> with_time_limit time_limit
    |> with_rel_gap rel_gap
    |> with_kernel
         {
           default.kernel with
           k_warm_start = not cold_start;
           k_cuts = cut_families <> [];
           k_cut_families = cut_families;
           k_rc_fixing = not no_rc_fixing;
           k_dense_basis = dense_basis;
           k_pricing = pricing;
           k_harris = not no_harris;
         }
    |> with_presolving { default.presolve with ps_enabled = not no_presolve }
    |> with_parallelism
         { default.parallel with par_workers = workers; par_seed = seed })

(* ------------------------------------------------------------------ *)
(* Machine-readable per-scenario log -> BENCH_PR2.json                  *)
(* ------------------------------------------------------------------ *)

type bench_entry = {
  be_scenario : string;
  be_wall_s : float;
  be_status : string;
  be_objective : float;
  be_nodes : int;
  be_lp_iterations : int;
  be_lp_warm : int;
  be_lp_cold : int;
  be_lp_fallback : int;
  be_cuts_separated : int;
  be_cuts_applied : int;
  be_cuts_evicted : int;
  be_rc_fixed : int;
  be_root_lp_bound : float;
  be_root_cut_bound : float;
}

let bench_log : bench_entry list ref = ref []

let record scenario (out : Outcome.t) wall =
  let mip = out.Outcome.mip in
  bench_log :=
    {
      be_scenario = scenario;
      be_wall_s = wall;
      be_status = Milp.Status.mip_status_to_string out.Outcome.status;
      be_objective = mip.Milp.Branch_bound.objective;
      be_nodes = mip.Milp.Branch_bound.nodes;
      be_lp_iterations = mip.Milp.Branch_bound.lp_iterations;
      be_lp_warm = mip.Milp.Branch_bound.lp_warm;
      be_lp_cold = mip.Milp.Branch_bound.lp_cold;
      be_lp_fallback = mip.Milp.Branch_bound.lp_fallback;
      be_cuts_separated = mip.Milp.Branch_bound.cuts_separated;
      be_cuts_applied = mip.Milp.Branch_bound.cuts_applied;
      be_cuts_evicted = mip.Milp.Branch_bound.cuts_evicted;
      be_rc_fixed = mip.Milp.Branch_bound.rc_fixed;
      be_root_lp_bound = mip.Milp.Branch_bound.root_lp_bound;
      be_root_cut_bound = mip.Milp.Branch_bound.root_cut_bound;
    }
    :: !bench_log

(* JSON has no literal for non-finite floats, and emitting the strings
   "inf"/"nan" (as this used to) type-confuses downstream tooling — a
   numeric field must be a number or null.  nan means "not measured"
   (e.g. BTRAN stats on the dense kernel), and infinities only arise
   from unmeasured/degenerate quantities too, so all three map to
   null. *)
let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

(* Fraction of the root integrality gap closed by the cut loop:
   (cut bound - LP bound) / (final objective - LP bound), in the
   minimization sense regardless of the model's direction. *)
let root_gap_closed e =
  if
    Float.is_finite e.be_root_lp_bound
    && Float.is_finite e.be_root_cut_bound
    && Float.is_finite e.be_objective
  then begin
    let denom = Float.abs (e.be_objective -. e.be_root_lp_bound) in
    if denom < 1e-9 then 1.0
    else Float.abs (e.be_root_cut_bound -. e.be_root_lp_bound) /. denom
  end
  else nan

let write_bench_json path =
  let oc = open_out path in
  let entries = List.rev !bench_log in
  Printf.fprintf oc "{\n  \"mode\": %S,\n  \"scenarios\": [\n" mode;
  List.iteri
    (fun i e ->
      let lps = e.be_lp_warm + e.be_lp_cold + e.be_lp_fallback in
      Printf.fprintf oc
        "    {\"scenario\": %S, \"wall_s\": %s, \"status\": %S, \"objective\": %s,\n\
        \     \"nodes\": %d, \"lp_iterations\": %d, \"lp_solves\": %d,\n\
        \     \"lp_warm\": %d, \"lp_cold\": %d, \"lp_fallback\": %d, \"warm_hit_rate\": %s,\n\
        \     \"cuts_separated\": %d, \"cuts_applied\": %d, \"cuts_evicted\": %d,\n\
        \     \"rc_fixed\": %d, \"root_lp_bound\": %s, \"root_cut_bound\": %s,\n\
        \     \"root_gap_closed\": %s}%s\n"
        e.be_scenario (json_float e.be_wall_s) e.be_status (json_float e.be_objective)
        e.be_nodes e.be_lp_iterations lps e.be_lp_warm e.be_lp_cold e.be_lp_fallback
        (json_float (if lps = 0 then 0. else float_of_int e.be_lp_warm /. float_of_int lps))
        e.be_cuts_separated e.be_cuts_applied e.be_cuts_evicted e.be_rc_fixed
        (json_float e.be_root_lp_bound) (json_float e.be_root_cut_bound)
        (json_float (root_gap_closed e))
        (if i = List.length entries - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Format.printf "wrote %s (%d scenarios, %s mode)@." path (List.length entries) mode

let hr () = Format.printf "@."

let header title =
  Format.printf "@.==== %s ====@.@." title

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let status_str (out : Outcome.t) = Milp.Status.mip_status_to_string out.Outcome.status

(* ------------------------------------------------------------------ *)
(* Table 1: data-collection WSN under three objectives                 *)
(* ------------------------------------------------------------------ *)

let dc_params = Scenarios.default_data_collection

let table1_kstar = 6

let dc_config = config ~time_limit:120. ~rel_gap:0.03 (Solver_config.approx ~kstar:table1_kstar ())

let table1 () =
  header "Table 1: data collection WSN, objective sweep";
  Format.printf
    "(template: %d sensors + 1 sink + %d relay candidates; 2 disjoint routes per sensor;@."
    dc_params.Scenarios.dc_sensors
    (fst dc_params.Scenarios.dc_relay_grid * snd dc_params.Scenarios.dc_relay_grid);
  Format.printf " SNR >= %g dB; lifetime >= %g y; K* = %d.  Paper: 136-node template, K* = 10.)@.@."
    dc_params.Scenarios.dc_min_snr_db dc_params.Scenarios.dc_min_lifetime_years table1_kstar;
  Format.printf "%-10s | %7s | %6s | %12s | %8s | %s@." "Objective" "# Nodes" "$ cost"
    "Lifetime (y)" "Time (s)" "status";
  Format.printf "-----------+---------+--------+--------------+----------+-------@.";
  let solved = ref [] in
  List.iter
    (fun (name, objective) ->
      match Scenarios.data_collection ~objective dc_params with
      | Error e -> Format.printf "%-10s | scenario error: %s@." name e
      | Ok inst -> (
          match time (fun () -> Solve.run dc_config inst) with
          | Ok out, dt -> (
              record ("table1/" ^ name) out dt;
              match out.Outcome.solution with
              | Some sol ->
                  Format.printf "%-10s | %7d | %6.0f | %12.2f | %8.1f | %s@." name
                    sol.Solution.node_count sol.Solution.dollar_cost
                    (Solution.avg_lifetime_years inst sol) dt (status_str out);
                  (match Solution.check inst sol with
                  | Ok () -> ()
                  | Error errs ->
                      List.iter (fun e -> Format.printf "  VALIDATION: %s@." e) errs);
                  solved := (name, inst, sol) :: !solved
              | None -> Format.printf "%-10s | no solution (%s)@." name (status_str out))
          | (Error e, _) -> Format.printf "%-10s | encode error: %s@." name e))
    [
      ("$ cost", Objective.dollar);
      ("Energy", Objective.energy);
      ("$+Energy", Objective.combine Objective.dollar Objective.energy);
    ];
  hr ();
  List.rev !solved

(* ------------------------------------------------------------------ *)
(* Table 2: localization network under three objectives                *)
(* ------------------------------------------------------------------ *)

let loc_params = Scenarios.default_localization

let loc_kstar = 8

let loc_config = config ~time_limit:60. ~rel_gap:0.02 (Solver_config.approx ~loc_kstar ())

(* Pure DSOD does not constrain node count; an epsilon of dollar cost
   breaks ties (see DESIGN.md). *)
let dsod_objective = [ (1., Objective.Dsod); (0.2, Objective.Dollar_cost) ]

let table2 () =
  header "Table 2: localization network, objective sweep";
  Format.printf
    "(%d anchor candidates, %d evaluation points; >= %d anchors per point at RSS >= %g dBm;@."
    (fst loc_params.Scenarios.loc_anchor_grid * snd loc_params.Scenarios.loc_anchor_grid)
    (fst loc_params.Scenarios.loc_eval_grid * snd loc_params.Scenarios.loc_eval_grid)
    loc_params.Scenarios.loc_min_anchors loc_params.Scenarios.loc_min_rss_dbm;
  Format.printf " localization pruning K* = %d.  Paper: 150 candidates, 135 points, K* = 20.)@.@."
    loc_kstar;
  Format.printf "%-8s | %7s | %6s | %9s | %8s | %s@." "Obj." "# Nodes" "$ cost" "Reachable"
    "Time (s)" "status";
  Format.printf "---------+---------+--------+-----------+----------+-------@.";
  let solved = ref [] in
  List.iter
    (fun (name, objective) ->
      match Scenarios.localization ~objective loc_params with
      | Error e -> Format.printf "%-8s | scenario error: %s@." name e
      | Ok inst -> (
          match time (fun () -> Solve.run loc_config inst) with
          | Ok out, dt -> (
              record ("table2/" ^ name) out dt;
              match out.Outcome.solution with
              | Some sol ->
                  Format.printf "%-8s | %7d | %6.0f | %9.2f | %8.1f | %s@." name
                    sol.Solution.node_count sol.Solution.dollar_cost (Solution.avg_reachable sol)
                    dt (status_str out);
                  (match Solution.check inst sol with
                  | Ok () -> ()
                  | Error errs ->
                      List.iter (fun e -> Format.printf "  VALIDATION: %s@." e) errs);
                  solved := (name, inst, sol) :: !solved
              | None -> Format.printf "%-8s | no solution (%s)@." name (status_str out))
          | (Error e, _) -> Format.printf "%-8s | encode error: %s@." name e))
    [ ("$ cost", Objective.dollar); ("DSOD", dsod_objective);
      ("$+DSOD", (1., Objective.Dollar_cost) :: dsod_objective) ];
  hr ();
  List.rev !solved

(* ------------------------------------------------------------------ *)
(* Table 3: scalability, full enumeration vs Algorithm 1               *)
(* ------------------------------------------------------------------ *)

(* Above this template size the full encoding is estimated analytically
   instead of being materialized (the paper does the same for its large
   rows, marked "~"). *)
let full_build_limit = 60

let estimate_full inst =
  (* Per path replica over |E| edge binaries: |E| vars; constraints:
     flow (n) + in/out degree (2n) + hop bounds; plus (1d) pairs |E| per
     replica pair, plus shared rows: LQ + 2 links per edge + sizing. *)
  let e = Netgraph.Digraph.nedges inst.Instance.graph in
  let n = Template.nnodes inst.Instance.template in
  let paths = Requirements.total_path_count inst.Instance.requirements in
  let disjoint_pairs =
    List.fold_left
      (fun acc (r : Requirements.route) ->
        acc + (r.Requirements.replicas * (r.Requirements.replicas - 1) / 2))
      0 inst.Instance.requirements.Requirements.routes
  in
  let sizing_vars =
    Array.to_list (Template.nodes inst.Instance.template)
    |> List.fold_left
         (fun acc (node : Template.node) ->
           acc
           + List.length
               (Components.Library.with_role inst.Instance.library node.Template.role))
         0
  in
  let vars = (paths * e) + e + n + sizing_vars in
  (* Rows: flow balance + degree caps per path; replica disjointness;
     per-edge usage linking (one row per path-variable term plus the
     upper bound, the dominant term); LQ + endpoint rows per edge;
     sizing/fixed rows. *)
  let cons =
    (paths * 3 * n) + (disjoint_pairs * e) + (e * (paths + 1)) + (e * 3) + (2 * n)
  in
  (vars, cons)

let table3_sizes =
  [
    (14, 4, true);
    (20, 6, true);
    (30, 10, true);
    (45, 15, false);
    (60, 20, false);
    (90, 30, false);
    (120, 40, false);
  ]

let table3 () =
  header "Table 3: problem size and time, full enumeration vs approximate encoding (K* = 6)";
  Format.printf
    "(single route per end device, SNR >= 20 dB, dollar objective; full encodings above %d@."
    full_build_limit;
  Format.printf " nodes are estimated analytically, as in the paper's '~' rows; full solves@.";
  Format.printf " are capped at 90 s -> TO.  Paper range: 50..500 nodes, 8-h timeout.)@.@.";
  Format.printf "%5s %7s | %17s | %17s | %12s | %12s@." "nodes" "routed" "full vars/cons"
    "approx vars/cons" "full time" "approx time";
  Format.printf "--------------+-------------------+-------------------+--------------+-------------@.";
  let full_config = config ~time_limit:90. ~rel_gap:0.03 Solver_config.Full_enum in
  let approx_config = config ~time_limit:120. ~rel_gap:0.02 (Solver_config.approx ~kstar:6 ()) in
  List.iter
    (fun (total, routed, solve_full) ->
      match Scenarios.scaled_data_collection ~total_nodes:total ~end_devices:routed () with
      | Error e -> Format.printf "%5d %7d | scenario error: %s@." total routed e
      | Ok inst ->
          let fv, fc, estimated =
            if total <= full_build_limit then begin
              match Solve.encode_size inst Solve.Full_enum with
              | Ok (v, c) -> (v, c, "")
              | Error _ -> (0, 0, "?")
            end
            else begin
              let v, c = estimate_full inst in
              (v, c, "~")
            end
          in
          let av, ac =
            match Solve.encode_size inst (Solve.approx ~kstar:6 ()) with
            | Ok (v, c) -> (v, c)
            | Error _ -> (0, 0)
          in
          let full_time =
            if not solve_full then "TO"
            else begin
              match time (fun () -> Solve.run full_config inst) with
              | Ok { Outcome.status = Milp.Status.Mip_optimal; _ }, dt ->
                  Printf.sprintf "%.1f s" dt
              | Ok { Outcome.solution = Some _; _ }, _ -> "TO*"
              | Ok _, _ -> "TO"
              | Error _, _ -> "gen-fail"
            end
          in
          let approx_time =
            match time (fun () -> Solve.run approx_config inst) with
            | Ok { Outcome.solution = Some _; _ }, dt -> Printf.sprintf "%.1f s" dt
            | Ok _, _ -> "TO"
            | Error e, _ -> "gen-fail: " ^ e
          in
          Format.printf "%5d %7d | %s%7d / %-8d | %7d / %-8d | %12s | %12s@." total routed
            estimated fv fc av ac full_time approx_time)
    table3_sizes;
  Format.printf "@.(TO* = timed out with an incumbent; ratios of the vars/cons columns are the@.";
  Format.printf " paper's headline orders-of-magnitude reduction.)@.";
  hr ()

(* ------------------------------------------------------------------ *)
(* Table 4: cost and time vs K*                                        *)
(* ------------------------------------------------------------------ *)

let table4 () =
  header "Table 4: solution cost and solver time vs K*";
  Format.printf
    "(T1: small template; T2: larger template; 'opt' = exhaustive enumeration on T1 only,@.";
  Format.printf " as in the paper, where T2's exact solve timed out.  Each K* run inherits the@.";
  Format.printf " previous cost as a cutoff — sound because single-replica candidate pools nest.)@.@.";
  let t1 = Scenarios.scaled_data_collection ~total_nodes:18 ~end_devices:5 ~replicas:1 () in
  let t2 = Scenarios.scaled_data_collection ~total_nodes:28 ~end_devices:8 ~replicas:1 () in
  let schedule = Kstar.default_schedule in
  let base_config strategy cutoff =
    config ~time_limit:90. ~rel_gap:1e-4 strategy |> Solver_config.with_cutoff cutoff
  in
  let run_row name inst_result with_opt =
    match inst_result with
    | Error e -> Format.printf "%s: scenario error %s@." name e
    | Ok inst ->
        Format.printf "%-3s %-8s |" name "Cost ($)";
        let times = ref [] in
        let best = ref nan in
        List.iter
          (fun kstar ->
            let cfg = base_config (Solve.Approx { kstar; loc_kstar = kstar }) !best in
            match time (fun () -> Solve.run cfg inst) with
            | Ok { Outcome.solution = Some sol; _ }, dt ->
                best := sol.Solution.dollar_cost;
                Format.printf " %8.0f" !best;
                times := dt :: !times
            | Ok _, dt ->
                (* No improvement over the inherited cutoff. *)
                if Float.is_nan !best then Format.printf " %8s" "-"
                else Format.printf " %8.0f" !best;
                times := dt :: !times
            | Error _, dt ->
                Format.printf " %8s" "-";
                times := dt :: !times)
          schedule;
        (if with_opt then begin
           let cfg = base_config Solve.Full_enum !best in
           match time (fun () -> Solve.run cfg inst) with
           | Ok { Outcome.solution = Some sol; status = Milp.Status.Mip_optimal; _ }, dt ->
               Format.printf " | %8.0f" sol.Solution.dollar_cost;
               times := dt :: !times
           | Ok { Outcome.status = Milp.Status.Mip_unknown; _ }, dt
             when not (Float.is_nan !best) ->
               (* Exhausted under the cutoff: K*'s best is already optimal. *)
               Format.printf " | %8.0f" !best;
               times := dt :: !times
           | Ok _, dt ->
               Format.printf " | %8s" "TO";
               times := dt :: !times
           | Error _, dt ->
               Format.printf " | %8s" "-";
               times := dt :: !times
         end
         else Format.printf " | %8s" "TO");
        Format.printf "@.%-3s %-8s |" name "Time (s)";
        List.iter (fun dt -> Format.printf " %8.1f" dt) (List.rev !times);
        Format.printf "@."
  in
  Format.printf "%-12s |" "";
  List.iter (fun k -> Format.printf " %8s" (Printf.sprintf "K*=%d" k)) schedule;
  Format.printf " | %8s@." "opt";
  Format.printf "-------------+----------------------------------------------+---------@.";
  run_row "T1" t1 true;
  run_row "T2" t2 false;
  Format.printf
    "@.(Expected shape: cost non-increasing in K*, approaching 'opt'; time growing with K*.)@.";
  hr ()

(* ------------------------------------------------------------------ *)
(* Incremental K* sweep vs rebuild-from-scratch -> BENCH_PR3.json      *)
(* ------------------------------------------------------------------ *)

type sweep_step = {
  ss_kstar : int;
  ss_encode_s : float;
  ss_solve_s : float;
  ss_extract_s : float;
  ss_delta_paths : int;
  ss_pool_size : int;
  ss_nvars : int;
  ss_nconstrs : int;
  ss_cuts_seeded : int;
  ss_bound_pruned : int;
  ss_nodes : int;
  ss_status : string;
  ss_objective : float option;
}

type sweep_run = {
  sr_scenario : string;
  sr_incremental : bool;
  sr_steps : sweep_step list;
  sr_total_s : float;
  sr_final_objective : float option;
}

let sweep_log : sweep_run list ref = ref []
let sweep_schedule = [ 1; 3; 6 ]

(* Table-1 template family, sized down: proving a 1e-6 gap (needed for
   the parity claim below) on the full table1 instance takes minutes
   per step; parity and speedup are size-independent claims. *)
let sweep_params =
  { dc_params with Scenarios.dc_sensors = 8; dc_relay_grid = (5, 3) }

(* The parity claim needs both modes to prove the same optimum, so the
   gap is tight (no early stop on an incumbent the other mode would
   refine further). *)
let sweep_rel_gap = 1e-6

let sweep_config ~incremental =
  let loc_kstar = List.fold_left Int.max 1 sweep_schedule in
  config ~time_limit:120. ~rel_gap:sweep_rel_gap (Solver_config.approx ~loc_kstar ())
  |> Solver_config.with_incremental incremental

let run_sweep scenario inst ~incremental =
  let session = Session.start (sweep_config ~incremental) inst in
  let direction = ref Milp.Model.Minimize in
  let t0 = Unix.gettimeofday () in
  let steps =
    List.filter_map
      (fun kstar ->
        match Session.grow session ~kstar with
        | Error e ->
            Format.printf "  %s k*=%d: pool error: %s@." scenario kstar e;
            None
        | Ok () ->
            let s = Session.solve session in
            direction := fst (Milp.Model.objective s.Outcome.model);
            let mip = s.Outcome.mip in
            let st = s.Outcome.stats in
            Some
              {
                ss_kstar = kstar;
                ss_encode_s = st.Outcome.encode_time_s;
                ss_solve_s = st.Outcome.solve_time_s;
                ss_extract_s = st.Outcome.extract_time_s;
                ss_delta_paths = st.Outcome.delta_paths;
                ss_pool_size = st.Outcome.pool_size;
                ss_nvars = st.Outcome.nvars;
                ss_nconstrs = st.Outcome.nconstrs;
                ss_cuts_seeded = mip.Milp.Branch_bound.cuts_seeded;
                ss_bound_pruned = mip.Milp.Branch_bound.bound_pruned;
                ss_nodes = mip.Milp.Branch_bound.nodes;
                ss_status = Milp.Status.mip_status_to_string s.Outcome.status;
                ss_objective =
                  Option.map
                    (fun _ -> mip.Milp.Branch_bound.objective)
                    s.Outcome.solution;
              })
      sweep_schedule
  in
  let total = Unix.gettimeofday () -. t0 in
  (* Direction-aware best across steps: a rebuild step has no carried
     incumbent, so a timed-out later step can report a worse bound than
     an earlier one and the last step is not necessarily the sweep's
     answer. *)
  let final_objective =
    List.fold_left
      (fun acc st ->
        match (acc, st.ss_objective) with
        | None, o | o, None -> o
        | Some a, Some b -> (
            match !direction with
            | Milp.Model.Minimize -> Some (Float.min a b)
            | Milp.Model.Maximize -> Some (Float.max a b)))
      None steps
  in
  let run =
    {
      sr_scenario = scenario;
      sr_incremental = incremental;
      sr_steps = steps;
      sr_total_s = total;
      sr_final_objective = final_objective;
    }
  in
  sweep_log := !sweep_log @ [ run ];
  run

let sweep () =
  header "Incremental K* sweep vs rebuild-from-scratch (Table-1 scenarios)";
  Format.printf
    "(one Session per mode; schedule %s, loc K* frozen at the max; rel_gap = %g so both@."
    (String.concat ";" (List.map string_of_int sweep_schedule))
    sweep_rel_gap;
  Format.printf
    " modes prove the same optimum.  incremental carries model, incumbent and cut pool;@.";
  Format.printf " rebuild re-encodes the identical cumulative pools from scratch each step.)@.@.";
  let pp_run name r =
    Format.printf "  %s (%s): total %.2f s, final obj %s@." name
      (if r.sr_incremental then "incremental" else "rebuild")
      r.sr_total_s
      (match r.sr_final_objective with Some o -> Printf.sprintf "%.6g" o | None -> "-");
    List.iter
      (fun st ->
        Format.printf
          "    k*=%d: %s obj=%s encode=%.3fs solve=%.2fs extract=%.3fs +%d paths (pool %d, \
           %dx%d) seeded=%d bound-pruned=%d nodes=%d@."
          st.ss_kstar st.ss_status
          (match st.ss_objective with Some o -> Printf.sprintf "%.6g" o | None -> "-")
          st.ss_encode_s st.ss_solve_s st.ss_extract_s st.ss_delta_paths st.ss_pool_size
          st.ss_nvars st.ss_nconstrs st.ss_cuts_seeded st.ss_bound_pruned st.ss_nodes)
      r.sr_steps
  in
  List.iter
    (fun (name, objective) ->
      match Scenarios.data_collection ~objective sweep_params with
      | Error e -> Format.printf "  %s: scenario error: %s@." name e
      | Ok inst ->
          let scenario = "table1/" ^ name in
          let rebuild = run_sweep scenario inst ~incremental:false in
          pp_run name rebuild;
          if not no_incremental then begin
            let inc = run_sweep scenario inst ~incremental:true in
            pp_run name inc;
            match (inc.sr_final_objective, rebuild.sr_final_objective) with
            | Some a, Some b ->
                Format.printf "  => objectives %s (|diff| = %.3g); speedup %.2fx@.@."
                  (if Float.abs (a -. b) <= 1e-6 then "MATCH" else "DIFFER")
                  (Float.abs (a -. b))
                  (rebuild.sr_total_s /. Float.max 1e-9 inc.sr_total_s)
            | _ -> Format.printf "  => missing final objective, no comparison@.@."
          end)
    [
      ("$ cost", Objective.dollar);
      ("Energy", Objective.energy);
      ("$+Energy", Objective.combine Objective.dollar Objective.energy);
    ];
  hr ()

let write_sweep_json path =
  let oc = open_out path in
  let runs = !sweep_log in
  let json_opt = function Some o -> json_float o | None -> "null" in
  Printf.fprintf oc "{\n  \"schedule\": [%s],\n  \"rel_gap\": %s,\n  \"runs\": [\n"
    (String.concat ", " (List.map string_of_int sweep_schedule))
    (json_float sweep_rel_gap);
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"scenario\": %S, \"mode\": %S, \"total_s\": %s, \"final_objective\": %s,\n\
        \     \"steps\": [\n"
        r.sr_scenario
        (if r.sr_incremental then "incremental" else "rebuild")
        (json_float r.sr_total_s) (json_opt r.sr_final_objective);
      List.iteri
        (fun j st ->
          Printf.fprintf oc
            "      {\"kstar\": %d, \"encode_s\": %s, \"solve_s\": %s, \"extract_s\": %s,\n\
            \       \"delta_paths\": %d, \"pool_size\": %d, \"nvars\": %d, \"nconstrs\": %d,\n\
            \       \"cuts_seeded\": %d, \"bound_pruned\": %d, \"nodes\": %d,\n\
            \       \"status\": %S, \"objective\": %s}%s\n"
            st.ss_kstar (json_float st.ss_encode_s) (json_float st.ss_solve_s)
            (json_float st.ss_extract_s) st.ss_delta_paths st.ss_pool_size st.ss_nvars
            st.ss_nconstrs st.ss_cuts_seeded st.ss_bound_pruned st.ss_nodes st.ss_status
            (json_opt st.ss_objective)
            (if j = List.length r.sr_steps - 1 then "" else ","))
        r.sr_steps;
      Printf.fprintf oc "    ]}%s\n" (if i = List.length runs - 1 then "" else ","))
    runs;
  (* Pair up incremental/rebuild runs of the same scenario. *)
  let comparisons =
    List.filter_map
      (fun r ->
        if r.sr_incremental then
          match
            List.find_opt
              (fun r' -> (not r'.sr_incremental) && r'.sr_scenario = r.sr_scenario)
              runs
          with
          | Some rb ->
              Some
                (Printf.sprintf
                   "    {\"scenario\": %S, \"objective_match\": %b, \
                    \"incremental_total_s\": %s, \"rebuild_total_s\": %s, \"speedup\": %s}"
                   r.sr_scenario
                   (match (r.sr_final_objective, rb.sr_final_objective) with
                   | Some a, Some b -> Float.abs (a -. b) <= 1e-6
                   | _ -> false)
                   (json_float r.sr_total_s) (json_float rb.sr_total_s)
                   (json_float (rb.sr_total_s /. Float.max 1e-9 r.sr_total_s)))
          | None -> None
        else None)
      runs
  in
  Printf.fprintf oc "  ],\n  \"comparisons\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" comparisons);
  close_out oc;
  Format.printf "wrote %s (%d sweep runs)@." path (List.length runs)

(* ------------------------------------------------------------------ *)
(* Parallel tree search: workers sweep -> BENCH_PR4.json               *)
(* ------------------------------------------------------------------ *)

type par_run = {
  pr_scenario : string;
  pr_workers : int;
  pr_wall_s : float;
  pr_status : string;
  pr_objective : float option;
  pr_nodes : int;
  pr_lp_iterations : int;
}

let par_log : par_run list ref = ref []
let par_workers = [ 1; 4 ]
let par_kstar = 4
let par_rel_gap = 1e-6

(* The cap covers the slowest observed leg (energy at 4 workers on a
   single hardware thread, ~165 s) with headroom: a leg that times out
   would demote the parity check to timeout-incumbent comparison. *)
let par_time_limit = 300.

(* Table-1 family sized so every objective *proves* the 1e-6 gap
   inside the cap at every worker count — the parity claim compares
   proved optima, never timeout incumbents.  The energy objective is
   the binding constraint: its tree is ~19k nodes at this size (vs 1-9
   for $ and $+Energy) and blows past any reasonable cap one notch
   larger. *)
let par_params =
  {
    dc_params with
    Scenarios.dc_sensors = 4;
    dc_relay_grid = (3, 2);
    dc_width = 45.;
    dc_height = 28.;
  }

let parallel_bench () =
  header "Parallel tree search: worker-domain sweep (Table-1 scenarios)";
  Format.printf
    "(K* = %d, rel_gap = %g, %.0f s cap; workers in {%s}, seed %d.  workers=1 takes the@."
    par_kstar par_rel_gap par_time_limit
    (String.concat ", " (List.map string_of_int par_workers))
    seed;
  Format.printf
    " solver's sequential loop verbatim — its node/LP tallies are the pre-parallelism@.";
  Format.printf " baseline; every worker count must reproduce its objective to 1e-6.)@.";
  Format.printf "(host reports %d hardware thread(s): with only 1, worker domains@."
    (Domain.recommended_domain_count ());
  Format.printf
    " time-share one core and wall-clock speedup reflects search-order anomalies@.";
  Format.printf " plus runtime overhead, not real concurrency.)@.@.";
  if Domain.recommended_domain_count () = 1 then begin
    Format.printf
      "  WARNING: single hardware thread — the speedup column below measures@.";
    Format.printf
      "  time-sliced domains, NOT parallel execution.  Do not quote these numbers@.";
    Format.printf
      "  as parallel speedups (the JSON carries single_thread_warning: true).@.@."
  end;
  List.iter
    (fun (name, objective) ->
      match Scenarios.data_collection ~objective par_params with
      | Error e -> Format.printf "  %s: scenario error: %s@." name e
      | Ok inst ->
          List.iter
            (fun w ->
              let cfg =
                config ~workers:w ~time_limit:par_time_limit ~rel_gap:par_rel_gap
                  (Solver_config.approx ~kstar:par_kstar ())
              in
              (* Level the heap between legs: without this, the first
                 sub-second leg after a multi-minute one pays the
                 previous run's major-GC debt and the speedup column
                 reads heap noise instead of tree search. *)
              Gc.compact ();
              match time (fun () -> Solve.run cfg inst) with
              | Ok out, dt ->
                  let mip = out.Outcome.mip in
                  let obj =
                    Option.map
                      (fun _ -> mip.Milp.Branch_bound.objective)
                      out.Outcome.solution
                  in
                  par_log :=
                    !par_log
                    @ [
                        {
                          pr_scenario = "table1/" ^ name;
                          pr_workers = w;
                          pr_wall_s = dt;
                          pr_status = status_str out;
                          pr_objective = obj;
                          pr_nodes = mip.Milp.Branch_bound.nodes;
                          pr_lp_iterations = mip.Milp.Branch_bound.lp_iterations;
                        };
                      ];
                  Format.printf
                    "  %-10s workers=%d: %-13s obj=%-12s nodes=%-6d lp_iters=%-7d %.2f s@."
                    name w (status_str out)
                    (match obj with Some o -> Printf.sprintf "%.6g" o | None -> "-")
                    mip.Milp.Branch_bound.nodes mip.Milp.Branch_bound.lp_iterations dt
              | Error e, _ -> Format.printf "  %-10s workers=%d: encode error: %s@." name w e)
            par_workers;
          (* Seq-vs-parallel verdict for this scenario. *)
          let runs = List.filter (fun r -> r.pr_scenario = "table1/" ^ name) !par_log in
          (match
             ( List.find_opt (fun r -> r.pr_workers = 1) runs,
               List.filter (fun r -> r.pr_workers > 1) runs )
           with
          | Some sq, (_ :: _ as par) ->
              List.iter
                (fun p ->
                  let mtch =
                    match (sq.pr_objective, p.pr_objective) with
                    | Some a, Some b -> Float.abs (a -. b) <= 1e-6
                    | None, None -> true
                    | _ -> false
                  in
                  Format.printf "  => workers=%d objectives %s; speedup %.2fx@."
                    p.pr_workers
                    (if mtch then "MATCH" else "DIFFER")
                    (sq.pr_wall_s /. Float.max 1e-9 p.pr_wall_s))
                par
          | _ -> ());
          Format.printf "@.")
    [
      ("$ cost", Objective.dollar);
      ("Energy", Objective.energy);
      ("$+Energy", Objective.combine Objective.dollar Objective.energy);
    ];
  hr ()

let write_par_json path =
  let oc = open_out path in
  let runs = !par_log in
  let json_opt = function Some o -> json_float o | None -> "null" in
  Printf.fprintf oc
    "{\n  \"kstar\": %d,\n  \"rel_gap\": %s,\n  \"time_limit_s\": %s,\n  \"seed\": %d,\n\
    \  \"workers\": [%s],\n  \"host_hardware_threads\": %d,\n\
    \  \"single_thread_warning\": %b,\n  \"runs\": [\n"
    par_kstar (json_float par_rel_gap) (json_float par_time_limit) seed
    (String.concat ", " (List.map string_of_int par_workers))
    (Domain.recommended_domain_count ())
    (Domain.recommended_domain_count () = 1);
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"scenario\": %S, \"workers\": %d, \"wall_s\": %s, \"status\": %S,\n\
        \     \"objective\": %s, \"nodes\": %d, \"lp_iterations\": %d}%s\n"
        r.pr_scenario r.pr_workers (json_float r.pr_wall_s) r.pr_status
        (json_opt r.pr_objective) r.pr_nodes r.pr_lp_iterations
        (if i = List.length runs - 1 then "" else ","))
    runs;
  let comparisons =
    List.filter_map
      (fun r ->
        if r.pr_workers = 1 then None
        else
          match
            List.find_opt
              (fun s -> s.pr_workers = 1 && s.pr_scenario = r.pr_scenario)
              runs
          with
          | None -> None
          | Some sq ->
              Some
                (Printf.sprintf
                   "    {\"scenario\": %S, \"workers\": %d, \"objective_match\": %b,\n\
                   \     \"sequential_wall_s\": %s, \"parallel_wall_s\": %s, \"speedup\": %s,\n\
                   \     \"sequential_nodes\": %d, \"parallel_nodes\": %d}"
                   r.pr_scenario r.pr_workers
                   (match (sq.pr_objective, r.pr_objective) with
                   | Some a, Some b -> Float.abs (a -. b) <= 1e-6
                   | None, None -> true
                   | _ -> false)
                   (json_float sq.pr_wall_s) (json_float r.pr_wall_s)
                   (json_float (sq.pr_wall_s /. Float.max 1e-9 r.pr_wall_s))
                   sq.pr_nodes r.pr_nodes))
      runs
  in
  Printf.fprintf oc "  ],\n  \"comparisons\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" comparisons);
  close_out oc;
  Format.printf "wrote %s (%d parallel runs)@." path (List.length runs)

(* ------------------------------------------------------------------ *)
(* Simplex kernel: sparse LU vs dense inverse -> BENCH_PR5.json        *)
(* ------------------------------------------------------------------ *)

type kern_run = {
  kr_scenario : string;
  kr_kernel : string;  (* "sparse" | "dense" *)
  kr_wall_s : float;
  kr_status : string;
  kr_objective : float option;
  kr_nodes : int;
  kr_lp_iterations : int;
  kr_mean_ftran_nnz : float;  (* mean nonzeros per FTRAN result *)
  kr_mean_btran_nnz : float;
  kr_ftran_density : float;  (* mean_nnz / base row count *)
  kr_btran_density : float;
  kr_factorizations : int;
  kr_alloc_words : float;  (* minor + major - promoted, this leg *)
  kr_live_words : int;  (* live heap words at the last incumbent *)
  kr_nrows : int;  (* base constraint rows of the encoded model *)
}

let kern_log : kern_run list ref = ref []

(* Same sized-down Table-1 family and tight gap as the parallel sweep:
   every leg proves optimality, so wall clock and allocation compare
   like against like rather than timeout incumbents. *)
let kernel_bench () =
  header "Simplex kernel: sparse LU vs dense explicit inverse (Table-1 scenarios)";
  Format.printf
    "(K* = %d, rel_gap = %g, %.0f s cap, workers = 1.  Both kernels must land on the@."
    par_kstar par_rel_gap par_time_limit;
  Format.printf
    " same objective to 1e-6; the sparse kernel should win wall clock and/or allocation.@.";
  Format.printf
    " Densities are FTRAN/BTRAN result nonzeros over the base row count — cut rows@.";
  Format.printf " added during the solve are not in the denominator.)@.@.";
  List.iter
    (fun (name, objective) ->
      match Scenarios.data_collection ~objective par_params with
      | Error e -> Format.printf "  %s: scenario error: %s@." name e
      | Ok inst ->
          List.iter
            (fun (kname, dense) ->
              let cfg =
                config ~workers:1 ~time_limit:par_time_limit ~rel_gap:par_rel_gap
                  (Solver_config.approx ~kstar:par_kstar ())
                |> Solver_config.with_dense_basis dense
                |> Solver_config.with_mem_stats true
              in
              (* Level the heap between legs, as in the parallel sweep. *)
              Gc.compact ();
              Milp.Lu.set_stats_enabled true;
              Milp.Lu.reset_stats ();
              let g0 = Gc.quick_stat () in
              match time (fun () -> Solve.run cfg inst) with
              | Ok out, dt ->
                  let g1 = Gc.quick_stat () in
                  Milp.Lu.set_stats_enabled false;
                  let alloc =
                    g1.Gc.minor_words -. g0.Gc.minor_words
                    +. (g1.Gc.major_words -. g0.Gc.major_words)
                    -. (g1.Gc.promoted_words -. g0.Gc.promoted_words)
                  in
                  let st = Milp.Lu.stats () in
                  let mip = out.Outcome.mip in
                  let nrows = out.Outcome.stats.Outcome.nconstrs in
                  let mean calls nnz =
                    if calls = 0 then nan else float_of_int nnz /. float_of_int calls
                  in
                  let mf = mean st.Milp.Lu.s_ftran_calls st.Milp.Lu.s_ftran_nnz in
                  let mb = mean st.Milp.Lu.s_btran_calls st.Milp.Lu.s_btran_nnz in
                  let density v =
                    if nrows = 0 || Float.is_nan v then nan else v /. float_of_int nrows
                  in
                  let obj =
                    Option.map
                      (fun _ -> mip.Milp.Branch_bound.objective)
                      out.Outcome.solution
                  in
                  kern_log :=
                    !kern_log
                    @ [
                        {
                          kr_scenario = "table1/" ^ name;
                          kr_kernel = kname;
                          kr_wall_s = dt;
                          kr_status = status_str out;
                          kr_objective = obj;
                          kr_nodes = mip.Milp.Branch_bound.nodes;
                          kr_lp_iterations = mip.Milp.Branch_bound.lp_iterations;
                          kr_mean_ftran_nnz = mf;
                          kr_mean_btran_nnz = mb;
                          kr_ftran_density = density mf;
                          kr_btran_density = density mb;
                          kr_factorizations = st.Milp.Lu.s_factorizations;
                          kr_alloc_words = alloc;
                          kr_live_words = mip.Milp.Branch_bound.live_words;
                          kr_nrows = nrows;
                        };
                      ];
                  Format.printf
                    "  %-10s %-6s: %-13s obj=%-12s lp_iters=%-7d refactor=%-4d \
                     ftran-nnz=%-6.1f alloc=%.3gMw live=%.3gMw %.2f s@."
                    name kname (status_str out)
                    (match obj with Some o -> Printf.sprintf "%.6g" o | None -> "-")
                    mip.Milp.Branch_bound.lp_iterations st.Milp.Lu.s_factorizations
                    mf (alloc /. 1e6)
                    (float_of_int mip.Milp.Branch_bound.live_words /. 1e6)
                    dt
              | Error e, _ ->
                  Milp.Lu.set_stats_enabled false;
                  Format.printf "  %-10s %-6s: encode error: %s@." name kname e)
            [ ("sparse", false); ("dense", true) ];
          (* Sparse-vs-dense verdict for this scenario. *)
          let runs = List.filter (fun r -> r.kr_scenario = "table1/" ^ name) !kern_log in
          (match
             ( List.find_opt (fun r -> r.kr_kernel = "sparse") runs,
               List.find_opt (fun r -> r.kr_kernel = "dense") runs )
           with
          | Some sp, Some dn ->
              let mtch =
                match (sp.kr_objective, dn.kr_objective) with
                | Some a, Some b -> Float.abs (a -. b) <= 1e-6
                | None, None -> true
                | _ -> false
              in
              Format.printf
                "  => objectives %s; speedup %.2fx; alloc ratio %.2fx; live-words delta \
                 %+.3gMw@."
                (if mtch then "MATCH" else "DIFFER")
                (dn.kr_wall_s /. Float.max 1e-9 sp.kr_wall_s)
                (dn.kr_alloc_words /. Float.max 1. sp.kr_alloc_words)
                (float_of_int (dn.kr_live_words - sp.kr_live_words) /. 1e6)
          | _ -> ());
          Format.printf "@.")
    [
      ("$ cost", Objective.dollar);
      ("Energy", Objective.energy);
      ("$+Energy", Objective.combine Objective.dollar Objective.energy);
    ];
  hr ()

let write_kern_json path =
  let oc = open_out path in
  let runs = !kern_log in
  let json_opt = function Some o -> json_float o | None -> "null" in
  Printf.fprintf oc
    "{\n  \"kstar\": %d,\n  \"rel_gap\": %s,\n  \"time_limit_s\": %s,\n  \"workers\": 1,\n\
    \  \"runs\": [\n"
    par_kstar (json_float par_rel_gap) (json_float par_time_limit);
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"scenario\": %S, \"kernel\": %S, \"wall_s\": %s, \"status\": %S,\n\
        \     \"objective\": %s, \"nodes\": %d, \"lp_iterations\": %d,\n\
        \     \"mean_ftran_nnz\": %s, \"mean_btran_nnz\": %s,\n\
        \     \"ftran_density\": %s, \"btran_density\": %s,\n\
        \     \"refactorizations\": %d, \"alloc_words\": %s, \"live_words\": %d,\n\
        \     \"base_rows\": %d}%s\n"
        r.kr_scenario r.kr_kernel (json_float r.kr_wall_s) r.kr_status
        (json_opt r.kr_objective) r.kr_nodes r.kr_lp_iterations
        (json_float r.kr_mean_ftran_nnz) (json_float r.kr_mean_btran_nnz)
        (json_float r.kr_ftran_density) (json_float r.kr_btran_density)
        r.kr_factorizations (json_float r.kr_alloc_words) r.kr_live_words r.kr_nrows
        (if i = List.length runs - 1 then "" else ","))
    runs;
  let comparisons =
    List.filter_map
      (fun r ->
        if r.kr_kernel <> "dense" then None
        else
          match
            List.find_opt
              (fun s -> s.kr_kernel = "sparse" && s.kr_scenario = r.kr_scenario)
              runs
          with
          | None -> None
          | Some sp ->
              Some
                (Printf.sprintf
                   "    {\"scenario\": %S, \"objective_match\": %b,\n\
                   \     \"sparse_wall_s\": %s, \"dense_wall_s\": %s, \"speedup\": %s,\n\
                   \     \"sparse_alloc_words\": %s, \"dense_alloc_words\": %s, \
                    \"alloc_ratio\": %s,\n\
                   \     \"live_words_delta\": %d}"
                   r.kr_scenario
                   (match (sp.kr_objective, r.kr_objective) with
                   | Some a, Some b -> Float.abs (a -. b) <= 1e-6
                   | None, None -> true
                   | _ -> false)
                   (json_float sp.kr_wall_s) (json_float r.kr_wall_s)
                   (json_float (r.kr_wall_s /. Float.max 1e-9 sp.kr_wall_s))
                   (json_float sp.kr_alloc_words) (json_float r.kr_alloc_words)
                   (json_float (r.kr_alloc_words /. Float.max 1. sp.kr_alloc_words))
                   (r.kr_live_words - sp.kr_live_words)))
      runs
  in
  Printf.fprintf oc "  ],\n  \"comparisons\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" comparisons);
  close_out oc;
  Format.printf "wrote %s (%d kernel runs)@." path (List.length runs)

(* ------------------------------------------------------------------ *)
(* Simplex kernel round 2: pricing x ratio-test sweep -> BENCH_PR6.json *)
(* ------------------------------------------------------------------ *)

type k2_run = {
  k2_scenario : string;
  k2_combo : string;  (* "devex+harris" | "devex+classic" | ... *)
  k2_pricing : string;
  k2_harris : bool;
  k2_wall_s : float;
  k2_status : string;
  k2_objective : float option;
  k2_nodes : int;
  k2_lp_iterations : int;
  k2_factorizations : int;
  k2_alloc_words : float;
}

let k2_log : k2_run list ref = ref []

let k2_combos =
  [
    ("devex+harris", Milp.Simplex.Devex, true);
    ("devex+classic", Milp.Simplex.Devex, false);
    ("dantzig+harris", Milp.Simplex.Dantzig, true);
    ("dantzig+classic", Milp.Simplex.Dantzig, false);
  ]

(* Same sized-down Table-1 family, tight gap, sequential sparse kernel:
   the four pricing x ratio-test combinations must land on the same
   objective to 1e-6; dantzig+classic is the PR5 algorithmic baseline
   (same rules, now on the workspace/unboxed storage), so the
   iteration/wall deltas against it isolate the pricing and ratio-test
   effects from the memory work. *)
let kernel2_bench () =
  header "Simplex kernel round 2: pricing x ratio tests (Table-1 scenarios)";
  Format.printf
    "(K* = %d, rel_gap = %g, %.0f s cap, workers = 1, sparse kernel.  devex+harris is@."
    par_kstar par_rel_gap par_time_limit;
  Format.printf
    " the new default; dantzig+classic replays the PR5 rules on the new storage.)@.@.";
  List.iter
    (fun (name, objective) ->
      match Scenarios.data_collection ~objective par_params with
      | Error e -> Format.printf "  %s: scenario error: %s@." name e
      | Ok inst ->
          List.iter
            (fun (combo, pr, hr) ->
              let cfg =
                config ~workers:1 ~time_limit:par_time_limit ~rel_gap:par_rel_gap
                  (Solver_config.approx ~kstar:par_kstar ())
                |> Solver_config.with_pricing pr
                |> Solver_config.with_harris hr
              in
              Gc.compact ();
              Milp.Lu.set_stats_enabled true;
              Milp.Lu.reset_stats ();
              let g0 = Gc.quick_stat () in
              match time (fun () -> Solve.run cfg inst) with
              | Ok out, dt ->
                  let g1 = Gc.quick_stat () in
                  Milp.Lu.set_stats_enabled false;
                  let alloc =
                    g1.Gc.minor_words -. g0.Gc.minor_words
                    +. (g1.Gc.major_words -. g0.Gc.major_words)
                    -. (g1.Gc.promoted_words -. g0.Gc.promoted_words)
                  in
                  let st = Milp.Lu.stats () in
                  let mip = out.Outcome.mip in
                  let obj =
                    Option.map
                      (fun _ -> mip.Milp.Branch_bound.objective)
                      out.Outcome.solution
                  in
                  k2_log :=
                    !k2_log
                    @ [
                        {
                          k2_scenario = "table1/" ^ name;
                          k2_combo = combo;
                          k2_pricing =
                            (match pr with
                            | Milp.Simplex.Devex -> "devex"
                            | Milp.Simplex.Dantzig -> "dantzig");
                          k2_harris = hr;
                          k2_wall_s = dt;
                          k2_status = status_str out;
                          k2_objective = obj;
                          k2_nodes = mip.Milp.Branch_bound.nodes;
                          k2_lp_iterations = mip.Milp.Branch_bound.lp_iterations;
                          k2_factorizations = st.Milp.Lu.s_factorizations;
                          k2_alloc_words = alloc;
                        };
                      ];
                  Format.printf
                    "  %-10s %-16s: %-13s obj=%-12s nodes=%-6d lp_iters=%-7d \
                     refactor=%-4d alloc=%.3gMw %.2f s@."
                    name combo (status_str out)
                    (match obj with Some o -> Printf.sprintf "%.6g" o | None -> "-")
                    mip.Milp.Branch_bound.nodes mip.Milp.Branch_bound.lp_iterations
                    st.Milp.Lu.s_factorizations (alloc /. 1e6) dt
              | Error e, _ ->
                  Milp.Lu.set_stats_enabled false;
                  Format.printf "  %-10s %-16s: encode error: %s@." name combo e)
            k2_combos;
          (* Per-scenario verdict against the dantzig+classic baseline. *)
          let runs = List.filter (fun r -> r.k2_scenario = "table1/" ^ name) !k2_log in
          (match List.find_opt (fun r -> r.k2_combo = "dantzig+classic") runs with
          | Some base ->
              List.iter
                (fun r ->
                  if r.k2_combo <> "dantzig+classic" then begin
                    let mtch =
                      match (base.k2_objective, r.k2_objective) with
                      | Some a, Some b -> Float.abs (a -. b) <= 1e-6
                      | None, None -> true
                      | _ -> false
                    in
                    Format.printf
                      "  => %-16s objectives %s; iters %.2fx; alloc %.2fx; speedup %.2fx@."
                      r.k2_combo
                      (if mtch then "MATCH" else "DIFFER")
                      (float_of_int r.k2_lp_iterations
                      /. float_of_int (max 1 base.k2_lp_iterations))
                      (r.k2_alloc_words /. Float.max 1. base.k2_alloc_words)
                      (base.k2_wall_s /. Float.max 1e-9 r.k2_wall_s)
                  end)
                runs
          | None -> ());
          Format.printf "@.")
    [
      ("$ cost", Objective.dollar);
      ("Energy", Objective.energy);
      ("$+Energy", Objective.combine Objective.dollar Objective.energy);
    ];
  hr ()

let write_k2_json path =
  let oc = open_out path in
  let runs = !k2_log in
  let json_opt = function Some o -> json_float o | None -> "null" in
  Printf.fprintf oc
    "{\n  \"kstar\": %d,\n  \"rel_gap\": %s,\n  \"time_limit_s\": %s,\n  \"workers\": 1,\n\
    \  \"kernel\": \"sparse\",\n  \"runs\": [\n"
    par_kstar (json_float par_rel_gap) (json_float par_time_limit);
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"scenario\": %S, \"combo\": %S, \"pricing\": %S, \"harris\": %b,\n\
        \     \"wall_s\": %s, \"status\": %S, \"objective\": %s,\n\
        \     \"nodes\": %d, \"lp_iterations\": %d, \"refactorizations\": %d,\n\
        \     \"alloc_words\": %s}%s\n"
        r.k2_scenario r.k2_combo r.k2_pricing r.k2_harris (json_float r.k2_wall_s)
        r.k2_status (json_opt r.k2_objective) r.k2_nodes r.k2_lp_iterations
        r.k2_factorizations (json_float r.k2_alloc_words)
        (if i = List.length runs - 1 then "" else ","))
    runs;
  let comparisons =
    List.filter_map
      (fun r ->
        if r.k2_combo = "dantzig+classic" then None
        else
          match
            List.find_opt
              (fun s -> s.k2_combo = "dantzig+classic" && s.k2_scenario = r.k2_scenario)
              runs
          with
          | None -> None
          | Some base ->
              Some
                (Printf.sprintf
                   "    {\"scenario\": %S, \"combo\": %S, \"objective_match\": %b,\n\
                   \     \"iteration_ratio\": %s, \"alloc_ratio\": %s, \"speedup\": %s}"
                   r.k2_scenario r.k2_combo
                   (match (base.k2_objective, r.k2_objective) with
                   | Some a, Some b -> Float.abs (a -. b) <= 1e-6
                   | None, None -> true
                   | _ -> false)
                   (json_float
                      (float_of_int r.k2_lp_iterations
                      /. float_of_int (max 1 base.k2_lp_iterations)))
                   (json_float (r.k2_alloc_words /. Float.max 1. base.k2_alloc_words))
                   (json_float (base.k2_wall_s /. Float.max 1e-9 r.k2_wall_s))))
      runs
  in
  Printf.fprintf oc "  ],\n  \"comparisons\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" comparisons);
  close_out oc;
  Format.printf "wrote %s (%d kernel-round-2 runs)@." path (List.length runs)

(* ------------------------------------------------------------------ *)
(* Presolve reduction stack: template re-apply vs per-step vs off      *)
(* -> BENCH_PR7.json                                                   *)
(* ------------------------------------------------------------------ *)

type ps_step = {
  pss_kstar : int;
  pss_presolve_s : float;
  pss_reapplied : bool;
  pss_rows_removed : int;
  pss_cols_removed : int;
  pss_nvars : int;
  pss_nconstrs : int;
  pss_solve_s : float;
  pss_status : string;
  pss_objective : float option;
}

type ps_run = {
  psr_scenario : string;
  psr_mode : string;  (* "template" | "per-step" | "no-presolve" *)
  psr_total_s : float;
  psr_presolve_s : float;  (* summed over steps *)
  psr_final_objective : float option;
  psr_steps : ps_step list;
  psr_pass_stats : Milp.Presolve.pass_stats list;  (* last step's per-pass counts *)
}

let ps_log : ps_run list ref = ref []

(* Table-1 family, sized per objective with a 1e-3 gap: every scenario
   runs at the largest instance whose branch & bound reaches the gap
   inside the cap on every step of the schedule (a capped step turns
   the wall comparison into the cap itself for every mode and truncates
   incumbents nondeterministically).  $ cost and $+Energy take the
   [sweep]-section size; the Energy relaxation is weak enough that only
   the [parallel]-section size converges at every step.  Template and
   per-step presolve reach identical reductions (a tested invariant),
   so the solver does the same work in both modes and their
   wall/presolve-time deltas isolate the cost of presolving the
   template from scratch each step. *)
let ps_params_big = { dc_params with Scenarios.dc_sensors = 8; dc_relay_grid = (5, 3) }
let ps_params_small = { dc_params with Scenarios.dc_sensors = 4; dc_relay_grid = (3, 2) }

(* K* stops at 4: the Energy objective pins every mode to the time
   limit from K* = 6 even at the small size and this gap, and a capped
   step measures the cap, not the mode.  The schedule is deliberately
   fine-grained: K* steps that add no new candidate paths (1->2 and
   3->4 on these pools) are exactly where the template trace re-applies
   against an empty delta, while the big 2->3 growth exercises the
   large-delta fallback to a from-scratch reduction. *)
let ps_schedule = [ 1; 2; 3; 4 ]
let ps_rel_gap = 1e-3

let ps_config =
  let loc_kstar = List.fold_left Int.max 1 ps_schedule in
  config ~time_limit:120. ~rel_gap:ps_rel_gap (Solver_config.approx ~loc_kstar ())
  |> Solver_config.with_incremental true

let ps_modes : (string * (Solver_config.t -> Solver_config.t)) list =
  [
    ("template", fun c -> c);
    ("per-step", Solver_config.with_presolve_template false);
    ("no-presolve", Solver_config.with_presolve false);
  ]

(* Template and per-step modes solve the identical reduced problem, so
   their objectives must agree to 1e-6; no-presolve explores a
   different tree and may stop on any incumbent inside the relative
   gap, so it is compared to gap tolerance. *)
let ps_obj_match tmpl step off =
  match (tmpl, step, off) with
  | Some a, Some b, Some c ->
      Float.abs (a -. b) <= 1e-6
      && Float.abs (a -. c) <= (2. *. ps_rel_gap *. Float.max 1. (Float.abs a)) +. 1e-6
  | _, _, _ -> false

(* Each mode's sweep repeats [ps_reps] times and the fastest repeat is
   logged: the modes do deterministic work (template and per-step reach
   identical reductions, hence identical trees), so min-of-R wall time
   approximates that work with scheduler/GC noise suppressed. *)
let ps_reps = 7

let run_presolve_sweep_once inst ~tweak ~scenario ~mode =
  let cfg = ps_config |> tweak in
  let session = Session.start cfg inst in
  let direction = ref Milp.Model.Minimize in
  let last_stats = ref [] in
  let t0 = Unix.gettimeofday () in
  let steps =
    List.filter_map
      (fun kstar ->
        match Session.grow session ~kstar with
        | Error e ->
            Format.printf "  %s k*=%d: pool error: %s@." scenario kstar e;
            None
        | Ok () ->
            let s = Session.solve session in
            direction := fst (Milp.Model.objective s.Outcome.model);
            let mip = s.Outcome.mip in
            let st = s.Outcome.stats in
            last_stats := mip.Milp.Branch_bound.presolve_stats;
            Some
              {
                pss_kstar = kstar;
                pss_presolve_s = mip.Milp.Branch_bound.presolve_time_s;
                pss_reapplied = mip.Milp.Branch_bound.presolve_reapplied;
                pss_rows_removed = mip.Milp.Branch_bound.presolve_rows_removed;
                pss_cols_removed = mip.Milp.Branch_bound.presolve_cols_removed;
                pss_nvars = st.Outcome.nvars;
                pss_nconstrs = st.Outcome.nconstrs;
                pss_solve_s = st.Outcome.solve_time_s;
                pss_status = Milp.Status.mip_status_to_string s.Outcome.status;
                pss_objective =
                  Option.map (fun _ -> mip.Milp.Branch_bound.objective) s.Outcome.solution;
              })
      ps_schedule
  in
  let total = Unix.gettimeofday () -. t0 in
  let final_objective =
    List.fold_left
      (fun acc st ->
        match (acc, st.pss_objective) with
        | None, o | o, None -> o
        | Some a, Some b -> (
            match !direction with
            | Milp.Model.Minimize -> Some (Float.min a b)
            | Milp.Model.Maximize -> Some (Float.max a b)))
      None steps
  in
  {
    psr_scenario = scenario;
    psr_mode = mode;
    psr_total_s = total;
    psr_presolve_s = List.fold_left (fun acc st -> acc +. st.pss_presolve_s) 0. steps;
    psr_final_objective = final_objective;
    psr_steps = steps;
    psr_pass_stats = !last_stats;
  }

(* Run every mode [ps_reps] times with the reps interleaved across
   modes (rep-major, not mode-major): template and per-step execute
   bit-identical search trees, so any wall difference beyond the
   presolve component is environmental drift (heap growth, CPU
   frequency), and batching a mode's reps together would let that
   drift bias whichever mode ran first.  Total wall and the presolve
   component are then minimized independently per mode — the rep that
   wins on total is not necessarily the one whose (much smaller)
   presolve sample is clean. *)
let run_presolve_sweeps scenario inst ~tweaks =
  let best = Hashtbl.create 4 in
  let pmin = Hashtbl.create 4 in
  let nmodes = List.length tweaks in
  for rep = 0 to ps_reps - 1 do
    (* Rotate the order every rep: the first sweep after a heavy
       neighbour (no-presolve's big trees bloat the heap) pays extra
       GC cost, so each mode must sample every slot. *)
    List.iteri
      (fun slot _ ->
        let mode, tweak = List.nth tweaks ((slot + rep) mod nmodes) in
        let r = run_presolve_sweep_once inst ~tweak ~scenario ~mode in
        (match Hashtbl.find_opt pmin mode with
        | Some p when p <= r.psr_presolve_s -> ()
        | _ -> Hashtbl.replace pmin mode r.psr_presolve_s);
        match Hashtbl.find_opt best mode with
        | Some b when b.psr_total_s <= r.psr_total_s -> ()
        | _ -> Hashtbl.replace best mode r)
      tweaks
  done;
  List.map
    (fun (mode, _) ->
      let run =
        { (Hashtbl.find best mode) with psr_presolve_s = Hashtbl.find pmin mode }
      in
      ps_log := !ps_log @ [ run ];
      run)
    tweaks

(* Direct microbenchmark of the reduction itself, free of branch & bound
   noise: the sweep totals are solver-dominated (the two presolve modes
   run bit-identical search trees — same node and LP-iteration counts),
   so the fraction of a millisecond the re-apply saves per step sits
   below wall-clock resolution there.  Timing [Presolve.reduce] alone on
   the scenario's fully grown model resolves it: from-scratch vs
   re-applying the just-recorded trace against an unchanged model — the
   exact shape of the no-growth schedule steps (1->2 and 3->4). *)
let ps_micro : (string * (int * int * float * float)) list ref = ref []

let ps_microbench scenario inst =
  let kstar = List.fold_left Int.max 1 ps_schedule in
  match Approx_encoding.encode ~kstar inst with
  | Error _ -> None
  | Ok enc -> (
      let lp = Encode_common.model enc.Approx_encoding.ctx in
      let prob = Milp.Simplex.of_model lp in
      let n = Milp.Model.nvars lp in
      let integer = Array.init n (Milp.Model.is_integer lp) in
      let lb = Array.init n (Milp.Model.var_lb lp) in
      let ub = Array.init n (Milp.Model.var_ub lp) in
      let time reduce =
        let best = ref infinity in
        for _ = 1 to 100 do
          let t0 = Unix.gettimeofday () in
          ignore (reduce ());
          best := Float.min !best (Unix.gettimeofday () -. t0)
        done;
        !best
      in
      match Milp.Presolve.reduce prob ~integer ~lb ~ub with
      | Milp.Presolve.Reduced r ->
          let tr = r.Milp.Presolve.red_trace in
          let fresh = time (fun () -> Milp.Presolve.reduce prob ~integer ~lb ~ub) in
          let reapply =
            time (fun () -> Milp.Presolve.reduce ~reuse:(tr, []) prob ~integer ~lb ~ub)
          in
          let rows = Array.length prob.Milp.Simplex.rows in
          ps_micro := !ps_micro @ [ (scenario, (rows, n, fresh, reapply)) ];
          Some (rows, n, fresh, reapply)
      | Milp.Presolve.Reduce_infeasible _ -> None)

(* Fraction of a step's model eliminated by the reduction.  The
   headline number is the first step — the one-time template presolve
   whose trace the rest of the sweep re-applies; the final-step
   fraction is reported alongside because grown pools are genuinely
   less reducible (fewer forced fixings once flows have alternatives). *)
let ps_step_fraction st =
  float_of_int (st.pss_rows_removed + st.pss_cols_removed)
  /. float_of_int (max 1 (st.pss_nconstrs + st.pss_nvars))

let ps_reduction_fraction r =
  match r.psr_steps with [] -> 0. | first :: _ -> ps_step_fraction first

let ps_final_fraction r =
  match List.rev r.psr_steps with [] -> 0. | last :: _ -> ps_step_fraction last

let presolve_bench () =
  header "Presolve reduction stack: template re-apply vs per-step vs --no-presolve";
  Format.printf
    "(incremental K* sweep, schedule %s, rel_gap = %g.  template presolves the first@."
    (String.concat ";" (List.map string_of_int ps_schedule))
    ps_rel_gap;
  Format.printf
    " step from scratch and re-applies the recorded trace to each delta; per-step@.";
  Format.printf
    " reduces every step from scratch; no-presolve solves the model verbatim.)@.@.";
  List.iter
    (fun (name, objective, ps_params) ->
      match Scenarios.data_collection ~objective ps_params with
      | Error e -> Format.printf "  %s: scenario error: %s@." name e
      | Ok inst ->
          let scenario = "table1/" ^ name in
          let runs = run_presolve_sweeps scenario inst ~tweaks:ps_modes in
          List.iter
            (fun r ->
              Format.printf "  %-10s %-12s: total %6.2f s  presolve %6.3f s  obj %s@." name
                r.psr_mode r.psr_total_s r.psr_presolve_s
                (match r.psr_final_objective with
                | Some o -> Printf.sprintf "%.6g" o
                | None -> "-");
              List.iter
                (fun st ->
                  Format.printf
                    "    k*=%d: %s presolve=%.4fs%s removed %d/%d rows %d/%d cols \
                     solve=%.2fs@."
                    st.pss_kstar st.pss_status st.pss_presolve_s
                    (if st.pss_reapplied then " (re-applied)" else "")
                    st.pss_rows_removed st.pss_nconstrs st.pss_cols_removed st.pss_nvars
                    st.pss_solve_s)
                r.psr_steps)
            runs;
          let micro = ps_microbench scenario inst in
          (match micro with
          | Some (rows, cols, fresh, reapply) ->
              Format.printf
                "  reduce microbench (k*=%d model, %d rows x %d cols): from-scratch \
                 %.2f ms, trace re-apply %.2f ms (%.2fx)@."
                (List.fold_left Int.max 1 ps_schedule)
                rows cols (1e3 *. fresh) (1e3 *. reapply)
                (fresh /. Float.max 1e-9 reapply)
          | None -> ());
          (match runs with
          | [ tmpl; step; off ] ->
              let objs =
                ps_obj_match tmpl.psr_final_objective step.psr_final_objective
                  off.psr_final_objective
              in
              let frac = ps_reduction_fraction tmpl in
              let ffrac = ps_final_fraction tmpl in
              (match List.rev tmpl.psr_pass_stats with
              | [] -> ()
              | stats ->
                  Format.printf "  per-pass (final step): %s@."
                    (String.concat ", "
                       (List.rev_map
                          (fun (s : Milp.Presolve.pass_stats) ->
                            Printf.sprintf "%s -%dr -%dc (%d)"
                              (Milp.Presolve.pass_name s.Milp.Presolve.ps_pass)
                              s.Milp.Presolve.ps_rows_removed s.Milp.Presolve.ps_cols_removed
                              s.Milp.Presolve.ps_changes)
                          stats)));
              Format.printf
                "  => objectives %s; template reduction %.1f%% (final step %.1f%%); \
                 presolve %.2fx vs per-step; wall %.2fx vs per-step, %.2fx vs \
                 no-presolve@.@."
                (if objs then "MATCH" else "DIFFER")
                (100. *. frac) (100. *. ffrac)
                (step.psr_presolve_s /. Float.max 1e-9 tmpl.psr_presolve_s)
                (step.psr_total_s /. Float.max 1e-9 tmpl.psr_total_s)
                (off.psr_total_s /. Float.max 1e-9 tmpl.psr_total_s)
          | _ -> ()))
    [
      ("$ cost", Objective.dollar, ps_params_big);
      ("Energy", Objective.energy, ps_params_small);
      ("$+Energy", Objective.combine Objective.dollar Objective.energy, ps_params_big);
    ];
  hr ()

let write_presolve_json path =
  let oc = open_out path in
  let runs = !ps_log in
  let json_opt = function Some o -> json_float o | None -> "null" in
  Printf.fprintf oc "{\n  \"schedule\": [%s],\n  \"rel_gap\": %s,\n  \"runs\": [\n"
    (String.concat ", " (List.map string_of_int ps_schedule))
    (json_float ps_rel_gap);
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"scenario\": %S, \"mode\": %S, \"total_s\": %s, \"presolve_s\": %s,\n\
        \     \"final_objective\": %s,\n\
        \     \"pass_stats\": [%s],\n\
        \     \"steps\": [\n"
        r.psr_scenario r.psr_mode (json_float r.psr_total_s) (json_float r.psr_presolve_s)
        (json_opt r.psr_final_objective)
        (String.concat ", "
           (List.map
              (fun (s : Milp.Presolve.pass_stats) ->
                Printf.sprintf
                  "{\"pass\": %S, \"rows_removed\": %d, \"cols_removed\": %d, \
                   \"changes\": %d}"
                  (Milp.Presolve.pass_name s.Milp.Presolve.ps_pass)
                  s.Milp.Presolve.ps_rows_removed s.Milp.Presolve.ps_cols_removed
                  s.Milp.Presolve.ps_changes)
              r.psr_pass_stats));
      List.iteri
        (fun j st ->
          Printf.fprintf oc
            "      {\"kstar\": %d, \"presolve_s\": %s, \"reapplied\": %b,\n\
            \       \"rows_removed\": %d, \"cols_removed\": %d, \"nvars\": %d, \
             \"nconstrs\": %d,\n\
            \       \"solve_s\": %s, \"status\": %S, \"objective\": %s}%s\n"
            st.pss_kstar (json_float st.pss_presolve_s) st.pss_reapplied st.pss_rows_removed
            st.pss_cols_removed st.pss_nvars st.pss_nconstrs (json_float st.pss_solve_s)
            st.pss_status (json_opt st.pss_objective)
            (if j = List.length r.psr_steps - 1 then "" else ","))
        r.psr_steps;
      Printf.fprintf oc "    ]}%s\n" (if i = List.length runs - 1 then "" else ","))
    runs;
  let find mode scen =
    List.find_opt (fun r -> r.psr_mode = mode && r.psr_scenario = scen) runs
  in
  let comparisons =
    List.filter_map
      (fun r ->
        if r.psr_mode <> "template" then None
        else
          match (find "per-step" r.psr_scenario, find "no-presolve" r.psr_scenario) with
          | Some step, Some off ->
              let all_match =
                ps_obj_match r.psr_final_objective step.psr_final_objective
                  off.psr_final_objective
              in
              let micro =
                match List.assoc_opt r.psr_scenario !ps_micro with
                | Some (rows, cols, fresh, reapply) ->
                    Printf.sprintf
                      ",\n\
                      \     \"reduce_micro_rows\": %d, \"reduce_micro_cols\": %d, \
                       \"reduce_micro_fresh_s\": %s,\n\
                      \     \"reduce_micro_reapply_s\": %s, \"reduce_micro_speedup\": %s"
                      rows cols (json_float fresh) (json_float reapply)
                      (json_float (fresh /. Float.max 1e-9 reapply))
                | None -> ""
              in
              Some
                (Printf.sprintf
                   "    {\"scenario\": %S, \"objective_match\": %b, \
                    \"template_reduction_fraction\": %s, \"final_step_reduction_fraction\": \
                    %s,\n\
                   \     \"template_presolve_s\": %s, \"per_step_presolve_s\": %s, \
                    \"presolve_speedup\": %s,\n\
                   \     \"template_total_s\": %s, \"per_step_total_s\": %s, \
                    \"no_presolve_total_s\": %s,\n\
                   \     \"wall_speedup_vs_per_step\": %s, \"wall_speedup_vs_off\": %s%s}"
                   r.psr_scenario all_match
                   (json_float (ps_reduction_fraction r))
                   (json_float (ps_final_fraction r))
                   (json_float r.psr_presolve_s) (json_float step.psr_presolve_s)
                   (json_float (step.psr_presolve_s /. Float.max 1e-9 r.psr_presolve_s))
                   (json_float r.psr_total_s) (json_float step.psr_total_s)
                   (json_float off.psr_total_s)
                   (json_float (step.psr_total_s /. Float.max 1e-9 r.psr_total_s))
                   (json_float (off.psr_total_s /. Float.max 1e-9 r.psr_total_s))
                   micro)
          | _ -> None)
      runs
  in
  Printf.fprintf oc "  ],\n  \"comparisons\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" comparisons);
  close_out oc;
  Format.printf "wrote %s (%d presolve runs)@." path (List.length runs)

(* ------------------------------------------------------------------ *)
(* Figures 1a-1c                                                       *)
(* ------------------------------------------------------------------ *)

let node_style (n : Template.node) used =
  match (n.Template.role, used) with
  | Components.Component.Sensor, _ ->
      { Geometry.Svg.default_style with fill = "#2a2"; stroke = "#161" }
  | Components.Component.Sink, _ ->
      { Geometry.Svg.default_style with fill = "#c22"; stroke = "#611" }
  | (Components.Component.Relay | Components.Component.Anchor), true ->
      { Geometry.Svg.default_style with fill = "#26c"; stroke = "#136" }
  | (Components.Component.Relay | Components.Component.Anchor), false ->
      { Geometry.Svg.default_style with fill = "none"; stroke = "#999" }

let plan_of inst =
  Radio.Channel.floorplan inst.Instance.channel

let scene_of inst =
  let w, h =
    match plan_of inst with
    | Some p -> (Geometry.Floorplan.width p, Geometry.Floorplan.height p)
    | None -> (100., 100.)
  in
  let sc = Geometry.Svg.scene ~width:w ~height:h in
  (match plan_of inst with Some p -> Geometry.Svg.add_floorplan sc p | None -> ());
  sc

let draw_nodes sc inst used_pred =
  Array.iteri
    (fun i n ->
      Geometry.Svg.add sc
        (Geometry.Svg.Circle (n.Template.loc, 0.5, node_style n (used_pred i))))
    (Template.nodes inst.Instance.template)

let figure1a inst =
  let sc = scene_of inst in
  draw_nodes sc inst (fun _ -> false);
  Geometry.Svg.write_file "fig1a.svg" sc;
  Format.printf "wrote fig1a.svg (template: sensors, sink, relay candidates)@."

let figure1b inst (sol : Solution.t) =
  let sc = scene_of inst in
  List.iter
    (fun (i, j) ->
      let a = (Template.node inst.Instance.template i).Template.loc in
      let b = (Template.node inst.Instance.template j).Template.loc in
      Geometry.Svg.add sc
        (Geometry.Svg.Line
           ( Geometry.Segment.make a b,
             { Geometry.Svg.default_style with stroke = "#2266cc"; stroke_width = 1.5 } )))
    sol.Solution.active_edges;
  draw_nodes sc inst (fun i -> List.mem i sol.Solution.used_nodes);
  Geometry.Svg.write_file "fig1b.svg" sc;
  Format.printf "wrote fig1b.svg (synthesized data-collection topology)@."

let figure1c inst (sol : Solution.t) =
  let sc = scene_of inst in
  (match inst.Instance.requirements.Requirements.localization with
  | Some loc ->
      Array.iter
        (fun pt ->
          Geometry.Svg.add sc
            (Geometry.Svg.Circle
               (pt, 0.25, { Geometry.Svg.default_style with stroke = "#888"; fill = "#ccc" })))
        loc.Requirements.eval_points
  | None -> ());
  draw_nodes sc inst (fun i -> List.mem i sol.Solution.used_nodes);
  Geometry.Svg.write_file "fig1c.svg" sc;
  Format.printf "wrote fig1c.svg (evaluation points + synthesized anchor placement)@."

let figures dc_solved loc_solved =
  header "Figures 1a-1c";
  (match dc_solved with
  | (_, inst, sol) :: _ ->
      figure1a inst;
      figure1b inst sol
  | [] -> Format.printf "no data-collection solution available for fig1a/b@.");
  (match loc_solved with
  | (_, inst, sol) :: _ -> figure1c inst sol
  | [] -> Format.printf "no localization solution available for fig1c@.");
  hr ()

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  header "Ablations";
  (* (a) presolve on/off. *)
  (match Scenarios.scaled_data_collection ~total_nodes:25 ~end_devices:8 ~replicas:2 () with
  | Error e -> Format.printf "presolve ablation: scenario error %s@." e
  | Ok inst ->
      Format.printf "presolve ablation (25 nodes, 8 sensors, 2 replicas):@.";
      List.iter
        (fun (name, presolve) ->
          let cfg =
            config ~time_limit:60. ~rel_gap:0.01 (Solver_config.approx ~kstar:6 ())
            |> Solver_config.with_options
                 { Milp.Branch_bound.default_options with
                   Milp.Branch_bound.time_limit = 60.; rel_gap = 0.01; presolve }
          in
          match time (fun () -> Solve.run cfg inst) with
          | Ok out, dt ->
              Format.printf "  %-12s %s in %.2f s, %d B&B nodes, %d LP iterations@." name
                (status_str out) dt out.Outcome.mip.Milp.Branch_bound.nodes
                out.Outcome.mip.Milp.Branch_bound.lp_iterations
          | Error e, _ -> Format.printf "  %-12s error: %s@." name e)
        [ ("with", true); ("without", false) ]);
  (* (b) diving heuristic on/off. *)
  (match Scenarios.localization Scenarios.default_localization with
  | Error e -> Format.printf "diving ablation: scenario error %s@." e
  | Ok inst ->
      Format.printf "@.diving-heuristic ablation (localization, $ objective, 30 s cap):@.";
      List.iter
        (fun (name, rounding_heuristic) ->
          let cfg =
            config ~time_limit:30. ~rel_gap:0.02 (Solver_config.approx ~loc_kstar:8 ())
            |> Solver_config.with_options
                 { Milp.Branch_bound.default_options with
                   Milp.Branch_bound.time_limit = 30.; rel_gap = 0.02; rounding_heuristic }
          in
          match time (fun () -> Solve.run cfg inst) with
          | Ok out, dt ->
              let inc =
                match out.Outcome.solution with
                | Some s -> Printf.sprintf "$%.0f" s.Solution.dollar_cost
                | None -> "none"
              in
              Format.printf "  %-12s incumbent %-6s (%s) in %.1f s@." name inc (status_str out) dt
          | Error e, _ -> Format.printf "  %-12s error: %s@." name e)
        [ ("with", true); ("without", false) ]);
  (* (c) Algorithm 1's disconnect loop: does the pool still contain the
     required number of disjoint replicas without it?  We measure the
     disjoint capacity of plain Yen pools vs Algorithm 1 pools. *)
  (match Scenarios.data_collection { dc_params with Scenarios.dc_replicas = 3 } with
  | Error e -> Format.printf "disconnect ablation: scenario error %s@." e
  | Ok inst ->
      Format.printf "@.disconnect-loop ablation (3 disjoint replicas required, K* = 6):@.";
      (match Path_gen.generate ~kstar:6 inst with
      | Error e -> Format.printf "  with disconnect: %s@." e
      | Ok { pools; _ } ->
          let capacity pool =
            let rec greedy chosen = function
              | [] -> List.length chosen
              | p :: rest ->
                  if List.for_all (Netgraph.Path.edge_disjoint p) chosen then
                    greedy (p :: chosen) rest
                  else greedy chosen rest
            in
            greedy [] pool
          in
          let ok =
            List.for_all (fun p -> capacity p.Path_gen.pool >= 3) pools
          in
          Format.printf "  with disconnect loop: all %d pools provide >= 3 disjoint paths: %b@."
            (List.length pools) ok);
      (* plain Yen: k_shortest without the disconnection rounds. *)
      let short = ref 0 and total = ref 0 in
      List.iter
        (fun (r : Requirements.route) ->
          incr total;
          let paths =
            List.map snd
              (Netgraph.Yen.k_shortest inst.Instance.graph ~src:r.Requirements.src
                 ~dst:r.Requirements.dst ~k:6)
          in
          let rec greedy chosen = function
            | [] -> List.length chosen
            | p :: rest ->
                if List.for_all (Netgraph.Path.edge_disjoint p) chosen then
                  greedy (p :: chosen) rest
                else greedy chosen rest
          in
          if greedy [] paths < 3 then incr short)
        inst.Instance.requirements.Requirements.routes;
      Format.printf "  plain Yen (no disconnect): %d/%d pools fall short of 3 disjoint paths@."
        !short !total);
  hr ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let inst =
    match Scenarios.scaled_data_collection ~total_nodes:40 ~end_devices:12 () with
    | Ok i -> i
    | Error e -> failwith e
  in
  let g = inst.Instance.graph in
  let yen_test =
    Test.make ~name:"yen-k10-40nodes"
      (Staged.stage (fun () ->
           ignore (Netgraph.Yen.k_shortest g ~src:0 ~dst:12 ~k:10)))
  in
  let plan = Geometry.Building.office ~width:60. ~height:35. ~rooms_x:4 ~rooms_y:3 () in
  let model = Radio.Channel.multi_wall_2_4ghz plan in
  let p1 = Geometry.Point.make 2. 2. and p2 = Geometry.Point.make 55. 30. in
  let pl_test =
    Test.make ~name:"multiwall-path-loss"
      (Staged.stage (fun () -> ignore (Radio.Channel.path_loss model p1 p2)))
  in
  let encode_test =
    Test.make ~name:"approx-encode-40nodes"
      (Staged.stage (fun () -> ignore (Solve.encode_size inst (Solve.approx ~kstar:6 ()))))
  in
  let lp =
    let enc = Result.get_ok (Approx_encoding.encode ~kstar:6 inst) in
    Encode_common.model enc.Approx_encoding.ctx
  in
  let prob = Milp.Simplex.of_model lp in
  let n = Milp.Model.nvars lp in
  let lb = Array.init n (Milp.Model.var_lb lp) and ub = Array.init n (Milp.Model.var_ub lp) in
  let simplex_test =
    Test.make ~name:"simplex-root-lp"
      (Staged.stage (fun () -> ignore (Milp.Simplex.solve prob ~lb ~ub)))
  in
  let benchmark test =
    let metric = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
    let raw = Benchmark.all cfg [ metric ] test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) metric
        raw
    in
    Hashtbl.iter
      (fun name ols ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Format.printf "  %-24s %12.1f ns/run@." name est
        | Some _ | None -> Format.printf "  %-24s (no estimate)@." name)
      results
  in
  List.iter benchmark [ yen_test; pl_test; encode_test; simplex_test ];
  hr ()

(* ------------------------------------------------------------------ *)
(* Daemon throughput: warm session cache vs cold -> BENCH_PR8.json     *)
(* ------------------------------------------------------------------ *)

(* An in-process archexd core on a temp-dir Unix socket, hammered by
   concurrent client threads with a K*-perturbed stream over the mixed
   test-scale Table-1 workloads.  Two passes, identical stream: warm
   (session cache on — repeats reuse path pools, presolve trace, cut
   carry and incumbent) and cold (capacity 0 — every request encodes
   and solves from scratch).  Reported: sustained req/s and p50/p99
   latency per pass. *)

type daemon_run = {
  dr_mode : string;  (* "warm" | "cold" *)
  dr_total_s : float;
  dr_requests : int;
  dr_errors : int;
  dr_p50_ms : float;
  dr_p99_ms : float;
  dr_req_per_s : float;
  dr_cache_hits : int;
  dr_cache_misses : int;
}

let daemon_log : daemon_run list ref = ref []

let daemon_clients = 2
let daemon_reqs_per_client = 9
let daemon_workloads = [ "dc-small-dollar"; "dc-small-energy"; "dc-small-mixed" ]
let daemon_kstars = [| 3; 4; 5 |]

(* The resolved pool size the daemon will use (satellite of the
   [--workers 0] auto-detection: 0 resolves on the daemon side). *)
let daemon_workers_flag = nworkers

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(Int.min (n - 1) (int_of_float (Float.of_int n *. p /. 100.)))

let daemon_pass ~mode ~capacity =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "archexd-bench-%d-%s.sock" (Unix.getpid ()) mode)
  in
  let config =
    {
      Server.Daemon.default_config with
      Server.Daemon.c_socket = socket;
      c_workers = daemon_workers_flag;
      c_max_active = daemon_clients;
      c_max_waiting = 2 * daemon_clients;
      c_cache_capacity = capacity;
      c_time_limit = 120.;
    }
  in
  match Server.Daemon.create config with
  | Error e ->
      Format.printf "  %s: daemon start failed: %s@." mode e;
      None
  | Ok d ->
      let dthread = Thread.create (fun () -> ignore (Server.Daemon.run d)) () in
      let lock = Mutex.create () in
      let latencies = ref [] in
      let errors = ref 0 in
      let overrides =
        { Server.Protocol.no_overrides with Server.Protocol.o_rel_gap = Some 1e-4 }
      in
      let client c =
        match Server.Client.connect socket with
        | Error e ->
            Mutex.lock lock;
            errors := !errors + daemon_reqs_per_client;
            Mutex.unlock lock;
            Format.printf "  %s client %d: connect failed: %s@." mode c e
        | Ok conn ->
            Fun.protect
              ~finally:(fun () -> Server.Client.disconnect conn)
              (fun () ->
                for i = 0 to daemon_reqs_per_client - 1 do
                  (* Offset clients through the workload cycle so they
                     mostly touch different templates at any instant;
                     the K* perturbation cycles independently. *)
                  let j = c + i in
                  let name = List.nth daemon_workloads (j mod List.length daemon_workloads) in
                  let kstar = daemon_kstars.(j mod Array.length daemon_kstars) in
                  let t0 = Unix.gettimeofday () in
                  let r =
                    Server.Client.solve conn
                      (Server.Protocol.Workload { name; kstar })
                      overrides
                  in
                  let dt = Unix.gettimeofday () -. t0 in
                  Mutex.lock lock;
                  (match r with
                  | Ok (Server.Protocol.Result _) -> latencies := dt :: !latencies
                  | Ok _ | Error _ -> incr errors);
                  Mutex.unlock lock
                done)
      in
      let t0 = Unix.gettimeofday () in
      let threads = List.init daemon_clients (fun c -> Thread.create client c) in
      List.iter Thread.join threads;
      let total = Unix.gettimeofday () -. t0 in
      let hits, misses = Server.Daemon.cache_stats d in
      Server.Daemon.request_shutdown d;
      Thread.join dthread;
      let sorted = Array.of_list !latencies in
      Array.sort compare sorted;
      let nreq = Array.length sorted in
      let run =
        {
          dr_mode = mode;
          dr_total_s = total;
          dr_requests = nreq;
          dr_errors = !errors;
          dr_p50_ms = 1000. *. percentile sorted 50.;
          dr_p99_ms = 1000. *. percentile sorted 99.;
          dr_req_per_s = float_of_int nreq /. Float.max 1e-9 total;
          dr_cache_hits = hits;
          dr_cache_misses = misses;
        }
      in
      daemon_log := !daemon_log @ [ run ];
      Format.printf
        "  %-4s: %d requests in %.2f s -> %.2f req/s; p50 %.0f ms, p99 %.0f ms; \
         cache %d hits / %d misses; %d error(s)@."
        mode nreq total run.dr_req_per_s run.dr_p50_ms run.dr_p99_ms hits misses
        !errors;
      Some run

let daemon_bench () =
  header "Daemon throughput: warm session cache vs cold (archexd core in-process)";
  Format.printf
    "(%d client threads x %d requests, workloads {%s} with K* cycling %s;@."
    daemon_clients daemon_reqs_per_client
    (String.concat ", " daemon_workloads)
    (String.concat "," (Array.to_list (Array.map string_of_int daemon_kstars)));
  Format.printf
    " shared scheduler pool of %d domain(s)%s.  warm keeps one session per workload;@."
    (if daemon_workers_flag = 0 then Domain.recommended_domain_count ()
     else daemon_workers_flag)
    (if daemon_workers_flag = 0 then " (auto-detected from --workers=0)" else "");
  Format.printf " cold re-encodes and re-solves every request from scratch.)@.@.";
  if Domain.recommended_domain_count () = 1 then
    Format.printf
      "  WARNING: single hardware thread — concurrency is time-sliced, not parallel.@.@.";
  let cold = daemon_pass ~mode:"cold" ~capacity:0 in
  let warm = daemon_pass ~mode:"warm" ~capacity:(List.length daemon_workloads) in
  (match (cold, warm) with
  | Some c, Some w ->
      Format.printf "  => warm throughput %.2fx cold (%s)@."
        (w.dr_req_per_s /. Float.max 1e-9 c.dr_req_per_s)
        (if w.dr_req_per_s > c.dr_req_per_s then "warm WINS" else "cold wins — UNEXPECTED")
  | _ -> ());
  hr ()

let write_daemon_json path =
  let oc = open_out path in
  let runs = !daemon_log in
  Printf.fprintf oc
    "{\n  \"clients\": %d,\n  \"requests_per_client\": %d,\n  \"workloads\": [%s],\n\
    \  \"kstars\": [%s],\n  \"workers_flag\": %d,\n  \"workers_resolved\": %d,\n\
    \  \"host_hardware_threads\": %d,\n  \"single_thread_warning\": %b,\n  \"runs\": [\n"
    daemon_clients daemon_reqs_per_client
    (String.concat ", " (List.map (Printf.sprintf "%S") daemon_workloads))
    (String.concat ", " (Array.to_list (Array.map string_of_int daemon_kstars)))
    daemon_workers_flag
    (if daemon_workers_flag = 0 then Domain.recommended_domain_count ()
     else daemon_workers_flag)
    (Domain.recommended_domain_count ())
    (Domain.recommended_domain_count () = 1);
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"mode\": %S, \"total_s\": %s, \"requests\": %d, \"errors\": %d,\n\
        \     \"req_per_s\": %s, \"p50_ms\": %s, \"p99_ms\": %s,\n\
        \     \"cache_hits\": %d, \"cache_misses\": %d}%s\n"
        r.dr_mode (json_float r.dr_total_s) r.dr_requests r.dr_errors
        (json_float r.dr_req_per_s) (json_float r.dr_p50_ms) (json_float r.dr_p99_ms)
        r.dr_cache_hits r.dr_cache_misses
        (if i = List.length runs - 1 then "" else ","))
    runs;
  let comparison =
    match
      ( List.find_opt (fun r -> r.dr_mode = "warm") runs,
        List.find_opt (fun r -> r.dr_mode = "cold") runs )
    with
    | Some w, Some c ->
        Printf.sprintf
          "    {\"warm_req_per_s\": %s, \"cold_req_per_s\": %s, \"warm_speedup\": %s, \
           \"warm_faster\": %b}"
          (json_float w.dr_req_per_s) (json_float c.dr_req_per_s)
          (json_float (w.dr_req_per_s /. Float.max 1e-9 c.dr_req_per_s))
          (w.dr_req_per_s > c.dr_req_per_s)
    | _ -> ""
  in
  Printf.fprintf oc "  ],\n  \"comparisons\": [\n%s\n  ]\n}\n" comparison;
  close_out oc;
  Format.printf "wrote %s (%d daemon runs)@." path (List.length runs)

(* ------------------------------------------------------------------ *)
(* Scenario matrix: tactical instances, plain B&B vs. the tabu         *)
(* matheuristic -> BENCH_PR9.json                                      *)
(* ------------------------------------------------------------------ *)

(* Deadline-bound tactical instances from the PR9 generator: energy
   objective plus a lifetime floor pushes the B&B root (LP + cut loop +
   dive) out to seconds before the first incumbent, which is where the
   tabu warm start pays.  Each runs twice — [--heuristic off] and
   [--heuristic tabu] — under the same 30 s deadline, recording
   time-to-first-feasible (streamed via [on_incumbent]) and the
   gap at timeout. *)

type mh_entry = {
  mh_scenario : string;
  mh_mode : string;  (* "bb" | "tabu+bb" *)
  mh_wall_s : float;
  mh_status : string;
  mh_objective : float;
  mh_bound : float;
  mh_gap : float;
  mh_first_feasible_s : float;
  mh_heuristic_s : float;
  mh_nodes : int;
}

let mh_log : mh_entry list ref = ref []
let mh_time_limit = 30.
let mh_tabu_budget_s = 1.5

let mh_specs =
  [
    ( "tac-city3-energy",
      Scenario_gen.city_block ~blocks_x:3 ~blocks_y:3 ~sensors:12
        ~relay_grid:(12, 10) ~objective:Scenario_gen.O_energy
        ~min_lifetime_years:2. (),
      6 );
    ( "tac-city4-energy",
      Scenario_gen.city_block ~blocks_x:4 ~blocks_y:4 ~sensors:16
        ~relay_grid:(16, 12) ~objective:Scenario_gen.O_energy
        ~min_lifetime_years:2. (),
      6 );
    ( "tac-mf3-energy",
      Scenario_gen.multi_floor ~floors:3 ~sensors:12 ~relay_grid:(14, 6)
        ~objective:Scenario_gen.O_energy ~min_lifetime_years:3.5 (),
      6 );
  ]

let scenarios_bench () =
  header "Scenario matrix: tactical instances, B&B vs. tabu matheuristic";
  Format.printf
    "(energy objective + lifetime floor, %g s deadline, tabu budget %g s;@."
    mh_time_limit mh_tabu_budget_s;
  Format.printf
    " 'first' = wall clock to first streamed incumbent, 'gap' = |obj-bound|/|obj| at exit.)@.@.";
  Format.printf "%-18s | %-7s | %7s | %9s | %8s | %7s | %7s | %6s@." "Scenario"
    "Mode" "wall(s)" "objective" "gap" "first" "heur(s)" "nodes";
  Format.printf
    "-------------------+---------+---------+-----------+----------+---------+---------+-------@.";
  List.iter
    (fun (name, spec, k) ->
      match Scenario_gen.build spec with
      | Error e -> Format.printf "%-18s | generator error: %s@." name e
      | Ok inst ->
          List.iter
            (fun heur ->
              let t0 = Unix.gettimeofday () in
              let first = ref nan in
              let cfg =
                config ~time_limit:mh_time_limit ~rel_gap:1e-6
                  (Solver_config.approx ~kstar:k ())
                |> Solver_config.with_on_incumbent (fun _ _ ->
                       if Float.is_nan !first then
                         first := Unix.gettimeofday () -. t0)
                |> Solver_config.with_heuristic
                     (if heur then Solver_config.tabu ~time_s:mh_tabu_budget_s ()
                      else Solver_config.no_heuristic)
              in
              let mode_name = if heur then "tabu+bb" else "bb" in
              match time (fun () -> Solve.run cfg inst) with
              | Error e, _ ->
                  Format.printf "%-18s | %-7s | solve error: %s@." name mode_name e
              | Ok out, wall ->
                  let m = out.Outcome.mip in
                  let obj = m.Milp.Branch_bound.objective in
                  let bound = m.Milp.Branch_bound.bound in
                  let gap =
                    if
                      Float.is_finite obj && Float.is_finite bound
                      && Float.abs obj > 1e-9
                    then Float.abs (obj -. bound) /. Float.abs obj
                    else nan
                  in
                  mh_log :=
                    !mh_log
                    @ [
                        {
                          mh_scenario = name;
                          mh_mode = mode_name;
                          mh_wall_s = wall;
                          mh_status = status_str out;
                          mh_objective = obj;
                          mh_bound = bound;
                          mh_gap = gap;
                          mh_first_feasible_s = !first;
                          mh_heuristic_s =
                            out.Outcome.stats.Outcome.heuristic_time_s;
                          mh_nodes = m.Milp.Branch_bound.nodes;
                        };
                      ];
                  Format.printf
                    "%-18s | %-7s | %7.1f | %9.4g | %8.4f | %7.2f | %7.2f | %6d@."
                    name mode_name wall obj gap !first
                    out.Outcome.stats.Outcome.heuristic_time_s
                    m.Milp.Branch_bound.nodes)
            [ false; true ])
    mh_specs;
  (* Per-scenario verdicts: the matheuristic should reach a first
     feasible well sooner and exit with a strictly smaller gap. *)
  List.iter
    (fun (name, _, _) ->
      match
        ( List.find_opt
            (fun e -> e.mh_scenario = name && e.mh_mode = "bb")
            !mh_log,
          List.find_opt
            (fun e -> e.mh_scenario = name && e.mh_mode = "tabu+bb")
            !mh_log )
      with
      | Some b, Some t
        when Float.is_finite b.mh_first_feasible_s
             && Float.is_finite t.mh_first_feasible_s ->
          Format.printf
            "  => %-18s first feasible %.2fx sooner, gap %.4f vs %.4f (%s)@."
            name
            (b.mh_first_feasible_s /. Float.max 1e-9 t.mh_first_feasible_s)
            t.mh_gap b.mh_gap
            (if t.mh_gap < b.mh_gap then "tabu+bb WINS" else "no gap win")
      | _ -> ())
    mh_specs;
  hr ()

let write_scenarios_json path =
  let oc = open_out path in
  let entries = !mh_log in
  Printf.fprintf oc
    "{\n  \"mode\": %S,\n  \"time_limit_s\": %s,\n  \"tabu_budget_s\": %s,\n\
    \  \"runs\": [\n"
    mode (json_float mh_time_limit) (json_float mh_tabu_budget_s);
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "    {\"scenario\": %S, \"mode\": %S, \"wall_s\": %s, \"status\": %S,\n\
        \     \"objective\": %s, \"bound\": %s, \"gap\": %s,\n\
        \     \"first_feasible_s\": %s, \"heuristic_s\": %s, \"nodes\": %d}%s\n"
        e.mh_scenario e.mh_mode (json_float e.mh_wall_s) e.mh_status
        (json_float e.mh_objective) (json_float e.mh_bound) (json_float e.mh_gap)
        (json_float e.mh_first_feasible_s) (json_float e.mh_heuristic_s)
        e.mh_nodes
        (if i = List.length entries - 1 then "" else ","))
    entries;
  let comparisons =
    List.filter_map
      (fun (name, _, _) ->
        match
          ( List.find_opt
              (fun e -> e.mh_scenario = name && e.mh_mode = "bb")
              entries,
            List.find_opt
              (fun e -> e.mh_scenario = name && e.mh_mode = "tabu+bb")
              entries )
        with
        | Some b, Some t ->
            Some
              (Printf.sprintf
                 "    {\"scenario\": %S, \"bb_first_s\": %s, \"tabu_first_s\": %s,\n\
                 \     \"first_feasible_speedup\": %s, \"bb_gap\": %s, \
                  \"tabu_gap\": %s,\n\
                 \     \"tabu_gap_strictly_smaller\": %b}"
                 name
                 (json_float b.mh_first_feasible_s)
                 (json_float t.mh_first_feasible_s)
                 (json_float
                    (b.mh_first_feasible_s
                    /. Float.max 1e-9 t.mh_first_feasible_s))
                 (json_float b.mh_gap) (json_float t.mh_gap)
                 (Float.is_finite b.mh_gap && Float.is_finite t.mh_gap
                 && t.mh_gap < b.mh_gap))
        | _ -> None)
      mh_specs
  in
  Printf.fprintf oc "  ],\n  \"comparisons\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" comparisons);
  close_out oc;
  Format.printf "wrote %s (%d matheuristic runs)@." path (List.length entries)

(* ------------------------------------------------------------------ *)
(* Problem-structured separation: per-family ablation                  *)
(* -> BENCH_PR10.json                                                  *)
(* ------------------------------------------------------------------ *)

type cut_run = {
  cr_scenario : string;
  cr_label : string;  (* "none" | one family | "generic" | "all" *)
  cr_families : string;
  cr_wall_s : float;
  cr_status : string;
  cr_objective : float;
  cr_bound : float;
  cr_gap : float;  (* remaining relative gap when the run stopped *)
  cr_nodes : int;
  cr_cuts_separated : int;
  cr_cuts_applied : int;
  cr_root_lp_bound : float;
  cr_root_cut_bound : float;
}

let cut_log : cut_run list ref = ref []

(* The ablation axis: every family alone, the generic pair the solver
   had before the structured separators existed, and the full stack. *)
let cut_family_sets =
  [
    ("none", "none");
    ("gmi", "gmi");
    ("cover", "cover");
    ("clique", "clique");
    ("negcycle", "negcycle");
    ("power", "power");
    ("generic", "gmi,cover");
    ("all", "all");
  ]

let cut_gap_closed r =
  if
    Float.is_finite r.cr_root_lp_bound
    && Float.is_finite r.cr_root_cut_bound
    && Float.is_finite r.cr_objective
  then begin
    let denom = Float.abs (r.cr_objective -. r.cr_root_lp_bound) in
    if denom < 1e-9 then 1.0
    else Float.abs (r.cr_root_cut_bound -. r.cr_root_lp_bound) /. denom
  end
  else nan

let cuts_bench () =
  header "Cut separation: per-family root-gap ablation";
  Format.printf
    "(Table-1 scenarios at the table1 budget; one generated tactical scenario at the@.";
  Format.printf
    " scenarios-section budget.  'gap closed' = share of the root integrality gap@.";
  Format.printf
    " closed by the cut loop; 'generic' = gmi+cover, the pre-structured stack.)@.@.";
  let tac_name = "tac-city3-energy" in
  let specs =
    List.filter_map
      (fun (name, objective) ->
        match Scenarios.data_collection ~objective dc_params with
        | Error e ->
            Format.printf "%-18s | scenario error: %s@." name e;
            None
        | Ok inst -> Some (name, inst, dc_config))
      [
        ("table1-dollar", Objective.dollar);
        ("table1-energy", Objective.energy);
        ("table1-mixed", Objective.combine Objective.dollar Objective.energy);
      ]
    @ (match
         Scenario_gen.build
           (Scenario_gen.city_block ~blocks_x:3 ~blocks_y:3 ~sensors:12
              ~relay_grid:(12, 10) ~objective:Scenario_gen.O_energy
              ~min_lifetime_years:2. ())
       with
      | Error e ->
          Format.printf "%-18s | generator error: %s@." tac_name e;
          []
      | Ok inst ->
          [
            ( tac_name,
              inst,
              config ~time_limit:mh_time_limit ~rel_gap:1e-6
                (Solver_config.approx ~kstar:6 ()) );
          ])
  in
  List.iter
    (fun (sname, inst, base_cfg) ->
      Format.printf "%-18s | %-8s | %7s | %9s | %8s | %6s | %5s/%-5s | %10s@."
        sname "Families" "wall(s)" "objective" "gap" "nodes" "sep" "app"
        "gap closed";
      Format.printf
        "-------------------+----------+---------+-----------+----------+--------+-------------+-----------@.";
      List.iter
        (fun (label, spec) ->
          let fams =
            match Milp.Cuts.families_of_string spec with
            | Ok fs -> fs
            | Error e -> failwith e
          in
          let cfg = base_cfg |> Solver_config.with_cut_families fams in
          match time (fun () -> Solve.run cfg inst) with
          | Error e, _ -> Format.printf "%-18s | %-8s | solve error: %s@." sname label e
          | Ok out, wall ->
              let m = out.Outcome.mip in
              let r =
                {
                  cr_scenario = sname;
                  cr_label = label;
                  cr_families = spec;
                  cr_wall_s = wall;
                  cr_status = status_str out;
                  cr_objective = m.Milp.Branch_bound.objective;
                  cr_bound = m.Milp.Branch_bound.bound;
                  cr_gap = Milp.Branch_bound.gap m;
                  cr_nodes = m.Milp.Branch_bound.nodes;
                  cr_cuts_separated = m.Milp.Branch_bound.cuts_separated;
                  cr_cuts_applied = m.Milp.Branch_bound.cuts_applied;
                  cr_root_lp_bound = m.Milp.Branch_bound.root_lp_bound;
                  cr_root_cut_bound = m.Milp.Branch_bound.root_cut_bound;
                }
              in
              cut_log := !cut_log @ [ r ];
              Format.printf
                "%-18s | %-8s | %7.1f | %9.4g | %8.4g | %6d | %5d/%-5d | %10.3f@."
                sname label wall r.cr_objective r.cr_gap r.cr_nodes
                r.cr_cuts_separated r.cr_cuts_applied (cut_gap_closed r))
        cut_family_sets;
      hr ())
    specs;
  (* Per-scenario verdicts, wins and non-wins alike.  Node counts are
     tree sizes only when both runs completed; at a deadline they are
     throughput (nodes processed in the budget), so the honest search-
     efficiency comparison there is the remaining gap instead. *)
  List.iter
    (fun (sname, _, _) ->
      let find label =
        List.find_opt
          (fun r -> r.cr_scenario = sname && r.cr_label = label)
          !cut_log
      in
      match (find "none", find "generic", find "all") with
      | Some n, Some g, Some a ->
          let complete r = r.cr_status = "optimal" in
          let no_worse, metric =
            if complete n && complete a then
              (a.cr_nodes <= n.cr_nodes, "nodes")
            else (a.cr_gap <= n.cr_gap +. 1e-9, "deadline gap")
          in
          Format.printf
            "  => %-18s gap closed %.3f (generic %.3f), nodes %d -> %d, gap %.4g -> %.4g (%s on %s), wall %.1fs -> %.1fs@."
            sname (cut_gap_closed a) (cut_gap_closed g) n.cr_nodes a.cr_nodes
            n.cr_gap a.cr_gap
            (if no_worse then "no worse" else "WORSE")
            metric n.cr_wall_s a.cr_wall_s
      | _ -> ())
    specs;
  hr ()

let write_cuts_json path =
  let oc = open_out path in
  let entries = !cut_log in
  Printf.fprintf oc "{\n  \"mode\": %S,\n  \"runs\": [\n" mode;
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"scenario\": %S, \"config\": %S, \"families\": %S, \"wall_s\": %s,\n\
        \     \"status\": %S, \"objective\": %s, \"bound\": %s, \"gap\": %s, \"nodes\": %d,\n\
        \     \"cuts_separated\": %d, \"cuts_applied\": %d,\n\
        \     \"root_lp_bound\": %s, \"root_cut_bound\": %s, \"root_gap_closed\": %s}%s\n"
        r.cr_scenario r.cr_label r.cr_families (json_float r.cr_wall_s) r.cr_status
        (json_float r.cr_objective) (json_float r.cr_bound) (json_float r.cr_gap)
        r.cr_nodes r.cr_cuts_separated r.cr_cuts_applied
        (json_float r.cr_root_lp_bound) (json_float r.cr_root_cut_bound)
        (json_float (cut_gap_closed r))
        (if i = List.length entries - 1 then "" else ","))
    entries;
  let scenario_names =
    List.filter
      (fun n -> List.exists (fun r -> r.cr_scenario = n) entries)
      (List.sort_uniq compare (List.map (fun r -> r.cr_scenario) entries))
  in
  let summaries =
    List.filter_map
      (fun sname ->
        let find label =
          List.find_opt
            (fun r -> r.cr_scenario = sname && r.cr_label = label)
            entries
        in
        match (find "none", find "generic", find "all") with
        | Some n, Some g, Some a ->
            (* Node counts compare tree sizes only when both runs ran to
               completion; under a deadline they measure throughput, so
               the search-efficiency verdict falls back to the remaining
               gap at the deadline. *)
            let complete r = r.cr_status = "optimal" in
            let no_worse, metric =
              if complete n && complete a then
                (a.cr_nodes <= n.cr_nodes, "nodes")
              else (a.cr_gap <= n.cr_gap +. 1e-9, "deadline_gap")
            in
            Some
              (Printf.sprintf
                 "    {\"scenario\": %S, \"root_gap_closed_generic\": %s, \
                  \"root_gap_closed_all\": %s,\n\
                 \     \"nodes_none\": %d, \"nodes_all\": %d,\n\
                 \     \"gap_none\": %s, \"gap_all\": %s,\n\
                 \     \"no_worse\": %b, \"no_worse_metric\": %S,\n\
                 \     \"wall_none_s\": %s, \"wall_all_s\": %s, \"wall_win\": %b}"
                 sname
                 (json_float (cut_gap_closed g))
                 (json_float (cut_gap_closed a))
                 n.cr_nodes a.cr_nodes
                 (json_float n.cr_gap) (json_float a.cr_gap)
                 no_worse metric
                 (json_float n.cr_wall_s) (json_float a.cr_wall_s)
                 (a.cr_wall_s < n.cr_wall_s))
        | _ -> None)
      scenario_names
  in
  Printf.fprintf oc "  ],\n  \"summary\": [\n%s\n  ]\n}\n" (String.concat ",\n" summaries);
  close_out oc;
  Format.printf "wrote %s (%d ablation runs)@." path (List.length entries)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  Format.printf "ArchEx reproduction bench harness (paper: Kirov et al., DAC 2018)@.";
  let dc_solved = if section_enabled "table1" then table1 () else [] in
  let loc_solved = if section_enabled "table2" then table2 () else [] in
  if section_enabled "table3" then table3 ();
  if section_enabled "table4" then table4 ();
  if section_enabled "sweep" then sweep ();
  if section_enabled "parallel" then parallel_bench ();
  if section_enabled "kernel" then kernel_bench ();
  if section_enabled "kernel2" then kernel2_bench ();
  if section_enabled "presolve" then presolve_bench ();
  if section_enabled "figures" then figures dc_solved loc_solved;
  if section_enabled "ablations" then ablations ();
  if section_enabled "micro" then micro ();
  if section_enabled "daemon" then daemon_bench ();
  if section_enabled "scenarios" then scenarios_bench ();
  if section_enabled "cuts" then cuts_bench ();
  if !bench_log <> [] then write_bench_json "BENCH_PR2.json";
  if !sweep_log <> [] then write_sweep_json "BENCH_PR3.json";
  if !par_log <> [] then write_par_json "BENCH_PR4.json";
  if !kern_log <> [] then write_kern_json "BENCH_PR5.json";
  if !k2_log <> [] then write_k2_json "BENCH_PR6.json";
  if !ps_log <> [] then write_presolve_json "BENCH_PR7.json";
  if !daemon_log <> [] then write_daemon_json "BENCH_PR8.json";
  if !mh_log <> [] then write_scenarios_json "BENCH_PR9.json";
  if !cut_log <> [] then write_cuts_json "BENCH_PR10.json";
  Format.printf "done.@."
