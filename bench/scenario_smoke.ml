(* Scenario-matrix smoke: build every registered generated scenario,
   check structural validity (the approximate encoding finds candidate
   paths), then solve the smallest tactical instance with the heuristic
   off and on and require objective agreement within tolerance.

   Runs in CI; keep it fast — only the [Test]-scale instance is
   actually solved. *)

module Scenario = Archex.Scenario
module Solver_config = Archex.Solver_config
module Solve = Archex.Solve
module Outcome = Archex.Outcome

let pr fmt = Format.printf (fmt ^^ "@.")

let fail fmt = Format.kasprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let () =
  Scenario_gen.register_defaults ();
  (* Every generated entry must build deterministically and carry a
     feasible candidate-path structure at K* = 1. *)
  List.iter
    (fun (name, _descr, _scale, spec) ->
      match Scenario.find name with
      | Error e -> fail "%s: not registered: %s" name e
      | Ok sc -> (
          match Scenario.instance sc with
          | Error e -> fail "%s: build: %s" name e
          | Ok inst -> (
              let again =
                match Scenario_gen.build spec with
                | Ok i -> i
                | Error e -> fail "%s: rebuild: %s" name e
              in
              let nodes = Archex.Template.nnodes inst.Archex.Instance.template in
              let edges = Netgraph.Digraph.nedges inst.Archex.Instance.graph in
              if
                nodes <> Archex.Template.nnodes again.Archex.Instance.template
                || edges <> Netgraph.Digraph.nedges again.Archex.Instance.graph
              then fail "%s: non-deterministic build" name;
              match Solve.encode_size inst (Solve.approx ~kstar:1 ()) with
              | Error e -> fail "%s: no feasible path structure: %s" name e
              | Ok (nvars, nconstrs) ->
                  pr "%-18s %4d nodes %6d cand. edges %6d vars %6d rows" name
                    nodes edges nvars nconstrs)))
    Scenario_gen.defaults;
  (* Solve the CI-scale instance heuristic-off vs heuristic-on; both
     must reach the same optimum. *)
  let inst =
    match Scenario.find "tac-smoke" with
    | Ok sc -> (
        match Scenario.instance sc with
        | Ok i -> i
        | Error e -> fail "tac-smoke build: %s" e)
    | Error e -> fail "tac-smoke: %s" e
  in
  let solve cfg label =
    match Solve.run cfg inst with
    | Error e -> fail "tac-smoke %s: encode: %s" label e
    | Ok { Outcome.solution = None; status; _ } ->
        fail "tac-smoke %s: no solution (%s)" label
          (Milp.Status.mip_status_to_string status)
    | Ok ({ Outcome.solution = Some _; _ } as o) -> o
  in
  let base =
    Solver_config.(
      default |> with_approx ~kstar:3 () |> with_time_limit 60.)
  in
  let off = solve base "heuristic-off" in
  (* The first on_incumbent firing on the heuristic run must be the tabu
     incumbent, i.e. arrive before any tree-search improvement, with an
     unproven bound. *)
  let tabu_incumbent = ref None in
  let on =
    solve
      (Solver_config.(
         base
         |> with_heuristic (tabu ~time_s:2. ())
         |> with_on_incumbent (fun o _ ->
                if !tabu_incumbent = None then tabu_incumbent := Some o)))
      "heuristic-on"
  in
  let obj o = o.Outcome.mip.Milp.Branch_bound.objective in
  (match !tabu_incumbent with
  | None -> fail "tac-smoke heuristic-on: tabu produced no incumbent"
  | Some o ->
      pr "tac-smoke tabu incumbent: %.6f" o;
      if o < obj off -. 1e-6 then
        fail "tabu incumbent %.9f better than proven optimum %.9f" o (obj off));
  pr "tac-smoke objective: off %.6f, on %.6f (heuristic %.3fs)" (obj off)
    (obj on) on.Outcome.stats.Outcome.heuristic_time_s;
  if Float.abs (obj off -. obj on) > 1e-6 *. Float.max 1. (Float.abs (obj off))
  then fail "objective mismatch: off %.9f vs on %.9f" (obj off) (obj on);
  pr "scenario smoke OK"
