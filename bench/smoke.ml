(* CI smoke test for the warm-started dual simplex: solve one tiny
   data-collection scenario with warm starts on and off to a tight gap
   and fail (exit 1) if the final objectives or statuses diverge.
   Wired to `dune build @bench-smoke`. *)

open Archex

let () =
  match Scenarios.scaled_data_collection ~total_nodes:14 ~end_devices:4 () with
  | Error e ->
      prerr_endline ("bench-smoke: scenario error: " ^ e);
      exit 1
  | Ok inst -> (
      let run warm_start =
        let options =
          { Milp.Branch_bound.default_options with
            Milp.Branch_bound.time_limit = 60.; rel_gap = 1e-6; warm_start }
        in
        Solve.run ~options inst (Solve.approx ~kstar:4 ())
      in
      match (run true, run false) with
      | Ok warm, Ok cold ->
          let w = warm.Solve.mip and c = cold.Solve.mip in
          let ow = w.Milp.Branch_bound.objective and oc = c.Milp.Branch_bound.objective in
          let sw = Milp.Status.mip_status_to_string warm.Solve.status in
          let sc = Milp.Status.mip_status_to_string cold.Solve.status in
          Printf.printf
            "bench-smoke: warm %s obj=%g (%d LP iters, %d/%d/%d warm/cold/fallback) | \
             cold %s obj=%g (%d LP iters)\n"
            sw ow w.Milp.Branch_bound.lp_iterations w.Milp.Branch_bound.lp_warm
            w.Milp.Branch_bound.lp_cold w.Milp.Branch_bound.lp_fallback sc oc
            c.Milp.Branch_bound.lp_iterations;
          if sw <> sc then begin
            Printf.eprintf "bench-smoke: status diverged: warm=%s cold=%s\n" sw sc;
            exit 1
          end;
          if Float.abs (ow -. oc) > 1e-5 *. Float.max 1. (Float.abs oc) then begin
            Printf.eprintf "bench-smoke: objective diverged: warm=%.9g cold=%.9g\n" ow oc;
            exit 1
          end
      | Error e, _ | _, Error e ->
          prerr_endline ("bench-smoke: encode error: " ^ e);
          exit 1)
