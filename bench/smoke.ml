(* CI smoke test for the solver's ablatable machinery: solve one tiny
   data-collection scenario with (a) everything on, (b) warm starts off,
   (c) cuts and reduced-cost fixing off, (d) the presolve reduction
   stack off, all to a tight gap, and fail (exit 1) if any final
   objective or status diverges.  Accepts
   `--workers N` to run every variant with N worker domains (the CI
   parallel job uses 4), `--dense-basis` to run every variant on the
   dense explicit-inverse kernel instead of the sparse LU one (the CI
   matrix runs both), `--pricing devex`/`--pricing dantzig` and `--no-harris` to
   pin the simplex pricing/ratio-test combination (the CI ablation step
   runs `--pricing dantzig --no-harris`), `--no-presolve` to run every
   variant on the unreduced model (the CI presolve step), and
   `--alloc-guard W` to fail if the default-variant solve allocates
   more than W words — the allocation-regression guard for the
   workspace/unboxed kernel; the default variant presolves, so the
   budget covers the reduction stack too.
   Wired to `dune build @bench-smoke`. *)

open Archex

let workers =
  let rec find = function
    | "--workers" :: n :: _ -> ( match int_of_string_opt n with Some v when v >= 1 -> v | _ -> 1)
    | _ :: rest -> find rest
    | [] -> 1
  in
  find (Array.to_list Sys.argv)

let dense_basis = Array.exists (String.equal "--dense-basis") Sys.argv

let pricing =
  let rec find = function
    | "--pricing" :: "dantzig" :: _ -> Milp.Simplex.Dantzig
    | "--pricing" :: "devex" :: _ -> Milp.Simplex.Devex
    | _ :: rest -> find rest
    | [] -> Milp.Simplex.Devex
  in
  find (Array.to_list Sys.argv)

let harris = not (Array.exists (String.equal "--no-harris") Sys.argv)
let presolve = not (Array.exists (String.equal "--no-presolve") Sys.argv)

(* [Some budget] when --alloc-guard W was given: the default variant
   must allocate at most W words (minor + major - promoted). *)
let alloc_guard =
  let rec find = function
    | "--alloc-guard" :: w :: _ -> float_of_string_opt w
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let alloc_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let () =
  match Scenarios.scaled_data_collection ~total_nodes:14 ~end_devices:4 () with
  | Error e ->
      prerr_endline ("bench-smoke: scenario error: " ^ e);
      exit 1
  | Ok inst -> (
      let run ?(presolve = presolve) ~warm_start ~cuts ~rc_fixing () =
        let config =
          Solver_config.(
            default
            |> with_approx ~kstar:4 ()
            |> with_time_limit 60. |> with_rel_gap 1e-6 |> with_warm_start warm_start
            |> with_cuts cuts |> with_rc_fixing rc_fixing |> with_dense_basis dense_basis
            |> with_pricing pricing |> with_harris harris
            |> with_presolve presolve
            |> with_workers workers)
        in
        Solve.run config inst
      in
      let a0 = alloc_words () in
      let warm = run ~warm_start:true ~cuts:true ~rc_fixing:true () in
      let default_alloc = alloc_words () -. a0 in
      match
        ( warm,
          run ~warm_start:false ~cuts:true ~rc_fixing:true (),
          run ~warm_start:true ~cuts:false ~rc_fixing:false (),
          run ~presolve:false ~warm_start:true ~cuts:true ~rc_fixing:true () )
      with
      | Ok warm, Ok cold, Ok plain, Ok unreduced ->
          let w = warm.Outcome.mip
          and c = cold.Outcome.mip
          and p = plain.Outcome.mip
          and u = unreduced.Outcome.mip in
          let ow = w.Milp.Branch_bound.objective
          and oc = c.Milp.Branch_bound.objective
          and op = p.Milp.Branch_bound.objective
          and ou = u.Milp.Branch_bound.objective in
          let sw = Milp.Status.mip_status_to_string warm.Outcome.status in
          let sc = Milp.Status.mip_status_to_string cold.Outcome.status in
          let sp = Milp.Status.mip_status_to_string plain.Outcome.status in
          let su = Milp.Status.mip_status_to_string unreduced.Outcome.status in
          Printf.printf
            "bench-smoke (workers=%d, %s kernel, %s%s%s): warm %s obj=%g (%d LP iters, \
             %d/%d/%d warm/cold/fallback, %d cuts, %d rc-fixed, -%d rows -%d cols, %.3g \
             Mw alloc) | cold %s obj=%g (%d LP iters) | no-cuts %s obj=%g (%d nodes vs \
             %d) | no-presolve %s obj=%g\n"
            workers
            (if dense_basis then "dense" else "sparse")
            (match pricing with Milp.Simplex.Devex -> "devex" | Milp.Simplex.Dantzig -> "dantzig")
            (if harris then "+harris" else "+classic")
            (if presolve then "" else ", no-presolve")
            sw ow w.Milp.Branch_bound.lp_iterations w.Milp.Branch_bound.lp_warm
            w.Milp.Branch_bound.lp_cold w.Milp.Branch_bound.lp_fallback
            w.Milp.Branch_bound.cuts_applied w.Milp.Branch_bound.rc_fixed
            w.Milp.Branch_bound.presolve_rows_removed w.Milp.Branch_bound.presolve_cols_removed
            (default_alloc /. 1e6) sc oc c.Milp.Branch_bound.lp_iterations sp op
            p.Milp.Branch_bound.nodes w.Milp.Branch_bound.nodes su ou;
          let fail = ref false in
          let check name s o =
            if s <> sw then begin
              Printf.eprintf "bench-smoke: status diverged: default=%s %s=%s\n" sw name s;
              fail := true
            end;
            if Float.abs (o -. ow) > 1e-5 *. Float.max 1. (Float.abs ow) then begin
              Printf.eprintf "bench-smoke: objective diverged: default=%.9g %s=%.9g\n" ow name o;
              fail := true
            end
          in
          check "cold-start" sc oc;
          check "no-cuts" sp op;
          check "no-presolve" su ou;
          (match alloc_guard with
          | Some budget when default_alloc > budget ->
              Printf.eprintf
                "bench-smoke: allocation regression: default variant allocated %.0f words \
                 (> committed threshold %.0f)\n"
                default_alloc budget;
              fail := true
          | Some budget ->
              Printf.printf "bench-smoke: alloc guard ok: %.0f words <= %.0f\n" default_alloc
                budget
          | None -> ());
          if !fail then exit 1
      | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e ->
          prerr_endline ("bench-smoke: encode error: " ^ e);
          exit 1)
