(* Command-line front-end, mirroring the paper's tool inputs: a problem
   description (pattern spec), a component library (text format) and a
   floor plan (SVG).  Compiles everything into a MILP, solves it with
   the chosen path-encoding strategy, reports the synthesized
   architecture, and optionally emits a result SVG and the LP file. *)

let role_of_class cls =
  (* Circle classes in the floor-plan SVG: "sensor", "relay", "sink",
     "anchor" place template nodes; "eval" marks evaluation points. *)
  Components.Component.role_of_name cls

let template_of_svg (parsed : Geometry.Svg.parsed) =
  let counters = Hashtbl.create 4 in
  let next role =
    let c = Option.value ~default:0 (Hashtbl.find_opt counters role) in
    Hashtbl.replace counters role (c + 1);
    c
  in
  let nodes, evals =
    List.fold_left
      (fun (nodes, evals) (cls, loc) ->
        if String.lowercase_ascii cls = "eval" then (nodes, loc :: evals)
        else
          match role_of_class cls with
          | Some role ->
              let name =
                Printf.sprintf "%s%d" (Components.Component.role_name role) (next cls)
              in
              let fixed =
                match role with
                | Components.Component.Sensor | Components.Component.Sink -> true
                | Components.Component.Relay | Components.Component.Anchor -> false
              in
              ({ Archex.Template.name; role; loc; fixed } :: nodes, evals)
          | None -> (nodes, evals))
      ([], []) parsed.Geometry.Svg.nodes
  in
  (Archex.Template.create (List.rev nodes), Array.of_list (List.rev evals))

let get_setting settings key =
  List.assoc_opt key settings

let num_setting settings key default =
  match get_setting settings key with
  | Some (Spec.Ast.Num f) -> f
  | Some _ | None -> default

let main spec_file library_file plan_file kstar loc_kstar full time_limit gap sweep
    no_incremental cold_start dense_basis pricing no_harris no_cuts cuts
    cut_max_applied cut_max_age cut_pool_size cut_min_violation no_rc_fixing
    no_presolve presolve_passes heuristic tabu_iters tabu_time tabu_tenure
    tabu_seed workers seed out_svg out_lp verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  (* Ctrl-C / SIGTERM interrupt the search cooperatively: the solver
     notices the flag at its node boundary and returns the best
     incumbent and bound it has instead of dying mid-tree. *)
  let interrupt = Atomic.make false in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set interrupt true))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ];
  let ( let* ) = Result.bind in
  let result =
    let* ast = Spec.Parser.parse_file spec_file in
    let* library =
      match library_file with
      | Some f -> Components.Parser.parse_file f
      | None -> Ok Components.Library.builtin
    in
    let* parsed = Geometry.Svg.parse_file plan_file in
    let template, evals = template_of_svg parsed in
    if Archex.Template.nnodes template = 0 then Error "floor plan contains no nodes"
    else
      let* elab =
        Spec.Elaborate.elaborate
          ~eval_points:(if Array.length evals = 0 then [||] else evals)
          ~template ast
      in
      let settings = elab.Spec.Elaborate.settings in
      let modulation =
        match get_setting settings "modulation" with
        | Some (Spec.Ast.Ident m) | Some (Spec.Ast.Str m) ->
            Option.value ~default:Radio.Modulation.Qpsk (Radio.Modulation.of_name m)
        | Some (Spec.Ast.Num _) | None -> Radio.Modulation.Qpsk
      in
      let protocol =
        Energy.Tdma.make
          ~slots_per_frame:(int_of_float (num_setting settings "slots_per_frame" 16.))
          ~slot_s:(num_setting settings "slot_ms" 1. /. 1000.)
          ~packet_bytes:(int_of_float (num_setting settings "packet_bytes" 50.))
          ~report_period_s:(num_setting settings "report_period_s" 30.)
          ()
      in
      let battery =
        {
          Energy.Lifetime.voltage_v = num_setting settings "battery_v" 3.0;
          capacity_mah = num_setting settings "battery_mah" 1500.;
        }
      in
      let* inst =
        Archex.Instance.create
          ~noise_dbm:(num_setting settings "noise_dbm" (-100.))
          ~modulation ~protocol ~battery ~template ~library
          ~channel:(Radio.Channel.multi_wall_2_4ghz parsed.Geometry.Svg.plan)
          ~requirements:elab.Spec.Elaborate.requirements
          ~objective:elab.Spec.Elaborate.objective ()
      in
      (* One config for every driver entry point: strategy, solver
         options, session mode and parallel knobs travel together. *)
      let strategy =
        if full then Archex.Solver_config.Full_enum
        else
          Archex.Solver_config.Approx
            {
              kstar = int_of_float (num_setting settings "kstar" (float_of_int kstar));
              loc_kstar = int_of_float (num_setting settings "loc_kstar" (float_of_int loc_kstar));
            }
      in
      let config =
        Archex.Solver_config.(
          default |> with_strategy strategy |> with_time_limit time_limit
          |> with_rel_gap gap
          |> with_warm_start (not cold_start)
          |> with_dense_basis dense_basis
          |> with_pricing pricing
          |> with_harris (not no_harris)
          |> with_cuts (not no_cuts)
          |> (match cuts with None -> Fun.id | Some fs -> with_cut_families fs)
          |> (match cut_max_applied with None -> Fun.id | Some n -> with_max_applied_cuts n)
          |> (match cut_max_age with None -> Fun.id | Some n -> with_cut_max_age n)
          |> (match cut_pool_size with None -> Fun.id | Some n -> with_cut_pool_size n)
          |> (match cut_min_violation with
             | None -> Fun.id
             | Some v -> with_cut_min_violation v)
          |> with_rc_fixing (not no_rc_fixing)
          |> with_presolve (not no_presolve)
          |> (match presolve_passes with
             | None -> Fun.id
             | Some passes -> with_presolve_passes passes)
          |> (if heuristic then
                with_heuristic
                  (tabu ~iters:tabu_iters ~time_s:tabu_time ~tenure:tabu_tenure
                     ~seed:tabu_seed ())
              else Fun.id)
          |> with_log verbose
          |> with_incremental (not no_incremental)
          |> with_workers workers |> with_seed seed
          |> with_interrupt interrupt)
      in
      let* out =
        if sweep then begin
          let r = Archex.Kstar.search config inst in
          List.iter
            (fun (st : Archex.Kstar.step) ->
              Format.printf "sweep k*=%d: %s obj=%s encode=%.2fs solve=%.2fs extract=%.2fs@."
                st.Archex.Kstar.kstar
                (Milp.Status.mip_status_to_string st.Archex.Kstar.outcome.Archex.Outcome.status)
                (match st.Archex.Kstar.objective with
                | Some o -> Printf.sprintf "%.6g" o
                | None -> "-")
                st.Archex.Kstar.outcome.Archex.Outcome.stats.Archex.Outcome.encode_time_s
                st.Archex.Kstar.outcome.Archex.Outcome.stats.Archex.Outcome.solve_time_s
                st.Archex.Kstar.outcome.Archex.Outcome.stats.Archex.Outcome.extract_time_s)
            r.Archex.Kstar.steps;
          Format.printf "sweep stopped: %s@."
            (match r.Archex.Kstar.stopped_because with
            | `Time_threshold -> "time threshold"
            | `No_improvement -> "no improvement"
            | `Schedule_exhausted -> "schedule exhausted");
          let step_for k =
            List.find_opt (fun st -> st.Archex.Kstar.kstar = k) r.Archex.Kstar.steps
          in
          match r.Archex.Kstar.best with
          | Some (k, _) -> (
              match step_for k with
              | Some st -> Ok st.Archex.Kstar.outcome
              | None -> Error "sweep: best step missing")
          | None -> (
              match List.rev r.Archex.Kstar.steps with
              | st :: _ -> Ok st.Archex.Kstar.outcome
              | [] -> Error "sweep: no schedule step produced a model")
        end
        else Archex.Solve.run config inst
      in
      Ok (inst, out)
  in
  match result with
  | Error e ->
      Format.eprintf "error: %s@." e;
      1
  | Ok (inst, out) -> (
      if Atomic.get interrupt then
        Format.printf "interrupted: best incumbent %s, bound %.6g@."
          (match out.Archex.Outcome.solution with
          | Some _ ->
              Printf.sprintf "%.6g" out.Archex.Outcome.mip.Milp.Branch_bound.objective
          | None -> "-")
          out.Archex.Outcome.mip.Milp.Branch_bound.bound;
      Format.printf "encoding: %d variables, %d constraints (%.2f s)@."
        out.Archex.Outcome.stats.Archex.Outcome.nvars out.Archex.Outcome.stats.Archex.Outcome.nconstrs
        out.Archex.Outcome.stats.Archex.Outcome.encode_time_s;
      Format.printf "solve: %s in %.2f s (%d nodes, %d simplex iterations)@."
        (Milp.Status.mip_status_to_string out.Archex.Outcome.status)
        out.Archex.Outcome.stats.Archex.Outcome.solve_time_s
        out.Archex.Outcome.mip.Milp.Branch_bound.nodes
        out.Archex.Outcome.mip.Milp.Branch_bound.lp_iterations;
      Format.printf "extract: %.2f s@." out.Archex.Outcome.stats.Archex.Outcome.extract_time_s;
      (match out_lp with
      | Some path ->
          Milp.Lp_format.to_file path out.Archex.Outcome.model;
          Format.printf "LP model written to %s@." path
      | None -> ());
      match out.Archex.Outcome.solution with
      | None ->
          Format.printf "no solution found@.";
          2
      | Some sol ->
          Format.printf "@.%a@." (Archex.Solution.pp_summary inst) sol;
          Format.printf "@.Component mapping:@.";
          List.iter
            (fun (i, c) ->
              Format.printf "  %-10s -> %s@."
                (Archex.Template.node inst.Archex.Instance.template i).Archex.Template.name
                c.Components.Component.name)
            sol.Archex.Solution.devices;
          Format.printf "@.Routes:@.";
          List.iter
            (fun rr ->
              Format.printf "  %d.%d: %a@." rr.Archex.Solution.rr_req
                rr.Archex.Solution.rr_replica Netgraph.Path.pp rr.Archex.Solution.rr_path)
            sol.Archex.Solution.routes;
          (match Archex.Solution.check inst sol with
          | Ok () -> Format.printf "@.validation: all requirements hold@."
          | Error errs ->
              Format.printf "@.validation FAILED:@.";
              List.iter (Format.printf "  %s@.") errs);
          (match out_svg with
          | Some path ->
              let template = inst.Archex.Instance.template in
              let plan =
                Radio.Channel.floorplan inst.Archex.Instance.channel
              in
              let w = match plan with Some p -> Geometry.Floorplan.width p | None -> 100. in
              let h = match plan with Some p -> Geometry.Floorplan.height p | None -> 100. in
              let sc = Geometry.Svg.scene ~width:w ~height:h in
              Option.iter (Geometry.Svg.add_floorplan sc) plan;
              List.iter
                (fun (i, j) ->
                  let a = (Archex.Template.node template i).Archex.Template.loc in
                  let b = (Archex.Template.node template j).Archex.Template.loc in
                  Geometry.Svg.add sc
                    (Geometry.Svg.Line
                       ( Geometry.Segment.make a b,
                         {
                           Geometry.Svg.default_style with
                           stroke = "#2266cc";
                           stroke_width = 1.5;
                         } )))
                sol.Archex.Solution.active_edges;
              Array.iteri
                (fun i (n : Archex.Template.node) ->
                  let used = List.mem i sol.Archex.Solution.used_nodes in
                  let fill =
                    match (n.Archex.Template.role, used) with
                    | Components.Component.Sensor, _ -> "#2a2"
                    | Components.Component.Sink, _ -> "#c22"
                    | _, true -> "#26c"
                    | _, false -> "none"
                  in
                  Geometry.Svg.add sc
                    (Geometry.Svg.Circle
                       ( n.Archex.Template.loc,
                         0.5,
                         { Geometry.Svg.default_style with fill; stroke = "#333" } )))
                (Archex.Template.nodes template);
              Geometry.Svg.write_file path sc;
              Format.printf "topology written to %s@." path
          | None -> ());
          0)

open Cmdliner

let spec_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC" ~doc:"Pattern specification file.")

let library_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "l"; "library" ] ~docv:"FILE" ~doc:"Component library (default: built-in).")

let plan_file =
  Arg.(
    required
    & opt (some file) None
    & info [ "p"; "plan" ] ~docv:"SVG" ~doc:"Floor plan SVG with walls and node circles.")

let kstar =
  Arg.(value & opt int 10 & info [ "k"; "kstar" ] ~doc:"Candidate paths per route (Algorithm 1).")

let loc_kstar =
  Arg.(value & opt int 20 & info [ "loc-kstar" ] ~doc:"Candidate anchors per evaluation point.")

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"Use exhaustive path enumeration instead of Algorithm 1.")

let time_limit =
  Arg.(value & opt float 120. & info [ "t"; "time-limit" ] ~doc:"MILP time limit in seconds.")

let gap = Arg.(value & opt float 1e-4 & info [ "gap" ] ~doc:"Relative MIP gap.")

let out_svg =
  Arg.(value & opt (some string) None & info [ "o"; "out-svg" ] ~doc:"Write the topology SVG here.")

let out_lp =
  Arg.(value & opt (some string) None & info [ "out-lp" ] ~doc:"Export the MILP in CPLEX LP format.")

let cold_start =
  Arg.(
    value & flag
    & info [ "cold-start" ]
        ~doc:"Disable warm-started node LP re-solves in branch and bound (ablation).")

let dense_basis =
  Arg.(
    value & flag
    & info [ "dense-basis" ]
        ~doc:"Run node LPs on the dense explicit basis inverse instead of the sparse LU \
              kernel (ablation).")

let pricing =
  let rule =
    Arg.enum [ ("devex", Milp.Simplex.Devex); ("dantzig", Milp.Simplex.Dantzig) ]
  in
  Arg.(
    value
    & opt rule Milp.Simplex.Devex
    & info [ "pricing" ] ~docv:"RULE"
        ~doc:
          "Simplex entering-column rule: $(b,devex) (default, reference-framework \
           steepest-edge weights) or $(b,dantzig) (PR5 partial candidate-list scan, \
           ablation).")

let no_harris =
  Arg.(
    value & flag
    & info [ "no-harris" ]
        ~doc:
          "Disable the Harris two-pass ratio test and the bound-flipping dual ratio test; \
           use the classic smallest-ratio tests (ablation).")

let no_cuts =
  Arg.(
    value & flag
    & info [ "no-cuts" ]
        ~doc:"Deprecated alias for $(b,--cuts) $(b,none): disable cutting-plane separation \
              in branch and bound (ablation).")

let families_conv =
  Arg.conv
    ( (fun s ->
        match Milp.Cuts.families_of_string s with
        | Ok fs -> Ok fs
        | Error e -> Error (`Msg e)),
      fun ppf fs -> Format.pp_print_string ppf (Milp.Cuts.families_to_string fs) )

let cuts =
  Arg.(
    value
    & opt (some families_conv) None
    & info [ "cuts" ] ~docv:"FAMILIES"
        ~doc:
          "Comma-separated cut families to separate (default: all).  Known families: \
           $(b,gmi), $(b,cover), $(b,clique), $(b,negcycle), $(b,power); $(b,all) and \
           $(b,none) are recognized.")

let cut_max_applied =
  Arg.(
    value
    & opt (some int) None
    & info [ "cut-max-applied" ] ~docv:"N"
        ~doc:"Cut rows appended to the LP per separation round (default 32).")

let cut_max_age =
  Arg.(
    value
    & opt (some int) None
    & info [ "cut-max-age" ] ~docv:"N"
        ~doc:"Rounds a pooled cut may stay inactive before eviction (default 5).")

let cut_pool_size =
  Arg.(
    value
    & opt (some int) None
    & info [ "cut-pool-size" ] ~docv:"N"
        ~doc:"Managed cut pool capacity (default 500).")

let cut_min_violation =
  Arg.(
    value
    & opt (some float) None
    & info [ "cut-min-violation" ] ~docv:"EPS"
        ~doc:
          "Minimum violation for a pooled cut to be applied at the root (default 1e-5); \
           node separation uses 10x this.")

let no_rc_fixing =
  Arg.(
    value & flag
    & info [ "no-rc-fixing" ]
        ~doc:"Disable reduced-cost fixing of integer variables in branch and bound (ablation).")

let no_presolve =
  Arg.(
    value & flag
    & info [ "no-presolve" ]
        ~doc:
          "Disable the root presolve reduction stack; branch and bound solves the model \
           verbatim (ablation).")

let presolve_passes =
  let passes_conv =
    Arg.conv
      ( (fun s ->
          match Milp.Presolve.passes_of_string s with
          | Ok ps -> Ok ps
          | Error e -> Error (`Msg e)),
        fun ppf ps ->
          Format.pp_print_string ppf
            (String.concat "," (List.map Milp.Presolve.pass_name ps)) )
  in
  Arg.(
    value
    & opt (some passes_conv) None
    & info [ "presolve-passes" ] ~docv:"PASSES"
        ~doc:
          "Comma-separated presolve passes to run (default: all).  Known passes: \
           $(b,propagate), $(b,probe), $(b,parallel), $(b,fix), $(b,empty), $(b,subst), \
           $(b,strengthen).")

let heuristic =
  Arg.(
    value
    & opt (enum [ ("tabu", true); ("off", false) ]) false
    & info [ "heuristic" ] ~docv:"MODE"
        ~doc:
          "Primal matheuristic mode: $(b,tabu) runs a tabu search over \
           topology and sizing moves before the tree search and adopts its \
           best feasible solution as a warm incumbent and cutoff; $(b,off) \
           (default) goes straight to branch and bound.  The optimality \
           proof always comes from the exact solver.")

let tabu_iters =
  Arg.(
    value & opt int 20000
    & info [ "tabu-iters" ] ~doc:"Tabu search iteration budget.")

let tabu_time =
  Arg.(
    value & opt float 5.
    & info [ "tabu-time" ] ~docv:"SECONDS" ~doc:"Tabu search wall-clock budget.")

let tabu_tenure =
  Arg.(
    value & opt int 0
    & info [ "tabu-tenure" ]
        ~doc:"Tabu tenure in iterations; $(b,0) auto-sizes from the instance.")

let tabu_seed =
  Arg.(
    value & opt int 0
    & info [ "tabu-seed" ] ~doc:"Deterministic seed for the tabu search.")

let sweep =
  Arg.(
    value & flag
    & info [ "sweep" ]
        ~doc:
          "Run the systematic K* sweep (paper §4.3) on one incremental session instead of a \
           single solve, then report the best step.")

let no_incremental =
  Arg.(
    value & flag
    & info [ "no-incremental" ]
        ~doc:
          "With $(b,--sweep): re-encode the model from scratch at every schedule step instead of \
           growing the live session (ablation).")

let workers =
  Arg.(
    value & opt int 1
    & info [ "w"; "workers" ]
        ~doc:
          "Worker domains for the branch-and-bound tree search.  1 (default) is the \
           deterministic sequential solver; higher values explore the tree in parallel \
           (objectives agree with the sequential solver to optimality tolerances, node \
           counts vary); $(b,0) auto-detects via Domain.recommended_domain_count.")

let seed =
  Arg.(
    value & opt int 0
    & info [ "seed" ]
        ~doc:
          "Diversification seed for the parallel tree search (ignored with \
           $(b,--workers) 1).")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Progress logging.")

let solve_term =
  Term.(
    const main $ spec_file $ library_file $ plan_file $ kstar $ loc_kstar $ full $ time_limit
    $ gap $ sweep $ no_incremental $ cold_start $ dense_basis $ pricing $ no_harris
    $ no_cuts $ cuts $ cut_max_applied $ cut_max_age $ cut_pool_size $ cut_min_violation
    $ no_rc_fixing $ no_presolve $ presolve_passes $ heuristic $ tabu_iters
    $ tabu_time $ tabu_tenure $ tabu_seed $ workers $ seed $ out_svg
    $ out_lp $ verbose)

(* ------------------------------------------------------------------ *)
(* Client mode: talk to a running archexd over its Unix socket. *)

let socket_arg =
  Arg.(
    value
    & opt string "archexd.sock"
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"The daemon's Unix-domain socket.")

let pp_result (r : Server.Protocol.result_info) =
  Format.printf "%s: objective %.6g, bound %.6g (gap proof)@." r.Server.Protocol.r_status
    r.Server.Protocol.r_objective r.Server.Protocol.r_bound;
  Format.printf "%d nodes, %d simplex iterations, %.2f s, %d worker%s, %s@."
    r.Server.Protocol.r_nodes r.Server.Protocol.r_lp_iterations
    r.Server.Protocol.r_solve_time_s r.Server.Protocol.r_workers
    (if r.Server.Protocol.r_workers = 1 then "" else "s")
    (if r.Server.Protocol.r_cache_hit then "warm session" else "cold session")

let submit_main socket workload lp_file sub_kstar time_limit gap sub_workers
    sub_seed deadline sub_no_presolve sub_heuristic sub_cuts sub_cut_max_applied
    sub_cut_max_age sub_cut_pool_size sub_cut_min_violation stream =
  let payload =
    match (lp_file, workload) with
    | Some f, _ -> (
        match In_channel.with_open_text f In_channel.input_all with
        | text -> Ok (Server.Protocol.Lp text)
        | exception Sys_error e -> Error e)
    | None, Some name -> Ok (Server.Protocol.Workload { name; kstar = sub_kstar })
    | None, None ->
        Error
          (Printf.sprintf "nothing to submit: name a workload (%s) or pass --lp FILE"
             (String.concat ", " (Server.Workload.names ())))
  in
  match payload with
  | Error e ->
      Format.eprintf "error: %s@." e;
      1
  | Ok payload -> (
      let overrides =
        {
          Server.Protocol.o_time_limit = time_limit;
          o_rel_gap = gap;
          o_workers = sub_workers;
          o_seed = sub_seed;
          o_deadline_s = deadline;
          o_presolve = (if sub_no_presolve then Some false else None);
          o_heuristic = sub_heuristic;
          o_cuts = Option.map Milp.Cuts.families_to_string sub_cuts;
          o_cut_max_applied = sub_cut_max_applied;
          o_cut_max_age = sub_cut_max_age;
          o_cut_pool_size = sub_cut_pool_size;
          o_cut_min_violation = sub_cut_min_violation;
          o_stream = stream;
        }
      in
      match Server.Client.connect socket with
      | Error e ->
          Format.eprintf "error: %s@." e;
          1
      | Ok conn ->
          Fun.protect
            ~finally:(fun () -> Server.Client.disconnect conn)
            (fun () ->
              let on_update ~objective ~bound ~elapsed_s =
                Format.printf "update: objective %.6g, bound %.6g (%.2f s)@."
                  objective bound elapsed_s
              in
              match Server.Client.solve ~on_update conn payload overrides with
              | Error e ->
                  Format.eprintf "error: %s@." e;
                  1
              | Ok (Server.Protocol.Result r) ->
                  pp_result r;
                  0
              | Ok (Server.Protocol.Interrupted { i_objective; i_bound; i_has_incumbent }) ->
                  Format.printf "interrupted: best incumbent %s, bound %.6g@."
                    (if i_has_incumbent then Printf.sprintf "%.6g" i_objective else "-")
                    i_bound;
                  3
              | Ok (Server.Protocol.Rejected msg) ->
                  Format.eprintf "rejected: %s@." msg;
                  4
              | Ok (Server.Protocol.Error_msg msg) ->
                  Format.eprintf "error: %s@." msg;
                  1
              | Ok (Server.Protocol.Pong _ | Server.Protocol.Update _) ->
                  Format.eprintf "error: unexpected response frame@.";
                  1))

let submit_cmd =
  let workload =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:"Named scenario from the daemon's catalogue (see $(b,archex submit) \
                with no arguments for the list).")
  in
  let lp_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "lp" ] ~docv:"FILE" ~doc:"Submit this LP-format model instead of a workload.")
  in
  let sub_kstar =
    Arg.(value & opt int 6 & info [ "k"; "kstar" ] ~doc:"Candidate paths per route.")
  in
  let time_limit =
    Arg.(
      value
      & opt (some float) None
      & info [ "t"; "time-limit" ] ~doc:"Override the daemon's per-solve time limit.")
  in
  let gap = Arg.(value & opt (some float) None & info [ "gap" ] ~doc:"Relative MIP gap.") in
  let sub_workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "w"; "workers" ]
          ~doc:"Worker domains for this request ($(b,0) = the daemon's pool size).")
  in
  let sub_seed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"Parallel diversification seed.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget from receipt; waiting-room time counts against it.")
  in
  let sub_no_presolve =
    Arg.(
      value & flag
      & info [ "no-presolve" ]
          ~doc:
            "Disable the presolve reduction stack for this request only.  A \
             warm cached session re-reduces from scratch on its next \
             presolve-on request.")
  in
  let sub_heuristic =
    Arg.(
      value
      & opt (some (enum [ ("tabu", "tabu"); ("off", "off") ])) None
      & info [ "heuristic" ] ~docv:"MODE"
          ~doc:
            "Primal matheuristic for this request: $(b,tabu) or $(b,off) \
             (default: the daemon's setting).")
  in
  let sub_cuts =
    Arg.(
      value
      & opt (some families_conv) None
      & info [ "cuts" ] ~docv:"FAMILIES"
          ~doc:
            "Cut families to separate for this request ($(b,gmi), $(b,cover), \
             $(b,clique), $(b,negcycle), $(b,power), $(b,all), $(b,none); \
             default: the daemon's setting).")
  in
  let sub_cut_max_applied =
    Arg.(
      value
      & opt (some int) None
      & info [ "cut-max-applied" ] ~docv:"N"
          ~doc:"Cut rows appended per separation round for this request.")
  in
  let sub_cut_max_age =
    Arg.(
      value
      & opt (some int) None
      & info [ "cut-max-age" ] ~docv:"N"
          ~doc:"Pool eviction age for this request, in rounds.")
  in
  let sub_cut_pool_size =
    Arg.(
      value
      & opt (some int) None
      & info [ "cut-pool-size" ] ~docv:"N"
          ~doc:"Managed cut pool capacity for this request.")
  in
  let sub_cut_min_violation =
    Arg.(
      value
      & opt (some float) None
      & info [ "cut-min-violation" ] ~docv:"EPS"
          ~doc:"Root cut application threshold for this request.")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ] ~doc:"Print incumbent/bound improvements as they happen.")
  in
  let doc = "submit a solve request to a running archexd" in
  Cmd.v
    (Cmd.info "submit" ~doc)
    Term.(
      const submit_main $ socket_arg $ workload $ lp_file $ sub_kstar $ time_limit
      $ gap $ sub_workers $ sub_seed $ deadline $ sub_no_presolve $ sub_heuristic
      $ sub_cuts $ sub_cut_max_applied $ sub_cut_max_age $ sub_cut_pool_size
      $ sub_cut_min_violation $ stream)

let ping_main socket =
  match Server.Client.connect socket with
  | Error e ->
      Format.eprintf "error: %s@." e;
      1
  | Ok conn ->
      Fun.protect
        ~finally:(fun () -> Server.Client.disconnect conn)
        (fun () ->
          match Server.Client.ping conn with
          | Ok (Server.Protocol.Pong { version; workers; sessions }) ->
              Format.printf "%s: %d worker domain%s, %d cached session%s@." version
                workers
                (if workers = 1 then "" else "s")
                sessions
                (if sessions = 1 then "" else "s");
              0
          | Ok _ ->
              Format.eprintf "error: unexpected response frame@.";
              1
          | Error e ->
              Format.eprintf "error: %s@." e;
              1)

let ping_cmd =
  let doc = "check a running archexd and report its pool and cache" in
  Cmd.v (Cmd.info "ping" ~doc) Term.(const ping_main $ socket_arg)

let stop_main socket =
  match Server.Client.connect socket with
  | Error e ->
      Format.eprintf "error: %s@." e;
      1
  | Ok conn ->
      Fun.protect
        ~finally:(fun () -> Server.Client.disconnect conn)
        (fun () ->
          match Server.Client.shutdown conn with
          | Ok _ -> 0
          | Error e ->
              Format.eprintf "error: %s@." e;
              1)

let stop_cmd =
  let doc = "ask a running archexd to drain in-flight solves and exit" in
  Cmd.v (Cmd.info "stop" ~doc) Term.(const stop_main $ socket_arg)

(* ------------------------------------------------------------------ *)
(* Scenario registry inspection. *)

let scenario_main name_opt =
  let module Scenario = Archex.Scenario in
  match name_opt with
  | None ->
      List.iter
        (fun sc ->
          Format.printf "%-20s %-9s %s@." (Scenario.name sc)
            (Scenario.scale_name (Scenario.scale sc))
            (Scenario.descr sc))
        (Scenario.all ());
      0
  | Some n -> (
      match Scenario.find n with
      | Error e ->
          Format.eprintf "error: %s@." e;
          1
      | Ok sc -> (
          Format.printf "name:     %s@." (Scenario.name sc);
          Format.printf "scale:    %s@." (Scenario.scale_name (Scenario.scale sc));
          Format.printf "descr:    %s@." (Scenario.descr sc);
          (match Scenario.expected sc with
          | Some o -> Format.printf "expected: %.6g@." o
          | None -> ());
          match Scenario.instance sc with
          | Error e ->
              Format.eprintf "error: instance build failed: %s@." e;
              1
          | Ok inst ->
              Format.printf "nodes:    %d@."
                (Archex.Template.nnodes inst.Archex.Instance.template);
              Format.printf "links:    %d candidate@."
                (Netgraph.Digraph.nedges inst.Archex.Instance.graph);
              0))

let scenario_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:"Scenario to inspect; omit to list the whole registry.")
  in
  let doc = "list registered scenarios or inspect one by name" in
  Cmd.v (Cmd.info "scenario" ~doc) Term.(const scenario_main $ name_arg)

let doc = "optimized selection of wireless network topologies and components"

let cmd =
  Cmd.group ~default:solve_term (Cmd.info "archex" ~doc)
    [
      Cmd.v (Cmd.info "solve" ~doc:"compile and solve a problem (the default)") solve_term;
      submit_cmd;
      ping_cmd;
      stop_cmd;
      scenario_cmd;
    ]

(* [Cmd.group] reserves the first positional argument for command
   lookup, which would reject the original `archex my.spec ...`
   surface; anything that doesn't name a subcommand keeps routing to
   the plain solve command. *)
let legacy_cmd = Cmd.v (Cmd.info "archex" ~doc) solve_term

let () =
  (* Generated tactical scenarios join the registry up front so
     `archex scenario` lists them and `archex submit NAME` can name
     them (the daemon registers the same set on its side). *)
  Scenario_gen.register_defaults ();
  let grouped =
    Array.length Sys.argv <= 1
    || List.mem Sys.argv.(1)
         [ "solve"; "submit"; "ping"; "stop"; "scenario"; "--help"; "-h"; "--version" ]
  in
  exit (Cmd.eval' (if grouped then cmd else legacy_cmd))
