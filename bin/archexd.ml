(* archexd: the persistent solver daemon.  Listens on a Unix-domain
   socket, keeps a shared worker-domain pool and a cache of warm
   per-template sessions, and serves solve requests over the framed
   protocol (see lib/server).  SIGINT/SIGTERM drain: in-flight solves
   are interrupted and answered with their current incumbents before
   the process exits. *)

open Cmdliner

let main socket workers max_active max_waiting cache_capacity time_limit
    drain_timeout verbose =
  (* Generated tactical scenarios join the registry before the daemon
     starts serving, so they are addressable by name over the protocol
     exactly like the seed catalogue. *)
  Scenario_gen.register_defaults ();
  let config =
    {
      Server.Daemon.c_socket = socket;
      c_workers = workers;
      c_max_active = max_active;
      c_max_waiting = max_waiting;
      c_cache_capacity = cache_capacity;
      c_time_limit = time_limit;
      c_drain_timeout = drain_timeout;
      c_verbose = verbose;
    }
  in
  match Server.Daemon.create config with
  | Error e ->
      Format.eprintf "archexd: %s@." e;
      1
  | Ok d ->
      let stop _ = Server.Daemon.request_shutdown d in
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      (* Exit nonzero when the drain leaks connections or domains so
         supervisors (and the CI smoke step) notice. *)
      if Server.Daemon.run d then 0 else 2

let socket =
  Arg.(
    value
    & opt string "archexd.sock"
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")

let workers =
  Arg.(
    value & opt int 0
    & info [ "w"; "workers" ]
        ~doc:
          "Worker domains in the shared tree-search pool, multiplexed across \
           concurrent solves.  $(b,0) (default) auto-detects via \
           Domain.recommended_domain_count; the resolved count is logged and \
           reported in Pong frames.")

let max_active =
  Arg.(
    value & opt int 2
    & info [ "max-active" ] ~doc:"Concurrent solve requests admitted.")

let max_waiting =
  Arg.(
    value & opt int 4
    & info [ "max-waiting" ]
        ~doc:
          "Bounded waiting room beyond the active lane; requests past both \
           limits get an explicit $(b,Rejected) frame.")

let cache_capacity =
  Arg.(
    value & opt int 4
    & info [ "cache" ]
        ~doc:
          "Warm sessions kept, keyed by workload name.  $(b,0) disables the \
           cache (every request encodes from scratch).")

let time_limit =
  Arg.(
    value & opt float 60.
    & info [ "t"; "time-limit" ]
        ~doc:"Default per-solve time limit (seconds) when a request carries none.")

let drain_timeout =
  Arg.(
    value & opt float 30.
    & info [ "drain-timeout" ]
        ~doc:"Seconds to wait for in-flight work on shutdown before exiting 2.")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log to stderr.")

let cmd =
  let doc = "persistent wireless-topology solver daemon" in
  Cmd.v
    (Cmd.info "archexd" ~doc)
    Term.(
      const main $ socket $ workers $ max_active $ max_waiting $ cache_capacity
      $ time_limit $ drain_timeout $ verbose)

let () = exit (Cmd.eval' cmd)
