(* Post-synthesis analysis: fault resiliency and Monte-Carlo validation.

   Synthesizes a small data-collection network with two disjoint routes
   per sensor, then (1) enumerates single-node and single-link failures
   to confirm the disjoint replicas actually buy fault tolerance, and
   (2) replays 2000 reporting periods against the stochastic link model
   to check the optimizer's analytical guarantees (ETX bound, lifetime)
   hold empirically.

   Run with:  dune exec examples/analysis.exe *)

let () =
  let params =
    {
      Archex.Scenarios.default_data_collection with
      Archex.Scenarios.dc_sensors = 6;
      dc_relay_grid = (4, 3);
      dc_width = 45.;
      dc_height = 28.;
    }
  in
  let inst =
    match Archex.Scenarios.data_collection params with Ok i -> i | Error e -> failwith e
  in
  let config =
    Archex.Solver_config.(
      default |> with_approx ~kstar:6 () |> with_time_limit 90. |> with_rel_gap 0.02)
  in
  let sol =
    match Archex.Solve.run config inst with
    | Ok { Archex.Outcome.solution = Some s; _ } -> s
    | Ok _ -> failwith "no solution"
    | Error e -> failwith e
  in
  Format.printf "Synthesized: %d nodes, $%.0f, %d routes@.@." sol.Archex.Solution.node_count
    sol.Archex.Solution.dollar_cost
    (List.length sol.Archex.Solution.routes);

  (* --- Fault resiliency --------------------------------------------- *)
  Format.printf "Single-link failures:@.";
  let link_reports = Archex.Resilience.single_link_faults inst sol in
  let vulnerable =
    List.filter
      (fun (r : Archex.Resilience.report) ->
        r.Archex.Resilience.surviving_routes < r.Archex.Resilience.total_routes)
      link_reports
  in
  if vulnerable = [] then
    Format.printf "  every route survives every single-link failure (disjoint replicas work)@."
  else
    List.iter (fun r -> Format.printf "  %a@." Archex.Resilience.pp_report r) vulnerable;
  Format.printf "Single-node (relay) failures:@.";
  let node_reports = Archex.Resilience.single_node_faults inst sol in
  List.iter (fun r -> Format.printf "  %a@." Archex.Resilience.pp_report r) node_reports;
  Format.printf "worst-case route survival: %.0f%%@.@."
    (100. *. Archex.Resilience.worst_case_survival (link_reports @ node_reports));

  (* --- Monte-Carlo validation --------------------------------------- *)
  let sim =
    Archex.Simulate.run
      ~params:{ Archex.Simulate.default_params with Archex.Simulate.periods = 2000 }
      inst sol
  in
  Format.printf "Monte-Carlo (%d packets):@." sim.Archex.Simulate.generated;
  Format.printf "  delivery ratio      %.4f@." sim.Archex.Simulate.delivery_ratio;
  Format.printf "  empirical ETX       %.3f (encoder bound %.3f)@."
    sim.Archex.Simulate.mean_attempts_per_hop
    (Archex.Instance.etx_bound inst);
  Format.printf "  min battery life    %.1f y (requirement %.1f y)@."
    sim.Archex.Simulate.min_lifetime_years params.Archex.Scenarios.dc_min_lifetime_years;
  match Archex.Simulate.check_against_guarantees inst sol sim with
  | Ok () -> Format.printf "@.Analytical guarantees hold empirically.@."
  | Error es ->
      Format.printf "@.GUARANTEE VIOLATIONS:@.";
      List.iter (Format.printf "  %s@.") es;
      exit 1
