(* The paper's §4.1 design example: an indoor WSN for periodic data
   collection, optimized for three different objectives (dollar cost,
   energy, and their combination), with two disjoint routes per sensor,
   SNR >= 20 dB on every link and a 5-year lifetime requirement.

   Produces a Table-1-style report and writes fig_data_collection.svg
   with the synthesized topology.

   Run with:  dune exec examples/data_collection.exe [-- --small] *)

let small = Array.exists (fun a -> a = "--small") Sys.argv

let params =
  if small then
    {
      Archex.Scenarios.default_data_collection with
      Archex.Scenarios.dc_sensors = 6;
      dc_relay_grid = (4, 3);
      dc_width = 45.;
      dc_height = 28.;
    }
  else Archex.Scenarios.default_data_collection

let solve_for name objective =
  match Archex.Scenarios.data_collection ~objective params with
  | Error e -> failwith e
  | Ok inst ->
      let config =
        Archex.Solver_config.(
          default |> with_approx ~kstar:6 () |> with_time_limit 120. |> with_rel_gap 5e-3)
      in
      let t0 = Unix.gettimeofday () in
      (match Archex.Solve.run config inst with
      | Error e -> failwith e
      | Ok out ->
          let dt = Unix.gettimeofday () -. t0 in
          (match out.Archex.Outcome.solution with
          | None ->
              Format.printf "%-10s | no solution (%s)@." name
                (Milp.Status.mip_status_to_string out.Archex.Outcome.status);
              None
          | Some sol ->
              Format.printf "%-10s | %7d | %6.0f | %11.2f | %8.1f@." name
                sol.Archex.Solution.node_count sol.Archex.Solution.dollar_cost
                (Archex.Solution.avg_lifetime_years inst sol)
                dt;
              (match Archex.Solution.check inst sol with
              | Ok () -> ()
              | Error errs ->
                  Format.printf "  WARNING: validation failures:@.";
                  List.iter (Format.printf "    %s@.") errs);
              Some (inst, sol)))

let draw inst (sol : Archex.Solution.t) =
  let template = inst.Archex.Instance.template in
  let plan =
    Radio.Channel.floorplan inst.Archex.Instance.channel
  in
  let w = Archex.Scenarios.(params.dc_width) and h = Archex.Scenarios.(params.dc_height) in
  let sc = Geometry.Svg.scene ~width:w ~height:h in
  Option.iter (Geometry.Svg.add_floorplan sc) plan;
  (* Active links. *)
  List.iter
    (fun (i, j) ->
      let a = (Archex.Template.node template i).Archex.Template.loc in
      let b = (Archex.Template.node template j).Archex.Template.loc in
      Geometry.Svg.add sc
        (Geometry.Svg.Line
           ( Geometry.Segment.make a b,
             { Geometry.Svg.default_style with stroke = "#2266cc"; stroke_width = 1.5 } )))
    sol.Archex.Solution.active_edges;
  (* Nodes: sensors green, sink red, deployed relays blue, unused
     candidates hollow grey. *)
  Array.iteri
    (fun i (n : Archex.Template.node) ->
      let used = List.mem i sol.Archex.Solution.used_nodes in
      let style =
        match n.Archex.Template.role with
        | Components.Component.Sensor ->
            { Geometry.Svg.default_style with fill = "#2a2"; stroke = "#161" }
        | Components.Component.Sink ->
            { Geometry.Svg.default_style with fill = "#c22"; stroke = "#611" }
        | Components.Component.Relay | Components.Component.Anchor ->
            if used then { Geometry.Svg.default_style with fill = "#26c"; stroke = "#136" }
            else { Geometry.Svg.default_style with fill = "none"; stroke = "#999" }
      in
      Geometry.Svg.add sc (Geometry.Svg.Circle (n.Archex.Template.loc, 0.5, style)))
    (Archex.Template.nodes template);
  Geometry.Svg.write_file "fig_data_collection.svg" sc;
  Format.printf "@.Topology written to fig_data_collection.svg@."

let () =
  Format.printf "Data collection WSN (%d sensors, %d template nodes)@.@."
    Archex.Scenarios.(params.dc_sensors)
    (match Archex.Scenarios.data_collection params with
    | Ok i -> Archex.Template.nnodes i.Archex.Instance.template
    | Error _ -> 0);
  Format.printf "%-10s | %7s | %6s | %11s | %8s@." "Objective" "# Nodes" "$ cost"
    "Lifetime(y)" "Time (s)";
  Format.printf "-----------+---------+--------+-------------+---------@.";
  let dollar = solve_for "$ cost" Archex.Objective.dollar in
  let _ = solve_for "Energy" Archex.Objective.energy in
  let _ =
    solve_for "$+Energy" (Archex.Objective.combine Archex.Objective.dollar Archex.Objective.energy)
  in
  match dollar with Some (inst, sol) -> draw inst sol | None -> ()
