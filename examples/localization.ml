(* The paper's §4.2 design example: anchor placement for an RSS-based
   indoor localization system with a star topology.  Every evaluation
   point (possible mobile-node position) must receive signal from at
   least 3 deployed anchors at >= -80 dBm; we optimize dollar cost,
   the DSOD accuracy surrogate, and their combination (Table 2).

   Writes fig_localization.svg with evaluation points and the
   synthesized anchor placement.

   Run with:  dune exec examples/localization.exe *)

let params = Archex.Scenarios.default_localization

(* Pure DSOD leaves node count unconstrained; a small cost epsilon
   breaks ties towards economical placements (see DESIGN.md). *)
let dsod_objective = (1., Archex.Objective.Dsod) :: [ (0.2, Archex.Objective.Dollar_cost) ]

let solve_for name objective =
  match Archex.Scenarios.localization ~objective params with
  | Error e -> failwith e
  | Ok inst ->
      let config =
        Archex.Solver_config.(
          default
          |> with_approx ~loc_kstar:8 ()
          |> with_time_limit 90. |> with_rel_gap 0.02)
      in
      let t0 = Unix.gettimeofday () in
      (match Archex.Solve.run config inst with
      | Error e -> failwith e
      | Ok out -> (
          let dt = Unix.gettimeofday () -. t0 in
          match out.Archex.Outcome.solution with
          | None ->
              Format.printf "%-8s | no solution (%s)@." name
                (Milp.Status.mip_status_to_string out.Archex.Outcome.status);
              None
          | Some sol ->
              Format.printf "%-8s | %7d | %6.0f | %9.2f | %8.1f@." name
                sol.Archex.Solution.node_count sol.Archex.Solution.dollar_cost
                (Archex.Solution.avg_reachable sol) dt;
              (match Archex.Solution.check inst sol with
              | Ok () -> ()
              | Error errs -> List.iter (Format.printf "  WARNING: %s@.") errs);
              Some (inst, sol)))

let draw inst (sol : Archex.Solution.t) =
  let template = inst.Archex.Instance.template in
  let sc =
    Geometry.Svg.scene ~width:Archex.Scenarios.(params.loc_width)
      ~height:Archex.Scenarios.(params.loc_height)
  in
  (match Radio.Channel.floorplan inst.Archex.Instance.channel with
  | Some plan -> Geometry.Svg.add_floorplan sc plan
  | None -> ());
  (* Evaluation points as small crosses (grey), anchors as circles. *)
  (match inst.Archex.Instance.requirements.Archex.Requirements.localization with
  | Some loc ->
      Array.iter
        (fun pt ->
          Geometry.Svg.add sc
            (Geometry.Svg.Circle
               (pt, 0.25, { Geometry.Svg.default_style with stroke = "#888"; fill = "#ccc" })))
        loc.Archex.Requirements.eval_points
  | None -> ());
  Array.iteri
    (fun i (n : Archex.Template.node) ->
      let used = List.mem i sol.Archex.Solution.used_nodes in
      let style =
        if used then { Geometry.Svg.default_style with fill = "#26c"; stroke = "#136" }
        else { Geometry.Svg.default_style with fill = "none"; stroke = "#bbb" }
      in
      Geometry.Svg.add sc (Geometry.Svg.Circle (n.Archex.Template.loc, 0.6, style)))
    (Archex.Template.nodes template);
  Geometry.Svg.write_file "fig_localization.svg" sc;
  Format.printf "@.Placement written to fig_localization.svg@."

let () =
  Format.printf "Localization network (%d anchor candidates, %d evaluation points)@.@."
    (fst params.Archex.Scenarios.loc_anchor_grid * snd params.Archex.Scenarios.loc_anchor_grid)
    (fst params.Archex.Scenarios.loc_eval_grid * snd params.Archex.Scenarios.loc_eval_grid);
  Format.printf "%-8s | %7s | %6s | %9s | %8s@." "Obj." "# Nodes" "$ cost" "Reachable"
    "Time (s)";
  Format.printf "---------+---------+--------+-----------+---------@.";
  let dollar = solve_for "$ cost" Archex.Objective.dollar in
  let _ = solve_for "DSOD" dsod_objective in
  let _ = solve_for "$+DSOD" ((1., Archex.Objective.Dollar_cost) :: dsod_objective) in
  match dollar with Some (inst, sol) -> draw inst sol | None -> ()
