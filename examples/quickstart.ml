(* Quickstart: a six-node wireless network designed end-to-end.

   Two fixed sensors report to a fixed base station; three candidate
   relay positions are available.  The tool jointly picks which relays
   to deploy, which device realizes every node, and the actual routes,
   minimizing dollar cost under an SNR floor and a lifetime bound.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A floor plan: one 30 x 12 m hall with a single dividing wall. *)
  let wall =
    {
      Geometry.Floorplan.seg = Geometry.Segment.of_coords 15. 0. 15. 9.;
      material = Geometry.Floorplan.Brick;
    }
  in
  let plan = Geometry.Floorplan.create ~width:30. ~height:12. [ wall ] in

  (* 2. The template: fixed sensors + sink, candidate relays. *)
  let p = Geometry.Point.make in
  let node name role loc fixed = { Archex.Template.name; role; loc; fixed } in
  let template =
    Archex.Template.create
      [
        node "s0" Components.Component.Sensor (p 2. 2.) true;
        node "s1" Components.Component.Sensor (p 2. 10.) true;
        node "sink" Components.Component.Sink (p 28. 6.) true;
        node "r0" Components.Component.Relay (p 10. 6.) false;
        node "r1" Components.Component.Relay (p 16. 3.) false;
        node "r2" Components.Component.Relay (p 22. 6.) false;
      ]
  in

  (* 3. Requirements: every sensor routed to the sink, SNR >= 15 dB,
        batteries must last 4 years. *)
  let sink = Option.get (Archex.Template.index_of template "sink") in
  let requirements =
    let r = Archex.Requirements.empty in
    let r = Archex.Requirements.add_route r ~src:0 ~dst:sink in
    let r = Archex.Requirements.add_route r ~src:1 ~dst:sink in
    { r with Archex.Requirements.min_snr_db = Some 15.; min_lifetime_years = Some 4. }
  in

  (* 4. Assemble the instance: built-in component library, multi-wall
        channel model over the plan, default TDMA protocol. *)
  let inst =
    Archex.Instance.create_exn ~template ~library:Components.Library.builtin
      ~channel:(Radio.Channel.multi_wall_2_4ghz plan)
      ~requirements ~objective:Archex.Objective.dollar ()
  in

  (* 5. Solve with the approximate path encoding (Algorithm 1, K* = 4). *)
  let config = Archex.Solver_config.(default |> with_approx ~kstar:4 ()) in
  let sol = Archex.Solve.run_exn config inst in

  (* 6. Inspect the result. *)
  Format.printf "%a@.@." (Archex.Solution.pp_summary inst) sol;
  List.iter
    (fun (i, c) ->
      Format.printf "  %-5s -> %s@."
        (Archex.Template.node template i).Archex.Template.name
        c.Components.Component.name)
    sol.Archex.Solution.devices;
  List.iter
    (fun rr ->
      Format.printf "  route %d: %a@." rr.Archex.Solution.rr_req Netgraph.Path.pp
        rr.Archex.Solution.rr_path)
    sol.Archex.Solution.routes;
  match Archex.Solution.check inst sol with
  | Ok () -> Format.printf "@.All requirements verified against the physical models.@."
  | Error errs ->
      Format.printf "@.VALIDATION FAILED:@.";
      List.iter (Format.printf "  %s@.") errs;
      exit 1
