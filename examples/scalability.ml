(* A miniature of the paper's §4.3 scalability study: how problem size
   and solve time grow with the template for the full path enumeration
   versus Algorithm 1's approximate encoding.

   Run with:  dune exec examples/scalability.exe *)

let row ~total ~routed =
  match Archex.Scenarios.scaled_data_collection ~total_nodes:total ~end_devices:routed () with
  | Error e -> Format.printf "%4d %4d | scenario error: %s@." total routed e
  | Ok inst -> (
      let approx = Archex.Solve.approx ~kstar:6 () in
      match
        (Archex.Solve.encode_size inst Archex.Solve.Full_enum, Archex.Solve.encode_size inst approx)
      with
      | Ok (fv, fc), Ok (av, ac) ->
          let config =
            Archex.Solver_config.(
              default |> with_approx ~kstar:6 () |> with_time_limit 30. |> with_rel_gap 0.02)
          in
          let t0 = Unix.gettimeofday () in
          let solved =
            match Archex.Solve.run config inst with
            | Ok { Archex.Outcome.solution = Some _; _ } ->
                Printf.sprintf "%.1f s" (Unix.gettimeofday () -. t0)
            | Ok _ -> "no incumbent"
            | Error e -> "error: " ^ e
          in
          Format.printf "%4d %6d | %8d / %-8d | %8d / %-8d | %s@." total routed fv fc av ac
            solved
      | Error e, _ | _, Error e -> Format.printf "%4d %4d | encode error: %s@." total routed e)

let () =
  Format.printf "Full-enumeration vs approximate encoding (K* = 6)@.@.";
  Format.printf "size routed |   full vars/cons    |  approx vars/cons   | approx solve@.";
  Format.printf "-----------+---------------------+---------------------+-------------@.";
  row ~total:20 ~routed:6;
  row ~total:30 ~routed:10;
  row ~total:45 ~routed:15
