module Lin = Milp.Lin
module Model = Milp.Model
module Path = Netgraph.Path

type route_selection = {
  req_index : int;
  src : int;
  dst : int;
  pool : Path.t array;
  slots : int array array;
}

type t = {
  ctx : Encode_common.t;
  selections : route_selection list;
  generation : Path_gen.result;
}

(* Growable per-route encoding state.  The candidate pool only ever
   gains members, so the selection structure can be extended in place:
   new selector columns are appended, the one-candidate-per-slot and
   symmetry-breaking rows are rewritten over the enlarged slot arrays,
   and only disjointness pairs/usage terms involving a new candidate are
   emitted.  A fresh state driven once over a whole pool produces
   exactly the rows of the original one-shot encoder. *)
type route_state = {
  rq_index : int;
  rq_src : int;
  rq_dst : int;
  rq_replicas : int;
  mutable rq_pool : Path.t array;
  mutable rq_slots : int array array;
  rq_one_rows : int array;  (* per replica; -1 until created *)
  rq_rank_rows : int array;  (* per adjacent slot pair; -1 until created *)
}

let init_route (p : Path_gen.route_pool) =
  {
    rq_index = p.Path_gen.req_index;
    rq_src = p.Path_gen.src;
    rq_dst = p.Path_gen.dst;
    rq_replicas = p.Path_gen.replicas;
    rq_pool = [||];
    rq_slots = Array.make p.Path_gen.replicas [||];
    rq_one_rows = Array.make p.Path_gen.replicas (-1);
    rq_rank_rows = Array.make (Int.max 0 (p.Path_gen.replicas - 1)) (-1);
  }

let selection_of rs =
  {
    req_index = rs.rq_index;
    src = rs.rq_src;
    dst = rs.rq_dst;
    pool = rs.rq_pool;
    slots = Array.copy rs.rq_slots;
  }

let grow_route ctx rs pool_paths =
  let model = Encode_common.model ctx in
  let all = Array.of_list pool_paths in
  let old_nk = Array.length rs.rq_pool in
  let nk = Array.length all in
  if nk > old_nk then begin
    (* New selector columns, slot-major like the one-shot encoder. *)
    for r = 0 to rs.rq_replicas - 1 do
      rs.rq_slots.(r) <-
        Array.append rs.rq_slots.(r)
          (Array.init (nk - old_nk) (fun d ->
               Model.add_binary model
                 (Printf.sprintf "sel_r%d_rep%d_c%d" rs.rq_index r (old_nk + d))))
    done;
    rs.rq_pool <- all;
    (* One candidate per replica slot — rewritten over the wider sum. *)
    for r = 0 to rs.rq_replicas - 1 do
      let sum =
        Lin.of_list (Array.to_list (Array.map (fun v -> (1., v)) rs.rq_slots.(r)))
      in
      if rs.rq_one_rows.(r) < 0 then
        rs.rq_one_rows.(r) <-
          Model.add_row model
            ~name:(Printf.sprintf "one_path_r%d_rep%d" rs.rq_index r)
            sum Model.Eq 1.
      else Model.set_row model rs.rq_one_rows.(r) sum Model.Eq 1.
    done;
    (* (1d): replicas must be pairwise link-disjoint — exclude
       edge-sharing candidate pairs across slots.  Only pairs touching a
       new candidate are missing. *)
    for r1 = 0 to rs.rq_replicas - 1 do
      for r2 = r1 + 1 to rs.rq_replicas - 1 do
        for k1 = 0 to nk - 1 do
          for k2 = 0 to nk - 1 do
            if
              (k1 >= old_nk || k2 >= old_nk)
              && not (Path.edge_disjoint all.(k1) all.(k2))
            then
              Model.add_constr model
                (Lin.of_list [ (1., rs.rq_slots.(r1).(k1)); (1., rs.rq_slots.(r2).(k2)) ])
                Model.Le 1.
          done
        done
      done
    done;
    (* Symmetry breaking: slot r picks a lower candidate index than slot
       r+1 (valid because slots are interchangeable and disjointness
       forbids re-picking a candidate).  Appending candidates at higher
       indices keeps previous orderings valid, so rewriting the row over
       the wider rank sums preserves every old solution. *)
    for r = 0 to rs.rq_replicas - 2 do
      let rank svars =
        Lin.of_list (Array.to_list (Array.mapi (fun k v -> (float_of_int k, v)) svars))
      in
      let expr =
        Lin.add_const (Lin.sub (rank rs.rq_slots.(r)) (rank rs.rq_slots.(r + 1))) 1.
      in
      if rs.rq_rank_rows.(r) < 0 then
        rs.rq_rank_rows.(r) <- Model.add_row model expr Model.Le 0.
      else Model.set_row model rs.rq_rank_rows.(r) expr Model.Le 0.
    done;
    (* Edge usage terms of the new candidates, staged for flush. *)
    for r = 0 to rs.rq_replicas - 1 do
      for k = old_nk to nk - 1 do
        List.iter
          (fun (i, j) ->
            Encode_common.stage_edge_usage ctx i j (Lin.var rs.rq_slots.(r).(k)))
          (Path.edges all.(k))
      done
    done
  end

let encode ?(kstar = 10) ?(loc_kstar = 20) inst =
  match Path_gen.generate ~kstar inst with
  | Error e -> Error e
  | Ok generation ->
      let ctx = Encode_common.create inst in
      let selections =
        List.map
          (fun (p : Path_gen.route_pool) ->
            let rs = init_route p in
            grow_route ctx rs p.Path_gen.pool;
            selection_of rs)
          generation.Path_gen.pools
      in
      (* Localization pruning (paper §4.2). *)
      Encode_common.set_localization_candidates ctx
        (Path_gen.localization_candidates inst ~kstar:loc_kstar);
      (* finalize flushes the staged edge usage (LQ rows, energy). *)
      Encode_common.finalize ctx;
      Ok { ctx; selections; generation }
