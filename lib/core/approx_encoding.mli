(** The compact path encoding built from Algorithm 1 candidate pools
    (paper §3).

    Every required route replica gets one selection binary per candidate
    path in its pair's pool ("NewCons": exactly one candidate is chosen
    per replica).  Edge binaries exist only for links appearing in some
    candidate, so the routing constraints (1a)–(1c) are omitted — path
    validity is guaranteed by construction — and the link-quality and
    energy constraints range over candidate edges only.  Disjointness
    (1d) becomes pairwise exclusion of edge-sharing candidates assigned
    to different replicas; a symmetry-breaking order on replica slots
    trims the branch & bound tree. *)

type route_selection = {
  req_index : int;
  src : int;
  dst : int;
  pool : Netgraph.Path.t array;  (** Candidate paths of this pair. *)
  slots : int array array;
      (** [slots.(r).(k)] is the selection binary of candidate [k] for
          replica [r]. *)
}

type t = {
  ctx : Encode_common.t;
  selections : route_selection list;
  generation : Path_gen.result;
}

val encode : ?kstar:int -> ?loc_kstar:int -> Instance.t -> (t, string) result
(** Build the complete MILP.  [kstar] is Algorithm 1's [K*] for routes
    (default 10); [loc_kstar] prunes localization reachability pairs
    (default 20, paper §4.2).  The model inside the returned context is
    finalized and ready to solve. *)

(** {1 Incremental route encoding}

    Used by {!Session} to grow a live model instead of re-encoding: a
    {!route_state} remembers each route's selector columns and the ids
    of its rewritable rows (one-candidate-per-slot, symmetry breaking),
    so feeding it a grown pool appends only the delta.  Driving a fresh
    state once over a full pool is equivalent to the one-shot
    {!encode}. *)

type route_state

val init_route : Path_gen.route_pool -> route_state
(** Empty encoding state for a route (nothing added to any model yet);
    only the pair's identity/replica count is read from the pool. *)

val grow_route : Encode_common.t -> route_state -> Netgraph.Path.t list -> unit
(** [grow_route ctx rs pool] extends the encoding of [rs] inside [ctx]
    to cover the {e cumulative} candidate list [pool] (a prefix-
    preserving superset of what was encoded before): new selector
    binaries, missing disjointness pairs, rewritten one-path/rank rows,
    and staged edge-usage deltas ({!Encode_common.stage_edge_usage} —
    call {!Encode_common.flush_usage} or {!Encode_common.finalize}
    afterwards). *)

val selection_of : route_state -> route_selection
(** Snapshot of the current pool/slot structure (as {!encode} returns),
    for solution extraction. *)
