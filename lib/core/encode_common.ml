module Lin = Milp.Lin
module Model = Milp.Model

(* Auxiliary product w = m * usage with its two usage-coupled rows; the
   rows are rewritten in place when the usage expression grows. *)
type product = { p_var : int; p_ub_row : int; p_lb_row : int }

type t = {
  inst : Instance.t;
  model : Model.t;
  node_use : int array;
  sizing : (Components.Component.t * int) list array;
  edges : (int * int, int) Hashtbl.t;
  tx_usage : Lin.t array;  (* per node: # path crossings leaving the node *)
  rx_usage : Lin.t array;
  (* Incremental-growth bookkeeping: staged usage awaiting flush, the
     cumulative per-edge usage, and the ids of every row that must be
     rewritten (not appended) when usage grows. *)
  edge_total : (int * int, Lin.t) Hashtbl.t;
  edge_delta : (int * int, Lin.t) Hashtbl.t;
  edge_upper : (int * int, int) Hashtbl.t;  (* row id of e <= usage *)
  products : (int * int * bool, product) Hashtbl.t;  (* node, device ord, is_tx *)
  dirty : (int, unit) Hashtbl.t;  (* nodes whose usage changed *)
  mutable charges : Lin.t array;  (* per node, set at finalize *)
  mutable lifetime_rows : int option array;
  mutable loc_candidates : (int * int list) list;
  mutable reach : ((int * int) * int) list;
  mutable finalized : bool;
}

let model ctx = ctx.model

let instance ctx = ctx.inst

let node_use_var ctx i = ctx.node_use.(i)

let sizing_vars ctx i = ctx.sizing.(i)

let edge_vars ctx = Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.edges []

let product_var ctx i ord ~is_tx =
  Option.map (fun p -> p.p_var) (Hashtbl.find_opt ctx.products (i, ord, is_tx))

let rss_floor_dbm ctx = ctx.inst.Instance.noise_dbm +. Instance.min_snr_db ctx.inst

(* Net antenna/TX contribution of the device selected at a node. *)
let tx_gain_expr ctx i =
  List.fold_left
    (fun acc ((c : Components.Component.t), v) ->
      Lin.add_term acc (c.Components.Component.tx_power_dbm +. c.Components.Component.antenna_gain_dbi) v)
    Lin.zero ctx.sizing.(i)

let gain_expr ctx i =
  List.fold_left
    (fun acc ((c : Components.Component.t), v) ->
      Lin.add_term acc c.Components.Component.antenna_gain_dbi v)
    Lin.zero ctx.sizing.(i)

let rss_expr ctx i j =
  let pl = ctx.inst.Instance.pl.(i).(j) in
  Lin.add_const (Lin.add (tx_gain_expr ctx i) (gain_expr ctx j)) (-.pl)

let create inst =
  let template = inst.Instance.template in
  let n = Template.nnodes template in
  let model = Model.create ~name:"archex" () in
  let node_use =
    Array.init n (fun i ->
        Model.add_binary model (Printf.sprintf "use_%s" (Template.node template i).Template.name))
  in
  let sizing =
    Array.init n (fun i ->
        List.map
          (fun (_, c) ->
            let v =
              Model.add_binary model
                (Printf.sprintf "map_%s_%s" c.Components.Component.name
                   (Template.node template i).Template.name)
            in
            (c, v))
          (Instance.devices_for inst i))
  in
  (* Exactly one device on a used node, none otherwise: Σ_l m_li = α_i.
     Fixed nodes are pinned used. *)
  for i = 0 to n - 1 do
    let sum = Lin.of_list (List.map (fun (_, v) -> (1., v)) sizing.(i)) in
    Model.add_constr model ~name:(Printf.sprintf "sizing_%d" i)
      (Lin.sub sum (Lin.var node_use.(i)))
      Model.Eq 0.;
    if (Template.node template i).Template.fixed then
      Model.add_constr model
        ~name:(Printf.sprintf "fixed_%d" i)
        (Lin.var node_use.(i))
        Model.Eq 1.
  done;
  {
    inst;
    model;
    node_use;
    sizing;
    edges = Hashtbl.create 64;
    tx_usage = Array.make n Lin.zero;
    rx_usage = Array.make n Lin.zero;
    edge_total = Hashtbl.create 64;
    edge_delta = Hashtbl.create 64;
    edge_upper = Hashtbl.create 64;
    products = Hashtbl.create 64;
    dirty = Hashtbl.create 16;
    charges = [||];
    lifetime_rows = [||];
    loc_candidates = [];
    reach = [];
    finalized = false;
  }

(* Big-M for the link-quality row: with e_ij = 0 the row must be slack
   for any sizing, including "no device" (all m = 0, RSS = -PL). *)
let lq_big_m ctx i j floor =
  let pl = ctx.inst.Instance.pl.(i).(j) in
  let worst = -.pl in
  Float.max 1. (floor -. worst +. 1.)

let edge_var ctx i j =
  match Hashtbl.find_opt ctx.edges (i, j) with
  | Some v -> v
  | None ->
      if not (Netgraph.Digraph.mem_edge ctx.inst.Instance.graph i j) then
        invalid_arg (Printf.sprintf "Encode_common.edge_var: (%d, %d) is not a candidate link" i j);
      let v = Model.add_binary ctx.model (Printf.sprintf "e_%d_%d" i j) in
      Hashtbl.add ctx.edges (i, j) v;
      (* An active link needs both endpoints deployed. *)
      Model.add_constr ctx.model
        ~name:(Printf.sprintf "e_src_%d_%d" i j)
        (Lin.sub (Lin.var v) (Lin.var ctx.node_use.(i)))
        Model.Le 0.;
      Model.add_constr ctx.model
        ~name:(Printf.sprintf "e_dst_%d_%d" i j)
        (Lin.sub (Lin.var v) (Lin.var ctx.node_use.(j)))
        Model.Le 0.;
      (* Link quality (2b), linearized: RSS_ij >= floor - M (1 - e). *)
      let floor = rss_floor_dbm ctx in
      let m = lq_big_m ctx i j floor in
      Model.add_constr ctx.model
        ~name:(Printf.sprintf "lq_%d_%d" i j)
        (Lin.sub (rss_expr ctx i j) (Lin.term m v))
        Model.Ge (floor -. m);
      v

let add_edge_usage ctx i j expr =
  ctx.tx_usage.(i) <- Lin.add ctx.tx_usage.(i) expr;
  ctx.rx_usage.(j) <- Lin.add ctx.rx_usage.(j) expr

let constrain_used_edge ctx i j expr =
  let e = edge_var ctx i j in
  (* e >= every binary term of the usage expression… *)
  Lin.iter
    (fun v c ->
      if c > 0. then
        Model.add_constr ctx.model
          (Lin.sub (Lin.var e) (Lin.var v))
          Model.Ge 0.)
    expr;
  (* …and e <= total usage, so links no path selects stay off. *)
  Model.add_constr ctx.model (Lin.sub (Lin.var e) expr) Model.Le 0.

let stage_edge_usage ctx i j expr =
  add_edge_usage ctx i j expr;
  let bump tbl =
    let cur = Option.value ~default:Lin.zero (Hashtbl.find_opt tbl (i, j)) in
    Hashtbl.replace tbl (i, j) (Lin.add cur expr)
  in
  bump ctx.edge_total;
  bump ctx.edge_delta;
  Hashtbl.replace ctx.dirty i ();
  Hashtbl.replace ctx.dirty j ()

let set_localization_candidates ctx cands = ctx.loc_candidates <- cands

let localization_candidates ctx = ctx.loc_candidates

let reach_vars ctx = ctx.reach

(* ---------------- energy and lifetime ---------------- *)

let needs_energy ctx =
  ctx.inst.Instance.requirements.Requirements.min_lifetime_years <> None
  || List.exists (fun (_, c) -> c = Objective.Energy) ctx.inst.Instance.objective

(* Traffic-proportional charge coefficient of one device in one
   direction: radio + awake-slot active draw minus the sleep current the
   awake time displaces, per TX/RX event.  Shared between the objective
   assembly below and the structural energy cuts ({!Struct_cuts}), so
   the separator can never drift from the installed objective. *)
let traffic_coef ctx (c : Components.Component.t) ~is_tx =
  let proto = ctx.inst.Instance.protocol in
  let slot = proto.Energy.Tdma.slot_s in
  let bits = Energy.Tdma.packet_bits proto in
  let etx = Instance.etx_bound ctx.inst in
  let airtime = float_of_int bits /. (c.Components.Component.bit_rate_kbps *. 1000.) in
  let sleep_ma = c.Components.Component.sleep_ua /. 1000. in
  let radio =
    if is_tx then c.Components.Component.radio_tx_ma
    else c.Components.Component.radio_rx_ma
  in
  (etx *. airtime *. radio)
  +. (slot *. c.Components.Component.active_ma)
  -. (slot *. sleep_ma)

(* Per-node charge expression (mA·s per reporting period), linear in the
   auxiliary products w = m * usage (see DESIGN.md, linearization). *)
let node_charge_expr ctx i =
  let inst = ctx.inst in
  let proto = inst.Instance.protocol in
  let period = proto.Energy.Tdma.report_period_s in
  let route_cap = float_of_int (Int.max 1 (Requirements.total_path_count inst.Instance.requirements)) in
  let charge = ref Lin.zero in
  List.iteri
    (fun ord ((c : Components.Component.t), mv) ->
      let sleep_ma = c.Components.Component.sleep_ua /. 1000. in
      (* Auxiliary products w = m_li * usage_i, one per direction.  The
         two usage-coupled rows are remembered so they can be rewritten
         (set_row) when an incremental session grows the usage; the
         static cap w <= R m never changes.  Variables stay lazy: a node
         whose usage is still constant gets no w, exactly as in a
         one-shot encode. *)
      let product is_tx name usage =
        if Lin.is_constant usage then Lin.scale (Lin.constant usage) (Lin.var mv)
        else begin
          let ub_expr w = Lin.sub (Lin.var w) usage in
          (* w >= usage - R (1 - m): tight when the device is selected. *)
          let lb_expr w =
            Lin.add_const
              (Lin.sub (Lin.sub (Lin.var w) usage) (Lin.term route_cap mv))
              route_cap
          in
          match Hashtbl.find_opt ctx.products (i, ord, is_tx) with
          | Some pr ->
              Model.set_row ctx.model pr.p_ub_row (ub_expr pr.p_var) Model.Le 0.;
              Model.set_row ctx.model pr.p_lb_row (lb_expr pr.p_var) Model.Ge 0.;
              Lin.var pr.p_var
          | None ->
              let w =
                Model.add_var ctx.model ~lb:0. ~ub:route_cap
                  (Printf.sprintf "w%s_%d_%s" name i c.Components.Component.name)
              in
              Model.add_constr ctx.model
                (Lin.sub (Lin.var w) (Lin.term route_cap mv))
                Model.Le 0.;
              let p_ub_row = Model.add_row ctx.model (ub_expr w) Model.Le 0. in
              let p_lb_row = Model.add_row ctx.model (lb_expr w) Model.Ge 0. in
              Hashtbl.add ctx.products (i, ord, is_tx) { p_var = w; p_ub_row; p_lb_row };
              Lin.var w
        end
      in
      let wtx = product true "tx" ctx.tx_usage.(i) in
      let wrx = product false "rx" ctx.rx_usage.(i) in
      let tx_coef = traffic_coef ctx c ~is_tx:true in
      let rx_coef = traffic_coef ctx c ~is_tx:false in
      (* …plus baseline sleep for the whole period when this device is
         the one deployed. *)
      charge :=
        Lin.add !charge
          (Lin.sum
             [ Lin.scale tx_coef wtx; Lin.scale rx_coef wrx; Lin.term (sleep_ma *. period) mv ]))
    ctx.sizing.(i);
  !charge

(* One (node, direction) group of the energy linearization, for the
   structural energy cuts: the usage expression and the full device
   menu's (traffic coefficient, sizing var, product var) triples.  Only
   groups whose every device has a live product variable are returned —
   the aggregated strengthening sums over the whole menu, so a partial
   menu (usage still constant at encode time) has no valid cut. *)
let energy_traffic_groups ctx =
  if not (needs_energy ctx) then []
  else begin
    let out = ref [] in
    Array.iteri
      (fun i _ ->
        List.iter
          (fun is_tx ->
            let usage = if is_tx then ctx.tx_usage.(i) else ctx.rx_usage.(i) in
            let menu = ctx.sizing.(i) in
            if (not (Lin.is_constant usage)) && menu <> [] then begin
              let all_live =
                List.for_all
                  (fun ord -> Hashtbl.mem ctx.products (i, ord, is_tx))
                  (List.init (List.length menu) Fun.id)
              in
              if all_live then begin
                let devs =
                  List.mapi
                    (fun ord (c, mv) ->
                      let p = Hashtbl.find ctx.products (i, ord, is_tx) in
                      (traffic_coef ctx c ~is_tx, mv, p.p_var))
                    menu
                in
                out := (usage, devs) :: !out
              end
            end)
          [ true; false ])
      ctx.tx_usage;
    !out
  end

(* Charge budget per reporting period implied by the lifetime
   requirement, when there is one. *)
let lifetime_budget ctx =
  match ctx.inst.Instance.requirements.Requirements.min_lifetime_years with
  | None -> None
  | Some years ->
      let period = ctx.inst.Instance.protocol.Energy.Tdma.report_period_s in
      Some
        (ctx.inst.Instance.battery.Energy.Lifetime.capacity_mah *. 3600. *. period
        /. (years *. Energy.Lifetime.seconds_per_year))

let add_energy ctx =
  let inst = ctx.inst in
  let n = Template.nnodes inst.Instance.template in
  let charges = Array.init n (fun i -> node_charge_expr ctx i) in
  ctx.charges <- charges;
  ctx.lifetime_rows <- Array.make n None;
  (match lifetime_budget ctx with
  | None -> ()
  | Some budget ->
      (* (3a): battery / avg-current >= L*  ⇔  charge-per-period bounded. *)
      Array.iteri
        (fun i q ->
          (* Base stations are mains-powered: the lifetime requirement
             applies to battery nodes only. *)
          let role = (Template.node inst.Instance.template i).Template.role in
          if role <> Components.Component.Sink then
            ctx.lifetime_rows.(i) <-
              Some
                (Model.add_row ctx.model ~name:(Printf.sprintf "lifetime_%d" i) q Model.Le
                   budget))
        charges);
  charges

(* ---------------- localization ---------------- *)

let eval_path_loss ctx anchor eval_pt =
  let loc = (Template.node ctx.inst.Instance.template anchor).Template.loc in
  Radio.Channel.path_loss ctx.inst.Instance.channel loc eval_pt

let add_localization ctx =
  match ctx.inst.Instance.requirements.Requirements.localization with
  | None -> ()
  | Some loc ->
      let anchors =
        Template.find_role ctx.inst.Instance.template Components.Component.Anchor
      in
      let floor = loc.Requirements.loc_min_rss_dbm in
      let candidates_for j =
        match List.assoc_opt j ctx.loc_candidates with
        | Some l -> l
        | None -> anchors
      in
      Array.iteri
        (fun j pt ->
          let cands = candidates_for j in
          let cover = ref Lin.zero in
          List.iter
            (fun i ->
              let pl = eval_path_loss ctx i pt in
              let r = Model.add_binary ctx.model (Printf.sprintf "reach_%d_%d" i j) in
              ctx.reach <- ((i, j), r) :: ctx.reach;
              (* (4a): r ⇒ α_i ∧ RSS >= floor. *)
              Model.add_constr ctx.model
                (Lin.sub (Lin.var r) (Lin.var ctx.node_use.(i)))
                Model.Le 0.;
              let worst = -.pl in
              let m = Float.max 1. (floor -. worst +. 1.) in
              let rss = Lin.add_const (tx_gain_expr ctx i) (-.pl) in
              Model.add_constr ctx.model
                ~name:(Printf.sprintf "locq_%d_%d" i j)
                (Lin.sub rss (Lin.term m r))
                Model.Ge (floor -. m);
              cover := Lin.add_term !cover 1. r)
            cands;
          (* (4b): every test point covered by >= N anchors. *)
          Model.add_constr ctx.model
            ~name:(Printf.sprintf "cover_%d" j)
            !cover Model.Ge
            (float_of_int loc.Requirements.min_anchors))
        loc.Requirements.eval_points

(* ---------------- objective ---------------- *)

let dollar_expr ctx =
  let acc = ref Lin.zero in
  Array.iter
    (fun svars ->
      List.iter
        (fun ((c : Components.Component.t), v) ->
          acc := Lin.add_term !acc c.Components.Component.cost v)
        svars)
    ctx.sizing;
  !acc

let node_count_expr ctx =
  Array.fold_left (fun acc v -> Lin.add_term acc 1. v) Lin.zero ctx.node_use

let dsod_expr ctx =
  match ctx.inst.Instance.requirements.Requirements.localization with
  | None -> Lin.zero
  | Some loc ->
      List.fold_left
        (fun acc ((i, j), r) ->
          let anchor_loc = (Template.node ctx.inst.Instance.template i).Template.loc in
          let d = Geometry.Point.dist anchor_loc loc.Requirements.eval_points.(j) in
          Lin.add_term acc d r)
        Lin.zero ctx.reach

let install_objective ctx =
  let period = ctx.inst.Instance.protocol.Energy.Tdma.report_period_s in
  let concern_expr = function
    | Objective.Dollar_cost -> dollar_expr ctx
    | Objective.Node_count -> node_count_expr ctx
    | Objective.Dsod -> dsod_expr ctx
    | Objective.Energy ->
        (* Average network current in µA: Σ_i q_i / T * 1000. *)
        Lin.scale (1000. /. period) (Array.fold_left Lin.add Lin.zero ctx.charges)
  in
  let obj =
    List.fold_left
      (fun acc (w, c) -> Lin.add acc (Lin.scale w (concern_expr c)))
      Lin.zero ctx.inst.Instance.objective
  in
  Model.set_objective ctx.model Model.Minimize obj

(* Materialize staged edge usage into rows.  New lower bounds
   (e >= term) are append-only; the per-edge upper row e <= usage is
   created once and thereafter rewritten in place as the cumulative
   usage grows.  After finalize, growth also invalidates the energy
   side: every dirty node's charge expression is recomputed, its
   products' usage-coupled rows and its lifetime row are rewritten, and
   the objective is reinstalled. *)
let flush_usage ctx =
  let pending = Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.edge_delta [] in
  let pending = List.sort (fun (a, _) (b, _) -> compare a b) pending in
  List.iter
    (fun ((i, j), delta) ->
      let e = edge_var ctx i j in
      Lin.iter
        (fun v c ->
          if c > 0. then
            Model.add_constr ctx.model (Lin.sub (Lin.var e) (Lin.var v)) Model.Ge 0.)
        delta;
      let total = Hashtbl.find ctx.edge_total (i, j) in
      match Hashtbl.find_opt ctx.edge_upper (i, j) with
      | Some row -> Model.set_row ctx.model row (Lin.sub (Lin.var e) total) Model.Le 0.
      | None ->
          Hashtbl.replace ctx.edge_upper (i, j)
            (Model.add_row ctx.model (Lin.sub (Lin.var e) total) Model.Le 0.))
    pending;
  Hashtbl.reset ctx.edge_delta;
  if ctx.finalized && needs_energy ctx then begin
    let budget = lifetime_budget ctx in
    Hashtbl.iter
      (fun i () ->
        let q = node_charge_expr ctx i in
        ctx.charges.(i) <- q;
        match ctx.lifetime_rows.(i) with
        | Some row -> Model.set_row ctx.model row q Model.Le (Option.get budget)
        | None -> ())
      ctx.dirty;
    install_objective ctx
  end;
  Hashtbl.reset ctx.dirty

let finalize ctx =
  if ctx.finalized then invalid_arg "Encode_common.finalize: already finalized";
  flush_usage ctx;
  ctx.finalized <- true;
  if needs_energy ctx then ignore (add_energy ctx) else ctx.charges <- [||];
  add_localization ctx;
  install_objective ctx
