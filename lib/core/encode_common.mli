(** Shared encoding machinery for both path-encoding strategies.

    A context owns the MILP model plus the variables that do not depend
    on the path-encoding strategy: node-use binaries [α_i], sizing
    binaries [m_{l,i}] (paper §2, mapping constraints), and shared edge
    binaries [e_{ij}] with their link-quality big-M constraints
    (2a)–(2b).  Strategies contribute edge-usage expressions (how many
    required paths cross each link), and {!finalize} then emits the
    energy/lifetime constraints (3a)–(3b), localization constraints
    (4a)–(4b) and the objective. *)

type t

val create : Instance.t -> t

val model : t -> Milp.Model.t

val instance : t -> Instance.t

val node_use_var : t -> int -> int
(** [α_i]: 1 iff template node [i] is used. *)

val sizing_vars : t -> int -> (Components.Component.t * int) list
(** Sizing binaries of node [i], one per compatible library device. *)

val edge_var : t -> int -> int -> int
(** [e_{ij}], created on first request.  Creation also adds
    [e <= α_i], [e <= α_j] and the link-quality constraint for the
    link.  @raise Invalid_argument if [(i, j)] is not a candidate link
    of the instance graph. *)

val edge_vars : t -> ((int * int) * int) list
(** All edge binaries created so far. *)

val product_var : t -> int -> int -> is_tx:bool -> int option
(** [product_var ctx i ord ~is_tx] is the auxiliary energy product
    variable [w = m * usage] of device ordinal [ord] (the position in
    {!sizing_vars}) at node [i], for the TX ([is_tx = true]) or RX
    direction.  [None] when the model has no energy side or the node's
    usage in that direction is still constant.  Exposed so the
    matheuristic can read exact per-use objective coefficients and
    assemble warm vectors. *)

val energy_traffic_groups :
  t -> (Milp.Lin.t * (float * int * int) list) list
(** One entry per (node, direction) of the energy linearization whose
    usage is non-constant and whose full device menu has live product
    variables: the usage expression and, per menu device, its
    (traffic-proportional objective coefficient, sizing var, product
    var).  The coefficients are computed by the same code that installs
    the objective, so {!Struct_cuts}'s aggregated energy strengthening
    can never drift from the model.  Empty before {!finalize} or when
    the model has no energy side. *)

val rss_expr : t -> int -> int -> Milp.Lin.t
(** Linear RSS expression of link [i -> j] (equation (2a)):
    [-PL_ij + Σ_l m_li (tx_l + g_l) + Σ_l m_lj g_l]. *)

val rss_floor_dbm : t -> float
(** The RSS threshold every used link must meet:
    [noise + Instance.min_snr_db]. *)

val eval_path_loss : t -> int -> Geometry.Point.t -> float
(** [eval_path_loss ctx anchor pt]: channel path loss from template
    node [anchor] to an arbitrary point — what the localization rows
    (4a) use for anchor-to-test-point reach, and what the structural
    cut separator ({!Struct_cuts}) re-evaluates. *)

val add_edge_usage : t -> int -> int -> Milp.Lin.t -> unit
(** [add_edge_usage ctx i j expr] declares that [expr] (a 0/1-or-more
    integer-valued expression over strategy variables) counts the
    required paths crossing link [i -> j].  Feeds the TX accounting of
    node [i] and the RX accounting of node [j]. *)

val constrain_used_edge : t -> int -> int -> Milp.Lin.t -> unit
(** Couple a strategy-level usage expression to the shared edge binary:
    adds [e_{ij} >= expr / bound] style lower bounds ([e >= s] for each
    binary term) plus [e_{ij} <= expr] so unused links stay off.
    One-shot variant of {!stage_edge_usage} + {!flush_usage}; it does
    not participate in incremental growth. *)

val stage_edge_usage : t -> int -> int -> Milp.Lin.t -> unit
(** Incremental variant of {!add_edge_usage} + {!constrain_used_edge}:
    record that [expr] additionally crosses link [i -> j] (on top of
    anything staged before) without touching the model yet.  Rows are
    materialized by the next {!flush_usage}. *)

val flush_usage : t -> unit
(** Materialize every staged usage delta: create edge variables and
    their [e >= term] lower bounds for the new terms, and create-or-
    rewrite each touched edge's [e <= total usage] row.  After
    {!finalize}, also repairs the energy side for nodes whose usage
    grew — auxiliary product rows and lifetime rows are rewritten in
    place and the objective is reinstalled — so the model is again
    exactly what a from-scratch encode of the cumulative pools would
    produce (up to row order). *)

val finalize : t -> unit
(** Emit energy, lifetime, localization and objective rows (flushing
    any staged usage first).  Call once, after the strategy added all
    routing structure.  The context stays growable: further
    {!stage_edge_usage}/{!flush_usage} cycles keep the finalized rows
    consistent. *)

val localization_candidates : t -> (int * int list) list
(** For each evaluation-point index, the anchor node indices considered
    by the localization constraints.  Before {!finalize} configures
    them, this is empty; strategies set it via
    {!set_localization_candidates}. *)

val set_localization_candidates : t -> (int * int list) list -> unit
(** [(eval_index, anchors)] pairs; unset points default to all anchors
    at finalize time. *)

val reach_vars : t -> ((int * int) * int) list
(** Localization reachability binaries [(anchor, eval_index), r_var]
    created by {!finalize}. *)
