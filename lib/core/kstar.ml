type step = { kstar : int; outcome : Outcome.t; objective : float option }

type result = {
  steps : step list;
  best : (int * Solution.t) option;
  stopped_because : [ `Time_threshold | `No_improvement | `Schedule_exhausted ];
}

let default_schedule = [ 1; 3; 5; 10; 20 ]

let search ?(schedule = default_schedule) ?(time_threshold_s = 60.)
    ?(min_improvement = 0.005) (config : Solver_config.t) inst =
  (* One session for the whole sweep: pools, model, incumbent and cut
     pool persist across steps.  Localization pruning is fixed at the
     schedule's widest K* so every step's model is a strict superset of
     the previous one. *)
  let loc_kstar = List.fold_left Int.max 1 schedule in
  let session =
    Session.start (Solver_config.with_approx ~loc_kstar () config) inst
  in
  let steps = ref [] in
  let best = ref None in
  let best_obj = ref None in
  let prev_obj = ref None in
  let stopped = ref `Schedule_exhausted in
  let rec go = function
    | [] -> ()
    | kstar :: rest -> (
        match Session.grow session ~kstar with
        | Error _ ->
            (* Pool generation failed for this K*; try a larger one. *)
            go rest
        | Ok () ->
            let outcome = Session.solve session in
            let direction = fst (Milp.Model.objective outcome.Outcome.model) in
            (* [before] is better than [after] by more than [eps]? *)
            let better before after eps =
              match direction with
              | Milp.Model.Minimize -> before < after -. eps
              | Milp.Model.Maximize -> before > after +. eps
            in
            let objective =
              Option.map
                (fun _ -> outcome.Outcome.mip.Milp.Branch_bound.objective)
                outcome.Outcome.solution
            in
            steps := { kstar; outcome; objective } :: !steps;
            (match (outcome.Outcome.solution, objective) with
            | Some sol, Some obj ->
                let is_best =
                  match !best_obj with None -> true | Some b -> better obj b 1e-9
                in
                if is_best then begin
                  best := Some (kstar, sol);
                  best_obj := Some obj
                end
            | _ -> ());
            if outcome.Outcome.stats.Outcome.solve_time_s > time_threshold_s then
              stopped := `Time_threshold
            else begin
              match objective with
              | None ->
                  (* An infeasible/unsolved step neither improves nor
                     stalls: keep prev_obj and walk on. *)
                  go rest
              | Some now ->
                  let improved =
                    match !prev_obj with
                    | None -> true
                    | Some before ->
                        better now before
                          (min_improvement *. Float.max 1e-9 (Float.abs before))
                  in
                  prev_obj := Some now;
                  if improved then go rest else stopped := `No_improvement
            end)
  in
  go schedule;
  { steps = List.rev !steps; best = !best; stopped_because = !stopped }
