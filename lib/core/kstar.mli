(** Systematic selection of [K*] (paper §4.3).

    "K* can be systematically selected by a search algorithm that
    generates multiple topologies for different values of K* and
    terminates once the execution time becomes higher than a predefined
    threshold or there is no further improvement in the objective."

    The search walks an increasing [K*] schedule on one incremental
    {!Session}: each step extends the candidate pools, appends the delta
    to the live model, and re-solves carrying the previous incumbent and
    cut pool, stopping on timeout, lack of improvement, or schedule
    exhaustion.  Localization pruning is fixed at the schedule's widest
    [K*] for the whole sweep so the per-step models nest. *)

type step = {
  kstar : int;
  outcome : Outcome.t;
  objective : float option;  (** Incumbent objective if one was found. *)
}

type result = {
  steps : step list;  (** In schedule order. *)
  best : (int * Solution.t) option;  (** Best [K*] and its solution. *)
  stopped_because : [ `Time_threshold | `No_improvement | `Schedule_exhausted ];
}

val default_schedule : int list
(** [1; 3; 5; 10; 20] — the paper's Table 4 sweep. *)

val search :
  ?schedule:int list ->
  ?time_threshold_s:float ->
  ?min_improvement:float ->
  Solver_config.t ->
  Instance.t ->
  result
(** [search config inst] runs the schedule under [config] (solver
    options, session mode and parallel knobs; the strategy's
    [loc_kstar] is overridden with the schedule's widest [K*] so the
    per-step models nest).  Stops early when a solve exceeds
    [time_threshold_s] (default 60 s) or when the objective improves by
    less than [min_improvement] (relative, default 0.5%) over the
    previous step.  The improvement test follows the model's objective
    direction, and a step without an incumbent neither counts as
    improvement nor trips the stall detector.  Pool-generation failures
    for a given [K*] are skipped.  [config.incremental = false]
    re-encodes every step from scratch (the [--no-incremental]
    ablation). *)
