module Lin = Milp.Lin
module Model = Milp.Model
module Tabu = Heuristic.Tabu

(* Bridge between the MILP encoding and the dependency-free tabu
   search: flatten the approx encoding into a Tabu.problem with EXACT
   objective coefficients (read off the installed model objective, so
   any concern mix the encoder supports is priced correctly), run the
   search, and lift the winning solution back into a model-space warm
   vector that Branch_bound can adopt as an incumbent/cutoff. *)

type outcome = {
  mh_warm : (float array * float) option;
  mh_tabu : Tabu.result;
}

(* Devices with no admissible component keep a single phantom entry that
   prices the node out: never selectable in a feasible tabu solution,
   and such nodes cannot be opened in the MILP either (Σ m = α). *)
let phantom_cost = 1e12

let phantom_gain = -1e9

let build_problem ctx (selections : Approx_encoding.route_selection list) =
  let inst = Encode_common.instance ctx in
  let template = inst.Instance.template in
  let n = Template.nnodes template in
  let _, obj = Model.objective (Encode_common.model ctx) in
  let sizing =
    Array.init n (fun i -> Array.of_list (Encode_common.sizing_vars ctx i))
  in
  let ndevices = Array.init n (fun i -> Int.max 1 (Array.length sizing.(i))) in
  let table real phantom =
    Array.init n (fun i ->
        Array.init ndevices.(i) (fun d ->
            if d < Array.length sizing.(i) then real i d (fst sizing.(i).(d))
            else phantom))
  in
  let proto = inst.Instance.protocol in
  let period = proto.Energy.Tdma.report_period_s in
  let slot = proto.Energy.Tdma.slot_s in
  let bits = Energy.Tdma.packet_bits proto in
  let etx = Instance.etx_bound inst in
  let open Components.Component in
  let w_coeff is_tx i d =
    match Encode_common.product_var ctx i d ~is_tx with
    | Some w -> Lin.coeff obj w
    | None -> 0.
  in
  let airtime (c : t) = float_of_int bits /. (c.bit_rate_kbps *. 1000.) in
  let sleep_ma (c : t) = c.sleep_ua /. 1000. in
  (* Opening node [i] with device [d] pays the node-use coefficient
     (e.g. node-count concerns) plus the sizing binary's own price. *)
  let node_cost =
    table
      (fun i d _ ->
        Lin.coeff obj (Encode_common.node_use_var ctx i)
        +. Lin.coeff obj (snd sizing.(i).(d)))
      phantom_cost
  in
  {
    Tabu.nnodes = n;
    fixed = Array.init n (fun i -> (Template.node template i).Template.fixed);
    pools =
      Array.of_list
        (List.map
           (fun (sel : Approx_encoding.route_selection) ->
             Array.map Array.of_list sel.Approx_encoding.pool)
           selections);
    replicas =
      Array.of_list
        (List.map
           (fun (sel : Approx_encoding.route_selection) ->
             Array.length sel.Approx_encoding.slots)
           selections);
    ndevices;
    pl = inst.Instance.pl;
    txg = table (fun _ _ c -> c.tx_power_dbm +. c.antenna_gain_dbi) phantom_gain;
    rxg = table (fun _ _ c -> c.antenna_gain_dbi) phantom_gain;
    rss_floor_dbm = Encode_common.rss_floor_dbm ctx;
    node_cost;
    tx_cost = table (fun i d _ -> w_coeff true i d) 0.;
    rx_cost = table (fun i d _ -> w_coeff false i d) 0.;
    charge_base = table (fun _ _ c -> sleep_ma c *. period) 0.;
    charge_tx =
      table
        (fun _ _ c ->
          (etx *. airtime c *. c.radio_tx_ma)
          +. (slot *. c.active_ma)
          -. (slot *. sleep_ma c))
        0.;
    charge_rx =
      table
        (fun _ _ c ->
          (etx *. airtime c *. c.radio_rx_ma)
          +. (slot *. c.active_ma)
          -. (slot *. sleep_ma c))
        0.;
    charge_budget =
      (match inst.Instance.requirements.Requirements.min_lifetime_years with
      | None -> infinity
      | Some years ->
          inst.Instance.battery.Energy.Lifetime.capacity_mah *. 3600. *. period
          /. (years *. Energy.Lifetime.seconds_per_year));
    budget_exempt =
      Array.init n (fun i ->
          (Template.node template i).Template.role = Components.Component.Sink);
  }

(* Lift a tabu solution into model-variable space: selector binaries per
   slot, node-use and sizing binaries for every node a selected path
   crosses (plus fixed nodes), edge binaries for crossed links, and the
   energy products w = m * usage at their tight values. *)
let warm_of ctx (selections : Approx_encoding.route_selection list)
    (problem : Tabu.problem) (sol : Tabu.solution) =
  let model = Encode_common.model ctx in
  let n = problem.Tabu.nnodes in
  let x = Array.make (Model.nvars model) 0. in
  let tx = Array.make n 0 in
  let rx = Array.make n 0 in
  let edges_used = Hashtbl.create 64 in
  List.iteri
    (fun r (sel : Approx_encoding.route_selection) ->
      Array.iteri
        (fun slot c ->
          x.(sel.Approx_encoding.slots.(slot).(c)) <- 1.;
          List.iter
            (fun (u, v) ->
              tx.(u) <- tx.(u) + 1;
              rx.(v) <- rx.(v) + 1;
              Hashtbl.replace edges_used (u, v) ())
            (Netgraph.Path.edges sel.Approx_encoding.pool.(c)))
        sol.Tabu.sol_choice.(r))
    selections;
  List.iter
    (fun ((i, j), v) ->
      if Hashtbl.mem edges_used (i, j) then x.(v) <- 1.)
    (Encode_common.edge_vars ctx);
  let ok = ref true in
  for i = 0 to n - 1 do
    if problem.Tabu.fixed.(i) || tx.(i) + rx.(i) > 0 then begin
      x.(Encode_common.node_use_var ctx i) <- 1.;
      let d = sol.Tabu.sol_device.(i) in
      (match List.nth_opt (Encode_common.sizing_vars ctx i) d with
      | Some (_, mv) -> x.(mv) <- 1.
      | None -> ok := false);
      (match Encode_common.product_var ctx i d ~is_tx:true with
      | Some w -> x.(w) <- float_of_int tx.(i)
      | None -> ());
      match Encode_common.product_var ctx i d ~is_tx:false with
      | Some w -> x.(w) <- float_of_int rx.(i)
      | None -> ()
    end
  done;
  if not !ok then None
  else
    match Model.check_feasible model (fun v -> x.(v)) with
    | Error _ -> None
    | Ok () ->
        let _, obj = Model.objective model in
        Some (x, Lin.eval (fun v -> x.(v)) obj)

let attempt ?(now = Milp.Clock.now) (h : Solver_config.heuristic) ctx
    (selections : Approx_encoding.route_selection list) =
  match h.Solver_config.h_mode with
  | Solver_config.H_off -> None
  | Solver_config.H_tabu ->
      let inst = Encode_common.instance ctx in
      if
        inst.Instance.requirements.Requirements.localization <> None
        || selections = []
      then None
      else begin
        let problem = build_problem ctx selections in
        let params =
          {
            Tabu.tp_iters = h.Solver_config.h_iters;
            tp_time_s = h.Solver_config.h_time_s;
            tp_tenure = h.Solver_config.h_tenure;
            tp_seed = h.Solver_config.h_seed;
          }
        in
        match Tabu.solve ~now params problem with
        | Error _ -> None
        | Ok tabu ->
            let warm =
              match tabu.Tabu.r_best with
              | None -> None
              | Some sol -> warm_of ctx selections problem sol
            in
            Some { mh_warm = warm; mh_tabu = tabu }
      end
