(** Matheuristic bridge: tabu search as a primal heuristic for the
    exact solver.

    Flattens the approximate path encoding into a
    {!Heuristic.Tabu.problem} — candidate pools as node sequences,
    per-device objective coefficients read off the installed model
    objective (so any supported concern mix is priced exactly), charge
    coefficients replicated from the energy linearization — runs the
    tabu search within the configured budget, and lifts the best
    feasible solution back into a model-space vector.  {!Session} hands
    that vector to {!Milp.Branch_bound} as a warm incumbent and
    direction-aware cutoff, which is what makes the heuristic a
    matheuristic: the tree search keeps the global optimality proof,
    the tabu search only accelerates the primal side. *)

type outcome = {
  mh_warm : (float array * float) option;
      (** Model-space warm vector and its exact model objective,
          validated by [Model.check_feasible]; [None] when the search
          found no feasible solution (or lifting failed). *)
  mh_tabu : Heuristic.Tabu.result;  (** Raw search result. *)
}

val attempt :
  ?now:(unit -> float) ->
  Solver_config.heuristic ->
  Encode_common.t ->
  Approx_encoding.route_selection list ->
  outcome option
(** Run the configured heuristic against a finalized encoding.  [None]
    when the heuristic is off, the instance has localization
    requirements (reach variables are not in the tabu move space), or
    there are no routes.  [now] defaults to [Milp.Clock.now] and drives
    the tabu wall-clock budget. *)
