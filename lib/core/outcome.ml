type stats = {
  nvars : int;
  nconstrs : int;
  encode_time_s : float;
  solve_time_s : float;
  extract_time_s : float;
  kstar : int;
  delta_paths : int;
  pool_size : int;
  workers : int;
  heuristic_time_s : float;
}

type t = {
  solution : Solution.t option;
  status : Milp.Status.mip_status;
  stats : stats;
  mip : Milp.Branch_bound.result;
  model : Milp.Model.t;
}
