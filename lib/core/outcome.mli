(** The one result type every driver returns.

    {!Solve.run}, {!Session.solve} and each {!Kstar.search} step used to
    carry two near-duplicate outcome records ([Solve.outcome] /
    [Session.outcome]) bridged by a conversion function; this module is
    the single shared shape.  Fields that only make sense for the
    approximate/session path ([kstar], [delta_paths], [pool_size]) are
    zero for a [Full_enum] solve. *)

type stats = {
  nvars : int;
  nconstrs : int;
  encode_time_s : float;
      (** Pool extension + (delta or full) encode time attributed to
          this solve. *)
  solve_time_s : float;
  extract_time_s : float;  (** Solution extraction + physics validation. *)
  kstar : int;  (** [K*] of the step this outcome belongs to; 0 for full. *)
  delta_paths : int;
      (** Candidate paths added since the previous solve of the same
          session (the whole pool on a first solve); 0 for full. *)
  pool_size : int;
      (** Cumulative candidate paths across all routes; 0 for full. *)
  workers : int;
      (** Worker domains the tree search actually used — the resolved
          count after [--workers 0] auto-detection, so logs and bench
          JSON can report the truth on single-thread hosts. *)
  heuristic_time_s : float;
      (** Wall clock spent in the primal matheuristic (tabu search)
          before the tree search; 0 when the heuristic is off or was
          not run for this solve. *)
}

type t = {
  solution : Solution.t option;  (** Present when an incumbent exists. *)
  status : Milp.Status.mip_status;
  stats : stats;
  mip : Milp.Branch_bound.result;
  model : Milp.Model.t;  (** The solved model (e.g. for LP export). *)
}
