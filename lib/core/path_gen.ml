module Digraph = Netgraph.Digraph
module Path = Netgraph.Path
module Yen = Netgraph.Yen

type route_pool = {
  req_index : int;
  src : int;
  dst : int;
  replicas : int;
  pool : Path.t list;
}

type result = { pools : route_pool list; dropped_edges : int }

let best_device_contribution inst i =
  List.fold_left
    (fun acc (_, (c : Components.Component.t)) ->
      Float.max acc
        (c.Components.Component.tx_power_dbm +. c.Components.Component.antenna_gain_dbi))
    0. (Instance.devices_for inst i)

let best_rx_gain inst j =
  List.fold_left
    (fun acc (_, (c : Components.Component.t)) ->
      Float.max acc c.Components.Component.antenna_gain_dbi)
    0. (Instance.devices_for inst j)

let best_case_rss inst i j =
  -.inst.Instance.pl.(i).(j) +. best_device_contribution inst i +. best_rx_gain inst j

(* Drop links that no component sizing can lift above the LQ floor
   (working copy; the instance graph is left untouched). *)
let lq_filtered_graph inst =
  let floor = inst.Instance.noise_dbm +. Instance.min_snr_db inst in
  let g = Digraph.copy inst.Instance.graph in
  let dropped = ref 0 in
  Digraph.iter_edges
    (fun i j _ ->
      if best_case_rss inst i j < floor then begin
        Digraph.set_weight g i j infinity;
        incr dropped
      end)
    g;
  (g, !dropped)

let satisfies_hops bounds p =
  let h = Path.length p in
  List.for_all
    (fun { Requirements.hop_sense; hops } ->
      match hop_sense with `Le -> h <= hops | `Ge -> h >= hops | `Eq -> h = hops)
    bounds

(* The pool member sharing the most edges with the rest of the pool —
   the "minimally disjoint" path of Algorithm 1. *)
let most_shared_path pool =
  match pool with
  | [] -> None
  | [ p ] -> Some p
  | _ ->
      let counts = Hashtbl.create 64 in
      List.iter
        (fun p ->
          List.iter
            (fun e ->
              Hashtbl.replace counts e (1 + Option.value ~default:0 (Hashtbl.find_opt counts e)))
            (Path.edges p))
        pool;
      let sharing p =
        List.fold_left
          (fun acc e -> acc + Option.value ~default:1 (Hashtbl.find_opt counts e) - 1)
          0 (Path.edges p)
      in
      let best =
        List.fold_left
          (fun (bp, bs) p ->
            let s = sharing p in
            if s > bs then (p, s) else (bp, bs))
          (List.hd pool, sharing (List.hd pool))
          (List.tl pool)
      in
      Some (fst best)

let disconnect g p =
  List.iter (fun (u, v) -> if Digraph.mem_edge g u v then Digraph.set_weight g u v infinity) (Path.edges p)

(* Greedy check that the pool admits [n] mutually edge-disjoint members
   (the construction guarantees it; we verify to fail fast). *)
let disjoint_capacity pool =
  let rec go chosen = function
    | [] -> List.length chosen
    | p :: rest ->
        if List.for_all (fun q -> Path.edge_disjoint p q) chosen then go (p :: chosen) rest
        else go chosen rest
  in
  go [] pool

(* Persistent BalanceDive state for one route: the evolving work graph
   (with every previous round's minimally-disjoint removal applied), the
   dedup table, and the pool in reverse discovery order.  Keeping these
   alive lets an incremental session extend the pool instead of
   recomputing it from scratch at every K* schedule step. *)
type route_state = {
  rs_route : Requirements.route;
  rs_index : int;
  rs_work : Digraph.t;
  rs_seen : ((int * int) list, unit) Hashtbl.t;
  mutable rs_rpool : Path.t list;
}

type state = {
  st_inst : Instance.t;
  st_base : Digraph.t;
  st_dropped : int;
  st_routes : route_state list;
}

let init inst =
  let base, dropped = lq_filtered_graph inst in
  let routes = inst.Instance.requirements.Requirements.routes in
  let st_routes =
    List.mapi
      (fun idx (r : Requirements.route) ->
        {
          rs_route = r;
          rs_index = idx;
          rs_work = Digraph.copy base;
          rs_seen = Hashtbl.create 64;
          rs_rpool = [];
        })
      routes
  in
  { st_inst = inst; st_base = base; st_dropped = dropped; st_routes }

let extend st ~kstar =
  if kstar < 1 then invalid_arg "Path_gen.extend: kstar < 1";
  let inst = st.st_inst in
  let rec per_route acc = function
    | [] -> Ok (List.rev acc)
    | rs :: rest -> (
        let r = rs.rs_route in
        let idx = rs.rs_index in
        let nrep = r.Requirements.replicas in
        let k = (kstar + nrep - 1) / nrep in
        (* BalanceDive: nrep rounds of k candidates, nrep * k >= kstar.
           The pool is kept in discovery order (rs_rpool is its
           reverse); a hashtable keyed on the path's edge list dedups in
           O(1) instead of a structural List.mem scan per candidate.  On
           a fresh state this is exactly Algorithm 1; on a grown state
           the rounds continue from the already-disconnected work graph,
           so only genuinely new candidates join the pool. *)
        let bounds = Instance.effective_hop_bounds inst r in
        for _ = 1 to nrep do
          let found =
            Yen.k_shortest rs.rs_work ~src:r.Requirements.src ~dst:r.Requirements.dst ~k
          in
          List.iter
            (fun (_, p) ->
              let key = Path.edges p in
              if satisfies_hops bounds p && not (Hashtbl.mem rs.rs_seen key) then begin
                Hashtbl.add rs.rs_seen key ();
                rs.rs_rpool <- p :: rs.rs_rpool
              end)
            found;
          match most_shared_path (List.rev rs.rs_rpool) with
          | Some p -> disconnect rs.rs_work p
          | None -> ()
        done;
        match List.rev rs.rs_rpool with
        | [] ->
            Error
              (Printf.sprintf "route %d (%d -> %d): no feasible candidate path" idx
                 r.Requirements.src r.Requirements.dst)
        | pool_paths ->
            let pool_cap = disjoint_capacity pool_paths in
            if pool_cap < nrep then
              (* Distinguish a pool-construction shortfall from a graph
                 that cannot support the replication at all (Menger). *)
              let graph_cap =
                Netgraph.Maxflow.edge_disjoint_capacity st.st_base ~src:r.Requirements.src
                  ~dst:r.Requirements.dst
              in
              Error
                (Printf.sprintf
                   "route %d (%d -> %d): pool provides %d disjoint paths, %d required%s" idx
                   r.Requirements.src r.Requirements.dst pool_cap nrep
                   (if graph_cap < nrep then
                      Printf.sprintf
                        " (the filtered graph itself supports at most %d disjoint paths)"
                        graph_cap
                    else " (try a larger K*)"))
            else
              per_route
                ({
                   req_index = idx;
                   src = r.Requirements.src;
                   dst = r.Requirements.dst;
                   replicas = nrep;
                   pool = pool_paths;
                 }
                :: acc)
                rest)
  in
  match per_route [] st.st_routes with
  | Ok pools -> Ok { pools; dropped_edges = st.st_dropped }
  | Error e -> Error e

let generate ?(kstar = 10) inst =
  if kstar < 1 then invalid_arg "Path_gen.generate: kstar < 1";
  extend (init inst) ~kstar

let localization_candidates inst ~kstar =
  match inst.Instance.requirements.Requirements.localization with
  | None -> []
  | Some loc ->
      let anchors = Template.find_role inst.Instance.template Components.Component.Anchor in
      let channel = inst.Instance.channel in
      Array.to_list
        (Array.mapi
           (fun j pt ->
             let scored =
               List.map
                 (fun i ->
                   let a = (Template.node inst.Instance.template i).Template.loc in
                   (Radio.Channel.path_loss channel a pt, i))
                 anchors
             in
             let sorted = List.sort compare scored in
             let rec take n = function
               | [] -> []
               | (_, i) :: rest -> if n = 0 then [] else i :: take (n - 1) rest
             in
             (j, take kstar sorted))
           loc.Requirements.eval_points)
