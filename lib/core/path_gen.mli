(** Algorithm 1: approximate path encoding by Yen-based pruning.

    For every required source/destination pair the algorithm proposes a
    pool of [K*] promising candidate paths instead of enumerating all
    paths:

    {ol
    {- [ForkReplicas]/[BalanceDive]: split [K*] into [N_rep] rounds of
       [K = ceil (K* / N_rep)] candidates, [N_rep] being the number of
       disjoint path replicas the requirements demand;}
    {- each round runs Yen's K-shortest-path routine on the working
       path-loss weights;}
    {- [DisconnectMinDisjointPath]: after each round, the candidate
       sharing the most edges with the other candidates is disconnected
       (its edges' weights set to +inf) so the next round produces at
       least one path disjoint from it — guaranteeing the pool contains
       [N_rep] mutually disjoint members;}
    {- links that cannot meet the link-quality floor under any component
       sizing are dropped up front.}}

    Hop-bound requirements filter the candidate pools directly. *)

type route_pool = {
  req_index : int;  (** Index into [Requirements.routes]. *)
  src : int;
  dst : int;
  replicas : int;
  pool : Netgraph.Path.t list;
      (** Candidate paths, de-duplicated, best (lowest loss) first. *)
}

type result = {
  pools : route_pool list;
  dropped_edges : int;  (** Links removed by the LQ pre-filter. *)
}

val best_case_rss : Instance.t -> int -> int -> float
(** Highest achievable RSS of a link over all admissible sizings of its
    endpoints (used by the LQ pre-filter). *)

val generate : ?kstar:int -> Instance.t -> (result, string) Stdlib.result
(** Run Algorithm 1 with [kstar] (default 10, the paper's Table 1/3
    setting).  Fails if some required pair has no feasible candidate
    (e.g. disconnected after the LQ filter) or if a pool cannot supply
    the demanded number of disjoint replicas.  Equivalent to
    [extend (init inst) ~kstar]. *)

(** {1 Persistent generation state}

    A {!state} keeps each route's BalanceDive machinery alive — the
    LQ-filtered base graph, the per-route work graph with every
    minimally-disjoint removal applied so far, the dedup table, and the
    pool in discovery order — so an incremental K* sweep can {e extend}
    the candidate pools instead of recomputing them at every schedule
    step.  Pools grow monotonically: a path once proposed is never
    dropped or reordered. *)

type state

val init : Instance.t -> state
(** Fresh generation state: LQ filter applied, all pools empty. *)

val extend : state -> kstar:int -> (result, string) Stdlib.result
(** Run [replicas] further BalanceDive rounds of
    [ceil (kstar / replicas)] candidates per route on the persistent
    work graphs, dedup against everything proposed before, and return
    the {e cumulative} pools.  The first call on a fresh state is
    exactly {!generate}[ ~kstar].  On error (a route's pool still lacks
    its disjoint replicas) the path state keeps whatever was found —
    a later [extend] with a larger [kstar] continues from there. *)

val localization_candidates : Instance.t -> kstar:int -> (int * int list) list
(** Approximate pruning for the localization constraints: for each
    evaluation point, the [kstar] anchor candidates with the smallest
    path loss to it (paper §4.2 uses [K* = 20]). *)
