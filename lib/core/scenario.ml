type scale = Test | Bench | Tactical

let scale_name = function Test -> "test" | Bench -> "bench" | Tactical -> "tactical"

type t = {
  sc_name : string;
  sc_descr : string;
  sc_scale : scale;
  sc_expected : float option;
  sc_build : unit -> (Instance.t, string) result;
}

(* Registration order is the listing order, so [names] stays stable for
   CLI output and the daemon protocol; the table makes [find] O(1). *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let order : string list ref = ref []

let register sc =
  if Hashtbl.mem registry sc.sc_name then
    invalid_arg (Printf.sprintf "Scenario.register: duplicate name %S" sc.sc_name);
  if sc.sc_name = "" then invalid_arg "Scenario.register: empty name";
  Hashtbl.replace registry sc.sc_name sc;
  order := sc.sc_name :: !order

let names () = List.rev !order

let all () = List.filter_map (Hashtbl.find_opt registry) (names ())

let find name =
  match Hashtbl.find_opt registry name with
  | Some sc -> Ok sc
  | None ->
      Error
        (Printf.sprintf "unknown scenario %S (known: %s)" name
           (String.concat ", " (names ())))

let instance sc = sc.sc_build ()

let name sc = sc.sc_name

let descr sc = sc.sc_descr

let scale sc = sc.sc_scale

let expected sc = sc.sc_expected

(* ---- Table-1 builtins ----------------------------------------------

   The paper's data-collection WSN under the three objectives, at the
   bench scale ({!Scenarios.default_data_collection}) and the test
   scale used by the parallel regression suite (3 sensors on a 3x2
   relay grid), which keeps CI smoke and throughput benches fast.
   Registered at module initialisation so every linker of Archex sees
   the same base catalogue. *)

let test_data_collection_params =
  {
    Scenarios.default_data_collection with
    Scenarios.dc_sensors = 3;
    dc_relay_grid = (3, 2);
    dc_width = 45.;
    dc_height = 28.;
  }

let () =
  let objectives =
    [
      ("dollar", "$ cost", Objective.dollar);
      ("energy", "energy", Objective.energy);
      ("mixed", "$ + energy", Objective.combine Objective.dollar Objective.energy);
    ]
  in
  List.iter
    (fun (suffix, label, objective) ->
      register
        {
          sc_name = "dc-" ^ suffix;
          sc_descr = "Table 1 data collection, objective " ^ label;
          sc_scale = Bench;
          sc_expected = None;
          sc_build =
            (fun () ->
              Scenarios.data_collection ~objective Scenarios.default_data_collection);
        };
      register
        {
          sc_name = "dc-small-" ^ suffix;
          sc_descr = "Table 1 data collection (test scale), objective " ^ label;
          sc_scale = Test;
          sc_expected = None;
          sc_build =
            (fun () ->
              Scenarios.data_collection ~objective test_data_collection_params);
        })
    objectives
