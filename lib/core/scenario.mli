(** The scenario registry: one first-class catalogue of named, buildable
    problem instances shared by the CLI, the daemon, the benches, the
    examples and the scenario generator.

    Before this registry existed the Table-1 catalogue was duplicated
    between [lib/core/scenarios.ml] (parameter records + builders) and
    [lib/server/workload.ml] (daemon names).  Now everything registers
    here: {!Scenarios} stays the low-level builder toolkit, the six
    Table-1 entries are registered at module initialisation, and
    [Scenario_gen.register_defaults] adds the generated tactical
    families — which makes them addressable by name over the daemon
    protocol with no server changes, since [Workload] is a thin view
    over this table.

    The registry is process-global and intended to be populated during
    start-up (module init / main), before any concurrent lookups. *)

type scale =
  | Test  (** Seconds-fast; CI smoke and regression pins. *)
  | Bench  (** The Table-1 bench scale. *)
  | Tactical  (** Hundreds of candidates; pure B&B times out. *)

type t = {
  sc_name : string;  (** Unique lookup key; doubles as the daemon's session-cache key. *)
  sc_descr : string;
  sc_scale : scale;
  sc_expected : float option;
      (** Known-optimal objective, when one is pinned (used by smoke
          checks to assert agreement). *)
  sc_build : unit -> (Instance.t, string) result;
      (** Instance thunk; deterministic — building twice must yield
          identical instances. *)
}

val register : t -> unit
(** @raise Invalid_argument on a duplicate or empty name. *)

val names : unit -> string list
(** All registered names, in registration order. *)

val all : unit -> t list

val find : string -> (t, string) result
(** The entry, or an error listing the known names. *)

val instance : t -> (Instance.t, string) result
(** Build the scenario's instance (runs the thunk). *)

val name : t -> string

val descr : t -> string

val scale : t -> scale

val expected : t -> float option

val scale_name : scale -> string
(** ["test"] / ["bench"] / ["tactical"]. *)

val test_data_collection_params : Scenarios.data_collection_params
(** The test-scale Table-1 parameters (3 sensors, 3x2 relay grid) behind
    the [dc-small-*] entries — exported for regression suites that pin
    node counts against exactly this instance. *)
