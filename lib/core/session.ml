module BB = Milp.Branch_bound
module Model = Milp.Model
module Clock = Milp.Clock

type enc = {
  e_ctx : Encode_common.t;
  e_routes : Approx_encoding.route_state list;
}

type t = {
  s_inst : Instance.t;
  mutable s_config : Solver_config.t;
  s_loc_kstar : int;
  s_gen : Path_gen.state;
  mutable s_generation : Path_gen.result option;
  mutable s_enc : enc option;
  mutable s_kstar : int;
  mutable s_pool_total : int;
  (* Carry across steps (incremental mode only): the last incumbent in
     model-variable space with its objective, and the solver's cut
     carry-out. *)
  mutable s_carry : (float array * float) option;
  mutable s_carry_cuts : Milp.Cuts.cut list;
  (* Template presolve: the reduction trace of the last solve plus the
     watermark it was taken at, so the next solve re-applies the trace
     to the row delta instead of presolving the template from scratch. *)
  mutable s_ps : BB.presolve_state;
  mutable s_mark : Model.watermark option;
  (* One simplex workspace for the whole session: LP buffers and the CSC
     image survive across sweep steps. *)
  s_ws : Milp.Simplex.workspace;
  (* Encode work done since the last solve, reported by that solve. *)
  mutable s_pending_encode_s : float;
  mutable s_pending_delta : int;
}

let incremental t = t.s_config.Solver_config.incremental

let config t = t.s_config

(* Per-request reconfiguration of a warm session (the daemon's cache
   hands the same session to successive requests with different time
   limits, gaps, interrupt flags and streaming hooks).  Only knobs that
   leave the carried state valid may change: the encoding strategy
   kind, localization depth and incremental mode are structural, so a
   mismatch is a caller bug.  A change to the presolve group is legal
   but invalidates the recorded reduction trace: the watermark advances
   after every solve while the trace only advances on presolve-on
   template solves, so after e.g. an off->on toggle the stored trace no
   longer matches the delta [Model.touched_since] would report — replay
   against it would adopt stale verdicts.  Reset both so the next solve
   reduces from scratch and re-records. *)
let reconfigure t config =
  (match Solver_config.loc_kstar config with
  | Some l when l = t.s_loc_kstar -> ()
  | Some _ -> invalid_arg "Session.reconfigure: loc_kstar cannot change mid-session"
  | None -> invalid_arg "Session.reconfigure: sessions need the approximate strategy");
  if config.Solver_config.incremental <> incremental t then
    invalid_arg "Session.reconfigure: incremental mode cannot change mid-session";
  if not (Solver_config.same_presolve t.s_config config) then begin
    t.s_ps <- BB.create_presolve_state ();
    t.s_mark <- None
  end;
  t.s_config <- config

let start (config : Solver_config.t) inst =
  let loc_kstar =
    match Solver_config.loc_kstar config with
    | Some l -> l
    | None ->
        invalid_arg "Session.start: sessions need the approximate strategy (Approx)"
  in
  {
    s_inst = inst;
    s_config = config;
    s_loc_kstar = loc_kstar;
    s_gen = Path_gen.init inst;
    s_generation = None;
    s_enc = None;
    s_kstar = 0;
    s_pool_total = 0;
    s_carry = None;
    s_carry_cuts = [];
    s_ps = BB.create_presolve_state ();
    s_mark = None;
    s_ws = Milp.Simplex.create_workspace ();
    s_pending_encode_s = 0.;
    s_pending_delta = 0;
  }

let pool_total (generation : Path_gen.result) =
  List.fold_left
    (fun acc (p : Path_gen.route_pool) -> acc + List.length p.Path_gen.pool)
    0 generation.Path_gen.pools

(* Fresh encode of the cumulative pools — the first step of either mode,
   and every step of rebuild mode. *)
let build_fresh t (generation : Path_gen.result) =
  let ctx = Encode_common.create t.s_inst in
  let routes =
    List.map
      (fun (p : Path_gen.route_pool) ->
        let rs = Approx_encoding.init_route p in
        Approx_encoding.grow_route ctx rs p.Path_gen.pool;
        rs)
      generation.Path_gen.pools
  in
  Encode_common.set_localization_candidates ctx
    (Path_gen.localization_candidates t.s_inst ~kstar:t.s_loc_kstar);
  Encode_common.finalize ctx;
  t.s_enc <- Some { e_ctx = ctx; e_routes = routes };
  (* A fresh model invalidates any recorded reduction trace. *)
  t.s_ps <- BB.create_presolve_state ();
  t.s_mark <- None

let grow t ~kstar =
  match Path_gen.extend t.s_gen ~kstar with
  | Error e -> Error e
  | Ok generation ->
      let t0 = Clock.now () in
      t.s_generation <- Some generation;
      t.s_kstar <- kstar;
      (match t.s_enc with
      | Some enc when incremental t ->
          (* Delta encode into the live model: new selector columns and
             rows only, staged usage flushed once at the end. *)
          List.iter2
            (fun rs (p : Path_gen.route_pool) ->
              Approx_encoding.grow_route enc.e_ctx rs p.Path_gen.pool)
            enc.e_routes generation.Path_gen.pools;
          Encode_common.flush_usage enc.e_ctx
      | _ ->
          build_fresh t generation;
          if not (incremental t) then begin
            t.s_carry <- None;
            t.s_carry_cuts <- []
          end);
      let total = pool_total generation in
      t.s_pending_delta <- t.s_pending_delta + (total - t.s_pool_total);
      t.s_pool_total <- total;
      t.s_pending_encode_s <- t.s_pending_encode_s +. (Clock.now () -. t0);
      Ok ()

let create (config : Solver_config.t) inst =
  let kstar =
    match Solver_config.kstar config with
    | Some k -> k
    | None ->
        invalid_arg "Session.create: sessions need the approximate strategy (Approx)"
  in
  let t = start config inst in
  match grow t ~kstar with Ok () -> Ok t | Error e -> Error e

let solve t =
  match t.s_enc with
  | None -> invalid_arg "Session.solve: grow the session successfully first"
  | Some enc ->
      let options = Solver_config.bb_options t.s_config in
      let model = Encode_common.model enc.e_ctx in
      let direction = fst (Model.objective model) in
      (* Primal matheuristic: on the first solve (no carried incumbent
         yet) run the tabu search and adopt its best solution as a warm
         incumbent + cutoff.  The tree search keeps the optimality
         proof; the heuristic only accelerates the primal side. *)
      let heur, heuristic_time_s =
        if
          t.s_carry <> None
          || t.s_config.Solver_config.heuristic.Solver_config.h_mode
             = Solver_config.H_off
        then (None, 0.)
        else begin
          let t_h0 = Clock.now () in
          let heur =
            Matheuristic.attempt t.s_config.Solver_config.heuristic enc.e_ctx
              (List.map Approx_encoding.selection_of enc.e_routes)
          in
          (heur, Clock.now () -. t_h0)
        end
      in
      (match heur with
      | Some { Matheuristic.mh_warm = Some (hx, hobj); _ } ->
          (match t.s_config.Solver_config.on_incumbent with
          | Some f ->
              f hobj (match direction with Model.Minimize -> neg_infinity | Model.Maximize -> infinity)
          | None -> ());
          if incremental t then t.s_carry <- Some (Array.copy hx, hobj)
      | _ -> ());
      let warm, cutoff, seeds =
        if not (incremental t) then (None, options.BB.cutoff, [])
        else
          match t.s_carry with
          | None -> (None, options.BB.cutoff, t.s_carry_cuts)
          | Some (x, obj) ->
              (* Zero-extend the previous incumbent over any new
                 selector/auxiliary columns: old one-path/rank rows keep
                 their values and the new candidates simply stay
                 unselected, so the point remains feasible with the same
                 objective (Branch_bound re-validates it anyway). *)
              let n = Model.nvars model in
              let x' = Array.make n 0. in
              Array.blit x 0 x' 0 (Int.min n (Array.length x));
              let cutoff =
                if Float.is_nan options.BB.cutoff then obj
                else
                  match direction with
                  | Model.Minimize -> Float.min options.BB.cutoff obj
                  | Model.Maximize -> Float.max options.BB.cutoff obj
              in
              (Some x', cutoff, t.s_carry_cuts)
      in
      (* Non-incremental sessions never read [s_carry], so hand the
         heuristic incumbent to this solve directly. *)
      let warm, cutoff =
        match heur with
        | Some { Matheuristic.mh_warm = Some (hx, hobj); _ }
          when not (incremental t) ->
            let cutoff =
              if Float.is_nan cutoff then hobj
              else
                match direction with
                | Model.Minimize -> Float.min cutoff hobj
                | Model.Maximize -> Float.max cutoff hobj
            in
            (Some hx, cutoff)
        | _ -> (warm, cutoff)
      in
      let options = { options with BB.cutoff } in
      (* Template presolve: with a watermark from the previous solve,
         hand Branch_bound the exact row delta so it replays the stored
         reduction trace instead of propagating from scratch.  The
         per-step ablation ([presolve_template = false]) never passes a
         delta, so every solve reduces from scratch. *)
      let touched_rows =
        if
          incremental t
          && t.s_config.Solver_config.presolve.Solver_config.ps_template
        then Option.map (fun mark -> Model.touched_since model mark) t.s_mark
        else None
      in
      let t1 = Clock.now () in
      let mip =
        BB.solve ~options ~seed_cuts:seeds
          ~separators:(Struct_cuts.separators enc.e_ctx)
          ?warm_solution:warm ~presolve_state:t.s_ps
          ?touched_rows ~ws:t.s_ws
          ?interrupt:t.s_config.Solver_config.interrupt
          ?on_incumbent:t.s_config.Solver_config.on_incumbent
          ?scheduler:(Solver_config.scheduler t.s_config) model
      in
      t.s_mark <- Some (Model.mark model);
      let t2 = Clock.now () in
      let solution =
        match mip.BB.solution with
        | None -> None
        | Some _ ->
            let approx =
              {
                Approx_encoding.ctx = enc.e_ctx;
                selections = List.map Approx_encoding.selection_of enc.e_routes;
                generation = Option.get t.s_generation;
              }
            in
            Some (Solution.of_approx approx mip)
      in
      let t3 = Clock.now () in
      if incremental t then begin
        (match mip.BB.solution with
        | Some x -> t.s_carry <- Some (Array.copy x, mip.BB.objective)
        | None -> ());
        (* A previous carry stays valid even when this solve found
           nothing: the model only grew and the vector re-validates. *)
        t.s_carry_cuts <- mip.BB.carry_cuts
      end;
      let outcome =
        {
          Outcome.solution;
          status = mip.BB.status;
          mip;
          model;
          stats =
            {
              Outcome.nvars = Model.nvars model;
              nconstrs = Model.nconstrs model;
              encode_time_s = t.s_pending_encode_s;
              solve_time_s = t2 -. t1;
              extract_time_s = t3 -. t2;
              kstar = t.s_kstar;
              delta_paths = t.s_pending_delta;
              pool_size = t.s_pool_total;
              workers = options.BB.nworkers;
              heuristic_time_s;
            };
        }
      in
      t.s_pending_encode_s <- 0.;
      t.s_pending_delta <- 0;
      outcome
