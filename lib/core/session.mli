(** Incremental solve sessions over the K* sweep.

    A session keeps everything alive that {!Kstar.search} used to throw
    away between schedule steps: the per-route Yen/BalanceDive state
    ({!Path_gen.state}), the live {!Encode_common} context and
    {!Milp.Model.t} (grown in place via the watermark/append API), the
    last incumbent, and the solver's cut pool.  Each step then costs a
    pool {e extension}, a {e delta} encode (only the new candidate
    paths' columns and rows), and a solve that starts from the previous
    incumbent — wired into {!Milp.Branch_bound.solve} as a warm solution
    plus cutoff — with the surviving cover cuts re-certified against the
    grown model and re-seeded.

    With [incremental = false] the session degrades to the rebuild
    ablation: the same cumulative pools are re-encoded from scratch each
    step and solved cold, carrying nothing.  Both modes see identical
    pools (path generation state is shared machinery), so at optimality
    they reach identical final objectives — the [BENCH_PR3.json]
    comparison in [bench/] relies on this. *)

type t

type outcome = {
  solution : Solution.t option;  (** Extracted+validated incumbent. *)
  status : Milp.Status.mip_status;
  mip : Milp.Branch_bound.result;
  model : Milp.Model.t;  (** The live model (do not mutate). *)
  kstar : int;  (** K* of the step this outcome belongs to. *)
  nvars : int;
  nconstrs : int;
  encode_time_s : float;
      (** Pool extension + (delta or full) encode time of the grows
          since the previous solve. *)
  solve_time_s : float;
  extract_time_s : float;  (** Solution extraction/validation time. *)
  delta_paths : int;  (** Candidate paths added since the previous solve. *)
  pool_size : int;  (** Cumulative candidate paths across all routes. *)
}

val start : ?loc_kstar:int -> ?incremental:bool -> Instance.t -> t
(** A session with empty pools and no model yet.  [loc_kstar] (default
    20) fixes the localization-candidate pruning for the whole session —
    it is deliberately {e not} swept, so that grown models stay strict
    supersets.  [incremental] (default [true]) selects live-model growth
    vs the rebuild-each-step ablation. *)

val create :
  ?loc_kstar:int ->
  ?incremental:bool ->
  kstar:int ->
  Instance.t ->
  (t, string) result
(** [start] followed by a first {!grow}[ ~kstar]. *)

val grow : t -> kstar:int -> (unit, string) result
(** Extend every route's candidate pool by a further BalanceDive round
    set at [kstar] ({!Path_gen.extend}) and bring the model up to date
    with the delta (or rebuild it, per mode).  On [Error] (a pool still
    cannot supply its disjoint replicas) the model is left untouched but
    the path-generation progress is kept, so a later [grow] with a
    larger [kstar] continues from there; the session stays solvable if a
    previous grow succeeded. *)

val solve : ?options:Milp.Branch_bound.options -> t -> outcome
(** Solve the current model.  In incremental mode the previous step's
    incumbent (zero-extended over new columns) is installed as warm
    solution and cutoff — so a step that cannot improve still returns
    the carried solution rather than [Mip_unknown] — and the carried
    cover cuts are offered for re-certification.  A caller [cutoff] in
    [options] is combined direction-aware with the carried objective.
    @raise Invalid_argument if no {!grow} has succeeded yet. *)

val incremental : t -> bool
