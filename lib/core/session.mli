(** Incremental solve sessions over the K* sweep.

    A session keeps everything alive that {!Kstar.search} used to throw
    away between schedule steps: the per-route Yen/BalanceDive state
    ({!Path_gen.state}), the live {!Encode_common} context and
    {!Milp.Model.t} (grown in place via the watermark/append API), the
    last incumbent, and the solver's cut pool.  Each step then costs a
    pool {e extension}, a {e delta} encode (only the new candidate
    paths' columns and rows), and a solve that starts from the previous
    incumbent — wired into {!Milp.Branch_bound.solve} as a warm solution
    plus cutoff — with the surviving cover cuts re-certified against the
    grown model and re-seeded.

    The session is configured once, by the {!Solver_config.t} it is
    created with: the strategy's [loc_kstar] fixes localization pruning
    for the whole session (deliberately {e not} swept, so grown models
    stay strict supersets), [incremental] selects live-model growth vs
    the rebuild-each-step ablation, and {!Solver_config.bb_options}
    (including [nworkers]/[seed]) governs every {!solve}.

    With [incremental = false] the session degrades to the rebuild
    ablation: the same cumulative pools are re-encoded from scratch each
    step and solved cold, carrying nothing.  Both modes see identical
    pools (path generation state is shared machinery), so at optimality
    they reach identical final objectives — the [BENCH_PR3.json]
    comparison in [bench/] relies on this. *)

type t

val start : Solver_config.t -> Instance.t -> t
(** A session with empty pools and no model yet.
    @raise Invalid_argument if the config's strategy is [Full_enum]
    (sessions only make sense for the approximate encoding). *)

val create : Solver_config.t -> Instance.t -> (t, string) result
(** [start] followed by a first {!grow} at the config strategy's
    [kstar].
    @raise Invalid_argument if the config's strategy is [Full_enum]. *)

val grow : t -> kstar:int -> (unit, string) result
(** Extend every route's candidate pool by a further BalanceDive round
    set at [kstar] ({!Path_gen.extend}) and bring the model up to date
    with the delta (or rebuild it, per mode).  On [Error] (a pool still
    cannot supply its disjoint replicas) the model is left untouched but
    the path-generation progress is kept, so a later [grow] with a
    larger [kstar] continues from there; the session stays solvable if a
    previous grow succeeded. *)

val solve : t -> Outcome.t
(** Solve the current model with the session config's solver options.
    In incremental mode the previous step's incumbent (zero-extended
    over new columns) is installed as warm solution and cutoff — so a
    step that cannot improve still returns the carried solution rather
    than [Mip_unknown] — and the carried cover cuts are offered for
    re-certification.  A caller [cutoff] in the config is combined
    direction-aware with the carried objective.
    @raise Invalid_argument if no {!grow} has succeeded yet. *)

val incremental : t -> bool

val config : t -> Solver_config.t

val reconfigure : t -> Solver_config.t -> unit
(** Swap the session's config between solves — how the daemon applies
    per-request overrides (time limit, gap, workers, seed, interrupt
    flag, streaming hook, shared scheduler) to a warm cached session.
    Structural knobs must not change: the new config must use the
    approximate strategy with the same [loc_kstar], and the same
    [incremental] mode.
    @raise Invalid_argument on a structural mismatch. *)
