module Clock = Milp.Clock

type strategy = Solver_config.strategy =
  | Full_enum
  | Approx of { kstar : int; loc_kstar : int }

let approx = Solver_config.approx

type encoding = E_full of Full_encoding.t | E_approx of Approx_encoding.t

let ctx_of = function
  | E_full e -> e.Full_encoding.ctx
  | E_approx e -> e.Approx_encoding.ctx

let encode inst = function
  | Full_enum -> Ok (E_full (Full_encoding.encode inst))
  | Approx { kstar; loc_kstar } -> (
      match Approx_encoding.encode ~kstar ~loc_kstar inst with
      | Ok e -> Ok (E_approx e)
      | Error e -> Error e)

let encode_size inst strategy =
  match encode inst strategy with
  | Error e -> Error e
  | Ok enc ->
      let m = Encode_common.model (ctx_of enc) in
      Ok (Milp.Model.nvars m, Milp.Model.nconstrs m)

let run (config : Solver_config.t) inst =
  match config.Solver_config.strategy with
  | Approx _ -> (
      (* One-shot wrapper over a single-step session.  A fresh session's
         first step has no carry, so options (cutoff included) pass
         through to the solver untouched. *)
      match Session.create config inst with
      | Error e -> Error e
      | Ok session -> Ok (Session.solve session))
  | Full_enum ->
      let options = Solver_config.bb_options config in
      let t0 = Clock.now () in
      let enc = Full_encoding.encode inst in
      let t1 = Clock.now () in
      let model = Encode_common.model enc.Full_encoding.ctx in
      let mip =
        Milp.Branch_bound.solve ~options
          ~separators:(Struct_cuts.separators enc.Full_encoding.ctx)
          ?interrupt:config.Solver_config.interrupt
          ?on_incumbent:config.Solver_config.on_incumbent
          ?scheduler:(Solver_config.scheduler config) model
      in
      let t2 = Clock.now () in
      let solution =
        match mip.Milp.Branch_bound.solution with
        | None -> None
        | Some _ -> Some (Solution.of_full enc mip)
      in
      let t3 = Clock.now () in
      Ok
        {
          Outcome.solution;
          status = mip.Milp.Branch_bound.status;
          stats =
            {
              Outcome.nvars = Milp.Model.nvars model;
              nconstrs = Milp.Model.nconstrs model;
              encode_time_s = t1 -. t0;
              solve_time_s = t2 -. t1;
              extract_time_s = t3 -. t2;
              kstar = 0;
              delta_paths = 0;
              pool_size = 0;
              workers = options.Milp.Branch_bound.nworkers;
              heuristic_time_s = 0.;
            };
          mip;
          model;
        }

let run_exn config inst =
  match run config inst with
  | Error e -> failwith ("Solve.run_exn: encoding failed: " ^ e)
  | Ok { Outcome.solution = None; status; _ } ->
      failwith
        ("Solve.run_exn: no solution (" ^ Milp.Status.mip_status_to_string status ^ ")")
  | Ok { Outcome.solution = Some s; _ } -> s
