type strategy = Full_enum | Approx of { kstar : int; loc_kstar : int }

let approx ?(kstar = 10) ?(loc_kstar = 20) () = Approx { kstar; loc_kstar }

type stats = {
  nvars : int;
  nconstrs : int;
  encode_time_s : float;
  solve_time_s : float;
  extract_time_s : float;
}

type outcome = {
  solution : Solution.t option;
  status : Milp.Status.mip_status;
  stats : stats;
  mip : Milp.Branch_bound.result;
  model : Milp.Model.t;
}

type encoding = E_full of Full_encoding.t | E_approx of Approx_encoding.t

let ctx_of = function
  | E_full e -> e.Full_encoding.ctx
  | E_approx e -> e.Approx_encoding.ctx

let encode inst = function
  | Full_enum -> Ok (E_full (Full_encoding.encode inst))
  | Approx { kstar; loc_kstar } -> (
      match Approx_encoding.encode ~kstar ~loc_kstar inst with
      | Ok e -> Ok (E_approx e)
      | Error e -> Error e)

let encode_size inst strategy =
  match encode inst strategy with
  | Error e -> Error e
  | Ok enc ->
      let m = Encode_common.model (ctx_of enc) in
      Ok (Milp.Model.nvars m, Milp.Model.nconstrs m)

let outcome_of_session (s : Session.outcome) =
  {
    solution = s.Session.solution;
    status = s.Session.status;
    stats =
      {
        nvars = s.Session.nvars;
        nconstrs = s.Session.nconstrs;
        encode_time_s = s.Session.encode_time_s;
        solve_time_s = s.Session.solve_time_s;
        extract_time_s = s.Session.extract_time_s;
      };
    mip = s.Session.mip;
    model = s.Session.model;
  }

let run ?(options = Milp.Branch_bound.default_options) inst strategy =
  match strategy with
  | Approx { kstar; loc_kstar } -> (
      (* One-shot wrapper over a single-step session.  A fresh session's
         first step has no carry, so options (cutoff included) pass
         through to the solver untouched. *)
      match Session.create ~loc_kstar ~kstar inst with
      | Error e -> Error e
      | Ok session -> Ok (outcome_of_session (Session.solve ~options session)))
  | Full_enum ->
      let t0 = Unix.gettimeofday () in
      let enc = Full_encoding.encode inst in
      let t1 = Unix.gettimeofday () in
      let model = Encode_common.model enc.Full_encoding.ctx in
      let mip = Milp.Branch_bound.solve ~options model in
      let t2 = Unix.gettimeofday () in
      let solution =
        match mip.Milp.Branch_bound.solution with
        | None -> None
        | Some _ -> Some (Solution.of_full enc mip)
      in
      let t3 = Unix.gettimeofday () in
      Ok
        {
          solution;
          status = mip.Milp.Branch_bound.status;
          stats =
            {
              nvars = Milp.Model.nvars model;
              nconstrs = Milp.Model.nconstrs model;
              encode_time_s = t1 -. t0;
              solve_time_s = t2 -. t1;
              extract_time_s = t3 -. t2;
            };
          mip;
          model;
        }

let run_exn ?options inst strategy =
  match run ?options inst strategy with
  | Error e -> failwith ("Solve.run_exn: encoding failed: " ^ e)
  | Ok { solution = None; status; _ } ->
      failwith
        ("Solve.run_exn: no solution (" ^ Milp.Status.mip_status_to_string status ^ ")")
  | Ok { solution = Some s; _ } -> s
