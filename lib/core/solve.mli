(** End-to-end driver: encode an instance with either path strategy,
    run the MILP solver, extract and validate the solution. *)

type strategy =
  | Full_enum  (** Exhaustive encoding (paper §2). *)
  | Approx of { kstar : int; loc_kstar : int }
      (** Algorithm 1 with [K*] route candidates and [loc_kstar]
          localization candidates per test point. *)

val approx : ?kstar:int -> ?loc_kstar:int -> unit -> strategy
(** [Approx] with defaults [kstar = 10], [loc_kstar = 20]. *)

type stats = {
  nvars : int;
  nconstrs : int;
  encode_time_s : float;
  solve_time_s : float;
  extract_time_s : float;
      (** Solution extraction + physics validation, previously invisible
          (it happens after the solver returns). *)
}

type outcome = {
  solution : Solution.t option;  (** Present when an incumbent exists. *)
  status : Milp.Status.mip_status;
  stats : stats;
  mip : Milp.Branch_bound.result;
  model : Milp.Model.t;  (** The solved model (e.g. for LP export). *)
}

val encode_size : Instance.t -> strategy -> (int * int, string) result
(** [(nvars, nconstrs)] of the encoding without solving — the
    problem-size comparison of the paper's Table 3. *)

val outcome_of_session : Session.outcome -> outcome
(** View a session step as a one-shot outcome (used by {!Kstar}). *)

val run :
  ?options:Milp.Branch_bound.options ->
  Instance.t ->
  strategy ->
  (outcome, string) result
(** Encode and solve.  [options] default to
    {!Milp.Branch_bound.default_options}.  Returns [Error] when the
    encoding itself fails (e.g. Algorithm 1 finds no candidates) and
    [Ok] with [solution = None] when the MILP is infeasible or hit its
    limits without an incumbent.  The [Approx] strategy is a thin
    wrapper over a single-step {!Session}. *)

val run_exn :
  ?options:Milp.Branch_bound.options -> Instance.t -> strategy -> Solution.t
(** @raise Failure when no solution is produced. *)
