(** End-to-end driver: encode an instance with either path strategy,
    run the MILP solver, extract and validate the solution.

    The whole driver stack is configured by one {!Solver_config.t}
    passed positionally — strategy, branch & bound options, session
    mode and parallel-search knobs all travel together.  Results come
    back as the shared {!Outcome.t}. *)

type strategy = Solver_config.strategy =
  | Full_enum  (** Exhaustive encoding (paper §2). *)
  | Approx of { kstar : int; loc_kstar : int }
      (** Algorithm 1 with [K*] route candidates and [loc_kstar]
          localization candidates per test point. *)

val approx : ?kstar:int -> ?loc_kstar:int -> unit -> strategy
(** [Approx] with defaults [kstar = 10], [loc_kstar = 20]. *)

val encode_size : Instance.t -> strategy -> (int * int, string) result
(** [(nvars, nconstrs)] of the encoding without solving — the
    problem-size comparison of the paper's Table 3. *)

val run : Solver_config.t -> Instance.t -> (Outcome.t, string) result
(** Encode and solve under the given config.  Returns [Error] when the
    encoding itself fails (e.g. Algorithm 1 finds no candidates) and
    [Ok] with [solution = None] when the MILP is infeasible or hit its
    limits without an incumbent.  The [Approx] strategy is a thin
    wrapper over a single-step {!Session}. *)

val run_exn : Solver_config.t -> Instance.t -> Solution.t
(** @raise Failure when no solution is produced. *)
