module BB = Milp.Branch_bound

type strategy = Full_enum | Approx of { kstar : int; loc_kstar : int }

type t = {
  strategy : strategy;
  options : BB.options;
  incremental : bool;
  presolve_template : bool;
  nworkers : int;
  seed : int;
  interrupt : bool Atomic.t option;
  on_incumbent : (float -> float -> unit) option;
  scheduler : Milp.Scheduler.t option;
}

let approx ?(kstar = 10) ?(loc_kstar = 20) () = Approx { kstar; loc_kstar }

let default =
  {
    strategy = approx ();
    options = BB.default_options;
    incremental = true;
    presolve_template = true;
    nworkers = 1;
    seed = 0;
    interrupt = None;
    on_incumbent = None;
    scheduler = None;
  }

let with_strategy strategy c = { c with strategy }

let with_full_enum c = { c with strategy = Full_enum }

let with_approx ?kstar ?loc_kstar () c =
  let k0, l0 =
    match c.strategy with
    | Approx { kstar; loc_kstar } -> (kstar, loc_kstar)
    | Full_enum -> (10, 20)
  in
  {
    c with
    strategy =
      Approx
        {
          kstar = Option.value kstar ~default:k0;
          loc_kstar = Option.value loc_kstar ~default:l0;
        };
  }

let with_options options c = { c with options }

let with_time_limit time_limit c = { c with options = { c.options with BB.time_limit } }

let with_node_limit node_limit c = { c with options = { c.options with BB.node_limit } }

let with_rel_gap rel_gap c = { c with options = { c.options with BB.rel_gap } }

let with_cutoff cutoff c = { c with options = { c.options with BB.cutoff } }

let with_warm_start warm_start c = { c with options = { c.options with BB.warm_start } }

let with_cuts cuts c = { c with options = { c.options with BB.cuts } }

let with_presolve presolve c = { c with options = { c.options with BB.presolve } }

let with_presolve_passes presolve_passes c =
  { c with options = { c.options with BB.presolve_passes } }

let with_presolve_template presolve_template c = { c with presolve_template }

let with_rc_fixing rc_fixing c = { c with options = { c.options with BB.rc_fixing } }

let with_dense_basis dense_basis c = { c with options = { c.options with BB.dense_basis } }

let with_pricing pricing c = { c with options = { c.options with BB.pricing } }

let with_harris harris c = { c with options = { c.options with BB.harris } }

let with_mem_stats mem_stats c = { c with options = { c.options with BB.mem_stats } }

let with_log log c = { c with options = { c.options with BB.log } }

let with_incremental incremental c = { c with incremental }

let with_workers nworkers c =
  if nworkers < 0 then
    invalid_arg "Solver_config.with_workers: need a worker count >= 0 (0 = auto-detect)";
  { c with nworkers }

let with_seed seed c = { c with seed }

let with_interrupt interrupt c = { c with interrupt = Some interrupt }

let with_on_incumbent on_incumbent c = { c with on_incumbent = Some on_incumbent }

let with_scheduler scheduler c = { c with scheduler = Some scheduler }

let effective_workers c =
  if c.nworkers = 0 then Domain.recommended_domain_count () else c.nworkers

let bb_options c = { c.options with BB.nworkers = effective_workers c; seed = c.seed }

let kstar c = match c.strategy with Approx { kstar; _ } -> Some kstar | Full_enum -> None

let loc_kstar c =
  match c.strategy with Approx { loc_kstar; _ } -> Some loc_kstar | Full_enum -> None
