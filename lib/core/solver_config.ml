module BB = Milp.Branch_bound

type strategy = Full_enum | Approx of { kstar : int; loc_kstar : int }

type kernel = {
  k_warm_start : bool;
  k_cuts : bool;
  k_cut_families : Milp.Cuts.family list;
  k_max_applied_cuts : int;
  k_cut_max_age : int;
  k_cut_pool_size : int;
  k_cut_min_violation : float;
  k_rc_fixing : bool;
  k_dense_basis : bool;
  k_pricing : Milp.Simplex.pricing;
  k_harris : bool;
}

type presolve = {
  ps_enabled : bool;
  ps_passes : Milp.Presolve.pass list;
  ps_template : bool;
}

type parallel = {
  par_workers : int;
  par_seed : int;
  par_scheduler : Milp.Scheduler.t option;
}

type heuristic_mode = H_off | H_tabu

type heuristic = {
  h_mode : heuristic_mode;
  h_iters : int;
  h_time_s : float;
  h_tenure : int;
  h_seed : int;
}

type t = {
  strategy : strategy;
  options : BB.options;
  kernel : kernel;
  presolve : presolve;
  parallel : parallel;
  heuristic : heuristic;
  incremental : bool;
  interrupt : bool Atomic.t option;
  on_incumbent : (float -> float -> unit) option;
}

let approx ?(kstar = 10) ?(loc_kstar = 20) () = Approx { kstar; loc_kstar }

(* The kernel/presolve groups carved out of a full options record, so
   [with_options] keeps its historical "replace everything" meaning. *)
let kernel_of_options (o : BB.options) =
  {
    k_warm_start = o.BB.warm_start;
    k_cuts = o.BB.cuts;
    k_cut_families = o.BB.cut_families;
    k_max_applied_cuts = o.BB.max_applied_cuts;
    k_cut_max_age = o.BB.cut_max_age;
    k_cut_pool_size = o.BB.cut_pool_size;
    k_cut_min_violation = o.BB.cut_min_violation;
    k_rc_fixing = o.BB.rc_fixing;
    k_dense_basis = o.BB.dense_basis;
    k_pricing = o.BB.pricing;
    k_harris = o.BB.harris;
  }

let no_heuristic =
  { h_mode = H_off; h_iters = 20_000; h_time_s = 5.; h_tenure = 0; h_seed = 0 }

let tabu ?(iters = 20_000) ?(time_s = 5.) ?(tenure = 0) ?(seed = 0) () =
  { h_mode = H_tabu; h_iters = iters; h_time_s = time_s; h_tenure = tenure; h_seed = seed }

let heuristic_mode_name = function H_off -> "off" | H_tabu -> "tabu"

let heuristic_mode_of_string = function
  | "off" -> Ok H_off
  | "tabu" -> Ok H_tabu
  | s -> Error (Printf.sprintf "unknown heuristic %S (known: tabu, off)" s)

let default =
  {
    strategy = approx ();
    options = BB.default_options;
    kernel = kernel_of_options BB.default_options;
    presolve =
      {
        ps_enabled = BB.default_options.BB.presolve;
        ps_passes = BB.default_options.BB.presolve_passes;
        ps_template = true;
      };
    parallel = { par_workers = 1; par_seed = 0; par_scheduler = None };
    heuristic = no_heuristic;
    incremental = true;
    interrupt = None;
    on_incumbent = None;
  }

(* ---- group setters (the primary API) ---- *)

let with_strategy strategy c = { c with strategy }

let with_full_enum c = { c with strategy = Full_enum }

let with_approx ?kstar ?loc_kstar () c =
  let k0, l0 =
    match c.strategy with
    | Approx { kstar; loc_kstar } -> (kstar, loc_kstar)
    | Full_enum -> (10, 20)
  in
  {
    c with
    strategy =
      Approx
        {
          kstar = Option.value kstar ~default:k0;
          loc_kstar = Option.value loc_kstar ~default:l0;
        };
  }

let with_kernel kernel c = { c with kernel }

let with_presolving presolve c = { c with presolve }

let with_parallelism parallel c =
  if parallel.par_workers < 0 then
    invalid_arg "Solver_config.with_parallelism: need a worker count >= 0 (0 = auto-detect)";
  { c with parallel }

let with_heuristic heuristic c = { c with heuristic }

let with_options options c =
  {
    c with
    options;
    kernel = kernel_of_options options;
    presolve =
      {
        c.presolve with
        ps_enabled = options.BB.presolve;
        ps_passes = options.BB.presolve_passes;
      };
  }

let with_incremental incremental c = { c with incremental }

let with_interrupt interrupt c = { c with interrupt = Some interrupt }

let with_on_incumbent on_incumbent c = { c with on_incumbent = Some on_incumbent }

(* ---- deprecated flat aliases (kept for one release) ---- *)

let with_time_limit time_limit c = { c with options = { c.options with BB.time_limit } }

let with_node_limit node_limit c = { c with options = { c.options with BB.node_limit } }

let with_rel_gap rel_gap c = { c with options = { c.options with BB.rel_gap } }

let with_cutoff cutoff c = { c with options = { c.options with BB.cutoff } }

let with_log log c = { c with options = { c.options with BB.log } }

let with_mem_stats mem_stats c = { c with options = { c.options with BB.mem_stats } }

let with_warm_start b c = { c with kernel = { c.kernel with k_warm_start = b } }

let with_cuts b c = { c with kernel = { c.kernel with k_cuts = b } }

let with_cut_families fs c =
  {
    c with
    kernel = { c.kernel with k_cuts = fs <> []; k_cut_families = fs };
  }

let with_max_applied_cuts n c =
  if n < 1 then
    invalid_arg "Solver_config.with_max_applied_cuts: need a cap >= 1";
  { c with kernel = { c.kernel with k_max_applied_cuts = n } }

let with_cut_max_age n c =
  if n < 1 then invalid_arg "Solver_config.with_cut_max_age: need an age >= 1";
  { c with kernel = { c.kernel with k_cut_max_age = n } }

let with_cut_pool_size n c =
  if n < 1 then
    invalid_arg "Solver_config.with_cut_pool_size: need a pool size >= 1";
  { c with kernel = { c.kernel with k_cut_pool_size = n } }

let with_cut_min_violation v c =
  if not (v > 0.) then
    invalid_arg "Solver_config.with_cut_min_violation: need a threshold > 0";
  { c with kernel = { c.kernel with k_cut_min_violation = v } }

let with_rc_fixing b c = { c with kernel = { c.kernel with k_rc_fixing = b } }

let with_dense_basis b c = { c with kernel = { c.kernel with k_dense_basis = b } }

let with_pricing p c = { c with kernel = { c.kernel with k_pricing = p } }

let with_harris b c = { c with kernel = { c.kernel with k_harris = b } }

let with_presolve b c = { c with presolve = { c.presolve with ps_enabled = b } }

let with_presolve_passes passes c =
  { c with presolve = { c.presolve with ps_passes = passes } }

let with_presolve_template b c =
  { c with presolve = { c.presolve with ps_template = b } }

let with_workers nworkers c =
  if nworkers < 0 then
    invalid_arg "Solver_config.with_workers: need a worker count >= 0 (0 = auto-detect)";
  { c with parallel = { c.parallel with par_workers = nworkers } }

let with_seed seed c = { c with parallel = { c.parallel with par_seed = seed } }

let with_scheduler s c = { c with parallel = { c.parallel with par_scheduler = Some s } }

(* ---- the single override merge ---- *)

type override = {
  o_strategy : strategy option;
  o_time_limit : float option;
  o_rel_gap : float option;
  o_cutoff : float option;
  o_kernel : kernel option;
  o_presolve : presolve option;
  o_heuristic : heuristic option;
  o_workers : int option;
  o_seed : int option;
  o_scheduler : Milp.Scheduler.t option;
  o_incremental : bool option;
  o_interrupt : bool Atomic.t option;
  o_on_incumbent : (float -> float -> unit) option;
}

let no_override =
  {
    o_strategy = None;
    o_time_limit = None;
    o_rel_gap = None;
    o_cutoff = None;
    o_kernel = None;
    o_presolve = None;
    o_heuristic = None;
    o_workers = None;
    o_seed = None;
    o_scheduler = None;
    o_incremental = None;
    o_interrupt = None;
    o_on_incumbent = None;
  }

let override o c =
  let opt v d = Option.value v ~default:d in
  let c = { c with strategy = opt o.o_strategy c.strategy } in
  let c =
    match o.o_time_limit with None -> c | Some tl -> with_time_limit tl c
  in
  let c = match o.o_rel_gap with None -> c | Some g -> with_rel_gap g c in
  let c = match o.o_cutoff with None -> c | Some cu -> with_cutoff cu c in
  let c = { c with kernel = opt o.o_kernel c.kernel } in
  let c = { c with presolve = opt o.o_presolve c.presolve } in
  let c = { c with heuristic = opt o.o_heuristic c.heuristic } in
  let c = match o.o_workers with None -> c | Some w -> with_workers w c in
  let c = match o.o_seed with None -> c | Some s -> with_seed s c in
  let c =
    match o.o_scheduler with None -> c | Some s -> with_scheduler s c
  in
  let c = { c with incremental = opt o.o_incremental c.incremental } in
  let c =
    match o.o_interrupt with None -> c | Some i -> with_interrupt i c
  in
  match o.o_on_incumbent with None -> c | Some f -> with_on_incumbent f c

(* ---- accessors ---- *)

let effective_workers c =
  if c.parallel.par_workers = 0 then Domain.recommended_domain_count ()
  else c.parallel.par_workers

let bb_options c =
  {
    c.options with
    BB.warm_start = c.kernel.k_warm_start;
    cuts = c.kernel.k_cuts;
    cut_families = c.kernel.k_cut_families;
    max_applied_cuts = c.kernel.k_max_applied_cuts;
    cut_max_age = c.kernel.k_cut_max_age;
    cut_pool_size = c.kernel.k_cut_pool_size;
    cut_min_violation = c.kernel.k_cut_min_violation;
    rc_fixing = c.kernel.k_rc_fixing;
    dense_basis = c.kernel.k_dense_basis;
    pricing = c.kernel.k_pricing;
    harris = c.kernel.k_harris;
    presolve = c.presolve.ps_enabled;
    presolve_passes = c.presolve.ps_passes;
    nworkers = effective_workers c;
    seed = c.parallel.par_seed;
  }

let scheduler c = c.parallel.par_scheduler

let kstar c = match c.strategy with Approx { kstar; _ } -> Some kstar | Full_enum -> None

let loc_kstar c =
  match c.strategy with Approx { loc_kstar; _ } -> Some loc_kstar | Full_enum -> None

(* Structural equality of the presolve group; scheduler-free so it can
   be compared with [=].  Used by {!Session.reconfigure} to decide when
   a cached reduction trace must be invalidated. *)
let same_presolve a b =
  a.presolve.ps_enabled = b.presolve.ps_enabled
  && a.presolve.ps_passes = b.presolve.ps_passes
  && a.presolve.ps_template = b.presolve.ps_template
