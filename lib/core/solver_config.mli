(** One self-contained solver configuration.

    Everything that used to be threaded through the driver stack as
    scattered optional arguments lives in a single immutable record,
    now organised as nested sub-records:

    - {!kernel} — simplex/B&B kernel toggles (warm starts, cuts,
      reduced-cost fixing, basis representation, pricing, ratio tests);
    - {!presolve} — the reduction stack (on/off, pass list, template
      trace reuse);
    - {!parallel} — worker domains, diversification seed, shared
      scheduler;
    - {!heuristic} — the primal matheuristic (tabu search) budget.

    Remaining scalar knobs (time/node limits, gaps, logging) stay in
    the raw {!Milp.Branch_bound.options} record under [options].

    Build a config with {!default}, the group setters and [|>]:

    {[
      let cfg =
        Solver_config.(
          default |> with_approx ~kstar:6 () |> with_time_limit 30.
          |> with_parallelism { default.parallel with par_workers = 4 }
          |> with_heuristic (tabu ~time_s:2. ()))
      in
      Solve.run cfg inst
    ]}

    Per-request deltas against a base config (the daemon's cached
    sessions) go through the single {!override} merge instead of ad-hoc
    setter chains. *)

type strategy =
  | Full_enum  (** Exhaustive encoding (paper §2). *)
  | Approx of { kstar : int; loc_kstar : int }
      (** Algorithm 1 with [K*] route candidates and [loc_kstar]
          localization candidates per test point. *)

(** Kernel toggles for the LP/B&B engine.  Defaults mirror
    {!Milp.Branch_bound.default_options}. *)
type kernel = {
  k_warm_start : bool;  (** Warm-started dual simplex re-solves. *)
  k_cuts : bool;  (** Master switch for the separation loop. *)
  k_cut_families : Milp.Cuts.family list;
      (** Which separators run ([Milp.Cuts.all_families] by default):
          GMI, cover, clique, negative-cycle and power/RSS cuts. *)
  k_max_applied_cuts : int;  (** Rows appended per round (default 32). *)
  k_cut_max_age : int;
      (** Pool evictions: rounds a cut may stay inactive (default 5). *)
  k_cut_pool_size : int;  (** Managed pool capacity (default 500). *)
  k_cut_min_violation : float;
      (** Minimum violation for a pooled cut to be applied at the root
          (default 1e-5); node separation uses 10x this. *)
  k_rc_fixing : bool;  (** Reduced-cost variable fixing. *)
  k_dense_basis : bool;  (** Dense explicit-inverse kernel ablation. *)
  k_pricing : Milp.Simplex.pricing;  (** Entering-column rule. *)
  k_harris : bool;  (** Harris/bound-flip ratio tests. *)
}

(** The presolve reduction stack. *)
type presolve = {
  ps_enabled : bool;  (** Root presolve (default [true]). *)
  ps_passes : Milp.Presolve.pass list;  (** Pass restriction. *)
  ps_template : bool;
      (** Incremental sessions presolve the template once and re-apply
          the reduction trace to each K* sweep step's delta (default);
          [false] presolves every step from scratch. *)
}

(** Parallel tree search. *)
type parallel = {
  par_workers : int;
      (** Worker domains (default 1); [0] = auto-detect via
          [Domain.recommended_domain_count] at solve time. *)
  par_seed : int;  (** Diversification seed; ignored at 1 worker. *)
  par_scheduler : Milp.Scheduler.t option;
      (** Run tree searches on this shared domain pool (the daemon's)
          instead of domains owned by each solve. *)
}

type heuristic_mode = H_off | H_tabu

(** Primal matheuristic budget.  With [h_mode = H_tabu], {!Session}
    runs a tabu search over topology+sizing moves before the first
    B&B solve and installs its incumbent as warm solution + cutoff. *)
type heuristic = {
  h_mode : heuristic_mode;
  h_iters : int;  (** Tabu iteration budget (default 20000). *)
  h_time_s : float;  (** Tabu wall-clock budget in seconds (default 5). *)
  h_tenure : int;  (** Tabu tenure; [0] = auto-size from the instance. *)
  h_seed : int;  (** Deterministic restart/diversification seed. *)
}

type t = {
  strategy : strategy;
  options : Milp.Branch_bound.options;
      (** Scalar limits (time/node/gap/log/mem_stats...).  Fields that
          belong to a group below ([warm_start], [presolve], [nworkers],
          ...) are shadowed by the groups — {!bb_options} resolves the
          authoritative merge. *)
  kernel : kernel;
  presolve : presolve;
  parallel : parallel;
  heuristic : heuristic;
  incremental : bool;
      (** Sessions grow the live model and carry incumbent + cuts across
          steps (default); [false] is the rebuild-each-step ablation. *)
  interrupt : bool Atomic.t option;
      (** Cooperative cancellation flag threaded into every solve this
          config drives: set it from a signal handler or another thread
          and the search returns its current incumbent. *)
  on_incumbent : (float -> float -> unit) option;
      (** Streaming hook, fired on each strict incumbent improvement
          with (objective, best bound) in the model's direction; must be
          thread-safe when running parallel. *)
}

val default : t
(** [Approx { kstar = 10; loc_kstar = 20 }],
    {!Milp.Branch_bound.default_options}, incremental, one worker,
    seed 0, heuristic off. *)

val approx : ?kstar:int -> ?loc_kstar:int -> unit -> strategy
(** [Approx] with defaults [kstar = 10], [loc_kstar = 20]. *)

val no_heuristic : heuristic
(** [H_off] with default budget knobs. *)

val tabu :
  ?iters:int -> ?time_s:float -> ?tenure:int -> ?seed:int -> unit -> heuristic
(** A tabu-search heuristic group with the given budget. *)

val heuristic_mode_name : heuristic_mode -> string
(** ["off"] / ["tabu"] — the [--heuristic] CLI spelling. *)

val heuristic_mode_of_string : string -> (heuristic_mode, string) result

(** Setters take the config {e last} so they chain with [|>]. *)

val with_strategy : strategy -> t -> t

val with_full_enum : t -> t

val with_approx : ?kstar:int -> ?loc_kstar:int -> unit -> t -> t
(** Switch to (or adjust) the approximate strategy; an omitted field
    keeps its current value when the strategy already is [Approx], else
    the {!approx} default. *)

val with_kernel : kernel -> t -> t

val with_presolving : presolve -> t -> t

val with_parallelism : parallel -> t -> t
(** @raise Invalid_argument on [par_workers < 0]. *)

val with_heuristic : heuristic -> t -> t
(** Select the primal matheuristic, e.g.
    [with_heuristic (tabu ~time_s:2. ())] or
    [with_heuristic no_heuristic]. *)

val with_options : Milp.Branch_bound.options -> t -> t
(** Replace the raw options record wholesale; the {!kernel} and
    {!presolve} groups are re-synchronised from its fields so the
    historical "replace everything" meaning is preserved. *)

val with_time_limit : float -> t -> t

val with_node_limit : int -> t -> t

val with_rel_gap : float -> t -> t

val with_cutoff : float -> t -> t

val with_mem_stats : bool -> t -> t

val with_log : bool -> t -> t

val with_incremental : bool -> t -> t

val with_interrupt : bool Atomic.t -> t -> t

val with_on_incumbent : (float -> float -> unit) -> t -> t

(** {2 Deprecated flat aliases}

    One-field setters from before the group split, kept for one release
    so out-of-tree callers keep compiling.  Each writes into the
    corresponding group; prefer {!with_kernel} / {!with_presolving} /
    {!with_parallelism}. *)

val with_warm_start : bool -> t -> t

val with_cuts : bool -> t -> t

val with_cut_families : Milp.Cuts.family list -> t -> t
(** Restrict separation to the given families.  Also flips the master
    [k_cuts] switch: a non-empty list enables separation, [[]] disables
    it (the [--cuts none] spelling). *)

val with_max_applied_cuts : int -> t -> t
(** @raise Invalid_argument on a cap < 1. *)

val with_cut_max_age : int -> t -> t
(** @raise Invalid_argument on an age < 1. *)

val with_cut_pool_size : int -> t -> t
(** @raise Invalid_argument on a size < 1. *)

val with_cut_min_violation : float -> t -> t
(** @raise Invalid_argument on a threshold <= 0. *)

val with_rc_fixing : bool -> t -> t

val with_dense_basis : bool -> t -> t

val with_pricing : Milp.Simplex.pricing -> t -> t

val with_harris : bool -> t -> t

val with_presolve : bool -> t -> t
(** Root presolve reduction stack (default [true]); [false] is the
    [--no-presolve] ablation baseline. *)

val with_presolve_passes : Milp.Presolve.pass list -> t -> t

val with_presolve_template : bool -> t -> t

val with_workers : int -> t -> t
(** [0] = auto-detect at solve time.
    @raise Invalid_argument on [n < 0]. *)

val with_seed : int -> t -> t

val with_scheduler : Milp.Scheduler.t -> t -> t

(** {2 Per-request overrides}

    A sparse delta merged onto a base config in one step — what
    {!Session.reconfigure} and the daemon's per-request knobs use
    instead of rebuilding a config from scratch. *)

type override = {
  o_strategy : strategy option;
  o_time_limit : float option;
  o_rel_gap : float option;
  o_cutoff : float option;
  o_kernel : kernel option;
  o_presolve : presolve option;
  o_heuristic : heuristic option;
  o_workers : int option;
  o_seed : int option;
  o_scheduler : Milp.Scheduler.t option;
  o_incremental : bool option;
  o_interrupt : bool Atomic.t option;
  o_on_incumbent : (float -> float -> unit) option;
}

val no_override : override
(** All fields [None] — [override no_override c = c]. *)

val override : override -> t -> t
(** [override o c] applies every [Some] field of [o] onto [c], group by
    group, in one merge. *)

(** {2 Accessors} *)

val effective_workers : t -> int
(** The worker count solves actually use: [parallel.par_workers], or
    [Domain.recommended_domain_count ()] when it is [0]. *)

val bb_options : t -> Milp.Branch_bound.options
(** The options record actually handed to {!Milp.Branch_bound.solve}:
    [t.options] with the {!kernel}, {!presolve} and {!parallel} group
    fields layered on top ([par_workers] resolved via
    {!effective_workers}). *)

val scheduler : t -> Milp.Scheduler.t option

val kstar : t -> int option
(** [Some k] for the approximate strategy, [None] for [Full_enum]. *)

val loc_kstar : t -> int option

val same_presolve : t -> t -> bool
(** Whether two configs agree on the whole {!presolve} group —
    {!Session.reconfigure} uses this to decide when a cached reduction
    trace must be invalidated. *)
