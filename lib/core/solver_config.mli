(** One self-contained solver configuration.

    Everything that used to be threaded through the driver stack as
    scattered optional arguments — [?options] (branch & bound),
    [?kstar]/[?loc_kstar] (encoding strategy), [?incremental] (session
    mode) — plus the parallel-search knobs ([nworkers], [seed]) lives in
    a single immutable record.  {!Solve.run}, {!Session.start} /
    {!Session.create} and {!Kstar.search} take it positionally; build
    one with {!default} and the [with_*] setters and pass the same value
    everywhere:

    {[
      let cfg =
        Solver_config.(
          default |> with_approx ~kstar:6 () |> with_time_limit 30.
          |> with_workers 4)
      in
      Solve.run cfg inst
    ]}

    The record is also what a worker domain needs to be spun up
    self-contained, which is why the parallel tree search forced this
    consolidation. *)

type strategy =
  | Full_enum  (** Exhaustive encoding (paper §2). *)
  | Approx of { kstar : int; loc_kstar : int }
      (** Algorithm 1 with [K*] route candidates and [loc_kstar]
          localization candidates per test point. *)

type t = {
  strategy : strategy;
  options : Milp.Branch_bound.options;
      (** Branch & bound options.  The [nworkers]/[seed] fields inside
          are ignored in favour of the config-level ones below —
          {!bb_options} resolves the authoritative merge. *)
  incremental : bool;
      (** Sessions grow the live model and carry incumbent + cuts across
          steps (default); [false] is the rebuild-each-step ablation. *)
  presolve_template : bool;
      (** Incremental sessions presolve the template once and re-apply
          the reduction trace to each K* sweep step's delta (default);
          [false] presolves every step from scratch — the per-step
          ablation.  Only meaningful with [incremental] and the
          presolve option on. *)
  nworkers : int;
      (** Worker domains for the tree search (default 1); [0] means
          auto-detect via [Domain.recommended_domain_count] at solve
          time — {!effective_workers} resolves it. *)
  seed : int;
      (** Diversification seed for parallel exploration (default 0);
          ignored when [nworkers = 1]. *)
  interrupt : bool Atomic.t option;
      (** Cooperative cancellation flag threaded into every solve this
          config drives (see {!Milp.Branch_bound.solve}): set it from a
          signal handler or another thread and the search returns its
          current incumbent. *)
  on_incumbent : (float -> float -> unit) option;
      (** Streaming hook, fired on each strict incumbent improvement
          with (objective, best bound) in the model's direction; must be
          thread-safe when [nworkers > 1]. *)
  scheduler : Milp.Scheduler.t option;
      (** Run tree searches on this shared domain pool (the daemon's)
          instead of domains owned by each solve. *)
}

val default : t
(** [Approx { kstar = 10; loc_kstar = 20 }],
    {!Milp.Branch_bound.default_options}, incremental, one worker,
    seed 0. *)

val approx : ?kstar:int -> ?loc_kstar:int -> unit -> strategy
(** [Approx] with defaults [kstar = 10], [loc_kstar = 20]. *)

(** Setters take the config {e last} so they chain with [|>]. *)

val with_strategy : strategy -> t -> t

val with_full_enum : t -> t

val with_approx : ?kstar:int -> ?loc_kstar:int -> unit -> t -> t
(** Switch to (or adjust) the approximate strategy; an omitted field
    keeps its current value when the strategy already is [Approx], else
    the {!approx} default. *)

val with_options : Milp.Branch_bound.options -> t -> t

val with_time_limit : float -> t -> t

val with_node_limit : int -> t -> t

val with_rel_gap : float -> t -> t

val with_cutoff : float -> t -> t

val with_warm_start : bool -> t -> t

val with_cuts : bool -> t -> t

val with_rc_fixing : bool -> t -> t

val with_presolve : bool -> t -> t
(** Root presolve reduction stack (default [true]); [false] is the
    [--no-presolve] ablation baseline. *)

val with_presolve_passes : Milp.Presolve.pass list -> t -> t
(** Restrict the reduction stack to the given passes (the
    [--presolve-passes] ablation). *)

val with_presolve_template : bool -> t -> t

val with_dense_basis : bool -> t -> t
(** Run every LP on the dense explicit-inverse kernel instead of the
    sparse LU one — the [--dense-basis] ablation baseline. *)

val with_pricing : Milp.Simplex.pricing -> t -> t
(** Simplex entering-column rule (default [Devex]); [Dantzig] is the
    [--pricing dantzig] ablation baseline. *)

val with_harris : bool -> t -> t
(** Harris two-pass primal ratio test + bound-flipping dual ratio test
    (default [true]); [false] is the [--no-harris] ablation baseline. *)

val with_mem_stats : bool -> t -> t
(** Record live heap words at each incumbent improvement
    ({!Milp.Branch_bound.result.live_words}). *)

val with_log : bool -> t -> t

val with_incremental : bool -> t -> t

val with_workers : int -> t -> t
(** [0] = auto-detect at solve time.
    @raise Invalid_argument on [n < 0]. *)

val with_seed : int -> t -> t

val with_interrupt : bool Atomic.t -> t -> t

val with_on_incumbent : (float -> float -> unit) -> t -> t

val with_scheduler : Milp.Scheduler.t -> t -> t

val effective_workers : t -> int
(** The worker count solves actually use: [nworkers], or
    [Domain.recommended_domain_count ()] when [nworkers = 0]. *)

val bb_options : t -> Milp.Branch_bound.options
(** The options record actually handed to {!Milp.Branch_bound.solve}:
    [t.options] with its [nworkers]/[seed] overridden by the
    config-level fields ([nworkers] resolved via
    {!effective_workers}). *)

val kstar : t -> int option
(** [Some k] for the approximate strategy, [None] for [Full_enum]. *)

val loc_kstar : t -> int option
