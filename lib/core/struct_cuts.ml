module Cuts = Milp.Cuts
module Component = Components.Component

(* Strictness margin on dBm comparisons: a device is "underpowered" for
   a link only when it misses the threshold by more than this, so FP
   noise in the path-loss table can never flip a cut's validity. *)
let dbm_tol = 1e-6

let min_violation = 1e-4

let power_cuts ctx x =
  let inst = Encode_common.instance ctx in
  let nx = Array.length x in
  let xv v = if v < nx then Float.max 0. (Float.min 1. x.(v)) else 0. in
  let out = ref [] in
  (* Candidate cut [lhs_vars <= rhs]: keep it when violated. *)
  let emit vars rhs =
    let lhs = List.fold_left (fun acc v -> acc +. xv v) 0. vars in
    if lhs > rhs +. min_violation then begin
      let row = Array.of_list (List.map (fun v -> (v, 1.0)) vars) in
      match Cuts.make row rhs Cuts.Power with
      | Some c -> out := (lhs -. rhs, c) :: !out
      | None -> ()
    end
  in
  (* General-coefficient variant: violation is measured geometrically
     (L2-normalized) because these rows mix unit binaries with
     route_cap-scaled product terms. *)
  let value v = if v < nx then x.(v) else 0. in
  let emit_general terms rhs =
    let lhs = List.fold_left (fun acc (v, c) -> acc +. (c *. value v)) 0. terms in
    let norm = sqrt (List.fold_left (fun acc (_, c) -> acc +. (c *. c)) 0. terms) in
    if norm > 1e-12 && (lhs -. rhs) /. norm > min_violation then begin
      match Cuts.make (Array.of_list terms) rhs Cuts.Power with
      | Some c -> out := ((lhs -. rhs) /. norm, c) :: !out
      | None -> ()
    end
  in
  let tx_plus_gain (c : Component.t) =
    c.Component.tx_power_dbm +. c.Component.antenna_gain_dbi
  in
  (* ---- link-quality strengthening, per created edge ---- *)
  let floor = Encode_common.rss_floor_dbm ctx in
  List.iter
    (fun ((i, j), e) ->
      let di = Encode_common.sizing_vars ctx i in
      let dj = Encode_common.sizing_vars ctx j in
      if di <> [] && dj <> [] then begin
        let need = floor +. inst.Instance.pl.(i).(j) in
        let gmax_j =
          List.fold_left
            (fun acc (c, _) -> Float.max acc c.Component.antenna_gain_dbi)
            neg_infinity dj
        in
        let tmax_i =
          List.fold_left (fun acc (c, _) -> Float.max acc (tx_plus_gain c)) neg_infinity di
        in
        (* Transmit side: devices at i that miss the threshold even
           against the best receive gain can never carry the link. *)
        let weak_i =
          List.filter_map
            (fun (c, v) ->
              if tx_plus_gain c +. gmax_j < need -. dbm_tol then Some v else None)
            di
        in
        if weak_i <> [] then emit (e :: weak_i) 1.;
        (* Receive side, against the strongest transmitter. *)
        let weak_j =
          List.filter_map
            (fun (c, v) ->
              if tmax_i +. c.Component.antenna_gain_dbi < need -. dbm_tol then Some v
              else None)
            dj
        in
        if weak_j <> [] then emit (e :: weak_j) 1.;
        (* Pairwise lifting: fixing the receiving device d' tightens the
           incompatible transmit set.  e + m_d'j + sum_{Inc(d')} m_di <= 2
           (with e = 1 and d' selected, every incompatible d is off; all
           other corners are bounded by the sizing exactly-one rows). *)
        List.iter
          (fun ((c' : Component.t), v') ->
            let inc =
              List.filter_map
                (fun (c, v) ->
                  if tx_plus_gain c +. c'.Component.antenna_gain_dbi < need -. dbm_tol
                  then Some v
                  else None)
                di
            in
            (* Only worth emitting when it forbids a pair the one-sided
               cut does not already kill (Inc ⊆ D_i is dominated). *)
            if List.exists (fun v -> not (List.mem v weak_i)) inc then
              emit (e :: v' :: inc) 2.)
          dj
      end)
    (Encode_common.edge_vars ctx);
  (* ---- localization reach strengthening ---- *)
  (match inst.Instance.requirements.Requirements.localization with
  | None -> ()
  | Some loc ->
      List.iter
        (fun ((i, j), r) ->
          let di = Encode_common.sizing_vars ctx i in
          if di <> [] && j < Array.length loc.Requirements.eval_points then begin
            let pl =
              Encode_common.eval_path_loss ctx i loc.Requirements.eval_points.(j)
            in
            let need = loc.Requirements.loc_min_rss_dbm +. pl in
            let weak =
              List.filter_map
                (fun (c, v) ->
                  if tx_plus_gain c < need -. dbm_tol then Some v else None)
                di
            in
            if weak <> [] then emit (r :: weak) 1.
          end)
        (Encode_common.reach_vars ctx));
  (* ---- aggregated energy-product strengthening ---- *)
  (* The energy objective is linear in products w_d = m_d * usage; each
     w_d's own lower-bound row [w_d >= U - R (1 - m_d)] collapses when
     the device menu is fractionally split, so the LP routes traffic
     while paying nothing for it.  Aggregating over the whole menu with
     the cheapest traffic rate c_min stays valid and closes that hole:

        sum_d c_d w_d  >=  c_min (U - R (1 - sum_d m_d))

     With device d* selected (sum m = 1) the products collapse to
     w_d* = U and the inequality reads c_d* U >= c_min U; with no
     device, U <= R makes the right side nonpositive.  R is the usage
     expression's upper bound under the original model bounds, so the
     cut is globally valid and pool-eligible for the whole tree. *)
  let model = Encode_common.model ctx in
  List.iter
    (fun (usage, devs) ->
      let c_min =
        List.fold_left (fun acc (c, _, _) -> Float.min acc c) infinity devs
      in
      if c_min > 0. then begin
        let u0 = Milp.Lin.constant usage in
        let r =
          Milp.Lin.fold
            (fun v a acc ->
              let b =
                if a > 0. then Milp.Model.var_ub model v
                else Milp.Model.var_lb model v
              in
              acc +. (a *. b))
            usage u0
        in
        if Float.is_finite r && r > u0 +. 1e-9 then begin
          let tbl = Hashtbl.create 16 in
          let add v c =
            Hashtbl.replace tbl v
              (c +. Option.value ~default:0. (Hashtbl.find_opt tbl v))
          in
          Milp.Lin.iter (fun v a -> add v (c_min *. a)) usage;
          List.iter
            (fun (c, mv, wv) ->
              add mv (c_min *. r);
              add wv (-.c))
            devs;
          let row =
            Hashtbl.fold
              (fun v c acc -> if Float.abs c > 1e-12 then (v, c) :: acc else acc)
              tbl []
          in
          emit_general row (c_min *. (r -. u0))
        end
      end)
    (Encode_common.energy_traffic_groups ctx);
  !out
  |> List.sort (fun (a, _) (b, _) -> compare (b : float) a)
  |> List.filteri (fun i _ -> i < 16)
  |> List.map snd

let separators ctx =
  if
    Encode_common.edge_vars ctx = []
    && Encode_common.reach_vars ctx = []
    && Encode_common.energy_traffic_groups ctx = []
  then []
  else [ power_cuts ctx ]
