(** Problem-structure cut separation from the instance data.

    The paper's link-quality rows (2b) and localization-quality rows
    (4a) are big-M activations: with [e_ij = 0] (or [r_ij = 0]) the RSS
    requirement is switched off by a constant large enough for the
    worst sizing.  Their LP relaxations are notoriously weak — a
    fractional [e] buys a proportional slice of M.  But the instance
    data says exactly {e which} device choices can ever support an
    active link, and that knowledge linearizes into big-M-free valid
    inequalities in the style of Avella–Calamita–Palagi:

    - {b Link/device incompatibility}: for link [i -> j] needing
      [RSS >= floor], every device [d] at [i] whose
      [tx_d + gain_d + max-gain at j] still misses the threshold can
      never carry the link, so [e_ij + sum_{d in D_i} m_di <= 1]
      (and symmetrically for the receive side).
    - {b Pairwise lifting}: fixing the receiving device [d'] tightens
      the transmit set to [Inc(d') = {d : tx_d + gain_d + gain_d' <
      floor + PL}], giving [e_ij + m_d'j + sum_{Inc(d')} m_di <= 2].
    - {b Localization reach}: a reach binary [r_ij] (anchor [i] covers
      test point [j]) needs [tx_d + gain_d >= loc floor + PL(i, pt_j)];
      underpowered devices give [r_ij + sum_D m_di <= 1].

    A fourth family attacks the energy side.  The objective is linear
    in products [w_d = m_d * usage], each bounded below only by
    [w_d >= U - R (1 - m_d)] — a row that collapses whenever the LP
    splits the device menu fractionally, letting it route traffic while
    paying nothing for it.  Aggregating over the whole menu with the
    cheapest traffic rate [c_min] restores the coupling:

    {v sum_d c_d w_d  >=  c_min (U - R (1 - sum_d m_d)) v}

    where [R] is the usage expression's upper bound under the original
    model bounds and the [c_d] are read from the same code that installs
    the objective ({!Encode_common.energy_traffic_groups}).

    All four families are globally valid for every integer point of the
    model (they only restate the big-M / product rows at integrality),
    carry the {!Milp.Cuts.Power} origin, and are separated against the
    fractional point by direct evaluation.  They enter
    {!Milp.Branch_bound.solve} as {!Milp.Cuts.separator} closures via
    [~separators]. *)

val power_cuts : Encode_common.t -> float array -> Milp.Cuts.cut list
(** Separate the violated power/RSS/energy strengthening cuts (all
    families above) at the given full-space fractional point; at most
    16, most violated first, each violated (geometrically, rows
    L2-normalized) by more than 1e-4. *)

val separators : Encode_common.t -> Milp.Cuts.separator list
(** The separator closures to pass to {!Milp.Branch_bound.solve}.
    Empty when the encoding has no edge or reach variables yet. *)
