(* Tabu search over topology + sizing moves for the wireless design
   problem, after the tactical-design tabu literature: reroute a path
   slot, swap a node's device, close a node (compound reroute around
   it).  Adaptive penalties stand in for the feasibility-repair move
   set: infeasible solutions are explorable but increasingly expensive,
   and the incumbent only ever accepts penalty-free solutions.

   The module is deliberately dependency-free: the caller flattens the
   instance into the numeric tables of {!problem} (see
   [Archex.Matheuristic]) and interprets the winning {!solution} back
   into model space. *)

type problem = {
  nnodes : int;
  fixed : bool array;
  pools : int array array array;
  replicas : int array;
  ndevices : int array;
  pl : float array array;
  txg : float array array;
  rxg : float array array;
  rss_floor_dbm : float;
  node_cost : float array array;
  tx_cost : float array array;
  rx_cost : float array array;
  charge_base : float array array;
  charge_tx : float array array;
  charge_rx : float array array;
  charge_budget : float;
  budget_exempt : bool array;
}

type solution = { sol_choice : int array array; sol_device : int array }

type params = {
  tp_iters : int;
  tp_time_s : float;
  tp_tenure : int;  (* 0 = auto *)
  tp_seed : int;
}

let default_params = { tp_iters = 20_000; tp_time_s = 5.; tp_tenure = 0; tp_seed = 0 }

type result = {
  r_best : solution option;
  r_obj : float;
  r_iters : int;
  r_improvements : (int * float) list;
      (* (iteration, objective) per strict incumbent improvement, in
         chronological order: strictly decreasing objectives. *)
  r_first_feasible_s : float;
  r_time_s : float;
}

(* Deterministic PRNG (same LCG family as the generators).  Draw from
   the high bits: with a power-of-two modulus the low bits have tiny
   periods (bit 0 alternates every step), so [state mod 2] at a fixed
   position in a fixed-length call sequence would be constant — which
   would make small-menu device swaps unreachable moves. *)
let lcg seed =
  let state = ref ((seed lxor 0x2545F49) land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    if bound <= 1 then 0 else (!state lsr 15) mod bound

let validate p =
  let nroutes = Array.length p.pools in
  if Array.length p.replicas <> nroutes then Error "replicas/pools length mismatch"
  else
    let rec check r =
      if r = nroutes then Ok ()
      else if p.replicas.(r) < 1 then Error (Printf.sprintf "route %d: replicas < 1" r)
      else if Array.length p.pools.(r) < p.replicas.(r) then
        Error
          (Printf.sprintf "route %d: pool %d smaller than replicas %d" r
             (Array.length p.pools.(r))
             p.replicas.(r))
      else check (r + 1)
    in
    check 0

(* ---- derived per-problem tables ---- *)

type tables = {
  t_edges : (int * int) array array array;  (* route -> cand -> directed edges *)
  t_nodes_of : int array array array;  (* route -> cand -> nodes on path *)
  t_disj : bool array array array;  (* route -> c1 -> c2 edge-disjoint *)
}

let build_tables p =
  let edge_key (u, v) = (u * p.nnodes) + v in
  let t_edges =
    Array.map
      (Array.map (fun path ->
           Array.init
             (Array.length path - 1)
             (fun k -> (path.(k), path.(k + 1)))))
      p.pools
  in
  let t_nodes_of = Array.map (Array.map Array.copy) p.pools in
  let t_disj =
    Array.map
      (fun cands ->
        let n = Array.length cands in
        let sets =
          Array.map
            (fun edges ->
              let keys = Array.map edge_key edges in
              Array.sort compare keys;
              keys)
            cands
        in
        let disjoint a b =
          let i = ref 0 and j = ref 0 and ok = ref true in
          while !ok && !i < Array.length a && !j < Array.length b do
            let c = compare a.(!i) b.(!j) in
            if c = 0 then ok := false
            else if c < 0 then incr i
            else incr j
          done;
          !ok
        in
        Array.init n (fun c1 -> Array.init n (fun c2 -> disjoint sets.(c1) sets.(c2))))
      t_edges
  in
  { t_edges; t_nodes_of; t_disj }

(* ---- evaluation ---- *)

type eval = { e_obj : float; e_lq : float; e_life : float; e_disj : int }

let feasible e = e.e_lq <= 1e-9 && e.e_life <= 1e-9 && e.e_disj = 0

type scratch = { tx_uses : int array; rx_uses : int array }

let evaluate p tb scratch choice device =
  let { tx_uses; rx_uses } = scratch in
  Array.fill tx_uses 0 p.nnodes 0;
  Array.fill rx_uses 0 p.nnodes 0;
  let lq = ref 0. in
  let nroutes = Array.length p.pools in
  for r = 0 to nroutes - 1 do
    Array.iter
      (fun c ->
        Array.iter
          (fun (u, v) ->
            tx_uses.(u) <- tx_uses.(u) + 1;
            rx_uses.(v) <- rx_uses.(v) + 1)
          tb.t_edges.(r).(c))
      choice.(r)
  done;
  (* Link quality needs devices resolved, after usage is known. *)
  for r = 0 to nroutes - 1 do
    Array.iter
      (fun c ->
        Array.iter
          (fun (u, v) ->
            let rss =
              -.p.pl.(u).(v) +. p.txg.(u).(device.(u)) +. p.rxg.(v).(device.(v))
            in
            if rss < p.rss_floor_dbm then lq := !lq +. (p.rss_floor_dbm -. rss))
          tb.t_edges.(r).(c))
      choice.(r)
  done;
  let obj = ref 0. and life = ref 0. in
  for i = 0 to p.nnodes - 1 do
    let tx = tx_uses.(i) and rx = rx_uses.(i) in
    if p.fixed.(i) || tx + rx > 0 then begin
      let d = device.(i) in
      obj :=
        !obj
        +. p.node_cost.(i).(d)
        +. (float_of_int tx *. p.tx_cost.(i).(d))
        +. (float_of_int rx *. p.rx_cost.(i).(d));
      if (not p.budget_exempt.(i)) && p.charge_budget < infinity then begin
        let charge =
          p.charge_base.(i).(d)
          +. (float_of_int tx *. p.charge_tx.(i).(d))
          +. (float_of_int rx *. p.charge_rx.(i).(d))
        in
        if charge > p.charge_budget then
          life := !life +. ((charge -. p.charge_budget) /. p.charge_budget)
      end
    end
  done;
  let disj = ref 0 in
  for r = 0 to nroutes - 1 do
    let ch = choice.(r) in
    let k = Array.length ch in
    for a = 0 to k - 1 do
      for b = a + 1 to k - 1 do
        if not tb.t_disj.(r).(ch.(a)).(ch.(b)) then incr disj
      done
    done
  done;
  { e_obj = !obj; e_lq = !lq; e_life = !life; e_disj = !disj }

(* ---- public validator (used by tests and the warm-vector builder) ---- *)

let check p sol =
  match validate p with
  | Error e -> Error e
  | Ok () ->
      let nroutes = Array.length p.pools in
      if Array.length sol.sol_choice <> nroutes then Error "choice arity mismatch"
      else if Array.length sol.sol_device <> p.nnodes then Error "device arity mismatch"
      else begin
        let bad = ref None in
        Array.iteri
          (fun r ch ->
            if !bad = None then begin
              if Array.length ch <> p.replicas.(r) then
                bad := Some (Printf.sprintf "route %d: wrong slot count" r);
              Array.iteri
                (fun k c ->
                  if !bad = None then begin
                    if c < 0 || c >= Array.length p.pools.(r) then
                      bad := Some (Printf.sprintf "route %d: candidate %d out of range" r c);
                    if !bad = None && k > 0 && ch.(k - 1) >= c then
                      bad :=
                        Some (Printf.sprintf "route %d: candidates not strictly ascending" r)
                  end)
                ch
            end)
          sol.sol_choice;
        Array.iteri
          (fun i d ->
            if !bad = None && (d < 0 || d >= p.ndevices.(i)) then
              bad := Some (Printf.sprintf "node %d: device %d out of range" i d))
          sol.sol_device;
        match !bad with
        | Some e -> Error e
        | None ->
            let tb = build_tables p in
            let scratch =
              { tx_uses = Array.make p.nnodes 0; rx_uses = Array.make p.nnodes 0 }
            in
            let e = evaluate p tb scratch sol.sol_choice sol.sol_device in
            if e.e_disj > 0 then Error "disjointness violated"
            else if e.e_lq > 1e-9 then
              Error (Printf.sprintf "link quality violated by %.3f dB" e.e_lq)
            else if e.e_life > 1e-9 then
              Error (Printf.sprintf "lifetime budget violated by %.1f%%" (100. *. e.e_life))
            else Ok e.e_obj
      end

(* ---- initial solution ---- *)

(* Greedy: per route walk the pool in (Yen) order keeping pairwise
   disjoint candidates; pad with the first unused ones when short.
   Devices: cheapest per node, then one repair sweep upgrading the
   device wherever a selected link misses the RSS floor. *)
let initial p tb =
  let nroutes = Array.length p.pools in
  let choice =
    Array.init nroutes (fun r ->
        let npool = Array.length p.pools.(r) in
        let want = p.replicas.(r) in
        let picked = ref [] in
        let npicked = ref 0 in
        let c = ref 0 in
        while !npicked < want && !c < npool do
          if List.for_all (fun o -> tb.t_disj.(r).(o).(!c)) !picked then begin
            picked := !c :: !picked;
            incr npicked
          end;
          incr c
        done;
        let c = ref 0 in
        while !npicked < want do
          if not (List.mem !c !picked) then begin
            picked := !c :: !picked;
            incr npicked
          end;
          incr c
        done;
        let arr = Array.of_list !picked in
        Array.sort compare arr;
        arr)
  in
  let device =
    Array.init p.nnodes (fun i ->
        let best = ref 0 in
        for d = 1 to p.ndevices.(i) - 1 do
          if p.node_cost.(i).(d) < p.node_cost.(i).(!best) then best := d
        done;
        !best)
  in
  (* LQ repair sweep: upgrade the transmitter (then receiver) to the
     cheapest device closing the gap on each violated selected edge. *)
  for r = 0 to nroutes - 1 do
    Array.iter
      (fun c ->
        Array.iter
          (fun (u, v) ->
            let rss () =
              -.p.pl.(u).(v) +. p.txg.(u).(device.(u)) +. p.rxg.(v).(device.(v))
            in
            if rss () < p.rss_floor_dbm then begin
              let upgrade i =
                let best = ref (-1) in
                for d = 0 to p.ndevices.(i) - 1 do
                  let gain_ok =
                    if i = u then
                      -.p.pl.(u).(v) +. p.txg.(u).(d) +. p.rxg.(v).(device.(v))
                      >= p.rss_floor_dbm
                    else
                      -.p.pl.(u).(v) +. p.txg.(u).(device.(u)) +. p.rxg.(v).(d)
                      >= p.rss_floor_dbm
                  in
                  if
                    gain_ok
                    && (!best < 0 || p.node_cost.(i).(d) < p.node_cost.(i).(!best))
                  then best := d
                done;
                if !best >= 0 then device.(i) <- !best
              in
              upgrade u;
              if rss () < p.rss_floor_dbm then upgrade v
            end)
          tb.t_edges.(r).(c))
      choice.(r)
  done;
  (choice, device)

(* ---- the search ---- *)

type move =
  | Reroute of int * int * int  (* route, slot index, new candidate *)
  | Swap of int * int  (* node, new device *)
  | Close of int  (* node *)

let copy_choice choice = Array.map Array.copy choice

let solve ?(now = fun () -> 0.) (params : params) p =
  match validate p with
  | Error e -> Error e
  | Ok () ->
      let tb = build_tables p in
      let nroutes = Array.length p.pools in
      let scratch =
        { tx_uses = Array.make p.nnodes 0; rx_uses = Array.make p.nnodes 0 }
      in
      let rand = lcg params.tp_seed in
      let t_start = now () in
      let ncands = Array.fold_left (fun a c -> a + Array.length c) 0 p.pools in
      let tenure =
        if params.tp_tenure > 0 then params.tp_tenure
        else 7 + int_of_float (Float.sqrt (float_of_int (ncands + p.nnodes)))
      in
      let choice, device = initial p tb in
      let choice = ref choice in
      (* Tabu attributes: re-adding candidate c to route r / re-selecting
         device d at node i is forbidden until the stored iteration. *)
      let tabu_add = Array.map (fun c -> Array.make (Array.length c) (-1)) p.pools in
      let tabu_dev = Array.init p.nnodes (fun i -> Array.make p.ndevices.(i) (-1)) in
      let freq = Array.map (fun c -> Array.make (Array.length c) 0) p.pools in
      (* Adaptive penalty weights. *)
      let lam_lq = ref 10. and lam_life = ref 100. and lam_disj = ref 50. in
      let penal e =
        e.e_obj
        +. (!lam_lq *. e.e_lq)
        +. (!lam_life *. e.e_life)
        +. (!lam_disj *. float_of_int e.e_disj)
      in
      let eval () = evaluate p tb scratch !choice device in
      let best_sol = ref None and best_obj = ref infinity in
      let best_any = ref infinity in
      let improvements = ref [] in
      let first_feasible_s = ref nan in
      let record_if_incumbent iter e =
        if feasible e && e.e_obj < !best_obj -. 1e-9 then begin
          if !best_sol = None then first_feasible_s := now () -. t_start;
          best_sol :=
            Some { sol_choice = copy_choice !choice; sol_device = Array.copy device };
          best_obj := e.e_obj;
          improvements := (iter, e.e_obj) :: !improvements
        end
      in
      let e0 = eval () in
      record_if_incumbent 0 e0;
      best_any := penal e0;
      (* Apply/revert machinery.  [apply] returns an undo closure; moves
         that turn out impossible return None. *)
      let slot_of r c =
        let ch = !choice.(r) in
        let n = Array.length ch in
        let rec go k = if k = n then -1 else if ch.(k) = c then k else go (k + 1) in
        go 0
      in
      let apply = function
        | Reroute (r, slot, c) ->
            let ch = !choice.(r) in
            if slot_of r c >= 0 then None
            else begin
              let old = ch.(slot) in
              ch.(slot) <- c;
              Array.sort compare ch;
              Some (fun () ->
                  let k = slot_of r c in
                  ch.(k) <- old;
                  Array.sort compare ch)
            end
        | Swap (i, d) ->
            if device.(i) = d then None
            else begin
              let old = device.(i) in
              device.(i) <- d;
              Some (fun () -> device.(i) <- old)
            end
        | Close i ->
            if p.fixed.(i) then None
            else begin
              (* Replace every selected candidate whose path visits i
                 with the first pool candidate avoiding i that is not
                 already selected. *)
              let undos = ref [] in
              let ok = ref true in
              for r = 0 to nroutes - 1 do
                if !ok then
                  Array.iteri
                    (fun slot c ->
                      if
                        !ok
                        && Array.exists (fun v -> v = i) tb.t_nodes_of.(r).(c)
                      then begin
                        let npool = Array.length p.pools.(r) in
                        let pick = ref (-1) in
                        let k = ref 0 in
                        while !pick < 0 && !k < npool do
                          if
                            slot_of r !k < 0
                            && not
                                 (Array.exists (fun v -> v = i)
                                    tb.t_nodes_of.(r).(!k))
                          then pick := !k;
                          incr k
                        done;
                        match !pick with
                        | -1 -> ok := false
                        | c' ->
                            let ch = !choice.(r) in
                            let old = ch.(slot) in
                            ch.(slot) <- c';
                            Array.sort compare ch;
                            undos :=
                              (fun () ->
                                let k = slot_of r c' in
                                ch.(k) <- old;
                                Array.sort compare ch)
                              :: !undos
                      end)
                    !choice.(r)
              done;
              let undo_all () = List.iter (fun f -> f ()) !undos in
              if !ok && !undos <> [] then Some undo_all
              else begin
                undo_all ();
                None
              end
            end
      in
      let is_tabu iter = function
        | Reroute (r, _, c) -> tabu_add.(r).(c) > iter
        | Swap (i, d) -> tabu_dev.(i).(d) > iter
        | Close _ -> false
      in
      let mark_tabu iter = function
        | Reroute (r, slot_c, _) ->
            (* slot_c here carries the REMOVED candidate (see caller). *)
            tabu_add.(r).(slot_c) <- iter + tenure
        | Swap (i, old_d) -> tabu_dev.(i).(old_d) <- iter + tenure
        | Close _ -> ()
      in
      (* Sampled neighbourhood. *)
      let sample_moves () =
        let moves = ref [] in
        let n_reroute = 48 and n_swap = 24 and n_close = 4 in
        for _ = 1 to n_reroute do
          let r = rand nroutes in
          let npool = Array.length p.pools.(r) in
          let slot = rand (Array.length !choice.(r)) in
          let c = rand npool in
          moves := Reroute (r, slot, c) :: !moves
        done;
        (* Swaps biased to nodes in use. *)
        let used = ref [] in
        for i = 0 to p.nnodes - 1 do
          if p.fixed.(i) || scratch.tx_uses.(i) + scratch.rx_uses.(i) > 0 then
            used := i :: !used
        done;
        let used = Array.of_list !used in
        if Array.length used > 0 then
          for _ = 1 to n_swap do
            let i = used.(rand (Array.length used)) in
            if p.ndevices.(i) > 1 then moves := Swap (i, rand p.ndevices.(i)) :: !moves
          done;
        for _ = 1 to n_close do
          if Array.length used > 0 then begin
            let i = used.(rand (Array.length used)) in
            if not p.fixed.(i) then moves := Close i :: !moves
          end
        done;
        !moves
      in
      let stall = ref 0 in
      let stall_limit = 600 in
      let diversify iter =
        (* Frequency-based kick: in every route, swap the most-selected
           candidate for the least-selected compatible one, and clear
           the tabu state. *)
        for r = 0 to nroutes - 1 do
          let ch = !choice.(r) in
          if Array.length ch > 0 then begin
            let hot = ref 0 in
            Array.iteri
              (fun k c -> if freq.(r).(c) > freq.(r).(ch.(!hot)) then hot := k)
              ch;
            let npool = Array.length p.pools.(r) in
            let cold = ref (-1) in
            for c = 0 to npool - 1 do
              if
                slot_of r c < 0
                && (!cold < 0 || freq.(r).(c) < freq.(r).(!cold))
              then cold := c
            done;
            if !cold >= 0 then begin
              ch.(!hot) <- !cold;
              Array.sort compare ch
            end
          end
        done;
        Array.iter (fun a -> Array.fill a 0 (Array.length a) (-1)) tabu_add;
        Array.iter (fun a -> Array.fill a 0 (Array.length a) (-1)) tabu_dev;
        ignore iter;
        stall := 0
      in
      let iter = ref 0 in
      let out_of_time () =
        params.tp_time_s > 0. && now () -. t_start > params.tp_time_s
      in
      while !iter < params.tp_iters && not (out_of_time ()) do
        incr iter;
        let iter = !iter in
        (* Evaluate the sampled neighbourhood. *)
        let cur = eval () in
        ignore cur;
        let best_move = ref None in
        let consider m =
          match apply m with
          | None -> ()
          | Some undo ->
              let e = eval () in
              let pen = penal e in
              let admissible =
                (not (is_tabu iter m))
                || pen < !best_any -. 1e-12
                || (feasible e && e.e_obj < !best_obj -. 1e-9)
              in
              (match !best_move with
              | _ when not admissible -> ()
              | None -> best_move := Some (m, pen, e)
              | Some (_, bp, _) -> if pen < bp then best_move := Some (m, pen, e));
              undo ()
        in
        List.iter consider (sample_moves ());
        (match !best_move with
        | None -> incr stall
        | Some (m, pen, e) ->
            (* Record what the move removes before re-applying it, for
               the tabu attribute. *)
            let removed_attr =
              match m with
              | Reroute (r, slot, _) -> Some (Reroute (r, !choice.(r).(slot), 0))
              | Swap (i, _) -> Some (Swap (i, device.(i)))
              | Close _ -> None
            in
            (match apply m with Some _ -> () | None -> ());
            (match removed_attr with
            | Some (Reroute (r, removed, _)) -> mark_tabu iter (Reroute (r, removed, 0))
            | Some (Swap (i, old_d)) -> mark_tabu iter (Swap (i, old_d))
            | _ -> ());
            (* Frequency update on the selected candidates. *)
            for r = 0 to nroutes - 1 do
              Array.iter (fun c -> freq.(r).(c) <- freq.(r).(c) + 1) !choice.(r)
            done;
            if pen < !best_any -. 1e-12 then begin
              best_any := pen;
              stall := 0
            end
            else incr stall;
            record_if_incumbent iter e;
            (* Adaptive penalties: tighten on violation, relax when
               clean, within fixed bounds. *)
            let adapt lam viol =
              if viol then lam := Float.min 1e6 (!lam *. 1.05)
              else lam := Float.max 1. (!lam *. 0.99)
            in
            adapt lam_lq (e.e_lq > 1e-9);
            adapt lam_life (e.e_life > 1e-9);
            adapt lam_disj (e.e_disj > 0));
        if !stall > stall_limit then diversify iter
      done;
      Ok
        {
          r_best = !best_sol;
          r_obj = !best_obj;
          r_iters = !iter;
          r_improvements = List.rev !improvements;
          r_first_feasible_s = !first_feasible_s;
          r_time_s = now () -. t_start;
        }
