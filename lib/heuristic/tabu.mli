(** Tabu search over topology and sizing moves.

    The search operates on a flattened, dependency-free view of the
    wireless design problem: per-route candidate path pools (node index
    sequences), per-node device menus with exact linear objective and
    charge coefficients, and a pairwise path-loss table.  The caller
    (see [Archex.Matheuristic]) builds a {!problem} from the MILP
    encoding and maps the winning {!solution} back onto model
    variables.

    Moves: reroute one path slot to another pool candidate, swap a
    node's device, or close a node (compound reroute of every path
    through it).  Tabu attributes forbid re-adding a just-removed
    candidate or re-selecting a just-dropped device for [tenure]
    iterations, with the standard aspiration override when a move beats
    the best solution seen.  Constraint violations (link-quality floor,
    lifetime budget, replica disjointness) are explorable under
    adaptive penalty weights, but only penalty-free solutions become
    incumbents, so the incumbent objective trace is strictly
    decreasing.  A frequency-based kick diversifies after a stall.  All
    randomness comes from a seeded LCG: same problem, params and clock
    behaviour gives the same result. *)

type problem = {
  nnodes : int;  (** candidate nodes, indexed [0 .. nnodes-1] *)
  fixed : bool array;
      (** nodes that are always deployed (pay node cost even unused) *)
  pools : int array array array;
      (** [pools.(r).(c)] is candidate path [c] of route [r] as a node
          index sequence including source and destination *)
  replicas : int array;  (** disjoint replicas required per route *)
  ndevices : int array;  (** device menu size per node (>= 1) *)
  pl : float array array;  (** [pl.(u).(v)]: path loss u->v in dB *)
  txg : float array array;
      (** [txg.(i).(d)]: tx power + antenna gain of device [d] at [i] *)
  rxg : float array array;  (** receive antenna gain per node, device *)
  rss_floor_dbm : float;  (** minimum RSS on every selected edge *)
  node_cost : float array array;  (** objective cost of opening node with device *)
  tx_cost : float array array;  (** objective cost per transmitting path use *)
  rx_cost : float array array;  (** objective cost per receiving path use *)
  charge_base : float array array;  (** idle charge per period (mAs) *)
  charge_tx : float array array;  (** charge per transmitting path use *)
  charge_rx : float array array;  (** charge per receiving path use *)
  charge_budget : float;
      (** lifetime budget in the same unit; [infinity] disables the
          constraint *)
  budget_exempt : bool array;  (** nodes exempt from the budget (sinks) *)
}

type solution = {
  sol_choice : int array array;
      (** selected pool candidates per route, strictly ascending (the
          MILP's slot symmetry rows require sorted slot selections) *)
  sol_device : int array;  (** device ordinal per node *)
}

type params = {
  tp_iters : int;  (** iteration cap *)
  tp_time_s : float;  (** wall-clock cap; [0.] disables *)
  tp_tenure : int;  (** tabu tenure; [0] = auto from problem size *)
  tp_seed : int;  (** PRNG seed *)
}

val default_params : params
(** 20k iterations, 5 s, auto tenure, seed 0. *)

type result = {
  r_best : solution option;  (** best feasible solution found, if any *)
  r_obj : float;  (** its objective; [infinity] when [r_best = None] *)
  r_iters : int;  (** iterations performed *)
  r_improvements : (int * float) list;
      (** (iteration, objective) per strict incumbent improvement,
          chronological, objectives strictly decreasing *)
  r_first_feasible_s : float;
      (** clock time of the first incumbent; [nan] if none *)
  r_time_s : float;  (** total wall clock spent *)
}

val solve : ?now:(unit -> float) -> params -> problem -> (result, string) Stdlib.result
(** Run the search.  [now] supplies wall-clock time (defaults to a
    constant, i.e. no time limit in effect); pass [Milp.Clock.now] for
    real timing.  [Error _] reports a malformed problem (pool smaller
    than the replica count, arity mismatches). *)

val check : problem -> solution -> (float, string) Stdlib.result
(** Validate a solution against the problem: arities, ascending slot
    choices, device ranges, disjointness, link-quality floor and
    lifetime budget.  Returns the exact objective on success.  Used by
    tests and by the warm-vector builder as a safety gate. *)
