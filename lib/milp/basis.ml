type vstat = Basic | At_lower | At_upper | Free_zero

type t = {
  ncols : int;
  nrows : int;
  basis : int array;
  stat : vstat array;
  binv : float array array;
  age : int;
}

let make ~ncols ~nrows ~basis ~stat ~binv ~age =
  { ncols; nrows;
    basis = Array.copy basis;
    stat = Array.copy stat;
    binv = Array.map Array.copy binv;
    age }

let compatible b ~ncols ~nrows =
  b.ncols = ncols && b.nrows = nrows
  && Array.length b.basis = nrows
  && Array.length b.stat = ncols + (2 * nrows)
  && Array.length b.binv = nrows
  && Array.for_all (fun row -> Array.length row = nrows) b.binv

(* Structural sanity: every row has a basic column in range, each basic
   column is basic in exactly one row, and the statuses agree.  A basis
   that fails this check is stale (or corrupted) and must not be warm
   started from. *)
(* Append one row to the snapshot, its slack basic.  The column layout
   is positional (structurals, then slacks, then artificials), so the
   artificial block shifts up by one; every stored column index is
   remapped accordingly.  With the new slack basic, the grown basis
   matrix is [[B 0] [v 1]] (v = the row's coefficients on the old basic
   columns), whose inverse is [[B^-1 0] [-v B^-1 1]] — an O(m^2)
   extension that keeps every old entry bit-for-bit, so dual
   feasibility of the snapshot is preserved (the new slack's cost is 0
   and its dual price is 0). *)
let append_rows b (rows : (int * float) array array) =
  let k = Array.length rows in
  if k = 0 then b
  else begin
    let n = b.ncols and m = b.nrows in
    let m' = m + k in
    let remap j = if j >= n + m then j + k else j in
    let basis = Array.make m' 0 in
    for i = 0 to m - 1 do
      basis.(i) <- remap b.basis.(i)
    done;
    for t = 0 to k - 1 do
      basis.(m + t) <- n + m + t
      (* the new slacks *)
    done;
    let stat = Array.make (n + (2 * m')) At_lower in
    Array.blit b.stat 0 stat 0 (n + m);
    for t = 0 to k - 1 do
      stat.(n + m + t) <- Basic
    done;
    Array.blit b.stat (n + m) stat (n + m + k) m;
    (* the sealed artificials of the new rows stay At_lower *)
    (* V_{t,i} = row t's coefficient on the column basic in row i (only
       structural columns can appear in a cut row; slacks and
       artificials get 0).  Every new slack is basic in its own row
       only, so the grown matrix is the block triangular
       [[B 0] [V I]] with inverse [[B^-1 0] [-V B^-1 I]]. *)
    let pos = Hashtbl.create (2 * m) in
    Array.iteri (fun i j -> if j < n then Hashtbl.replace pos j i) b.basis;
    let binv = Array.make m' [||] in
    for i = 0 to m - 1 do
      let r = Array.make m' 0. in
      Array.blit b.binv.(i) 0 r 0 m;
      binv.(i) <- r
    done;
    for t = 0 to k - 1 do
      let last = Array.make m' 0. in
      Array.iter
        (fun (j, a) ->
          match Hashtbl.find_opt pos j with
          | Some i ->
              if a <> 0. then
                for c = 0 to m - 1 do
                  last.(c) <- last.(c) -. (a *. b.binv.(i).(c))
                done
          | None -> ())
        rows.(t);
      last.(m + t) <- 1.0;
      binv.(m + t) <- last
    done;
    { ncols = n; nrows = m'; basis; stat; binv; age = b.age }
  end

let append_row b row = append_rows b [| row |]

let well_formed b =
  let ntot = b.ncols + (2 * b.nrows) in
  let seen = Array.make ntot false in
  let ok = ref (Array.length b.basis = b.nrows && Array.length b.stat = ntot) in
  if !ok then
    Array.iter
      (fun j ->
        if j < 0 || j >= ntot || seen.(j) || b.stat.(j) <> Basic then ok := false
        else seen.(j) <- true)
      b.basis;
  if !ok then
    Array.iteri (fun j s -> if s = Basic && not seen.(j) then ok := false) b.stat;
  !ok
