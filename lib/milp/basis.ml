type vstat = Basic | At_lower | At_upper | Free_zero

type t = {
  ncols : int;
  nrows : int;
  basis : int array;
  stat : vstat array;
  factor : Lu.factor option;
}

let make ~ncols ~nrows ~basis ~stat ~factor =
  { ncols; nrows;
    basis = Array.copy basis;
    stat = Array.copy stat;
    factor }

let age b =
  match b.factor with
  | None -> 0
  | Some f -> Lu.factor_neta f

let compatible b ~ncols ~nrows =
  b.ncols = ncols && b.nrows = nrows
  && Array.length b.basis = nrows
  && Array.length b.stat = ncols + (2 * nrows)
  && (match b.factor with
     | None -> true
     | Some f -> Lu.factor_dim f = nrows)

(* Grow the snapshot in place for appended cut rows: the column layout
   is positional (structurals, then slacks, then artificials), so the
   artificial block shifts up by [k] and every stored column index is
   remapped accordingly.  With all new slacks basic, the grown basis
   matrix is the block triangular [[B 0] [V I]]; the stored factor is
   extended rather than rebuilt — see {!Lu.extend_rows}. *)
let append_rows b (rows : (int * float) array array) =
  let k = Array.length rows in
  if k = 0 then b
  else begin
    let n = b.ncols and m = b.nrows in
    let m' = m + k in
    let remap j = if j >= n + m then j + k else j in
    let basis = Array.make m' 0 in
    for i = 0 to m - 1 do
      basis.(i) <- remap b.basis.(i)
    done;
    for t = 0 to k - 1 do
      basis.(m + t) <- n + m + t
      (* the new slacks *)
    done;
    let stat = Array.make (n + (2 * m')) At_lower in
    Array.blit b.stat 0 stat 0 (n + m);
    for t = 0 to k - 1 do
      stat.(n + m + t) <- Basic
    done;
    Array.blit b.stat (n + m) stat (n + m + k) m;
    (* the sealed artificials of the new rows stay At_lower *)
    let factor =
      match b.factor with
      | None -> None
      | Some f ->
          (* V_{t,i} = row t's coefficient on the column basic in row i
             (only structural columns can appear in a cut row; slacks
             and artificials get 0).  The column -> basis-position map
             is a flat array: this runs once per cut round per node,
             and the dense lookup beats a hashtable on both allocation
             and probe cost. *)
          let pos = Array.make n (-1) in
          Array.iteri (fun i j -> if j < n then pos.(j) <- i) b.basis;
          let vrows =
            Array.map
              (fun row ->
                let ents = ref [] in
                Array.iter
                  (fun (j, a) ->
                    if a <> 0. && j < n && pos.(j) >= 0 then
                      ents := (pos.(j), a) :: !ents)
                  row;
                Array.of_list (List.rev !ents))
              rows
          in
          Some (Lu.extend_rows f vrows)
    in
    { ncols = n; nrows = m'; basis; stat; factor }
  end

let append_row b row = append_rows b [| row |]

(* Structural sanity: every row has a basic column in range, each basic
   column is basic in exactly one row, and the statuses agree.  A basis
   that fails this check is stale (or corrupted) and must not be warm
   started from. *)
let well_formed b =
  let ntot = b.ncols + (2 * b.nrows) in
  let seen = Array.make ntot false in
  let ok = ref (Array.length b.basis = b.nrows && Array.length b.stat = ntot) in
  if !ok then
    Array.iter
      (fun j ->
        if j < 0 || j >= ntot || seen.(j) || b.stat.(j) <> Basic then ok := false
        else seen.(j) <- true)
      b.basis;
  if !ok then
    Array.iteri (fun j s -> if s = Basic && not seen.(j) then ok := false) b.stat;
  !ok
