type vstat = Basic | At_lower | At_upper | Free_zero

type t = {
  ncols : int;
  nrows : int;
  basis : int array;
  stat : vstat array;
  binv : float array array;
  age : int;
}

let make ~ncols ~nrows ~basis ~stat ~binv ~age =
  { ncols; nrows;
    basis = Array.copy basis;
    stat = Array.copy stat;
    binv = Array.map Array.copy binv;
    age }

let compatible b ~ncols ~nrows =
  b.ncols = ncols && b.nrows = nrows
  && Array.length b.basis = nrows
  && Array.length b.stat = ncols + (2 * nrows)
  && Array.length b.binv = nrows
  && Array.for_all (fun row -> Array.length row = nrows) b.binv

(* Structural sanity: every row has a basic column in range, each basic
   column is basic in exactly one row, and the statuses agree.  A basis
   that fails this check is stale (or corrupted) and must not be warm
   started from. *)
let well_formed b =
  let ntot = b.ncols + (2 * b.nrows) in
  let seen = Array.make ntot false in
  let ok = ref (Array.length b.basis = b.nrows && Array.length b.stat = ntot) in
  if !ok then
    Array.iter
      (fun j ->
        if j < 0 || j >= ntot || seen.(j) || b.stat.(j) <> Basic then ok := false
        else seen.(j) <- true)
      b.basis;
  if !ok then
    Array.iteri (fun j s -> if s = Basic && not seen.(j) then ok := false) b.stat;
  !ok
