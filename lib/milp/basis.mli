(** Reusable simplex basis snapshots.

    A snapshot captures which column is basic in each row ([basis]), the
    bound status of every column ([stat]) — structural variables first,
    then one slack and one artificial per row — and, when available, a
    sparse LU {!Lu.factor} of the basis matrix at snapshot time.  The
    basis matrix depends only on which columns are basic, never on
    variable bounds, so a child node that differs from its parent only
    in bounds can reuse the parent's factor verbatim: restoring a
    snapshot costs one sparse FTRAN of the right-hand side instead of an
    O(m³) refactorization.  The factor's eta-file length
    ({!Lu.factor_neta}) plays the role the old pivot-update [age]
    counter did: restores refactorize lazily once it crosses the
    stability budget (see {!Simplex.solve}).  Storing a factor instead
    of a dense m×m inverse also shrinks every node record carried by
    branch & bound from O(m²) to O(nonzeros). *)

type vstat = Basic | At_lower | At_upper | Free_zero

type t = private {
  ncols : int;  (** Structural columns of the problem snapshotted. *)
  nrows : int;  (** Rows of the problem snapshotted. *)
  basis : int array;  (** Column basic in each row; length [nrows]. *)
  stat : vstat array;  (** Per-column status; length [ncols + 2*nrows]. *)
  factor : Lu.factor option;
      (** Sparse LU of the basis matrix at snapshot time, when the
          snapshotting solve had one that passed its stability probe;
          [None] forces the restore to refactorize from the header. *)
}

val make :
  ncols:int -> nrows:int -> basis:int array -> stat:vstat array ->
  factor:Lu.factor option -> t
(** Snapshot (copies the header arrays; the factor is immutable and
    shared). *)

val age : t -> int
(** Eta updates accumulated in the stored factor since its underlying
    factorization — the staleness measure restores budget against.
    [0] when no factor is stored (the restore refactorizes anyway). *)

val append_rows : t -> (int * float) array array -> t
(** [append_rows b rows] grows the snapshot by [k] appended constraint
    rows (sparse, over structural columns only — cut rows never touch
    slacks) whose slacks all start basic.  The grown basis matrix is the
    block triangular [[B 0] [V I]], where row [t] of [V] is [rows.(t)]
    restricted to the basic columns; the stored factor is grown in place
    via {!Lu.extend_rows} — old elimination steps and the eta file are
    kept verbatim, so solves over the original rows stay bit-identical
    and the cost is O(k·(m + nnz)) rather than a full snapshot rebuild.
    The grown snapshot stays dual feasible for the grown problem: every
    appended slack has zero cost and zero dual price, leaving every
    reduced cost unchanged.  Branch & bound uses this to ride the warm
    dual simplex across cutting-plane rounds: appending violated cuts
    leaves only primal bound violations on the new slacks, repaired by a
    few dual pivots. *)

val append_row : t -> (int * float) array -> t
(** [append_row b row] is [append_rows b [| row |]]. *)

val compatible : t -> ncols:int -> nrows:int -> bool
(** Does the snapshot belong to a problem of this shape? *)

val well_formed : t -> bool
(** Structural sanity check: basic columns are in range, distinct, and
    consistent with [stat].  A failing snapshot must be discarded. *)
