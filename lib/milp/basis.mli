(** Reusable simplex basis snapshots.

    A snapshot captures which column is basic in each row ([basis]), the
    bound status of every column ([stat]) — structural variables first,
    then one slack and one artificial per row — and the dense basis
    inverse ([binv]) at snapshot time.  The basis matrix depends only on
    which columns are basic, never on variable bounds, so a child node
    that differs from its parent only in bounds can reuse the parent's
    inverse verbatim: restoring a snapshot costs one O(m²) recompute of
    the basic values instead of an O(m³) refactorization.  [age] counts
    elementary pivot updates applied to [binv] since its last full
    refactorization; restores trigger a fresh factorization once it
    crosses a drift threshold, so numerical error cannot accumulate
    across generations of warm starts (see {!Simplex.solve}). *)

type vstat = Basic | At_lower | At_upper | Free_zero

type t = private {
  ncols : int;  (** Structural columns of the problem snapshotted. *)
  nrows : int;  (** Rows of the problem snapshotted. *)
  basis : int array;  (** Column basic in each row; length [nrows]. *)
  stat : vstat array;  (** Per-column status; length [ncols + 2*nrows]. *)
  binv : float array array;  (** Dense basis inverse, [nrows] x [nrows]. *)
  age : int;  (** Pivot updates to [binv] since its last factorization. *)
}

val make :
  ncols:int -> nrows:int -> basis:int array -> stat:vstat array ->
  binv:float array array -> age:int -> t
(** Snapshot (copies the arrays). *)

val append_rows : t -> (int * float) array array -> t
(** [append_rows b rows] grows the snapshot by [k] appended constraint
    rows (sparse, over structural columns only — cut rows never touch
    slacks) whose slacks all start basic.  Old entries of the inverse
    are kept verbatim; the grown basis matrix is the block triangular
    [[B 0] [V I]] with inverse [[B⁻¹ 0] [-V·B⁻¹ I]], where row [t] of
    [V] is [rows.(t)] restricted to the basic columns.  The grown
    snapshot stays dual feasible for the grown problem: every appended
    slack has zero cost and zero dual price, leaving every reduced cost
    unchanged.  Branch & bound uses this to ride the warm dual simplex
    across cutting-plane rounds: appending violated cuts leaves only
    primal bound violations on the new slacks, repaired by a few dual
    pivots.  The batch form allocates the grown inverse once, instead
    of one O(m²) copy per row. *)

val append_row : t -> (int * float) array -> t
(** [append_row b row] is [append_rows b [| row |]]. *)

val compatible : t -> ncols:int -> nrows:int -> bool
(** Does the snapshot belong to a problem of this shape? *)

val well_formed : t -> bool
(** Structural sanity check: basic columns are in range, distinct, and
    consistent with [stat].  A failing snapshot must be discarded. *)
