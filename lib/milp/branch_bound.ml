type options = {
  time_limit : float;
  node_limit : int;
  rel_gap : float;
  abs_gap : float;
  int_tol : float;
  presolve : bool;
  presolve_passes : Presolve.pass list;
  rounding_heuristic : bool;
  cutoff : float;
  warm_start : bool;
  cuts : bool;
  cut_families : Cuts.family list;
  cut_rounds : int;
  max_applied_cuts : int;
  cut_max_age : int;
  cut_pool_size : int;
  cut_min_violation : float;
  rc_fixing : bool;
  dense_basis : bool;
  pricing : Simplex.pricing;
  harris : bool;
  mem_stats : bool;
  log : bool;
  nworkers : int;
  seed : int;
}

let default_options =
  {
    time_limit = 60.;
    node_limit = 200_000;
    rel_gap = 1e-6;
    abs_gap = 1e-9;
    int_tol = 1e-6;
    presolve = true;
    presolve_passes = Presolve.all_passes;
    rounding_heuristic = true;
    cutoff = nan;
    warm_start = true;
    cuts = true;
    cut_families = Cuts.all_families;
    cut_rounds = 20;
    max_applied_cuts = 32;
    cut_max_age = 5;
    cut_pool_size = 500;
    cut_min_violation = 1e-5;
    rc_fixing = true;
    dense_basis = false;
    pricing = Simplex.Devex;
    harris = true;
    mem_stats = false;
    log = false;
    nworkers = 1;
    seed = 0;
  }

type result = {
  status : Status.mip_status;
  objective : float;
  bound : float;
  solution : float array option;
  nodes : int;
  lp_iterations : int;
  lp_warm : int;
  lp_cold : int;
  lp_fallback : int;
  cuts_separated : int;
  cuts_applied : int;
  cuts_evicted : int;
  cuts_seeded : int;
  carry_cuts : Cuts.cut list;
  bound_pruned : int;
  rc_fixed : int;
  root_lp_bound : float;
  root_cut_bound : float;
  presolve_time_s : float;
  presolve_rows_removed : int;
  presolve_cols_removed : int;
  presolve_reapplied : bool;
  presolve_stats : Presolve.pass_stats list;
  live_words : int;
  elapsed : float;
}

(* Cross-solve presolve memory for an incremental session: the trace of
   the last reduction, replayed against the next solve's row delta
   ([touched_rows]) instead of propagating the template from scratch. *)
type presolve_state = { mutable ps_trace : Presolve.trace option }

let create_presolve_state () = { ps_trace = None }

let gap r =
  match r.solution with
  | None -> infinity
  | Some _ ->
      if Float.abs r.objective < 1e-12 then Float.abs (r.objective -. r.bound)
      else Float.abs (r.objective -. r.bound) /. Float.abs r.objective

let value r v =
  match r.solution with
  | Some x -> x.(v)
  | None -> invalid_arg "Branch_bound.value: no incumbent solution"

(* A node stores only its bound-change path from the root; bounds arrays
   are materialized on demand (cheap relative to the LP solve).  The
   parent's optimal basis rides along so the child LP can be re-solved
   by a few dual pivots instead of a cold two-phase solve. *)
type node = {
  nbound : float;
  changes : (int * float * float) list;
  nbasis : Basis.t option;
}

(* Warm/cold/fallback tallies across every LP the solver runs. *)
type lp_counters = { mutable warm : int; mutable cold : int; mutable fallback : int }

let tally counters (r : Simplex.result) =
  match r.Simplex.warm with
  | Simplex.Warm -> counters.warm <- counters.warm + 1
  | Simplex.Cold -> counters.cold <- counters.cold + 1
  | Simplex.Warm_fallback -> counters.fallback <- counters.fallback + 1

let src = Logs.Src.create "milp.bb" ~doc:"branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

(* Check a rounded candidate against the rows directly (much cheaper
   than a simplex call). *)
let rows_feasible (p : Simplex.problem) x tol =
  let ok = ref true in
  Array.iteri
    (fun i row ->
      if !ok then begin
        let lhs = Array.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0. row in
        let rhs = p.Simplex.rhs.(i) in
        match p.Simplex.senses.(i) with
        | Model.Le -> if lhs > rhs +. tol then ok := false
        | Model.Ge -> if lhs < rhs -. tol then ok := false
        | Model.Eq -> if Float.abs (lhs -. rhs) > tol then ok := false
      end)
    p.Simplex.rows;
  !ok

let objective_of (p : Simplex.problem) x =
  let acc = ref p.Simplex.obj_const in
  for j = 0 to p.Simplex.ncols - 1 do
    acc := !acc +. (p.Simplex.obj.(j) *. x.(j))
  done;
  !acc

let try_rounding p integer lb ub x tol =
  let n = p.Simplex.ncols in
  let y = Array.copy x in
  for j = 0 to n - 1 do
    if integer.(j) then y.(j) <- Float.round y.(j);
    if y.(j) < lb.(j) then y.(j) <- lb.(j);
    if y.(j) > ub.(j) then y.(j) <- ub.(j)
  done;
  if rows_feasible p y tol then Some y else None

(* LP-guided diving heuristic: repeatedly fix the most fractional
   integer variable to its nearest integer and re-solve; on infeasibility
   try the opposite side once.  Returns an integral solution with its
   objective when the dive bottoms out.  This is what finds the first
   incumbent on covering-style models whose leaves are never integral
   under plain best-first search. *)
(* Cheap bound propagation at a node: fixes implied binaries (edge/use
   variables implied by a selection, sizing rows, …) before paying for
   the LP.  Returns None when propagation proves the node infeasible. *)
let propagate p integer lb ub =
  match Presolve.run ~max_rounds:4 p ~integer ~lb ~ub with
  | Presolve.Proven_infeasible _ -> None
  | Presolve.Feasible { lb; ub; _ } -> Some (lb, ub)

let dive p integer int_tol lb0 ub0 (root : Simplex.result) lp_iters counters ~warm_start
    ~dense ~pricing ~harris ~ws max_lps ~deadline =
  let n = p.Simplex.ncols in
  let lb = Array.copy lb0 and ub = Array.copy ub0 in
  let x = ref root.Simplex.primal in
  let obj = ref root.Simplex.objective in
  (* Each fix-and-resolve step tightens bounds on the previous optimum,
     so its basis warm starts the next LP of the dive. *)
  let basis = ref root.Simplex.basis in
  let lps = ref 0 in
  let most_fractional () =
    let best = ref (-1) and best_frac = ref int_tol in
    for j = 0 to n - 1 do
      if integer.(j) then begin
        let f = !x.(j) -. Float.floor !x.(j) in
        let dist = Float.min f (1. -. f) in
        if dist > !best_frac then begin
          best := j;
          best_frac := dist
        end
      end
    done;
    !best
  in
  let rec go () =
    let j = most_fractional () in
    if j < 0 then Some (Array.copy !x, !obj)
    else if !lps >= max_lps || Clock.now () > deadline then None
    else begin
      let v = Float.round !x.(j) in
      let try_fix value =
        let slb = Array.copy lb and sub = Array.copy ub in
        lb.(j) <- value;
        ub.(j) <- value;
        let restore () =
          Array.blit slb 0 lb 0 n;
          Array.blit sub 0 ub 0 n
        in
        match propagate p integer lb ub with
        | None ->
            restore ();
            false
        | Some (plb, pub) ->
            Array.blit plb 0 lb 0 n;
            Array.blit pub 0 ub 0 n;
            incr lps;
            let r =
              Simplex.solve
                ?basis:(if warm_start then !basis else None)
                ~deadline ~dense ~pricing ~harris ~ws p ~lb ~ub
            in
            lp_iters := !lp_iters + r.Simplex.iterations;
            tally counters r;
            if r.Simplex.status = Status.Lp_optimal then begin
              x := r.Simplex.primal;
              obj := r.Simplex.objective;
              basis := r.Simplex.basis;
              true
            end
            else begin
              restore ();
              false
            end
      in
      if try_fix v then go ()
      else begin
        let alt = if v <= !x.(j) then v +. 1. else v -. 1. in
        if alt >= lb.(j) -. 1e-9 && alt <= ub.(j) +. 1e-9 && try_fix alt then go () else None
      end
    end
  in
  go ()

(* Parallel incumbent: an immutable pair swapped by compare-and-set.
   [i_sol = None] with a finite [i_obj] is a caller cutoff acting as a
   virtual incumbent, mirroring the sequential ref pair. *)
type par_incumbent = { i_obj : float; i_sol : float array option }

(* Per-domain tallies, merged into the result after the join.  Each
   worker owns exactly one of these; nothing in it is shared. *)
type worker_stats = {
  mutable ws_nodes : int;
  ws_lp : int ref;
  ws_counters : lp_counters;
  mutable ws_pruned : int;
  mutable ws_rc : int;
}

let solve ?(options = default_options) ?(seed_cuts = []) ?(separators = [])
    ?warm_solution ?presolve_state ?touched_rows ?ws ?interrupt ?on_incumbent
    ?scheduler model =
  let t0 = Clock.now () in
  (* Cooperative cancellation: checked between nodes, exactly where the
     deadline is, so an interrupt behaves like a timeout — the search
     stops with its current incumbent and an honest (non-exhausted)
     bound.  [None] compiles to a constant [false] check and leaves the
     pinned sequential trees untouched. *)
  let stop_requested () = match interrupt with Some a -> Atomic.get a | None -> false in
  let p = Simplex.of_model model in
  let nfull = p.Simplex.ncols in
  let mfull = Array.length p.Simplex.rows in
  let direction = fst (Model.objective model) in
  let sign = match direction with Model.Minimize -> 1.0 | Model.Maximize -> -1.0 in
  let integer_full = Array.init nfull (Model.is_integer model) in
  let root_lb = Array.init nfull (Model.var_lb model) in
  let root_ub = Array.init nfull (Model.var_ub model) in
  let counters = { warm = 0; cold = 0; fallback = 0 } in
  let dense = options.dense_basis in
  let pricing = options.pricing and harris = options.harris in
  (* One workspace for the whole sequential drive (root, cut loop,
     dives, node re-solves); worker domains get their own below.  An
     incremental session passes its own so the CSC image and solver
     buffers persist across the sweep. *)
  let sws = match ws with Some w -> w | None -> Simplex.create_workspace () in
  (* Live heap words at the moment the incumbent last improved — the
     point where the node pool, basis snapshots and cut pool are all at
     working size.  [Gc.stat] walks the heap, so it is opt-in. *)
  let live_words = ref 0 in
  let measure_live () = if options.mem_stats then live_words := (Gc.stat ()).Gc.live_words in
  let pool =
    Cuts.create_pool ~max_age:options.cut_max_age ~max_size:options.cut_pool_size ()
  in
  (* Which separation families may run: the master [cuts] switch gates
     them all, the family list is the per-family ablation axis. *)
  let fam f = options.cuts && List.mem f options.cut_families in
  let rc_fixed = ref 0 in
  let cuts_seeded = ref 0 in
  let bound_pruned = ref 0 in
  (* Cuts that became problem rows this solve; together with the pool's
     survivors they form the carry-out for an incremental session. *)
  let applied_cuts = ref [] in
  (* Root LP objective before and after the cut loop (min form). *)
  let root_lp_bound = ref nan in
  let root_cut_bound = ref nan in
  let presolve_time = ref 0. in
  let ps_reapplied = ref false in
  let ps_stats = ref [] in
  let post_ref = ref (Postsolve.identity ~ncols:nfull ~nrows:mfull) in
  let finish status ~objective ~bound ~solution ~nodes ~lp_iterations =
    let separated, applied, evicted = Cuts.stats pool in
    let post = !post_ref in
    {
      status;
      objective = sign *. objective;
      bound = sign *. bound;
      solution;
      nodes;
      lp_iterations;
      lp_warm = counters.warm;
      lp_cold = counters.cold;
      lp_fallback = counters.fallback;
      cuts_separated = separated;
      cuts_applied = applied;
      cuts_evicted = evicted;
      cuts_seeded = !cuts_seeded;
      carry_cuts =
        List.map (Cuts.lift post) (List.rev_append !applied_cuts (Cuts.members pool));
      bound_pruned = !bound_pruned;
      rc_fixed = !rc_fixed;
      root_lp_bound = sign *. !root_lp_bound;
      root_cut_bound = sign *. !root_cut_bound;
      presolve_time_s = !presolve_time;
      presolve_rows_removed = mfull - Array.length !post_ref.Postsolve.row_of_red;
      presolve_cols_removed = nfull - Array.length !post_ref.Postsolve.col_of_red;
      presolve_reapplied = !ps_reapplied;
      presolve_stats = !ps_stats;
      live_words = !live_words;
      elapsed = Clock.now () -. t0;
    }
  in
  (* Columns referenced by carried-in cuts must survive the reduction
     (a substituted column cannot be folded back into a cut row). *)
  let essential =
    if seed_cuts = [] then None
    else begin
      let e = Array.make nfull false in
      List.iter
        (fun (c : Cuts.cut) ->
          Array.iter (fun (j, _) -> if j < nfull then e.(j) <- true) c.Cuts.c_row)
        seed_cuts;
      Some e
    end
  in
  (* Root reduction: the full presolve stack, or the identity when
     disabled.  In an incremental session the previous solve's trace is
     re-applied against the row delta instead of presolving the template
     from scratch. *)
  let ps_t0 = Clock.now () in
  let reduced =
    if options.presolve then begin
      let reuse =
        match (presolve_state, touched_rows) with
        | Some st, Some touched -> Option.map (fun tr -> (tr, touched)) st.ps_trace
        | _ -> None
      in
      Presolve.reduce ~passes:options.presolve_passes ?essential ?reuse p
        ~integer:integer_full ~lb:root_lb ~ub:root_ub
    end
    else
      Presolve.Reduced
        {
          red_problem = p;
          red_integer = integer_full;
          red_lb = root_lb;
          red_ub = root_ub;
          red_post = Postsolve.identity ~ncols:nfull ~nrows:mfull;
          red_trace =
            {
              tr_ncols = nfull;
              tr_nrows = mfull;
              tr_lb0 = root_lb;
              tr_ub0 = root_ub;
              tr_lb = root_lb;
              tr_ub = root_ub;
              tr_events = [||];
              tr_active = Array.make mfull true;
            };
          red_stats =
            List.map
              (fun pass ->
                {
                  Presolve.ps_pass = pass;
                  ps_rows_removed = 0;
                  ps_cols_removed = 0;
                  ps_changes = 0;
                })
              Presolve.all_passes;
          red_reapplied = false;
        }
  in
  presolve_time := Clock.now () -. ps_t0;
  (match presolve_state with
  | Some st when options.presolve -> (
      match reduced with
      | Presolve.Reduced red -> st.ps_trace <- Some red.Presolve.red_trace
      | Presolve.Reduce_infeasible _ -> st.ps_trace <- None)
  | _ -> ());
  match reduced with
  | Presolve.Reduce_infeasible _ ->
      finish Status.Mip_infeasible ~objective:infinity ~bound:infinity ~solution:None
        ~nodes:0 ~lp_iterations:0
  | Presolve.Reduced red ->
      let p0 = red.Presolve.red_problem in
      let n = p0.Simplex.ncols in
      let integer = red.Presolve.red_integer in
      let plb = red.Presolve.red_lb and pub = red.Presolve.red_ub in
      let post = red.Presolve.red_post in
      post_ref := post;
      ps_reapplied := red.Presolve.red_reapplied;
      ps_stats := red.Presolve.red_stats;
      let m0 = Array.length p0.Simplex.rows in
      (* Working problem: the base rows plus every applied cut.  Cut
         rows are only ever appended, never removed, so a basis
         snapshotted when k cuts were active can be grown to the current
         row set by appending the rows it is missing. *)
      let pref = ref p0 in
      let cut_index = ref [||] in
      (* applied cut rows, append order *)
      let deadline = t0 +. options.time_limit in
      let append_cuts cs =
        let rows =
          List.map (fun (c : Cuts.cut) -> (c.Cuts.c_row, Model.Le, c.Cuts.c_rhs)) cs
        in
        applied_cuts := List.rev_append cs !applied_cuts;
        pref := Simplex.add_rows !pref rows;
        cut_index :=
          Array.append !cut_index
            (Array.of_list (List.map (fun (c : Cuts.cut) -> c.Cuts.c_row) cs))
      in
      let grow_for b cs =
        Basis.append_rows b
          (Array.of_list (List.map (fun (c : Cuts.cut) -> c.Cuts.c_row) cs))
      in
      (* Grow a snapshot across the cuts applied since it was taken; a
         basis too far behind is not worth the O(m'^2) catch-up and
         falls back to a cold solve. *)
      let upgrade_basis (b : Basis.t) =
        let cur = Array.length !pref.Simplex.rows in
        if b.Basis.nrows = cur then Some b
        else if b.Basis.nrows < m0 || cur - b.Basis.nrows > 48 then None
        else
          Some
            (Basis.append_rows b
               (Array.sub !cut_index (b.Basis.nrows - m0) (cur - b.Basis.nrows)))
      in
      let node_basis b = if options.warm_start then Option.bind b upgrade_basis else None in
      let incumbent = ref None in
      (* A caller-supplied cutoff acts as a virtual incumbent: it prunes
         but carries no solution vector. *)
      let incumbent_obj =
        ref (if Float.is_nan options.cutoff then infinity else sign *. options.cutoff)
      in
      let nodes = ref 0 in
      let lp_iters = ref 0 in
      let queue : node Pqueue.t = Pqueue.create () in
      (* With every row eliminated the "tree" is a box LP solved in
         closed form below; no root node then. *)
      if m0 > 0 then
        Pqueue.push queue neg_infinity { nbound = neg_infinity; changes = []; nbasis = None };
      let feas_tol = 1e-6 in
      (* Streaming hook: fires on every strict incumbent improvement
         with (objective, best proven bound) in the model's own
         direction.  In a parallel drive it runs on a worker domain, so
         callers must pass a thread-safe callback. *)
      let notify_incumbent obj bound_min =
        match on_incumbent with
        | None -> ()
        | Some f -> f (sign *. obj) (sign *. Float.min bound_min obj)
      in
      let update_incumbent x obj =
        if obj < !incumbent_obj -. 1e-12 then begin
          incumbent := Some (Array.copy x);
          incumbent_obj := obj;
          measure_live ();
          notify_incumbent obj
            (match Pqueue.peek_key queue with Some k -> k | None -> obj)
        end
      in
      (* Carried-in incumbent: a solution of the previous (smaller) model
         zero-extended over the new columns, in original (full) space.
         Re-validate it against the full rows/bounds, then restrict it
         through the reduction — [None] means it contradicts a forced
         fixing, i.e. it cannot actually be feasible, and is dropped.
         The reduced objective (with its folded constant) equals the
         objective of the point {!Postsolve.restore} would rebuild, so
         it prunes exactly like a full-space incumbent. *)
      (match warm_solution with
      | Some x
        when Array.length x = nfull
             && (let ok = ref true in
                 for j = 0 to nfull - 1 do
                   if x.(j) < root_lb.(j) -. feas_tol || x.(j) > root_ub.(j) +. feas_tol
                   then ok := false;
                   if
                     integer_full.(j) && Float.abs (x.(j) -. Float.round x.(j)) > feas_tol
                   then ok := false
                 done;
                 !ok)
             && rows_feasible p x feas_tol -> (
          match Postsolve.restrict ~tol:feas_tol post x with
          | Some xr ->
              let obj = objective_of p0 xr in
              if obj <= !incumbent_obj +. 1e-9 then begin
                incumbent := Some xr;
                incumbent_obj := Float.min !incumbent_obj obj
              end
          | None -> ())
      | _ -> ());
      (* Carried-in cuts arrive in original space: map them through the
         reduction (fixed columns fold into the rhs, cuts touching a
         substituted column are dropped), then only literal-form cuts
         that re-certify against the reduced base rows under the new
         root bounds enter the pool; Gomory cuts, cuts of a disabled
         family, and anything uncertifiable are dropped. *)
      if options.cuts then
        List.iter
          (fun (c : Cuts.cut) ->
            if fam (Cuts.family_of_origin c.Cuts.c_origin) then
              match Cuts.restrict post c with
              | Some c' ->
                  if Cuts.certify_cover p0 ~nrows:m0 ~integer ~lb:plb ~ub:pub c' then
                    if Cuts.add pool c' ~x:[||] then incr cuts_seeded
              | None -> ())
          seed_cuts;
      let best_open_bound () =
        match Pqueue.peek_key queue with Some k -> k | None -> infinity
      in
      let gap_closed () =
        match !incumbent with
        | None -> false
        | Some _ ->
            let b = best_open_bound () in
            !incumbent_obj -. b <= options.abs_gap
            || !incumbent_obj -. b <= options.rel_gap *. Float.max 1e-10 (Float.abs !incumbent_obj)
      in
      let timed_out = ref false in
      let unbounded = ref false in
      (* A node LP killed by the deadline or the pivot cap was dropped
         without resolving its subtree: an empty queue then proves
         nothing, so neither "optimal" nor "infeasible" may be claimed
         off exhaustion. *)
      let lp_cut_short = ref false in
      (* Most fractional integer variable of an LP solution. *)
      let pick_branch_var x =
        let best = ref (-1) and best_frac = ref options.int_tol in
        for j = 0 to n - 1 do
          if integer.(j) then begin
            let f = x.(j) -. Float.floor x.(j) in
            let dist = Float.min f (1. -. f) in
            if dist > !best_frac then begin
              best := j;
              best_frac := dist
            end
          end
        done;
        !best
      in
      let cut_root_done = ref false in
      let node_cut_budget = ref 8 in
      (* Total cap on applied cuts: every applied cut permanently grows
         m, taxing each subsequent O(m^2) warm restore, so past a point
         more cuts cost more than the nodes they prune. *)
      let max_applied_cuts = options.max_applied_cuts in
      (* The conflict table over the reduced base rows under root
         bounds, shared by the clique and odd-cycle separators.  Built
         once, on first demand (both families read the same 0-1
         structure, which never changes during the tree). *)
      let conflict_tbl =
        lazy (Conflicts.build p0 ~nrows:m0 ~integer ~lb:plb ~ub:pub)
      in
      (* Problem-structure separators (power/RSS strengthening and the
         like) speak original variable ids: hand them the postsolved
         point, then map their cuts back onto the reduced columns.
         Cuts touching an eliminated column are dropped — sound, they
         are merely missed. *)
      let separate_external x =
        if separators = [] then []
        else begin
          let xfull = Postsolve.restore post x in
          List.concat_map (fun sep -> sep xfull) separators
          |> List.filter_map (Cuts.restrict post)
        end
      in
      (* Root cut loop: separate (GMI from the tableau, covers / cliques
         / odd cycles / structural cuts from the base rows and conflict
         table), pool, apply the most violated, re-solve by riding the
         warm dual simplex on the grown basis; repeat until nothing
         separates, the bound tails off, or the round budget is spent.
         Every family derives from the root bounds, so the cuts are
         valid for every integer-feasible point and may stay for the
         whole tree. *)
      let root_cut_loop r ~lb ~ub =
        let rounds = ref 0 and tail = ref 0 and go = ref true in
        while
          !go && !rounds < options.cut_rounds
          && Array.length !cut_index < max_applied_cuts
          && Clock.now () < deadline
        do
          incr rounds;
          match (!r.Simplex.status, !r.Simplex.basis) with
          | Status.Lp_optimal, Some basis when pick_branch_var !r.Simplex.primal >= 0 ->
              let x = !r.Simplex.primal in
              let gmi =
                if fam Cuts.F_gmi then
                  Cuts.gomory ~dense !pref ~integer ~lb:plb ~ub:pub basis ~max_cuts:16
                else []
              in
              let cov =
                if fam Cuts.F_cover then
                  Cuts.covers !pref ~nrows:m0 ~integer ~lb:plb ~ub:pub ~x ~max_cuts:16
                else []
              in
              let clq =
                if fam Cuts.F_clique then
                  Cuts.cliques (Lazy.force conflict_tbl) ~x ~max_cuts:8
                else []
              in
              let cyc =
                if fam Cuts.F_negcycle then
                  Cuts.odd_cycles (Lazy.force conflict_tbl) ~x ~max_cuts:8
                else []
              in
              let ext = if fam Cuts.F_power then separate_external x else [] in
              List.iter
                (fun c -> ignore (Cuts.add pool c ~x))
                (List.concat [ gmi; cov; clq; cyc; ext ]);
              let room = max_applied_cuts - Array.length !cut_index in
              let selected =
                Cuts.select pool ~x ~max_cuts:(min 8 room)
                  ~min_violation:options.cut_min_violation
              in
              if selected = [] then go := false
              else begin
                let prev = !r.Simplex.objective in
                append_cuts selected;
                let basis = grow_for basis selected in
                let r' =
                  Simplex.solve
                    ?basis:(if options.warm_start then Some basis else None)
                    ~deadline ~dense ~pricing ~harris ~ws:sws !pref ~lb ~ub
                in
                lp_iters := !lp_iters + r'.Simplex.iterations;
                tally counters r';
                if r'.Simplex.status = Status.Lp_optimal then begin
                  r := r';
                  if r'.Simplex.objective -. prev < 1e-4 *. Float.max 1. (Float.abs prev)
                  then begin
                    incr tail;
                    if !tail >= 2 then go := false
                  end
                  else tail := 0
                end
                else go := false
              end
          | _ -> go := false
        done
      in
      (* One combinatorial separation round at a shallow node: covers
         and cliques (both cheap — no tableau).  They come from the base
         rows / conflict table under the root bounds, so they are
         globally valid no matter where they were separated. *)
      let node_separation r ~lb ~ub =
        match (!r.Simplex.status, !r.Simplex.basis) with
        | Status.Lp_optimal, Some basis ->
            let x = !r.Simplex.primal in
            let cov =
              if fam Cuts.F_cover then
                Cuts.covers !pref ~nrows:m0 ~integer ~lb:plb ~ub:pub ~x ~max_cuts:8
              else []
            in
            let clq =
              if fam Cuts.F_clique then
                Cuts.cliques (Lazy.force conflict_tbl) ~x ~max_cuts:4
              else []
            in
            List.iter (fun c -> ignore (Cuts.add pool c ~x)) (cov @ clq);
            let selected =
              Cuts.select pool ~x ~max_cuts:2
                ~min_violation:(10. *. options.cut_min_violation)
            in
            if selected <> [] then begin
              node_cut_budget := !node_cut_budget - List.length selected;
              append_cuts selected;
              let basis = grow_for basis selected in
              let r' =
                Simplex.solve
                  ?basis:(if options.warm_start then Some basis else None)
                  ~deadline ~dense ~pricing ~harris ~ws:sws !pref ~lb ~ub
              in
              lp_iters := !lp_iters + r'.Simplex.iterations;
              tally counters r';
              if r'.Simplex.status = Status.Lp_optimal then r := r'
            end
        | _ -> ()
      in
      (* Reduced-cost fixing: once an incumbent exists, an integer
         variable sitting at a bound whose reduced cost proves that
         leaving the bound cannot beat the incumbent is fixed there for
         the whole subtree (the duals are already on hand from the warm
         solve).  Returns the bound changes to thread into both
         children. *)
      let rc_fixes_on ~prob ~has_inc ~inc_obj (r : Simplex.result) lb ub =
        if (not options.rc_fixing) || not has_inc then []
        else
          match r.Simplex.basis with
          | None -> []
          | Some b -> (
              match Simplex.reduced_costs prob b with
              | None -> []
              | Some d ->
                  let z = r.Simplex.objective in
                  let cutoff = inc_obj -. options.abs_gap in
                  let x = r.Simplex.primal in
                  let fixes = ref [] in
                  for j = 0 to n - 1 do
                    if integer.(j) && lb.(j) < ub.(j) then
                      if
                        x.(j) <= lb.(j) +. options.int_tol
                        && d.(j) > 0.
                        && z +. d.(j) >= cutoff
                      then fixes := (j, lb.(j), lb.(j)) :: !fixes
                      else if
                        x.(j) >= ub.(j) -. options.int_tol
                        && d.(j) < 0.
                        && z -. d.(j) >= cutoff
                      then fixes := (j, ub.(j), ub.(j)) :: !fixes
                  done;
                  !fixes)
      in
      let rc_fixes r lb ub =
        rc_fixes_on ~prob:!pref ~has_inc:(!incumbent <> None) ~inc_obj:!incumbent_obj r lb
          ub
      in
      let process node =
        incr nodes;
        (* Prune by bound before paying for the LP. *)
        if node.nbound >= !incumbent_obj -. options.abs_gap then incr bound_pruned
        else begin
          let lb = Array.copy plb and ub = Array.copy pub in
          List.iter
            (fun (j, l, u) ->
              lb.(j) <- Float.max lb.(j) l;
              ub.(j) <- Float.min ub.(j) u)
            node.changes;
          match if node.changes = [] then Some (lb, ub) else propagate p0 integer lb ub with
          | None -> () (* bound propagation proved the node infeasible *)
          | Some (lb, ub) ->
          let r =
            ref
              (Simplex.solve
                 ?basis:(node_basis node.nbasis)
                 ~deadline ~dense ~pricing ~harris ~ws:sws !pref ~lb ~ub)
          in
          lp_iters := !lp_iters + !r.Simplex.iterations;
          tally counters !r;
          if options.cuts then begin
            if node.changes = [] && not !cut_root_done then begin
              cut_root_done := true;
              if !r.Simplex.status = Status.Lp_optimal then begin
                root_lp_bound := !r.Simplex.objective;
                root_cut_loop r ~lb ~ub;
                root_cut_bound := !r.Simplex.objective
              end
            end
            else if
              !cut_root_done
              && !node_cut_budget > 0
              && List.length node.changes <= 3
              && !nodes land 7 = 3
            then node_separation r ~lb ~ub
          end;
          match !r.Simplex.status with
          | Status.Lp_infeasible -> ()
          | Status.Lp_iteration_limit -> lp_cut_short := true
          | Status.Lp_unbounded -> if !incumbent = None then unbounded := true
          | Status.Lp_optimal ->
              let r = !r in
              let obj = r.Simplex.objective in
              if obj >= !incumbent_obj -. options.abs_gap then incr bound_pruned
              else begin
                let x = r.Simplex.primal in
                let j = pick_branch_var x in
                if j < 0 then update_incumbent x obj
                else begin
                  if options.rounding_heuristic && !nodes land 15 = 1 then begin
                    match try_rounding !pref integer lb ub x feas_tol with
                    | Some y ->
                        let yobj = objective_of !pref y in
                        update_incumbent y yobj
                    | None -> ()
                  end;
                  (* Dive for an incumbent: always until the first one
                     exists, then occasionally to improve it. *)
                  if
                    options.rounding_heuristic
                    && (!incumbent = None || !nodes land 63 = 2)
                  then begin
                    match
                      dive !pref integer options.int_tol lb ub r lp_iters counters
                        ~warm_start:options.warm_start ~dense ~pricing ~harris ~ws:sws
                        200 ~deadline
                    with
                    | Some (y, yobj) -> update_incumbent y yobj
                    | None -> ()
                  end;
                  let fixes = rc_fixes r lb ub in
                  rc_fixed := !rc_fixed + List.length fixes;
                  let inherited = List.rev_append fixes node.changes in
                  let v = x.(j) in
                  let down = (j, neg_infinity, Float.floor v) in
                  let up = (j, Float.ceil v, infinity) in
                  let nbasis = if options.warm_start then r.Simplex.basis else None in
                  Pqueue.push queue obj { nbound = obj; changes = down :: inherited; nbasis };
                  Pqueue.push queue obj { nbound = obj; changes = up :: inherited; nbasis }
                end
              end
        end
      in
      (* One turn of the sequential drive: false = the loop is over.
         Shared verbatim between the plain recursive loop and the
         scheduler-chained form below, so both walk the same tree. *)
      let seq_step () =
        if Pqueue.is_empty queue || gap_closed () || !unbounded then false
        else if !nodes >= options.node_limit then false
        else if Clock.now () -. t0 > options.time_limit then begin
          timed_out := true;
          false
        end
        else if stop_requested () then false
        else begin
          (match Pqueue.pop queue with
          | Some (_, node) ->
              process node;
              if options.log && !nodes mod 500 = 0 then
                Log.info (fun f ->
                    f "nodes=%d open=%d incumbent=%g bound=%g" !nodes (Pqueue.length queue)
                      !incumbent_obj (best_open_bound ()))
          | None -> ());
          true
        end
      in
      let rec loop () = if seq_step () then loop () in
      (* Degenerate reduction: every row eliminated.  The remaining
         problem is a box LP whose optimum sits at the objective-
         preferred bound of each column (integer bounds are already
         rounded inward), solved here in closed form — the simplex and
         the tree never run. *)
      if m0 = 0 then begin
        let x = Array.make n 0. in
        let bounded = ref true in
        (try
           for j = 0 to n - 1 do
             let c = p0.Simplex.obj.(j) in
             let v =
               if c > 0. then plb.(j)
               else if c < 0. then pub.(j)
               else if Float.is_finite plb.(j) then plb.(j)
               else if Float.is_finite pub.(j) then pub.(j)
               else 0.
             in
             if not (Float.is_finite v) then raise Exit;
             x.(j) <- v
           done
         with Exit -> bounded := false);
        if !bounded then begin
          let obj = objective_of p0 x in
          root_lp_bound := obj;
          update_incumbent x obj
        end
        else if !incumbent = None then unbounded := true
      end;
      (* The open-tree bound after the drive: sequential reads the one
         heap, parallel also folds in the scheduler handle (queued plus
         in-flight nodes). *)
      let par_handle = ref None in
      (* Sequential drive through a shared scheduler: the solve becomes
         a chain of one-node tasks over the same local heap.  Exactly
         one task of this solve exists at any moment (each pushes its
         successor before retiring), so node order and every tally
         replay the plain [loop] bit-identically, while the scheduler
         interleaves the chain with other solves at node granularity.
         The advisory key is the heap minimum, keeping cross-solve
         victim selection bound-aware. *)
      let seq_via sched =
        let h = Scheduler.submit sched in
        let rec enqueue () =
          let key = match Pqueue.peek_key queue with Some k -> k | None -> infinity in
          Scheduler.push h ~worker:0 key (fun _slot -> if seq_step () then enqueue ())
        in
        if not (Pqueue.is_empty queue) then enqueue ();
        Scheduler.await h
      in
      if options.nworkers <= 1 then (
        match scheduler with None -> loop () | Some sched -> seq_via sched)
      else begin
        let sched, owned_sched =
          match scheduler with
          | Some s -> (s, false)
          | None -> (Scheduler.create ~nworkers:options.nworkers, true)
        in
        let run_parallel () =
          let nslots = Scheduler.nworkers sched in
          (* Phase 1 — sequential ramp-up: the root node (presolve, root
             cut loop, first dive) and a few more run on the exact
             sequential machinery until there is enough frontier to feed
             every domain.  All cut-pool and working-problem writes
             happen in this phase; everything workers later read is
             frozen. *)
          let ramp_width = 2 * nslots in
          let ramp_nodes = 32 in
          let rec ramp () =
            if
              Pqueue.is_empty queue || gap_closed () || !unbounded
              || stop_requested ()
              || !nodes >= options.node_limit
              || Pqueue.length queue >= ramp_width
              || !nodes >= ramp_nodes
            then ()
            else if Clock.now () -. t0 > options.time_limit then timed_out := true
            else
              match Pqueue.pop queue with
              | Some (_, node) ->
                  process node;
                  ramp ()
              | None -> ()
          in
          ramp ();
          if
            not
              (Pqueue.is_empty queue || gap_closed () || !unbounded || !timed_out
              || stop_requested ()
              || !nodes >= options.node_limit)
          then begin
            (* Phase 2 — freeze the cut-augmented problem and hand the
               frontier to the scheduler, dealt round-robin so workers
               start in different subtrees. *)
            let pw = !pref in
            let h = Scheduler.submit sched in
            par_handle := Some h;
            let inc =
              Atomic.make
                { i_obj = !incumbent_obj; i_sol = Option.map Array.copy !incumbent }
            in
            let rec update_inc x obj =
              let cur = Atomic.get inc in
              if obj < cur.i_obj -. 1e-12 then
                if
                  Atomic.compare_and_set inc cur
                    { i_obj = obj; i_sol = Some (Array.copy x) }
                then notify_incumbent obj (Scheduler.best_bound h)
                else update_inc x obj
            in
            let total_nodes = Atomic.make !nodes in
            let timed_out_a = Atomic.make false in
            let unbounded_a = Atomic.make false in
            let lp_cut_short_a = Atomic.make false in
            let wstats =
              Array.init nslots (fun _ ->
                  {
                    ws_nodes = 0;
                    ws_lp = ref 0;
                    ws_counters = { warm = 0; cold = 0; fallback = 0 };
                    ws_pruned = 0;
                    ws_rc = 0;
                  })
            in
            (* One simplex workspace per worker slot: a slot runs one
               task of this solve at a time, so buffers are reused
               across that slot's node re-solves and never shared. *)
            let wss = Array.init nslots (fun _ -> Simplex.create_workspace ()) in
            let gap_closed_now () =
              let c = Atomic.get inc in
              c.i_obj < infinity
              &&
              let b = Scheduler.best_bound h in
              c.i_obj -. b <= options.abs_gap
              || c.i_obj -. b <= options.rel_gap *. Float.max 1e-10 (Float.abs c.i_obj)
            in
            (* Node processing for a worker: same shape as [process]
               minus anything that writes shared state — no cut
               separation (the problem is frozen), incumbent via CAS,
               tallies slot-local.  Heuristic gating is offset by slot
               index and seed so the domains probe different parts of
               the tree for incumbents instead of duplicating the same
               dives.  [wtask] wraps it with the per-node deadline /
               interrupt / node-limit / gap checks the worker loop used
               to run; the scheduler retires each task after its
               children are pushed, preserving the exhaustion proof. *)
            let rec wtask node slot =
              let st = wstats.(slot) in
              if Clock.now () -. t0 > options.time_limit then begin
                Atomic.set timed_out_a true;
                Scheduler.stop h
              end
              else if stop_requested () then Scheduler.stop h
              else if Atomic.fetch_and_add total_nodes 1 >= options.node_limit then begin
                Atomic.decr total_nodes;
                Scheduler.stop h
              end
              else begin
                st.ws_nodes <- st.ws_nodes + 1;
                wprocess slot st node;
                if Atomic.get unbounded_a || gap_closed_now () then Scheduler.stop h
              end
            and wprocess wi st node =
            if node.nbound >= (Atomic.get inc).i_obj -. options.abs_gap then
              st.ws_pruned <- st.ws_pruned + 1
            else begin
              let lb = Array.copy plb and ub = Array.copy pub in
              List.iter
                (fun (j, l, u) ->
                  lb.(j) <- Float.max lb.(j) l;
                  ub.(j) <- Float.min ub.(j) u)
                node.changes;
              match
                if node.changes = [] then Some (lb, ub) else propagate p0 integer lb ub
              with
              | None -> ()
              | Some (lb, ub) -> (
                  let r =
                    Simplex.solve
                      ?basis:(node_basis node.nbasis)
                      ~deadline ~dense ~pricing ~harris ~ws:wss.(wi) pw ~lb ~ub
                  in
                  st.ws_lp := !(st.ws_lp) + r.Simplex.iterations;
                  tally st.ws_counters r;
                  match r.Simplex.status with
                  | Status.Lp_infeasible -> ()
                  | Status.Lp_iteration_limit -> Atomic.set lp_cut_short_a true
                  | Status.Lp_unbounded ->
                      if (Atomic.get inc).i_sol = None then Atomic.set unbounded_a true
                  | Status.Lp_optimal ->
                      let obj = r.Simplex.objective in
                      if obj >= (Atomic.get inc).i_obj -. options.abs_gap then
                        st.ws_pruned <- st.ws_pruned + 1
                      else begin
                        let x = r.Simplex.primal in
                        let j = pick_branch_var x in
                        if j < 0 then update_inc x obj
                        else begin
                          if options.rounding_heuristic && (st.ws_nodes + wi) land 15 = 1
                          then begin
                            match try_rounding pw integer lb ub x feas_tol with
                            | Some y -> update_inc y (objective_of pw y)
                            | None -> ()
                          end;
                          if
                            options.rounding_heuristic
                            && ((Atomic.get inc).i_sol = None
                               || (st.ws_nodes + options.seed + (17 * wi)) land 63 = 2)
                          then begin
                            match
                              dive pw integer options.int_tol lb ub r st.ws_lp
                                st.ws_counters ~warm_start:options.warm_start ~dense
                                ~pricing ~harris ~ws:wss.(wi) 200 ~deadline
                            with
                            | Some (y, yobj) -> update_inc y yobj
                            | None -> ()
                          end;
                          let cur = Atomic.get inc in
                          let fixes =
                            rc_fixes_on ~prob:pw ~has_inc:(cur.i_sol <> None)
                              ~inc_obj:cur.i_obj r lb ub
                          in
                          st.ws_rc <- st.ws_rc + List.length fixes;
                          let inherited = List.rev_append fixes node.changes in
                          let v = x.(j) in
                          let nbasis = if options.warm_start then r.Simplex.basis else None in
                          Scheduler.push h ~worker:wi obj
                            (wtask
                               {
                                 nbound = obj;
                                 changes = (j, neg_infinity, Float.floor v) :: inherited;
                                 nbasis;
                               });
                          Scheduler.push h ~worker:wi obj
                            (wtask
                               {
                                 nbound = obj;
                                 changes = (j, Float.ceil v, infinity) :: inherited;
                                 nbasis;
                               })
                        end
                      end)
            end
            in
            (* Deal the frontier round-robin so workers start in
               different subtrees; the shared pool begins executing as
               soon as the first node lands.  A task that dies mid-node
               is trapped by the scheduler, which stops this solve (not
               its neighbours) and re-raises out of [await]. *)
            let dealt = ref 0 in
            let rec deal () =
              match Pqueue.pop queue with
              | Some (k, node) ->
                  Scheduler.push h ~worker:!dealt k (wtask node);
                  incr dealt;
                  deal ()
              | None -> ()
            in
            deal ();
            Scheduler.await h;
            Array.iter
              (fun st ->
                nodes := !nodes + st.ws_nodes;
                lp_iters := !lp_iters + !(st.ws_lp);
                counters.warm <- counters.warm + st.ws_counters.warm;
                counters.cold <- counters.cold + st.ws_counters.cold;
                counters.fallback <- counters.fallback + st.ws_counters.fallback;
                bound_pruned := !bound_pruned + st.ws_pruned;
                rc_fixed := !rc_fixed + st.ws_rc)
              wstats;
            let c = Atomic.get inc in
            incumbent_obj := c.i_obj;
            (match c.i_sol with
            | Some x ->
                incumbent := Some x;
                measure_live ()
            | None -> ());
            if Atomic.get timed_out_a then timed_out := true;
            if Atomic.get unbounded_a then unbounded := true;
            if Atomic.get lp_cut_short_a then lp_cut_short := true
          end
        in
        if owned_sched then
          Fun.protect ~finally:(fun () -> Scheduler.shutdown sched) run_parallel
        else run_parallel ()
      end;
      let exhausted, open_bound =
        match !par_handle with
        | None -> ((not !lp_cut_short) && Pqueue.is_empty queue, best_open_bound ())
        | Some h ->
            ( (not !lp_cut_short) && Scheduler.drained h && Pqueue.is_empty queue,
              Float.min (Scheduler.best_bound h) (best_open_bound ()) )
      in
      let gap_ok =
        match !incumbent with
        | None -> false
        | Some _ ->
            !incumbent_obj -. open_bound <= options.abs_gap
            || !incumbent_obj -. open_bound
               <= options.rel_gap *. Float.max 1e-10 (Float.abs !incumbent_obj)
      in
      let final_bound =
        match !incumbent with
        | Some _ when exhausted -> !incumbent_obj
        | _ -> Float.min open_bound !incumbent_obj
      in
      if !unbounded then
        finish Status.Mip_unbounded ~objective:neg_infinity ~bound:neg_infinity ~solution:None
          ~nodes:!nodes ~lp_iterations:!lp_iters
      else begin
        match !incumbent with
        | Some x ->
            let status =
              if exhausted || gap_ok then Status.Mip_optimal else Status.Mip_feasible
            in
            (* Incumbents live in reduced space throughout the tree;
               postsolve back to the original index space only here. *)
            finish status ~objective:!incumbent_obj ~bound:final_bound
              ~solution:(Some (Postsolve.restore post x))
              ~nodes:!nodes ~lp_iterations:!lp_iters
        | None ->
            let status =
              (* With a cutoff installed, an exhausted tree only proves
                 "nothing better than the cutoff", not infeasibility. *)
              if
                exhausted
                && (not !timed_out)
                && !nodes < options.node_limit
                && Float.is_nan options.cutoff
              then Status.Mip_infeasible
              else Status.Mip_unknown
            in
            finish status ~objective:infinity ~bound:final_bound ~solution:None ~nodes:!nodes
              ~lp_iterations:!lp_iters
      end
