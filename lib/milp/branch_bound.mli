(** Branch & bound MILP solver on top of {!Simplex} and {!Presolve}.

    Best-bound node selection (min-heap on the parent LP bound) with
    most-fractional branching, a root presolve, and a periodic rounding
    heuristic for early incumbents.  Works for minimization and
    maximization models (internally everything is minimized).

    Node LPs are warm started: every node carries its parent's optimal
    {!Basis.t}, so a child — which differs from its parent by a single
    bound change — is re-solved by a few dual simplex pivots instead of
    a cold two-phase solve.  The diving heuristic threads the basis
    through its fix-and-resolve loop the same way.  Disable with
    [warm_start = false] (the [--cold-start] bench ablation).

    Cutting planes ride the same machinery ({!Cuts}): the root LP is
    tightened by rounds of Gomory mixed-integer and knapsack cover cuts
    drawn from a managed pool, and shallow nodes get occasional cover
    separation.  Applied cuts become permanent rows of the working
    problem — row appends extend a standing basis in place
    ({!Basis.append_row}), so every post-cut re-solve is a warm dual
    simplex repair, not a cold solve.  Once an incumbent exists,
    reduced-cost fixing pins integer variables whose reduced cost proves
    they cannot leave their bound in an improving solution.  Disable
    with [cuts = false] / [rc_fixing = false] (the [--no-cuts] /
    [--no-rc-fixing] bench ablations). *)

type options = {
  time_limit : float;  (** Wall-clock seconds; [infinity] = none. *)
  node_limit : int;
  rel_gap : float;  (** Stop when (incumbent - bound)/|incumbent| <= rel_gap. *)
  abs_gap : float;
  int_tol : float;  (** Integrality tolerance on LP solutions. *)
  presolve : bool;
      (** Run the root reduction stack ({!Presolve.reduce}) and solve
          the reduced problem, postsolving incumbents back before
          reporting (default [true]); [false] solves the model verbatim
          — the [--no-presolve] ablation baseline. *)
  presolve_passes : Presolve.pass list;
      (** Which reduction passes run (default {!Presolve.all_passes});
          ignored when [presolve = false]. *)
  rounding_heuristic : bool;
  cutoff : float;
      (** Known objective bound in the model's own direction (an
          incumbent value from a related run): nodes that cannot beat it
          are pruned, and any solution reported is strictly better.
          Default [nan] = none. *)
  warm_start : bool;
      (** Re-solve node LPs from the parent's optimal basis via dual
          simplex (default [true]); [false] forces cold two-phase
          solves everywhere — the ablation baseline. *)
  cuts : bool;
      (** Separate cutting planes (default [true]): a root cut loop
          over the enabled families, plus periodic cover/clique
          separation at shallow nodes.  The master switch — [false]
          disables every family and the [separators] closures. *)
  cut_families : Cuts.family list;
      (** Which separation families run (default {!Cuts.all_families}):
          Gomory mixed-integer, knapsack cover, conflict-clique,
          odd-cycle (negative-cycle search), and the caller-supplied
          structural [separators] (gated by {!Cuts.F_power}).  The
          per-family ablation axis ([--cuts gmi,cover,...]). *)
  cut_rounds : int;  (** Root cut-loop round budget (default 20). *)
  max_applied_cuts : int;
      (** Total cap on cuts promoted to problem rows (default 32):
          every applied cut permanently grows the row set, taxing each
          subsequent O(m²) warm restore. *)
  cut_max_age : int;
      (** Pool eviction age (default 5): selection rounds a pooled cut
          may go unviolated before eviction ({!Cuts.create_pool}). *)
  cut_pool_size : int;
      (** Pool size cap (default 500); overflow evicts the least
          violated members first. *)
  cut_min_violation : float;
      (** Minimum violation for a pooled cut to be applied at the root
          (default 1e-5); node separation uses 10× this value. *)
  rc_fixing : bool;
      (** Reduced-cost fixing of integer variables at nodes once an
          incumbent exists (default [true]). *)
  dense_basis : bool;
      (** Run every LP on the pre-PR dense explicit-inverse kernel
          instead of the sparse LU one (default [false]) — the
          [--dense-basis] ablation baseline.  Objectives and statuses
          agree with the sparse kernel to solver tolerances. *)
  pricing : Simplex.pricing;
      (** Entering-column rule for every LP (default [Devex]);
          [Dantzig] restores the PR5 partial candidate-list scan — the
          [--pricing dantzig] ablation baseline. *)
  harris : bool;
      (** Harris two-pass primal ratio test plus bound-flipping dual
          ratio test (default [true]); [false] restores the classic
          smallest-ratio tests — the [--no-harris] ablation baseline. *)
  mem_stats : bool;
      (** Record [Gc.stat] live heap words each time the incumbent
          improves (default [false]; a full-heap walk, so opt-in).  The
          last measurement is returned as [result.live_words]. *)
  log : bool;  (** Print a progress line every ~500 nodes via [Logs]. *)
  nworkers : int;
      (** Worker domains for the tree search (default [1]).  With
          [nworkers = 1] the solver runs today's exact sequential loop —
          node order and every tally are bit-identical run to run.  With
          [nworkers > 1] the root phase (presolve, root cut loop, first
          incumbent dive) still runs sequentially, then the frontier is
          dealt to a work-stealing {!Scheduler} solve (an owned one, or
          the shared pool passed via [?scheduler]) and explored by OCaml
          5 domains: each worker owns a private simplex workspace, parent
          bases travel with the nodes, the incumbent lives in an
          [Atomic], and no cuts are separated after the handoff (the
          working problem is frozen — see DESIGN.md §5e).  Node counts
          then vary run to run, but returned objectives agree with the
          sequential solver to optimality tolerances. *)
  seed : int;
      (** Perturbs the per-worker heuristic schedule (which nodes each
          domain dives from) to diversify parallel exploration.  Ignored
          when [nworkers = 1].  Default [0]. *)
}

val default_options : options
(** 60 s, 200_000 nodes, [rel_gap = 1e-6], [abs_gap = 1e-9],
    [int_tol = 1e-6], presolve, rounding, warm starts, cuts (all
    families, 20 rounds, 32 applied, pool age 5 / size 500, min
    violation 1e-5) and reduced-cost fixing on, devex pricing with
    Harris ratio tests, log off, [nworkers = 1], [seed = 0]. *)

type result = {
  status : Status.mip_status;
  objective : float;
      (** Incumbent objective in the model's own direction; meaningless
          for [Mip_infeasible]/[Mip_unknown]. *)
  bound : float;  (** Best proven bound (model direction). *)
  solution : float array option;  (** Values indexed by variable id. *)
  nodes : int;  (** Branch & bound nodes processed. *)
  lp_iterations : int;  (** Total simplex iterations. *)
  lp_warm : int;  (** LP solves served by the warm dual-simplex path. *)
  lp_cold : int;  (** LP solves that ran cold (root, no basis). *)
  lp_fallback : int;  (** Warm attempts that fell back to a cold solve. *)
  cuts_separated : int;  (** Cuts accepted into the pool. *)
  cuts_applied : int;  (** Cuts promoted to problem rows. *)
  cuts_evicted : int;  (** Pool members aged or crowded out. *)
  cuts_seeded : int;
      (** Carried-in cuts that re-certified against this model and
          entered the pool (see [seed_cuts] on {!solve}). *)
  carry_cuts : Cuts.cut list;
      (** Carry-out for an incremental session: every cut applied this
          solve followed by the pool's survivors.  All are globally
          valid for this model; feed them back as [seed_cuts] after the
          model grows. *)
  bound_pruned : int;
      (** Nodes pruned against the incumbent/cutoff bound — before the
          LP (parent bound already too poor) or right after it. *)
  rc_fixed : int;  (** Integer variables fixed by reduced cost. *)
  root_lp_bound : float;
      (** Root LP relaxation objective (model direction) before any
          cuts; [nan] if the root LP did not solve to optimality. *)
  root_cut_bound : float;
      (** Root objective after the cut loop; with [root_lp_bound] and
          the final incumbent this yields the root gap closed.  [nan]
          when cuts are off or the root LP failed. *)
  presolve_time_s : float;  (** Wall-clock seconds spent in the root reduction. *)
  presolve_rows_removed : int;  (** Rows of the model absent from the reduced problem. *)
  presolve_cols_removed : int;  (** Columns eliminated by the reduction. *)
  presolve_reapplied : bool;
      (** [true] when a template trace seeded the reduction instead of a
          from-scratch propagation (see [presolve_state] on {!solve}). *)
  presolve_stats : Presolve.pass_stats list;
      (** Per-pass removal/change counts, one entry per enabled pass. *)
  live_words : int;
      (** [Gc.stat] live heap words when the incumbent last improved;
          [0] unless [options.mem_stats] was set (or no incumbent was
          found). *)
  elapsed : float;  (** Wall-clock seconds. *)
}

val gap : result -> float
(** Relative optimality gap of a result ([infinity] without incumbent). *)

type presolve_state
(** Cross-solve presolve memory for an incremental session: holds the
    reduction trace of the last solve so the next one can re-apply it
    against the row delta instead of presolving the (largely unchanged)
    template from scratch. *)

val create_presolve_state : unit -> presolve_state

val solve :
  ?options:options ->
  ?seed_cuts:Cuts.cut list ->
  ?separators:Cuts.separator list ->
  ?warm_solution:float array ->
  ?presolve_state:presolve_state ->
  ?touched_rows:int list ->
  ?ws:Simplex.workspace ->
  ?interrupt:bool Atomic.t ->
  ?on_incumbent:(float -> float -> unit) ->
  ?scheduler:Scheduler.t ->
  Model.t ->
  result
(** Solve the model.  The model is not mutated.

    [interrupt] is a cooperative cancellation flag, checked between
    nodes exactly where the deadline is: once set (from a signal
    handler or another thread) the search stops like a timeout — the
    current incumbent is returned with an honest, non-exhausted bound,
    so the status is [Mip_feasible]/[Mip_unknown], never a false
    [Mip_optimal]/[Mip_infeasible].

    [on_incumbent] fires on every strict incumbent improvement with
    (objective, best proven bound) in the model's own direction — the
    daemon's streaming update hook.  With [nworkers > 1] it runs on a
    worker domain, so it must be thread-safe.

    [scheduler] runs the tree search on a shared {!Scheduler} (a
    daemon's resident domain pool) instead of domains owned by this
    call.  With [options.nworkers <= 1] the search becomes a chain of
    one-node tasks that replays the sequential tree bit-identically —
    node order and all tallies are unchanged; with [nworkers > 1] the
    post-ramp frontier is dealt to the shared pool, sized by the
    scheduler's worker count, and explored exactly as the owned
    parallel drive would.

    [seed_cuts] carries a previous solve's cut pool into this one, in
    original variable ids: each cut is first mapped onto the reduced
    problem ({!Cuts.restrict}; cuts touching a substituted column are
    dropped), then each literal-form cut that re-certifies against the
    (possibly grown) model's base rows under its root bounds
    ({!Cuts.certify_cover}) is pooled before the root cut loop;
    Gomory cuts, cuts of a disabled family, and uncertifiable rows
    (structural power cuts usually — their validity spans several rows,
    so they are re-separated fresh instead) are silently dropped.
    [result.carry_cuts] comes back lifted to original ids again.

    [separators] are problem-structure separation oracles
    ({!Cuts.separator}, e.g. the power/RSS strengthening built from the
    instance data): called during the root cut loop with the postsolved
    (original-space) fractional point, their cuts are mapped onto the
    reduced columns and pooled like any other family.  Gated by
    [options.cuts] and {!Cuts.F_power} membership in
    [options.cut_families].

    [warm_solution] carries a previous incumbent (zero-extended over any
    new columns by the caller).  It is re-validated against the new
    bounds, rows and integrality, restricted through the reduction; when
    valid and at least as good as any [cutoff], it is installed as the
    starting incumbent — so it prunes exactly like a cutoff but is
    returned as a real solution if nothing better is found (instead of
    [Mip_unknown]).

    [presolve_state] (with [touched_rows], the in-place row rewrites
    since the previous solve on this model — {!Model.touched_since})
    enables template presolve: the previous reduction's propagation
    trace is replayed, keeping every tightening whose derivation avoids
    the delta, and only the delta is re-propagated.  The state is
    updated with this solve's trace.  Omit [touched_rows] (or pass a
    fresh state) to presolve from scratch.

    [ws] lends the solver a persistent {!Simplex.workspace} so LP
    buffers and the CSC image survive across an incremental session's
    solves. *)

val value : result -> int -> float
(** [value r v] is the incumbent value of variable [v].
    @raise Invalid_argument if the result carries no solution. *)
