(** Branch & bound MILP solver on top of {!Simplex} and {!Presolve}.

    Best-bound node selection (min-heap on the parent LP bound) with
    most-fractional branching, a root presolve, and a periodic rounding
    heuristic for early incumbents.  Works for minimization and
    maximization models (internally everything is minimized).

    Node LPs are warm started: every node carries its parent's optimal
    {!Basis.t}, so a child — which differs from its parent by a single
    bound change — is re-solved by a few dual simplex pivots instead of
    a cold two-phase solve.  The diving heuristic threads the basis
    through its fix-and-resolve loop the same way.  Disable with
    [warm_start = false] (the [--cold-start] bench ablation). *)

type options = {
  time_limit : float;  (** Wall-clock seconds; [infinity] = none. *)
  node_limit : int;
  rel_gap : float;  (** Stop when (incumbent - bound)/|incumbent| <= rel_gap. *)
  abs_gap : float;
  int_tol : float;  (** Integrality tolerance on LP solutions. *)
  presolve : bool;
  rounding_heuristic : bool;
  cutoff : float;
      (** Known objective bound in the model's own direction (an
          incumbent value from a related run): nodes that cannot beat it
          are pruned, and any solution reported is strictly better.
          Default [nan] = none. *)
  warm_start : bool;
      (** Re-solve node LPs from the parent's optimal basis via dual
          simplex (default [true]); [false] forces cold two-phase
          solves everywhere — the ablation baseline. *)
  log : bool;  (** Print a progress line every ~500 nodes via [Logs]. *)
}

val default_options : options
(** 60 s, 200_000 nodes, [rel_gap = 1e-6], [abs_gap = 1e-9],
    [int_tol = 1e-6], presolve, rounding and warm starts on, log off. *)

type result = {
  status : Status.mip_status;
  objective : float;
      (** Incumbent objective in the model's own direction; meaningless
          for [Mip_infeasible]/[Mip_unknown]. *)
  bound : float;  (** Best proven bound (model direction). *)
  solution : float array option;  (** Values indexed by variable id. *)
  nodes : int;  (** Branch & bound nodes processed. *)
  lp_iterations : int;  (** Total simplex iterations. *)
  lp_warm : int;  (** LP solves served by the warm dual-simplex path. *)
  lp_cold : int;  (** LP solves that ran cold (root, no basis). *)
  lp_fallback : int;  (** Warm attempts that fell back to a cold solve. *)
  elapsed : float;  (** Wall-clock seconds. *)
}

val gap : result -> float
(** Relative optimality gap of a result ([infinity] without incumbent). *)

val solve : ?options:options -> Model.t -> result
(** Solve the model.  The model is not mutated. *)

val value : result -> int -> float
(** [value r v] is the incumbent value of variable [v].
    @raise Invalid_argument if the result carries no solution. *)
