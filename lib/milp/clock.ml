external now : unit -> float = "milp_clock_monotonic_s"

let elapsed_since t0 = now () -. t0
