(** Monotonic clock for solver deadlines.

    Every deadline and elapsed-time measurement inside the solver uses
    this clock instead of [Unix.gettimeofday]: the monotonic clock
    cannot jump (NTP corrections, manual [date] changes, VM
    suspensions resetting the wall clock), so a time limit armed at
    solve start can neither fire spuriously nor be suppressed
    mid-solve.  The origin is arbitrary — only differences between two
    readings are meaningful, and instants must never be compared
    against [Unix.gettimeofday] values. *)

val now : unit -> float
(** Seconds since an arbitrary fixed origin, strictly non-decreasing
    within a process.  Safe to call from any domain. *)

val elapsed_since : float -> float
(** [elapsed_since t0] = [now () -. t0]. *)
