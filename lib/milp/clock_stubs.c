/* Monotonic wall clock for solver deadlines.
 *
 * CLOCK_MONOTONIC is immune to wall-clock adjustments (NTP slews and
 * manual jumps), so a deadline computed at solve start cannot fire
 * early or be suppressed when the system clock moves mid-solve.  The
 * origin is arbitrary (boot time on Linux): only differences between
 * two readings are meaningful. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value milp_clock_monotonic_s(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
