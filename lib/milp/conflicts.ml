type t = {
  nvars : int;
  pairs : (int * int, unit) Hashtbl.t;
  adj : (int, int list) Hashtbl.t;
  impl : (int, int list) Hashtbl.t;
  cliques : (int * int array) list;
}

let key a b = if a < b then (a, b) else (b, a)

let nvars t = t.nvars

let npairs t = Hashtbl.length t.pairs

let conflict t a b = Hashtbl.mem t.pairs (key a b)

let neighbors t j = Option.value ~default:[] (Hashtbl.find_opt t.adj j)

let implied t j = Option.value ~default:[] (Hashtbl.find_opt t.impl j)

let vertices t =
  Hashtbl.fold (fun j _ acc -> j :: acc) t.adj [] |> List.sort compare

let cliques t = t.cliques

let build ?(max_row_len = 64) ?(tol = 1e-9) ?rows (p : Simplex.problem) ~nrows
    ~integer ~lb ~ub =
  let feas = 100. *. tol and islack = 1000. *. tol in
  let active i = match rows with None -> true | Some m -> m.(i) in
  let is_binary j = integer.(j) && lb.(j) >= -.islack && ub.(j) <= 1. +. islack in
  let pairs = Hashtbl.create 256 in
  let adj = Hashtbl.create 256 in
  let impl = Hashtbl.create 64 in
  let cliques = ref [] in
  let add_conflict a b =
    let k = key a b in
    if not (Hashtbl.mem pairs k) then begin
      Hashtbl.add pairs k ();
      let push v w =
        Hashtbl.replace adj v (w :: Option.value ~default:[] (Hashtbl.find_opt adj v))
      in
      push a b;
      push b a
    end
  in
  let add_impl a b =
    let cur = Option.value ~default:[] (Hashtbl.find_opt impl a) in
    if not (List.mem b cur) then Hashtbl.replace impl a (b :: cur)
  in
  for i = 0 to nrows - 1 do
    if active i then begin
      let row = p.Simplex.rows.(i) and rhs = p.Simplex.rhs.(i) in
      let sense = p.Simplex.senses.(i) in
      let len = Array.length row in
      (* All-positive binary support: the pairwise min-activity test and
         the exactly-one recognizer both need it. *)
      let all_pos_bin = ref (len >= 2 && len <= max_row_len) in
      for k = 0 to len - 1 do
        let j, a = Array.unsafe_get row k in
        if not (a > 0. && is_binary j && lb.(j) >= -.islack) then all_pos_bin := false
      done;
      if !all_pos_bin then begin
        (match sense with
        | Model.Le | Model.Eq ->
            let amin = ref 0. in
            for k = 0 to len - 1 do
              let j, a = Array.unsafe_get row k in
              amin := !amin +. (a *. lb.(j))
            done;
            let amin = !amin in
            for a_k = 0 to len - 1 do
              let j1, c1 = Array.unsafe_get row a_k in
              for b_k = a_k + 1 to len - 1 do
                let j2, c2 = Array.unsafe_get row b_k in
                let base = amin -. (c1 *. lb.(j1)) -. (c2 *. lb.(j2)) in
                if base +. c1 +. c2 > rhs +. feas then add_conflict j1 j2
              done
            done
        | Model.Ge -> ());
        if
          sense = Model.Eq
          && Float.abs (rhs -. 1.) <= islack
          && Array.for_all (fun (_, a) -> Float.abs (a -. 1.) <= islack) row
        then cliques := (i, Array.map fst row) :: !cliques
      end
      (* Two-variable rows over (possibly mixed-sign) binaries: check
         each 0/1 corner against the row; a forbidden (1,1) corner is a
         conflict, a forbidden (1,0) / (0,1) corner an implication. *)
      else if len = 2 then begin
        let j1, c1 = row.(0) and j2, c2 = row.(1) in
        if is_binary j1 && is_binary j2 && j1 <> j2 then begin
          let violates v1 v2 =
            let lhs = (c1 *. v1) +. (c2 *. v2) in
            match sense with
            | Model.Le -> lhs > rhs +. feas
            | Model.Ge -> lhs < rhs -. feas
            | Model.Eq -> Float.abs (lhs -. rhs) > feas
          in
          if violates 1. 1. then add_conflict j1 j2;
          if violates 1. 0. then add_impl j1 j2;
          if violates 0. 1. then add_impl j2 j1
        end
      end
    end
  done;
  { nvars = p.Simplex.ncols; pairs; adj; impl; cliques = List.rev !cliques }
