(** Reusable conflict / clique / implication table over the 0-1
    structure of a problem.

    Mined once from the rows under a given set of (root or working)
    bounds, the table answers "can these two binaries both be 1?", "who
    conflicts with [j]?", "which variables does setting [j] to 1
    force?", and enumerates the exactly-one sets — the shared substrate
    for {!Presolve}'s probing fixings and for the structured cut
    families ({!Cuts.cliques}, {!Cuts.odd_cycles}).

    Mining rules (all sound for every integer-feasible point under the
    given bounds):
    - {b Pair conflicts} from ≤/=-rows whose support is all-positive
      binary: [j1] and [j2] conflict when the row's minimum activity
      with both raised to 1 already overflows the rhs.
    - {b Exactly-one cliques} from unit-coefficient =-rows with rhs 1;
      their members are recorded as a clique (and pairwise conflicts).
    - {b Implications} from two-variable rows over binaries: each of
      the four 0/1 assignments is checked against the row; a forbidden
      [(1,0)] corner is the implication [j1 = 1 ⇒ j2 = 1], a forbidden
      [(1,1)] corner a conflict. *)

type t

val build :
  ?max_row_len:int ->
  ?tol:float ->
  ?rows:bool array ->
  Simplex.problem ->
  nrows:int ->
  integer:bool array ->
  lb:float array ->
  ub:float array ->
  t
(** Mine the first [nrows] rows (the base rows — never cut rows) under
    the given bounds.  [max_row_len] (default 64) skips longer rows to
    bound the pairwise scan; [rows], when given, masks rows to consider
    (presolve passes its active set).  [tol] (default 1e-9) derives the
    feasibility slack exactly as in {!Presolve}. *)

val nvars : t -> int

val npairs : t -> int
(** Number of distinct conflicting pairs. *)

val conflict : t -> int -> int -> bool
(** [conflict t a b]: can [a] and [b] not both be 1? *)

val neighbors : t -> int -> int list
(** All variables conflicting with [j] (empty when none). *)

val implied : t -> int -> int list
(** Variables forced to 1 by [j = 1] (empty when none). *)

val vertices : t -> int list
(** Variables with at least one conflict, ascending. *)

val cliques : t -> (int * int array) list
(** Exactly-one sets as [(row index, members)], one per mined row. *)
