type origin = Gomory | Cover | Clique | Cycle | Power

type cut = {
  c_row : (int * float) array;
  c_rhs : float;
  c_origin : origin;
}

(* ------------------------------------------------------------------ *)
(* Cut families (the ablation axis)                                    *)
(* ------------------------------------------------------------------ *)

type family = F_gmi | F_cover | F_clique | F_negcycle | F_power

let all_families = [ F_gmi; F_cover; F_clique; F_negcycle; F_power ]

let family_name = function
  | F_gmi -> "gmi"
  | F_cover -> "cover"
  | F_clique -> "clique"
  | F_negcycle -> "negcycle"
  | F_power -> "power"

let family_of_string = function
  | "gmi" -> Ok F_gmi
  | "cover" -> Ok F_cover
  | "clique" -> Ok F_clique
  | "negcycle" -> Ok F_negcycle
  | "power" -> Ok F_power
  | s ->
      Error
        (Printf.sprintf "unknown cut family %S (known: gmi, cover, clique, negcycle, power)"
           s)

let families_of_string s =
  match String.trim s with
  | "" | "none" -> Ok []
  | "all" -> Ok all_families
  | s ->
      let parts =
        String.split_on_char ',' s |> List.map String.trim
        |> List.filter (fun p -> p <> "")
      in
      List.fold_left
        (fun acc p ->
          match (acc, family_of_string p) with
          | Error e, _ -> Error e
          | _, Error e -> Error e
          | Ok fs, Ok f -> Ok (if List.mem f fs then fs else fs @ [ f ]))
        (Ok []) parts

let families_to_string = function
  | [] -> "none"
  | fs -> String.concat "," (List.map family_name fs)

let family_of_origin = function
  | Gomory -> F_gmi
  | Cover -> F_cover
  | Clique -> F_clique
  | Cycle -> F_negcycle
  | Power -> F_power

type separator = float array -> cut list

let dot_x row x =
  Array.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0. row

let violation c x = dot_x c.c_row x -. c.c_rhs

let satisfied ?(tol = 1e-6) c x = violation c x <= tol

(* Scale a ≤-row to unit L2 norm so violations are geometric distances
   and pool scoring is scale-free. *)
let normalize row rhs origin =
  let nrm = sqrt (Array.fold_left (fun acc (_, a) -> acc +. (a *. a)) 0. row) in
  if nrm < 1e-12 then None
  else begin
    let row = Array.map (fun (j, a) -> (j, a /. nrm)) row in
    Array.sort (fun (a, _) (b, _) -> compare a b) row;
    Some { c_row = row; c_rhs = rhs /. nrm; c_origin = origin }
  end

let make = normalize

(* ------------------------------------------------------------------ *)
(* Gomory mixed-integer cuts                                           *)
(* ------------------------------------------------------------------ *)

let frac v = v -. Float.floor v

(* Minimum distance of the basic value from integrality for a row to be
   worth cutting; also keeps 1/(1-f0) bounded. *)
let gmi_away = 0.005

let is_integral v = Float.is_finite v && Float.abs (v -. Float.round v) <= 1e-9

(* Derive the GMI cut of tableau row [i].  Works in the shifted space
   x'_j >= 0 (nonbasics moved to their status bound), applies the
   mixed-integer rounding coefficients, then substitutes structurals and
   slacks back so the cut is purely over structural variables.  Returns
   a ≥-violated ≤-cut, or None when a numerical guard trips. *)
let gmi_from_row (p : Simplex.problem) (t : Simplex.tableau) ~integer i =
  let n = t.Simplex.t_ncols in
  let f0 = frac t.Simplex.t_xb.(i) in
  let ratio = f0 /. (1. -. f0) in
  let row = t.Simplex.t_row i in
  (* Accumulated ≥-cut over structural variables: coef·x >= rhs. *)
  let coef = Array.make n 0. in
  let touched = ref [] in
  let add j v =
    if coef.(j) = 0. && v <> 0. then touched := j :: !touched;
    coef.(j) <- coef.(j) +. v
  in
  let rhs = ref f0 in
  let ok = ref true in
  Array.iter
    (fun (j, alpha) ->
      if !ok then
        match t.Simplex.t_stat.(j) with
        | Basis.Basic -> ()
        | Basis.Free_zero ->
            (* A free nonbasic has no sign for x'; the row is unusable. *)
            ok := false
        | (Basis.At_lower | Basis.At_upper) as stat ->
            let at_lower = stat = Basis.At_lower in
            let alpha' = if at_lower then alpha else -.alpha in
            let bound = if at_lower then t.Simplex.t_lb.(j) else t.Simplex.t_ub.(j) in
            (* x'_j = x_j - lb (at lower) or ub - x_j (at upper) is
               integer-valued only when the active bound is integral. *)
            let int_col = j < n && integer.(j) && is_integral bound in
            let gamma =
              if int_col then begin
                let fj = frac alpha' in
                if fj <= f0 +. 1e-12 then fj else ratio *. (1. -. fj)
              end
              else if alpha' >= 0. then alpha'
              else ratio *. -.alpha'
            in
            if gamma > 1e-12 then begin
              if j < n then
                if at_lower then begin
                  add j gamma;
                  rhs := !rhs +. (gamma *. bound)
                end
                else begin
                  add j (-.gamma);
                  rhs := !rhs -. (gamma *. bound)
                end
              else begin
                (* Slack of row r: substitute its defining row.  Le
                   slack sits at its lower bound 0 (x' = rhs_r - a·x);
                   Ge slack at its upper bound 0 (x' = a·x - rhs_r). *)
                let r = j - n in
                if r >= Array.length p.Simplex.rows then ok := false
                else begin
                  let s = if at_lower then -.gamma else gamma in
                  Array.iter (fun (jj, a) -> add jj (s *. a)) p.Simplex.rows.(r);
                  rhs := !rhs +. (s *. p.Simplex.rhs.(r))
                end
              end
            end)
    row;
  if not !ok then None
  else begin
    (* Flip to ≤ form and apply hygiene: drop near-zero coefficients by
       relaxing the rhs with their worst-case bound contribution (sound;
       unbounded columns keep their term), then bound the dynamic
       range. *)
    let items = ref [] in
    let le_rhs = ref (-. !rhs) in
    let amax = ref 0. and amin = ref infinity in
    (* [touched] can list a variable twice when substitutions cancel its
       coefficient to exactly zero and a later term re-adds it (common
       with cover-cut rows, whose entries share one magnitude); a
       duplicate would double the emitted coefficient. *)
    let touched = List.sort_uniq compare !touched in
    List.iter
      (fun j ->
        let c = -.coef.(j) in
        (* ≤-coefficient *)
        let a = Float.abs c in
        if a > 1e-10 then begin
          items := (j, c) :: !items;
          if a > !amax then amax := a;
          if a < !amin then amin := a
        end
        else if a > 0. then begin
          (* Relax: c·x_j >= min over the box, moved to the rhs. *)
          let worst = Float.min (c *. t.Simplex.t_lb.(j)) (c *. t.Simplex.t_ub.(j)) in
          if Float.is_finite worst then le_rhs := !le_rhs -. worst else ok := false
        end)
      touched;
    if (not !ok) || !items = [] || !amax /. !amin > 1e7 then None
    else normalize (Array.of_list !items) !le_rhs Gomory
  end

let gomory ?(dense = false) p ~integer ~lb ~ub basis ~max_cuts =
  match Simplex.tableau ~dense p ~lb ~ub basis with
  | None -> []
  | Some t ->
      let n = t.Simplex.t_ncols in
      let cands = ref [] in
      for i = 0 to t.Simplex.t_nrows - 1 do
        let k = t.Simplex.t_basic.(i) in
        if k < n && integer.(k) && t.Simplex.t_lb.(k) < t.Simplex.t_ub.(k) then begin
          let f = frac t.Simplex.t_xb.(i) in
          let dist = Float.min f (1. -. f) in
          if dist > gmi_away then cands := (dist, i) :: !cands
        end
      done;
      let cands =
        List.sort (fun (a, _) (b, _) -> compare (b : float) a) !cands
      in
      let rec take k acc = function
        | [] -> acc
        | _ when k <= 0 -> acc
        | (_, i) :: rest -> (
            match gmi_from_row p t ~integer i with
            | Some c -> take (k - 1) (c :: acc) rest
            | None -> take k acc rest)
      in
      take max_cuts [] cands

(* ------------------------------------------------------------------ *)
(* Knapsack cover cuts                                                 *)
(* ------------------------------------------------------------------ *)

(* Greedy separation on [sum a_j y_j <= b], a_j > 0, y binary with LP
   values [ystar]: pick a cover preferring variables close to 1,
   minimalize it, extend it with every at-least-as-heavy variable. *)
let separate_cover items b ystar =
  let arr = Array.of_list items in
  let na = Array.length arr in
  let order = Array.init na (fun i -> i) in
  Array.sort (fun i j -> compare (1. -. ystar.(i)) (1. -. ystar.(j))) order;
  let total = ref 0. in
  let chosen = ref [] in
  (try
     Array.iter
       (fun idx ->
         let (_, a, _) = arr.(idx) in
         total := !total +. a;
         chosen := idx :: !chosen;
         if !total > b +. 1e-9 then raise Exit)
       order
   with Exit -> ());
  if !total <= b +. 1e-9 then None
  else begin
    (* Minimalize: drop members (least attractive first — they were
       added last) while the remainder still overflows. *)
    let keep =
      List.filter
        (fun idx ->
          let (_, a, _) = arr.(idx) in
          if !total -. a > b +. 1e-9 then begin
            total := !total -. a;
            false
          end
          else true)
        !chosen
    in
    let csize = List.length keep in
    let amax =
      List.fold_left (fun acc idx -> let (_, a, _) = arr.(idx) in Float.max acc a) 0. keep
    in
    let in_cover = Array.make na false in
    List.iter (fun idx -> in_cover.(idx) <- true) keep;
    let ext = ref keep in
    for idx = 0 to na - 1 do
      let (_, a, _) = arr.(idx) in
      if (not in_cover.(idx)) && a >= amax -. 1e-12 then ext := idx :: !ext
    done;
    let lhs = List.fold_left (fun acc idx -> acc +. ystar.(idx)) 0. !ext in
    let viol = lhs -. float_of_int (csize - 1) in
    if viol <= 1e-4 then None else Some (!ext, csize, viol)
  end

let covers p ~nrows ~integer ~lb ~ub ~x ~max_cuts =
  let out = ref [] in
  for i = 0 to nrows - 1 do
    let sense = p.Simplex.senses.(i) in
    if sense <> Model.Eq then begin
      let sgn = match sense with Model.Le -> 1.0 | Model.Ge -> -1.0 | Model.Eq -> 0. in
      let b = ref (sgn *. p.Simplex.rhs.(i)) in
      let items = ref [] and ok = ref true in
      Array.iter
        (fun (j, a0) ->
          if !ok then begin
            let a = sgn *. a0 in
            if lb.(j) >= ub.(j) -. 1e-9 then b := !b -. (a *. lb.(j))
            else if integer.(j) && lb.(j) >= -1e-9 && ub.(j) <= 1. +. 1e-9 then begin
              if a > 1e-9 then items := (j, a, false) :: !items
              else if a < -1e-9 then begin
                (* Complement: a·x = a - (-a)·(1-x). *)
                items := (j, -.a, true) :: !items;
                b := !b -. a
              end
              else b := !b +. Float.abs a (* noise coefficient: relax *)
            end
            else ok := false (* non-binary support: not a knapsack row *)
          end)
        p.Simplex.rows.(i);
      if !ok && List.length !items >= 2 && !b >= 0. then begin
        let arr = Array.of_list !items in
        let ystar =
          Array.map
            (fun (j, _, comp) ->
              let v = if comp then 1. -. x.(j) else x.(j) in
              Float.max 0. (Float.min 1. v))
            arr
        in
        match separate_cover !items !b ystar with
        | None -> ()
        | Some (ext, csize, viol) ->
            let ncomp = ref 0 in
            let row =
              List.map
                (fun idx ->
                  let (j, _, comp) = arr.(idx) in
                  if comp then begin
                    incr ncomp;
                    (j, -1.0)
                  end
                  else (j, 1.0))
                ext
            in
            let rhs = float_of_int (csize - 1 - !ncomp) in
            (match normalize (Array.of_list row) rhs Cover with
            | Some c -> out := (viol, c) :: !out
            | None -> ())
      end
    end
  done;
  !out
  |> List.sort (fun (a, _) (b, _) -> compare (b : float) a)
  |> List.filteri (fun i _ -> i < max_cuts)
  |> List.map snd

(* ------------------------------------------------------------------ *)
(* Clique cuts from the conflict table                                 *)
(* ------------------------------------------------------------------ *)

let cliques (tbl : Conflicts.t) ~x ~max_cuts =
  let nx = Array.length x in
  let xv j = if j < nx then x.(j) else 0. in
  (* Seed greedy extension from the highest-value conflict vertices;
     low-value vertices cannot start a violated clique. *)
  let seeds =
    Conflicts.vertices tbl
    |> List.filter (fun j -> xv j > 0.05)
    |> List.sort (fun a b -> compare (xv b) (xv a))
    |> List.filteri (fun i _ -> i < Int.max 8 (4 * max_cuts))
  in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun v ->
      let cand =
        Conflicts.neighbors tbl v
        |> List.sort (fun a b -> compare (xv b) (xv a))
      in
      let q = ref [ v ] in
      List.iter
        (fun u ->
          if u <> v && List.for_all (Conflicts.conflict tbl u) !q then
            q := u :: !q)
        cand;
      let members = List.sort_uniq compare !q in
      if List.length members >= 2 then begin
        let key = String.concat "," (List.map string_of_int members) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          let lhs = List.fold_left (fun acc j -> acc +. xv j) 0. members in
          if lhs > 1. +. 1e-4 then begin
            let row = Array.of_list (List.map (fun j -> (j, 1.0)) members) in
            match normalize row 1.0 Clique with
            | Some c -> out := (lhs -. 1., c) :: !out
            | None -> ()
          end
        end
      end)
    seeds;
  !out
  |> List.sort (fun (a, _) (b, _) -> compare (b : float) a)
  |> List.filteri (fun i _ -> i < max_cuts)
  |> List.map snd

(* ------------------------------------------------------------------ *)
(* Odd-cycle cuts via negative-cycle search                            *)
(* ------------------------------------------------------------------ *)

module Digraph = Netgraph.Digraph
module Negcycle = Netgraph.Negcycle

(* Extract a simple odd cycle from a closed walk of odd length (one
   always exists): scan with a stack, splicing out any even loop at a
   repeated node; an odd loop is returned directly, and whatever
   survives the scan is itself a simple odd cycle. *)
let simple_odd_cycle walk =
  let stack = ref [] (* most recent first *) in
  let depth = Hashtbl.create 16 in
  let n = ref 0 in
  let result = ref None in
  (try
     List.iter
       (fun u ->
         match Hashtbl.find_opt depth u with
         | None ->
             stack := u :: !stack;
             Hashtbl.replace depth u !n;
             incr n
         | Some d ->
             let len = !n - d in
             if len mod 2 = 1 && len >= 3 then begin
               (* Nodes at depths d .. n-1, oldest first; the closing
                  arc is the walk arc (stack top -> u). *)
               let rec take k acc = function
                 | [] -> acc
                 | v :: tl -> if k = 0 then acc else take (k - 1) (v :: acc) tl
               in
               result := Some (take len [] !stack);
               raise Exit
             end
             else begin
               (* Even loop: pop back to the first occurrence of [u];
                  walk continuity is preserved because both ends of the
                  spliced segment are the same node. *)
               let rec pop () =
                 match !stack with
                 | v :: tl when Hashtbl.find depth v > d ->
                     Hashtbl.remove depth v;
                     stack := tl;
                     decr n;
                     pop ()
                 | _ -> ()
               in
               pop ()
             end)
       walk
   with Exit -> ());
  match !result with
  | Some c -> Some c
  | None ->
      let c = List.rev !stack in
      let k = List.length c in
      if k >= 3 && k mod 2 = 1 then Some c else None

let odd_cycles (tbl : Conflicts.t) ~x ~max_cuts =
  let nx = Array.length x in
  (* Only fractional conflict vertices can lie on a violated odd cycle
     worth finding (an integral vertex contributes slack). *)
  let verts =
    Conflicts.vertices tbl
    |> List.filter (fun j -> j < nx && x.(j) > 0.05 && x.(j) < 0.999)
  in
  let nv = List.length verts in
  if nv < 3 then []
  else begin
    let vid = Array.of_list verts in
    let id_of = Hashtbl.create nv in
    Array.iteri (fun i j -> Hashtbl.add id_of j i) vid;
    (* Double cover of the conflict graph: node [(i, parity)] is
       [i + parity*nv]; every conflict arc flips parity and carries
       weight max(eps, 1 - x_u - x_v) >= 0.  A walk from [(s,0)] to
       [(s,1)] is an odd closed walk through [s], and its weight is
       [k - 2*sum x] over its [k] arcs — below 1 exactly when the
       odd-cycle inequality [sum x <= (k-1)/2] is violated.  Closing
       with a return arc [(s,1) -> (s,0)] of weight just above -1 turns
       "violated odd cycle through [s]" into "negative cycle", which
       Bellman-Ford ({!Negcycle}) finds exactly.  Clamping at eps only
       weakens arcs, so any cycle found is genuinely violated (and is
       re-checked explicitly below). *)
    let base = Digraph.create (2 * nv) in
    Array.iteri
      (fun i j ->
        List.iter
          (fun u ->
            match Hashtbl.find_opt id_of u with
            | None -> ()
            | Some iu ->
                let w = Float.max 1e-7 (1. -. x.(j) -. x.(u)) in
                Digraph.add_edge base ~w i (iu + nv);
                Digraph.add_edge base ~w (i + nv) iu)
          (Conflicts.neighbors tbl j))
      vid;
    (* Route through the most fractional vertices first. *)
    let sources =
      List.init nv Fun.id
      |> List.sort (fun a b ->
             compare
               (Float.abs (x.(vid.(a)) -. 0.5))
               (Float.abs (x.(vid.(b)) -. 0.5)))
      |> List.filteri (fun i _ -> i < Int.max 8 (2 * max_cuts))
    in
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    List.iter
      (fun s ->
        if List.length !out < max_cuts then begin
          let g = Digraph.copy base in
          Digraph.add_edge g ~w:(-1. +. 2e-4) (s + nv) s;
          match (Negcycle.run ~sources:[ s ] g).Negcycle.cycle with
          | None -> ()
          | Some nodes ->
              (* Rotate the cycle to start just past the return arc
                 (the unique same-variable transition), project parities
                 away, and drop the final repeat of [s]'s variable: what
                 remains is a closed odd walk in the conflict graph. *)
              let arr = Array.of_list nodes in
              let m = Array.length arr in
              let var i = vid.(arr.(i) mod nv) in
              let cut_at = ref (-1) in
              for i = 0 to m - 1 do
                if var i = var ((i + 1) mod m) then cut_at := i
              done;
              if !cut_at >= 0 && m >= 4 then begin
                let walk =
                  List.init (m - 1) (fun i -> var ((!cut_at + 1 + i) mod m))
                in
                match simple_odd_cycle walk with
                | None -> ()
                | Some cyc ->
                    let carr = Array.of_list cyc in
                    let k = Array.length carr in
                    let ok = ref (k >= 3 && k mod 2 = 1) in
                    for i = 0 to k - 1 do
                      if
                        not
                          (Conflicts.conflict tbl carr.(i)
                             carr.((i + 1) mod k))
                      then ok := false
                    done;
                    let lhs =
                      Array.fold_left (fun acc j -> acc +. x.(j)) 0. carr
                    in
                    let rhs = float_of_int (k - 1) /. 2. in
                    if !ok && lhs > rhs +. 1e-4 then begin
                      let members = List.sort_uniq compare cyc in
                      let key =
                        String.concat "," (List.map string_of_int members)
                      in
                      if
                        (not (Hashtbl.mem seen key))
                        && List.length members = k
                      then begin
                        Hashtbl.add seen key ();
                        let row =
                          Array.of_list
                            (List.map (fun j -> (j, 1.0)) members)
                        in
                        match normalize row rhs Cycle with
                        | Some c -> out := c :: !out
                        | None -> ()
                      end
                    end
              end
        end)
      sources;
    !out
  end

(* ------------------------------------------------------------------ *)
(* Cut pool                                                            *)
(* ------------------------------------------------------------------ *)

type entry = { e_cut : cut; mutable e_age : int }

type pool = {
  mutable members : entry list;
  mutable separated : int;
  mutable applied : int;
  mutable evicted : int;
  max_age : int;
  max_size : int;
}

let create_pool ?(max_age = 5) ?(max_size = 500) () =
  { members = []; separated = 0; applied = 0; evicted = 0; max_age; max_size }

(* Cosine of two unit-norm sparse rows (both sorted by variable). *)
let cosine a b =
  let la = Array.length a and lb = Array.length b in
  let acc = ref 0. and ia = ref 0 and ib = ref 0 in
  while !ia < la && !ib < lb do
    let (ja, ca) = a.(!ia) and (jb, cb) = b.(!ib) in
    if ja = jb then begin
      acc := !acc +. (ca *. cb);
      incr ia;
      incr ib
    end
    else if ja < jb then incr ia
    else incr ib
  done;
  !acc

let add pool c ~x =
  ignore x;
  let parallel = ref None in
  let dup = ref false in
  List.iter
    (fun e ->
      if not !dup then
        let cos = cosine c.c_row e.e_cut.c_row in
        if cos > 0.999 then
          if e.e_cut.c_rhs <= c.c_rhs +. 1e-9 then dup := true
          else parallel := Some e)
    pool.members;
  if !dup then false
  else begin
    (match !parallel with
    | Some e ->
        (* The pooled near-parallel row is strictly weaker: replace. *)
        pool.members <- List.filter (fun e' -> e' != e) pool.members;
        pool.evicted <- pool.evicted + 1
    | None -> ());
    pool.members <- { e_cut = c; e_age = 0 } :: pool.members;
    pool.separated <- pool.separated + 1;
    true
  end

(* Origin-fair take: round-robin across the origins present (each
   origin's queue ordered by violation) until [max_cuts] are drawn.  A
   prolific family — GMI typically separates several highly violated
   rows per round — would otherwise crowd every other family out of the
   applied-cuts cap, which is exactly wrong when a sparser family (the
   structural energy cuts, say) is the one that moves the bound. *)
let fair_take violated max_cuts =
  let queues : (origin * (float * entry) Queue.t) list ref = ref [] in
  List.iter
    (fun ((_, e) as s) ->
      let o = e.e_cut.c_origin in
      match List.assq_opt o !queues with
      | Some q -> Queue.add s q
      | None ->
          let q = Queue.create () in
          Queue.add s q;
          queues := !queues @ [ (o, q) ])
    violated;
  let taken = ref [] in
  let progressed = ref true in
  while List.length !taken < max_cuts && !progressed do
    progressed := false;
    List.iter
      (fun (_, q) ->
        if List.length !taken < max_cuts && not (Queue.is_empty q) then begin
          taken := Queue.pop q :: !taken;
          progressed := true
        end)
      !queues
  done;
  let rest =
    List.concat_map (fun (_, q) -> List.of_seq (Queue.to_seq q)) !queues
  in
  (List.rev !taken, rest)

let select pool ~x ~max_cuts ~min_violation =
  let scored = List.map (fun e -> (violation e.e_cut x, e)) pool.members in
  let violated, rest = List.partition (fun (v, _) -> v > min_violation) scored in
  let violated = List.sort (fun (a, _) (b, _) -> compare (b : float) a) violated in
  let taken, kept_violated = fair_take violated max_cuts in
  List.iter (fun (_, e) -> e.e_age <- 0) kept_violated;
  let stale, fresh =
    List.partition
      (fun (_, e) ->
        e.e_age <- e.e_age + 1;
        e.e_age > pool.max_age)
      rest
  in
  pool.evicted <- pool.evicted + List.length stale;
  pool.applied <- pool.applied + List.length taken;
  let remaining = List.map snd (kept_violated @ fresh) in
  (* Size cap: drop the least violated overflow. *)
  let remaining =
    if List.length remaining <= pool.max_size then remaining
    else begin
      let sorted =
        List.sort
          (fun a b -> compare (violation b.e_cut x) (violation a.e_cut x))
          remaining
      in
      let keep = List.filteri (fun i _ -> i < pool.max_size) sorted in
      pool.evicted <- pool.evicted + (List.length sorted - pool.max_size);
      keep
    end
  in
  pool.members <- remaining;
  List.map (fun (_, e) -> e.e_cut) taken

let stats pool = (pool.separated, pool.applied, pool.evicted)

let members pool = List.map (fun e -> e.e_cut) pool.members

(* ------------------------------------------------------------------ *)
(* Re-certification of carried cover cuts                              *)
(* ------------------------------------------------------------------ *)

(* A literal-form cut reads  sum_l y_l <= d  with  y_l = x_j (positive
   coefficient) or 1 - x_j (negative, complemented) — covers, cliques,
   odd cycles and the structural power cuts are all of this shape.
   Recover (literals, d) from the normalized stored form: coefficients
   must share one magnitude s, and rhs/s + #complements must be a
   nonnegative integer.  Gomory cuts are excluded: their coefficients
   are basis-specific reals, not literals. *)
let cover_literals c =
  let nlits = Array.length c.c_row in
  if c.c_origin = Gomory || nlits = 0 then None
  else begin
    let s = Float.abs (snd c.c_row.(0)) in
    if s < 1e-12 then None
    else if
      not
        (Array.for_all
           (fun (_, a) -> Float.abs (Float.abs a -. s) <= 1e-7 *. s)
           c.c_row)
    then None
    else begin
      let ncomp =
        Array.fold_left (fun n (_, a) -> if a < 0. then n + 1 else n) 0 c.c_row
      in
      let d_f = (c.c_rhs /. s) +. float_of_int ncomp in
      let d = Float.round d_f in
      if Float.abs (d_f -. d) > 1e-6 || d < 0. then None
      else Some (Array.map (fun (j, a) -> (j, a > 0.)) c.c_row, int_of_float d)
    end
  end

(* Does row [i] of [p], read as a ≤-row with sign [sgn], prove the cover?
   Map each cut literal onto its row term when the orientation matches
   (weight |a|, complemented terms shift the rhs); relax every other row
   term over the variable box.  The resulting valid inequality
   [sum_l w_l y_l <= b] forbids more than [d] literals at 1 whenever the
   [d+1] smallest weights already overflow [b]. *)
let cover_holds_on_row p ~lb ~ub lits d i sgn =
  let nlits = Array.length lits in
  let b = ref (sgn *. p.Simplex.rhs.(i)) in
  let w = Array.make nlits 0. in
  let lit_index j =
    let rec go l = if l >= nlits then None
      else if fst lits.(l) = j then Some l else go (l + 1)
    in
    go 0
  in
  let ok = ref true in
  Array.iter
    (fun (j, a0) ->
      if !ok then begin
        let a = sgn *. a0 in
        let matched =
          match lit_index j with
          | Some l when a <> 0. && (a > 0.) = snd lits.(l) ->
              w.(l) <- Float.abs a;
              if a < 0. then b := !b +. Float.abs a;
              true
          | _ -> false
        in
        if not matched then begin
          let worst = Float.min (a *. lb.(j)) (a *. ub.(j)) in
          if Float.is_finite worst then b := !b -. worst else ok := false
        end
      end)
    p.Simplex.rows.(i);
  !ok
  && begin
       Array.sort compare w;
       let s = ref 0. in
       for k = 0 to d do
         s := !s +. w.(k)
       done;
       !s > !b +. 1e-7
     end

let lit_index_mem lits j = Array.exists (fun (j', _) -> j' = j) lits

let certify_cover (p : Simplex.problem) ~nrows ~integer ~lb ~ub c =
  match cover_literals c with
  | None -> false
  | Some (lits, d) ->
      let binary j =
        j < Array.length lb
        && integer.(j)
        && lb.(j) >= -1e-9
        && ub.(j) <= 1. +. 1e-9
      in
      Array.for_all (fun (j, _) -> binary j) lits
      && begin
           if d >= Array.length lits then true
             (* at most |L|-of-|L| literals: implied by the binary box *)
           else begin
             let touches i =
               Array.exists (fun (j, _) -> lit_index_mem lits j) p.Simplex.rows.(i)
             in
             let rec scan i =
               if i >= nrows then false
               else begin
                 let here =
                   touches i
                   && (match p.Simplex.senses.(i) with
                      | Model.Le -> cover_holds_on_row p ~lb ~ub lits d i 1.0
                      | Model.Ge -> cover_holds_on_row p ~lb ~ub lits d i (-1.0)
                      | Model.Eq ->
                          cover_holds_on_row p ~lb ~ub lits d i 1.0
                          || cover_holds_on_row p ~lb ~ub lits d i (-1.0))
                 in
                 here || scan (i + 1)
               end
             in
             scan 0
           end
         end

(* ------------------------------------------------------------------ *)
(* Mapping cuts through a presolve reduction                           *)
(* ------------------------------------------------------------------ *)

let lift (post : Postsolve.t) c =
  { c with c_row = Array.map (fun (j, a) -> (post.Postsolve.col_of_red.(j), a)) c.c_row }

let restrict (post : Postsolve.t) c =
  let terms = ref [] and rhs = ref c.c_rhs in
  let ok = ref true in
  Array.iter
    (fun (j, a) ->
      if !ok then
        match Postsolve.col_state post j with
        | Postsolve.Kept red -> terms := (red, a) :: !terms
        | Postsolve.Fixed f -> rhs := !rhs -. (a *. f.Postsolve.fx_value)
        | Postsolve.Substituted ->
            (* The substitution equation could in principle be folded in,
               but its terms live in original space and may themselves be
               eliminated; dropping the cut is always sound. *)
            ok := false)
    c.c_row;
  if not !ok then None
  else
    match !terms with
    | [] -> None
    | ts ->
        let row = Array.of_list (List.rev ts) in
        (* Renormalize: folding fixed columns changed the norm. *)
        normalize row !rhs c.c_origin
