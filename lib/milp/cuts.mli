(** Cutting-plane separation with a managed cut pool.

    Five families of globally valid cuts for the paper's MILPs (binary
    edge/path routing rows 1a–1e, covering-style localization rows
    4a–4b):

    - {b Gomory mixed-integer cuts} read off fractional basic rows of
      the final simplex tableau ({!Simplex.tableau}).  Derived under the
      root bounds they are valid for every integer-feasible point, so
      they may be appended to the global row set.
    - {b Knapsack cover cuts} separated combinatorially from ≤-rows
      whose support is all-binary (hop-count bounds, sizing and
      anchor-covering rows): a cover [C] with [sum a_j > rhs] yields
      [sum_{j in C} x_j <= |C| - 1], extended by every variable at
      least as heavy as the heaviest cover member.
    - {b Clique cuts} from the mined conflict table ({!Conflicts}):
      pairwise-conflicting sets give [sum_{j in Q} x_j <= 1], separated
      by greedy extension from high-value vertices.
    - {b Odd-cycle cuts} on the same conflict graph: an odd cycle [C]
      of conflicts gives [sum_{j in C} x_j <= (|C|-1)/2], separated
      {e exactly} by Bellman–Ford negative-cycle search
      ({!Netgraph.Negcycle}) on a reweighted parity double cover.
    - {b Structural power/RSS/energy cuts} built outside this module
      (from the instance data, see the core library) and injected
      through {!separator} closures; they carry the {!Power} origin.

    Every separated cut passes through a {b pool} that scores violation
    (geometric distance, rows are L2-normalized), filters duplicates and
    near-parallel rows, and evicts members that have not been violated
    for a number of selection rounds.  Selected cuts leave the pool and
    become permanent rows of the working problem; the warm dual simplex
    re-solves after each round by appending rows to the standing basis
    ({!Basis.append_row}), so a separation round costs a handful of dual
    pivots instead of a cold solve. *)

type origin = Gomory | Cover | Clique | Cycle | Power

type cut = {
  c_row : (int * float) array;
      (** Sparse ≤-row over structural variables, L2-normalized. *)
  c_rhs : float;
  c_origin : origin;
}

(** {1 Families} *)

type family = F_gmi | F_cover | F_clique | F_negcycle | F_power
(** The ablation axis: which separation families may run.  [F_negcycle]
    produces {!Cycle}-origin cuts, the others match their name. *)

val all_families : family list

val family_name : family -> string
(** ["gmi"], ["cover"], ["clique"], ["negcycle"], ["power"]. *)

val family_of_string : string -> (family, string) result

val families_of_string : string -> (family list, string) result
(** Parse a comma-separated family list; ["all"] and ["none"]/[""] are
    recognized.  Duplicates collapse, order is preserved. *)

val families_to_string : family list -> string

val family_of_origin : origin -> family

type separator = float array -> cut list
(** A problem-structure separation oracle: given the {e original-space}
    fractional point (after {!Postsolve.restore}), return violated cuts
    over original column ids.  {!Branch_bound.solve} maps them onto the
    reduced space with {!restrict} before pooling. *)

val make : (int * float) array -> float -> origin -> cut option
(** [make row rhs origin] builds a cut from a ≤-row: sorts the support,
    L2-normalizes, and rejects near-empty rows ([None]).  The public
    constructor for external separators. *)

val violation : cut -> float array -> float
(** [violation c x] = [a·x - rhs]; positive means [x] violates the cut.
    Rows are unit-norm, so this is the Euclidean distance cut off. *)

val satisfied : ?tol:float -> cut -> float array -> bool
(** [a·x <= rhs + tol] (default [tol = 1e-6]).  Used by the validity
    property tests: no integer-feasible point may ever violate a cut. *)

(** {1 Separation} *)

val gomory :
  ?dense:bool ->
  Simplex.problem ->
  integer:bool array ->
  lb:float array ->
  ub:float array ->
  Basis.t ->
  max_cuts:int ->
  cut list
(** Separate Gomory mixed-integer cuts from the optimal basis of the
    (possibly cut-augmented) problem under the {e root} bounds.  Rows
    whose basic variable is a non-fixed integer structural with
    fractional value are eligible; slack contributions are substituted
    out through their defining rows so the result is purely structural.
    Rows with free nonbasics, tiny fractionality, or wild coefficient
    ranges are skipped for numerical safety.  At most [max_cuts]
    most-fractional rows are used.  [dense] selects the ablation basis
    kernel for the tableau solves, as in {!Simplex.solve}. *)

val covers :
  Simplex.problem ->
  nrows:int ->
  integer:bool array ->
  lb:float array ->
  ub:float array ->
  x:float array ->
  max_cuts:int ->
  cut list
(** Separate knapsack cover cuts from the first [nrows] rows of the
    problem (the base rows — never from other cuts) against the
    fractional point [x].  Only rows whose non-fixed support is entirely
    binary under the given (root) bounds are eligible; negative
    coefficients are complemented, fixed variables folded into the rhs.
    Returns the [max_cuts] most violated cuts. *)

val cliques : Conflicts.t -> x:float array -> max_cuts:int -> cut list
(** Separate clique inequalities [sum_{j in Q} x_j <= 1] from the
    conflict table against the fractional point [x].  Greedy clique
    extension (by decreasing LP value) seeded from the highest-value
    conflict vertices; only cliques violated by more than 1e-4 are
    returned, most violated first. *)

val odd_cycles : Conflicts.t -> x:float array -> max_cuts:int -> cut list
(** Separate odd-cycle inequalities [sum_{j in C} x_j <= (|C|-1)/2]
    ([C] an odd cycle of the conflict graph) against [x].  Exact
    separation per source vertex: on the parity double cover of the
    conflict graph with arc weights [max(eps, 1 - x_u - x_v)] and a
    [-1] return arc, a violated odd cycle through the source is
    precisely a negative cycle, found by Bellman–Ford
    ({!Netgraph.Negcycle}).  Sources are the most fractional conflict
    vertices; extracted cycles are simplified to simple odd cycles and
    re-checked for violation before emission. *)

(** {1 Pool} *)

type pool

val create_pool : ?max_age:int -> ?max_size:int -> unit -> pool
(** A fresh pool.  [max_age] (default 5) is the number of selection
    rounds a member may go unviolated before eviction; [max_size]
    (default 500) caps the pool, evicting the least violated members
    first. *)

val add : pool -> cut -> x:float array -> bool
(** Offer a cut to the pool.  Returns [false] — and does not store it —
    when an identical cut is already pooled, or a near-parallel one
    (cosine > 0.999) at least as tight exists; a near-parallel strictly
    weaker member is replaced.  Every accepted cut counts as
    separated. *)

val select : pool -> x:float array -> max_cuts:int -> min_violation:float -> cut list
(** One selection round: return up to [max_cuts] pool members violated
    at [x] (violation above [min_violation]), removing them from the
    pool (they become problem rows and count as applied).  Selection is
    {e origin-fair}: a round-robin across the origins present, each
    origin's queue ordered by decreasing violation, so one prolific
    family cannot crowd every other out of the applied-cuts cap.
    Members not violated this round age by one and are evicted past
    [max_age]; violated-but-unselected members stay young. *)

val stats : pool -> int * int * int
(** [(separated, applied, evicted)] counters over the pool's life. *)

val members : pool -> cut list
(** Snapshot of the cuts currently pooled (for carrying across solves). *)

(** {1 Carrying cuts across model growth} *)

val certify_cover :
  Simplex.problem ->
  nrows:int ->
  integer:bool array ->
  lb:float array ->
  ub:float array ->
  cut -> bool
(** [certify_cover p ~nrows ~integer ~lb ~ub c] re-proves a pooled
    literal-form cut ({!Cover}, {!Clique}, {!Cycle}, or {!Power} —
    anything of the shape [sum_l y_l <= d] with [y_l] a binary variable
    or its complement) against the first [nrows] (base) rows of a
    {e grown} problem under its root bounds, without reference to the
    model the cut was separated from.  The cut is decoded back to
    literal form and accepted iff some base row, relaxed over the box
    to a valid inequality [sum_l w_l y_l <= b] with [w_l >= 0], has its
    [d+1] smallest literal weights already exceeding [b] — which makes
    more than [d] literals at 1 impossible, so the cut is globally
    valid for the new model.  Cliques mined from exactly-one rows
    certify from those same rows; power cuts usually do {e not} certify
    (their validity needs several rows at once) and are re-separated
    fresh instead.  Returns [false] for Gomory cuts (their derivation
    is basis-specific and does not survive new columns) and whenever no
    row certifies: the test is sound but deliberately conservative. *)

(** {1 Mapping cuts through a presolve reduction} *)

val lift : Postsolve.t -> cut -> cut
(** Re-express a cut separated on the {e reduced} problem over original
    column ids ([col_of_red] is injective, so validity and normalization
    are untouched).  Lifted cuts are what {!Branch_bound} reports and
    carries across solves. *)

val restrict : Postsolve.t -> cut -> cut option
(** Map an original-space cut onto the reduced columns: kept columns
    translate, fixed columns fold into the rhs, and a cut touching a
    substituted column is dropped ([None], also returned when nothing
    of the support survives).  Sound because every reduced-feasible
    point restores to an original-feasible one with exactly the folded
    values. *)
