(** Cutting-plane separation with a managed cut pool.

    Two families of globally valid cuts for the paper's MILPs (binary
    edge/path routing rows 1a–1e, covering-style localization rows
    4a–4b):

    - {b Gomory mixed-integer cuts} read off fractional basic rows of
      the final simplex tableau ({!Simplex.tableau}).  Derived under the
      root bounds they are valid for every integer-feasible point, so
      they may be appended to the global row set.
    - {b Knapsack cover cuts} separated combinatorially from ≤-rows
      whose support is all-binary (hop-count bounds, sizing and
      anchor-covering rows): a cover [C] with [sum a_j > rhs] yields
      [sum_{j in C} x_j <= |C| - 1], extended by every variable at
      least as heavy as the heaviest cover member.

    Every separated cut passes through a {b pool} that scores violation
    (geometric distance, rows are L2-normalized), filters duplicates and
    near-parallel rows, and evicts members that have not been violated
    for a number of selection rounds.  Selected cuts leave the pool and
    become permanent rows of the working problem; the warm dual simplex
    re-solves after each round by appending rows to the standing basis
    ({!Basis.append_row}), so a separation round costs a handful of dual
    pivots instead of a cold solve. *)

type origin = Gomory | Cover

type cut = {
  c_row : (int * float) array;
      (** Sparse ≤-row over structural variables, L2-normalized. *)
  c_rhs : float;
  c_origin : origin;
}

val violation : cut -> float array -> float
(** [violation c x] = [a·x - rhs]; positive means [x] violates the cut.
    Rows are unit-norm, so this is the Euclidean distance cut off. *)

val satisfied : ?tol:float -> cut -> float array -> bool
(** [a·x <= rhs + tol] (default [tol = 1e-6]).  Used by the validity
    property tests: no integer-feasible point may ever violate a cut. *)

(** {1 Separation} *)

val gomory :
  ?dense:bool ->
  Simplex.problem ->
  integer:bool array ->
  lb:float array ->
  ub:float array ->
  Basis.t ->
  max_cuts:int ->
  cut list
(** Separate Gomory mixed-integer cuts from the optimal basis of the
    (possibly cut-augmented) problem under the {e root} bounds.  Rows
    whose basic variable is a non-fixed integer structural with
    fractional value are eligible; slack contributions are substituted
    out through their defining rows so the result is purely structural.
    Rows with free nonbasics, tiny fractionality, or wild coefficient
    ranges are skipped for numerical safety.  At most [max_cuts]
    most-fractional rows are used.  [dense] selects the ablation basis
    kernel for the tableau solves, as in {!Simplex.solve}. *)

val covers :
  Simplex.problem ->
  nrows:int ->
  integer:bool array ->
  lb:float array ->
  ub:float array ->
  x:float array ->
  max_cuts:int ->
  cut list
(** Separate knapsack cover cuts from the first [nrows] rows of the
    problem (the base rows — never from other cuts) against the
    fractional point [x].  Only rows whose non-fixed support is entirely
    binary under the given (root) bounds are eligible; negative
    coefficients are complemented, fixed variables folded into the rhs.
    Returns the [max_cuts] most violated cuts. *)

(** {1 Pool} *)

type pool

val create_pool : ?max_age:int -> ?max_size:int -> unit -> pool
(** A fresh pool.  [max_age] (default 5) is the number of selection
    rounds a member may go unviolated before eviction; [max_size]
    (default 500) caps the pool, evicting the least violated members
    first. *)

val add : pool -> cut -> x:float array -> bool
(** Offer a cut to the pool.  Returns [false] — and does not store it —
    when an identical cut is already pooled, or a near-parallel one
    (cosine > 0.999) at least as tight exists; a near-parallel strictly
    weaker member is replaced.  Every accepted cut counts as
    separated. *)

val select : pool -> x:float array -> max_cuts:int -> min_violation:float -> cut list
(** One selection round: return up to [max_cuts] pool members most
    violated at [x] (violation above [min_violation]), removing them
    from the pool (they become problem rows and count as applied).
    Members not violated this round age by one and are evicted past
    [max_age]; violated-but-unselected members stay young. *)

val stats : pool -> int * int * int
(** [(separated, applied, evicted)] counters over the pool's life. *)

val members : pool -> cut list
(** Snapshot of the cuts currently pooled (for carrying across solves). *)

(** {1 Carrying cuts across model growth} *)

val certify_cover :
  Simplex.problem ->
  nrows:int ->
  integer:bool array ->
  lb:float array ->
  ub:float array ->
  cut -> bool
(** [certify_cover p ~nrows ~integer ~lb ~ub c] re-proves a pooled
    {!Cover} cut against the first [nrows] (base) rows of a {e grown}
    problem under its root bounds, without reference to the model the
    cut was separated from.  The cut is decoded back to literal form
    [sum_l y_l <= d] ([y_l] a binary variable or its complement) and
    accepted iff some base row, relaxed over the box to a valid
    inequality [sum_l w_l y_l <= b] with [w_l >= 0], has its [d+1]
    smallest literal weights already exceeding [b] — which makes more
    than [d] literals at 1 impossible, so the cut is globally valid for
    the new model.  Returns [false] for Gomory cuts (their derivation is
    basis-specific and does not survive new columns) and whenever no row
    certifies: the test is sound but deliberately conservative. *)

(** {1 Mapping cuts through a presolve reduction} *)

val lift : Postsolve.t -> cut -> cut
(** Re-express a cut separated on the {e reduced} problem over original
    column ids ([col_of_red] is injective, so validity and normalization
    are untouched).  Lifted cuts are what {!Branch_bound} reports and
    carries across solves. *)

val restrict : Postsolve.t -> cut -> cut option
(** Map an original-space cut onto the reduced columns: kept columns
    translate, fixed columns fold into the rhs, and a cut touching a
    substituted column is dropped ([None], also returned when nothing
    of the support survives).  Sound because every reduced-feasible
    point restores to an original-feasible one with exactly the folded
    values. *)
