(* LP-format identifiers may not contain characters like '(', ')', ' ',
   and may not start with a digit or '.'; sanitize generated names. *)
let sanitize name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '#' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  if s = "" then "v"
  else
    match s.[0] with
    | '0' .. '9' | '.' -> "v" ^ s
    | _ -> s

let var_label m v = sanitize (Printf.sprintf "%s_%d" (Model.var_name m v) v)

let pp_expr buf m e =
  let first = ref true in
  Lin.iter
    (fun v c ->
      if !first then begin
        if c < 0. then Buffer.add_string buf "- "
        else ();
        first := false
      end
      else if c < 0. then Buffer.add_string buf " - "
      else Buffer.add_string buf " + ";
      let mag = Float.abs c in
      if mag = 1.0 then Buffer.add_string buf (var_label m v)
      else Buffer.add_string buf (Printf.sprintf "%.12g %s" mag (var_label m v)))
    e;
  if !first then Buffer.add_string buf "0"

let to_string m =
  let buf = Buffer.create 4096 in
  let dir, obj = Model.objective m in
  Buffer.add_string buf
    (match dir with Model.Minimize -> "Minimize\n" | Model.Maximize -> "Maximize\n");
  Buffer.add_string buf " obj: ";
  pp_expr buf m obj;
  (* Constraint rows fold their constants into the rhs at model
     construction, but the objective can carry one — dropping it here
     silently shifts every reported objective value on re-read. *)
  (let c = Lin.constant obj in
   if c <> 0. then
     Buffer.add_string buf
       (Printf.sprintf " %s %.12g" (if c < 0. then "-" else "+") (Float.abs c)));
  Buffer.add_string buf "\nSubject To\n";
  Model.iter_constrs
    (fun i (c : Model.constr) ->
      Buffer.add_string buf (Printf.sprintf " %s_%d: " (sanitize c.Model.c_name) i);
      pp_expr buf m c.Model.c_expr;
      let op =
        match c.Model.c_sense with Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "="
      in
      Buffer.add_string buf (Printf.sprintf " %s %.12g\n" op c.Model.c_rhs))
    m;
  Buffer.add_string buf "Bounds\n";
  for v = 0 to Model.nvars m - 1 do
    let lb = Model.var_lb m v and ub = Model.var_ub m v in
    let label = var_label m v in
    if lb = neg_infinity && ub = infinity then
      Buffer.add_string buf (Printf.sprintf " %s free\n" label)
    else begin
      let lo =
        if lb = neg_infinity then "-inf" else Printf.sprintf "%.12g" lb
      in
      let hi = if ub = infinity then "+inf" else Printf.sprintf "%.12g" ub in
      Buffer.add_string buf (Printf.sprintf " %s <= %s <= %s\n" lo label hi)
    end
  done;
  let generals = ref [] and binaries = ref [] in
  for v = Model.nvars m - 1 downto 0 do
    match Model.var_kind m v with
    | Model.Binary -> binaries := v :: !binaries
    | Model.Integer -> generals := v :: !generals
    | Model.Continuous -> ()
  done;
  if !generals <> [] then begin
    Buffer.add_string buf "Generals\n";
    List.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %s\n" (var_label m v))) !generals
  end;
  if !binaries <> [] then begin
    Buffer.add_string buf "Binaries\n";
    List.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %s\n" (var_label m v))) !binaries
  end;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let to_channel oc m = output_string oc (to_string m)

let to_file path m =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc m)
