(* Sparse LU of a basis matrix, product-form eta updates, sparse
   triangular solves.  See lu.mli for the interface contract.

   Everything lives in two index spaces: "row" (constraint rows of the
   problem, the RHS space) and "position" (which basis slot a column
   occupies, the solution space of FTRAN).  The factorization works in a
   third, private "step" space — step [k] is the k-th elimination pivot
   — with [prow]/[pcol] mapping steps back to rows/positions.  L is
   stored as per-step multiplier columns (targets are later steps), U as
   per-step rows (again later steps), both over step indices so the
   triangular solves are straight scatter/gather loops.

   Storage is unboxed: every factor entry is an (index, value) pair kept
   in parallel [int array] / [floatarray] buffers rather than a tuple
   array, so the triangular solves and eta applications touch flat
   memory and a factor entry costs 2 words instead of 5 (tuple header +
   boxed pair + spine slot).  Entry order is identical to what the tuple
   representation held, which keeps every solve bit-for-bit what it was
   — the [extend_rows] bit-identity guarantee depends on that. *)

module FA = Float.Array

type core = {
  cm : int;
  prow : int array;  (* step -> row *)
  pcol : int array;  (* step -> position *)
  li : int array array;  (* per step: later-step targets of L column *)
  lv : floatarray array;  (* per step: multipliers, parallel to [li] *)
  ui : int array array;  (* per step: later-step targets of U row *)
  uv : floatarray array;  (* per step: values, parallel to [ui] *)
  udiag : floatarray;
  cnnz : int;
}

type eta = { e_r : int; e_d : float; e_i : int array; e_v : floatarray }

type factor = { f_core : core; f_etas : eta array }

type t = {
  m : int;
  core : core;
  mutable etas : eta array;  (* buffer; [0, neta) live *)
  mutable neta : int;
  mutable enz : int;
  ws : float array;  (* step-space scratch for the triangular solves *)
}

let dim t = t.m

let neta t = t.neta

let nnz t = t.core.cnnz + t.enz

let factor_dim f = f.f_core.cm

let factor_neta f = Array.length f.f_etas

let dummy_eta = { e_r = 0; e_d = 1.; e_i = [||]; e_v = FA.create 0 }

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

type stats = {
  s_ftran_calls : int;
  s_ftran_nnz : int;
  s_btran_calls : int;
  s_btran_nnz : int;
  s_factorizations : int;
}

(* Off by default: the nonzero census is an extra O(m) scan per solve,
   so only the bench turns it on.  Atomics because PR 4's workers share
   nothing but these counters. *)
let counting = Atomic.make false
let c_ftran = Atomic.make 0
let c_ftran_nnz = Atomic.make 0
let c_btran = Atomic.make 0
let c_btran_nnz = Atomic.make 0
let c_factor = Atomic.make 0

let set_stats_enabled b = Atomic.set counting b

let stats () =
  { s_ftran_calls = Atomic.get c_ftran;
    s_ftran_nnz = Atomic.get c_ftran_nnz;
    s_btran_calls = Atomic.get c_btran;
    s_btran_nnz = Atomic.get c_btran_nnz;
    s_factorizations = Atomic.get c_factor }

let reset_stats () =
  Atomic.set c_ftran 0;
  Atomic.set c_ftran_nnz 0;
  Atomic.set c_btran 0;
  Atomic.set c_btran_nnz 0;
  Atomic.set c_factor 0

let count_solve calls nnz x m =
  if Atomic.get counting then begin
    let k = ref 0 in
    for i = 0 to m - 1 do
      if x.(i) <> 0. then incr k
    done;
    ignore (Atomic.fetch_and_add calls 1);
    ignore (Atomic.fetch_and_add nnz !k)
  end

(* ------------------------------------------------------------------ *)
(* Solves                                                              *)
(* ------------------------------------------------------------------ *)

let ftran t x =
  let c = t.core in
  let m = t.m in
  let y = t.ws in
  for k = 0 to m - 1 do
    y.(k) <- x.(c.prow.(k))
  done;
  (* L y' = y, forward *)
  for k = 0 to m - 1 do
    let yk = y.(k) in
    if yk <> 0. then begin
      let ti = c.li.(k) and tv = c.lv.(k) in
      for e = 0 to Array.length ti - 1 do
        let j = Array.unsafe_get ti e in
        y.(j) <- y.(j) -. (FA.unsafe_get tv e *. yk)
      done
    end
  done;
  (* U z = y', backward (row-wise gather; later steps already solved) *)
  for k = m - 1 downto 0 do
    let acc = ref y.(k) in
    let ti = c.ui.(k) and tv = c.uv.(k) in
    for e = 0 to Array.length ti - 1 do
      acc := !acc -. (FA.unsafe_get tv e *. y.(Array.unsafe_get ti e))
    done;
    y.(k) <- !acc /. FA.unsafe_get c.udiag k
  done;
  for k = 0 to m - 1 do
    x.(c.pcol.(k)) <- y.(k)
  done;
  (* eta file, oldest first: x := E_q⁻¹ x *)
  for q = 0 to t.neta - 1 do
    let e = t.etas.(q) in
    let xr = x.(e.e_r) /. e.e_d in
    x.(e.e_r) <- xr;
    if xr <> 0. then begin
      let ei = e.e_i and ev = e.e_v in
      for k = 0 to Array.length ei - 1 do
        let i = Array.unsafe_get ei k in
        x.(i) <- x.(i) -. (FA.unsafe_get ev k *. xr)
      done
    end
  done;
  count_solve c_ftran c_ftran_nnz x m

let btran t x =
  let c = t.core in
  let m = t.m in
  (* eta transposes, newest first: x := E_q⁻ᵀ x *)
  for q = t.neta - 1 downto 0 do
    let e = t.etas.(q) in
    let acc = ref x.(e.e_r) in
    let ei = e.e_i and ev = e.e_v in
    for k = 0 to Array.length ei - 1 do
      acc := !acc -. (FA.unsafe_get ev k *. x.(Array.unsafe_get ei k))
    done;
    x.(e.e_r) <- !acc /. e.e_d
  done;
  let y = t.ws in
  for k = 0 to m - 1 do
    y.(k) <- x.(c.pcol.(k))
  done;
  (* Uᵀ z = ĉ, forward (scatter: row k of U hits later steps) *)
  for k = 0 to m - 1 do
    let zk = y.(k) /. FA.unsafe_get c.udiag k in
    y.(k) <- zk;
    if zk <> 0. then begin
      let ti = c.ui.(k) and tv = c.uv.(k) in
      for e = 0 to Array.length ti - 1 do
        let j = Array.unsafe_get ti e in
        y.(j) <- y.(j) -. (FA.unsafe_get tv e *. zk)
      done
    end
  done;
  (* Lᵀ w = z, backward (gather: column k of L lists later steps) *)
  for k = m - 1 downto 0 do
    let acc = ref y.(k) in
    let ti = c.li.(k) and tv = c.lv.(k) in
    for e = 0 to Array.length ti - 1 do
      acc := !acc -. (FA.unsafe_get tv e *. y.(Array.unsafe_get ti e))
    done;
    y.(k) <- !acc
  done;
  for k = 0 to m - 1 do
    x.(c.prow.(k)) <- y.(k)
  done;
  count_solve c_btran c_btran_nnz x m

(* ------------------------------------------------------------------ *)
(* Eta updates                                                         *)
(* ------------------------------------------------------------------ *)

let update t ~r ~w =
  let m = t.m in
  let d = w.(r) in
  let amax = ref 0. and cnt = ref 0 in
  for i = 0 to m - 1 do
    let a = Float.abs w.(i) in
    if a > !amax then amax := a;
    if i <> r && w.(i) <> 0. then incr cnt
  done;
  let ei = Array.make !cnt 0 in
  let ev = FA.create !cnt in
  let k = ref 0 in
  for i = 0 to m - 1 do
    if i <> r && w.(i) <> 0. then begin
      ei.(!k) <- i;
      FA.set ev !k w.(i);
      incr k
    end
  done;
  if t.neta >= Array.length t.etas then begin
    let grown = Array.make (max 8 (2 * Array.length t.etas)) dummy_eta in
    Array.blit t.etas 0 grown 0 t.neta;
    t.etas <- grown
  end;
  t.etas.(t.neta) <- { e_r = r; e_d = d; e_i = ei; e_v = ev };
  t.neta <- t.neta + 1;
  t.enz <- t.enz + !cnt + 1;
  Float.abs d >= 1e-9 && Float.abs d >= 1e-7 *. !amax

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let snapshot t = { f_core = t.core; f_etas = Array.sub t.etas 0 t.neta }

let of_factor f =
  let n = Array.length f.f_etas in
  let etas = Array.make (max 8 (2 * n)) dummy_eta in
  Array.blit f.f_etas 0 etas 0 n;
  let enz = Array.fold_left (fun acc e -> acc + 1 + Array.length e.e_i) 0 f.f_etas in
  { m = f.f_core.cm; core = f.f_core; etas; neta = n; enz;
    ws = Array.make f.f_core.cm 0. }

(* ------------------------------------------------------------------ *)
(* Factorization                                                       *)
(* ------------------------------------------------------------------ *)

exception Singular

(* Entries smaller than this after an elimination update are treated as
   structural zeros (they are cancellation noise at the magnitudes these
   flow/implication matrices carry; the conditioning probe below guards
   the aggregate effect). *)
let drop_tol = 1e-13

(* Pack an (index, value) association list into parallel unboxed
   buffers, preserving list order. *)
let pack_pairs pairs =
  let n = List.length pairs in
  let idx = Array.make n 0 in
  let vals = FA.create n in
  List.iteri
    (fun k (i, v) ->
      idx.(k) <- i;
      FA.set vals k v)
    pairs;
  (idx, vals)

let factorize ~m col =
  if m = 0 then
    Some
      { m = 0;
        core = { cm = 0; prow = [||]; pcol = [||]; li = [||]; lv = [||];
                 ui = [||]; uv = [||]; udiag = FA.create 0; cnnz = 0 };
        etas = [||]; neta = 0; enz = 0; ws = [||] }
  else begin
    let acc = Array.make m 0. in
    let mark = Array.make m (-1) in
    (* Assemble deduplicated columns (constraint columns may repeat a
       row; the matrix FTRAN must invert sums them). *)
    let cols = Array.make m [||] in
    (try
       for c = 0 to m - 1 do
         let touched = ref [] in
         Array.iter
           (fun (r, a) ->
             if r < 0 || r >= m then raise Singular;
             if mark.(r) <> c then begin
               mark.(r) <- c;
               acc.(r) <- a;
               touched := r :: !touched
             end
             else acc.(r) <- acc.(r) +. a)
           (col c);
         let live = List.filter (fun r -> acc.(r) <> 0.) !touched in
         cols.(c) <- Array.of_list (List.rev_map (fun r -> (r, acc.(r))) live)
       done;
       let colent = Array.copy cols in
       let rowcols = Array.make m [] in
       let rcount = Array.make m 0 in
       let ccount = Array.make m 0 in
       let coldone = Array.make m false in
       for c = 0 to m - 1 do
         ccount.(c) <- Array.length colent.(c);
         Array.iter
           (fun (r, _) ->
             rcount.(r) <- rcount.(r) + 1;
             rowcols.(r) <- c :: rowcols.(r))
           colent.(c)
       done;
       let prow = Array.make m 0 and pcol = Array.make m 0 in
       let udiag = FA.create m in
       let lraw = Array.make m [||] in
       (* (row, multiplier) *)
       let uraw = Array.make m [||] in
       (* (position, value) *)
       let seen = Array.make m (-1) in
       let amark = Array.make m (-1) in
       let stamp = ref (-1) in
       for step = 0 to m - 1 do
         (* Markowitz search under threshold pivoting: minimize the fill
            estimate (ccount-1)(rcount-1) over entries carrying at least
            a tenth of their column's largest active magnitude.  A zero
            score cannot be beaten, so stop scanning when one shows. *)
         let bc = ref (-1) and br = ref (-1) and ba = ref 0. in
         let bscore = ref max_int in
         let exception Done in
         (* Explicit [for] loops: an [Array.iter] closure capturing float
            refs is allocated per column per step and boxes every
            accumulator store — this scan dominated factorization
            allocation. *)
         (try
            for c = 0 to m - 1 do
              if not coldone.(c) then begin
                let entries = colent.(c) in
                let cmax = ref 0. in
                for e = 0 to Array.length entries - 1 do
                  let _, a = Array.unsafe_get entries e in
                  let aa = Float.abs a in
                  if aa > !cmax then cmax := aa
                done;
                if !cmax > 1e-11 then begin
                  let thresh = 0.1 *. !cmax in
                  let cc = ccount.(c) in
                  for e = 0 to Array.length entries - 1 do
                    let r, a = Array.unsafe_get entries e in
                    let aa = Float.abs a in
                    if aa >= thresh then begin
                      let score = (cc - 1) * (rcount.(r) - 1) in
                      if score < !bscore || (score = !bscore && aa > Float.abs !ba)
                      then begin
                        bscore := score;
                        bc := c;
                        br := r;
                        ba := a
                      end
                    end
                  done;
                  if !bscore = 0 then raise Done
                end
              end
            done
          with Done -> ());
         if !bc < 0 then raise Singular;
         let pc = !bc and pr = !br and pa = !ba in
         prow.(step) <- pr;
         pcol.(step) <- pc;
         FA.set udiag step pa;
         (* L multipliers: the pivot column's other active entries. *)
         let pivcol = colent.(pc) in
         let npiv = Array.length pivcol in
         let lcnt = ref 0 in
         for e = 0 to npiv - 1 do
           let r, _ = Array.unsafe_get pivcol e in
           if r <> pr then incr lcnt
         done;
         let lents = Array.make !lcnt (0, 0.) in
         let k = ref 0 in
         for e = 0 to npiv - 1 do
           let r, a = Array.unsafe_get pivcol e in
           if r <> pr then begin
             lents.(!k) <- (r, a /. pa);
             incr k
           end
         done;
         lraw.(step) <- lents;
         for e = 0 to npiv - 1 do
           let r, _ = Array.unsafe_get pivcol e in
           rcount.(r) <- rcount.(r) - 1
         done;
         colent.(pc) <- [||];
         ccount.(pc) <- 0;
         coldone.(pc) <- true;
         (* Eliminate the pivot row out of every active column carrying
            it.  [rowcols] is a superset hint (stale entries just miss on
            the scan); each touched column is rewritten through a dense
            accumulator so fill-in lands in one pass. *)
         let uacc = ref [] in
         List.iter
           (fun c ->
             if (not coldone.(c)) && seen.(c) <> step then begin
               seen.(c) <- step;
               let entries = colent.(c) in
               let nent = Array.length entries in
               let upc = ref 0. and hit = ref false in
               for e = 0 to nent - 1 do
                 let r, a = Array.unsafe_get entries e in
                 if r = pr then begin
                   upc := !upc +. a;
                   hit := true
                 end
               done;
               if !hit then begin
                 let u = !upc in
                 uacc := (c, u) :: !uacc;
                 incr stamp;
                 let st = !stamp in
                 let touched = ref [] in
                 for e = 0 to nent - 1 do
                   let r, a = Array.unsafe_get entries e in
                   if r <> pr then begin
                     amark.(r) <- st;
                     acc.(r) <- a;
                     touched := r :: !touched
                   end
                 done;
                 for e = 0 to Array.length lents - 1 do
                   let lr, mult = Array.unsafe_get lents e in
                   let delta = mult *. u in
                   if amark.(lr) = st then acc.(lr) <- acc.(lr) -. delta
                   else begin
                     amark.(lr) <- st;
                     acc.(lr) <- -.delta;
                     touched := lr :: !touched;
                     rowcols.(lr) <- c :: rowcols.(lr)
                   end
                 done;
                 let keep = List.filter (fun r -> Float.abs acc.(r) > drop_tol) !touched in
                 for e = 0 to nent - 1 do
                   let r, _ = Array.unsafe_get entries e in
                   rcount.(r) <- rcount.(r) - 1
                 done;
                 let arr = Array.of_list (List.rev_map (fun r -> (r, acc.(r))) keep) in
                 for e = 0 to Array.length arr - 1 do
                   let r, _ = Array.unsafe_get arr e in
                   rcount.(r) <- rcount.(r) + 1
                 done;
                 colent.(c) <- arr;
                 ccount.(c) <- Array.length arr
               end
             end)
           rowcols.(pr);
         uraw.(step) <- Array.of_list !uacc;
         rowcols.(pr) <- []
       done;
       (* Re-index rows/positions to steps and pack into the unboxed
          parallel buffers, preserving entry order. *)
       let rstep = Array.make m 0 and posstep = Array.make m 0 in
       for k = 0 to m - 1 do
         rstep.(prow.(k)) <- k;
         posstep.(pcol.(k)) <- k
       done;
       let li = Array.make m [||] and lv = Array.make m (FA.create 0) in
       let ui = Array.make m [||] and uv = Array.make m (FA.create 0) in
       let cnnz = ref m in
       for k = 0 to m - 1 do
         let ents = lraw.(k) in
         let n = Array.length ents in
         let idx = Array.make n 0 and vals = FA.create n in
         for e = 0 to n - 1 do
           let r, v = ents.(e) in
           idx.(e) <- rstep.(r);
           FA.set vals e v
         done;
         li.(k) <- idx;
         lv.(k) <- vals;
         let ents = uraw.(k) in
         let n = Array.length ents in
         let idx = Array.make n 0 and vals = FA.create n in
         for e = 0 to n - 1 do
           let c, v = ents.(e) in
           idx.(e) <- posstep.(c);
           FA.set vals e v
         done;
         ui.(k) <- idx;
         uv.(k) <- vals;
         cnnz := !cnnz + Array.length li.(k) + Array.length ui.(k)
       done;
       let core = { cm = m; prow; pcol; li; lv; ui; uv; udiag; cnnz = !cnnz } in
       let t = { m; core; etas = [||]; neta = 0; enz = 0; ws = Array.make m 0. } in
       (* Conditioning probe, mirroring the dense kernel: a factorization
          whose solve cannot reproduce B·(B⁻¹·1) = 1 to a relative 1e-8
          would silently corrupt basic values downstream; reject it so
          callers fall back to a cold start. *)
       let x = Array.make m 1. in
       ftran t x;
       let z = Array.make m 0. in
       let xmax = ref 1. in
       for c = 0 to m - 1 do
         let xc = x.(c) in
         if xc <> 0. then Array.iter (fun (r, a) -> z.(r) <- z.(r) +. (a *. xc)) cols.(c);
         if Float.abs xc > !xmax then xmax := Float.abs xc
       done;
       let err = ref 0. in
       for r = 0 to m - 1 do
         err := Float.max !err (Float.abs (z.(r) -. 1.))
       done;
       if !err > 1e-8 *. !xmax then None
       else begin
         if Atomic.get counting then ignore (Atomic.fetch_and_add c_factor 1);
         Some t
       end
     with Singular -> None)
  end

(* ------------------------------------------------------------------ *)
(* Growing a factor for appended rows                                  *)
(* ------------------------------------------------------------------ *)

let extend_rows f vrows =
  let kext = Array.length vrows in
  if kext = 0 then f
  else begin
    let c = f.f_core in
    let m = c.cm in
    let m' = m + kext in
    let prow = Array.init m' (fun i -> if i < m then c.prow.(i) else i) in
    let pcol = Array.init m' (fun i -> if i < m then c.pcol.(i) else i) in
    let udiag = FA.init m' (fun i -> if i < m then FA.get c.udiag i else 1.) in
    let ui = Array.init m' (fun i -> if i < m then c.ui.(i) else [||]) in
    let uv = Array.init m' (fun i -> if i < m then c.uv.(i) else FA.create 0) in
    (* Extra L entries per old step, targeting the new trivial steps:
       the grown matrix is [[B 0] [V I]] = [[L 0] [W I]]·[[U 0] [0 I]]
       with W U = V·E⁻¹ (V pushed through the eta file first, since the
       etas post-multiply the core).  New steps never feed old ones, so
       every old-step solve value is preserved bit-for-bit. *)
    let ext = Array.make (max m 1) [] in
    let extnnz = ref 0 in
    let v = Array.make (max m 1) 0. in
    let vh = Array.make (max m 1) 0. in
    for t0 = 0 to kext - 1 do
      Array.fill v 0 m 0.;
      Array.iter (fun (pos, a) -> v.(pos) <- v.(pos) +. a) vrows.(t0);
      for q = Array.length f.f_etas - 1 downto 0 do
        let e = f.f_etas.(q) in
        let a = ref v.(e.e_r) in
        for k = 0 to Array.length e.e_i - 1 do
          a := !a -. (FA.get e.e_v k *. v.(e.e_i.(k)))
        done;
        v.(e.e_r) <- !a /. e.e_d
      done;
      for j = 0 to m - 1 do
        vh.(j) <- v.(c.pcol.(j))
      done;
      (* ŵ U = v̂: forward scatter over U's rows. *)
      for j = 0 to m - 1 do
        let wj = vh.(j) /. FA.get c.udiag j in
        vh.(j) <- wj;
        if wj <> 0. then begin
          let ti = c.ui.(j) and tv = c.uv.(j) in
          for e = 0 to Array.length ti - 1 do
            vh.(ti.(e)) <- vh.(ti.(e)) -. (wj *. FA.get tv e)
          done
        end
      done;
      for j = 0 to m - 1 do
        if vh.(j) <> 0. then begin
          ext.(j) <- (m + t0, vh.(j)) :: ext.(j);
          incr extnnz
        end
      done
    done;
    let li = Array.make m' [||] and lv = Array.make m' (FA.create 0) in
    for j = 0 to m' - 1 do
      if j >= m then ()
      else
        match ext.(j) with
        | [] ->
            li.(j) <- c.li.(j);
            lv.(j) <- c.lv.(j)
        | l ->
            let old_i = c.li.(j) and old_v = c.lv.(j) in
            let n0 = Array.length old_i in
            let add_i, add_v = pack_pairs (List.rev l) in
            let n1 = Array.length add_i in
            let idx = Array.make (n0 + n1) 0 in
            let vals = FA.create (n0 + n1) in
            Array.blit old_i 0 idx 0 n0;
            FA.blit old_v 0 vals 0 n0;
            Array.blit add_i 0 idx n0 n1;
            FA.blit add_v 0 vals n0 n1;
            li.(j) <- idx;
            lv.(j) <- vals
    done;
    { f_core =
        { cm = m'; prow; pcol; li; lv; ui; uv; udiag; cnnz = c.cnnz + kext + !extnnz };
      f_etas = f.f_etas }
  end
