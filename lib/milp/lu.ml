(* Sparse LU of a basis matrix, product-form eta updates, sparse
   triangular solves.  See lu.mli for the interface contract.

   Everything lives in two index spaces: "row" (constraint rows of the
   problem, the RHS space) and "position" (which basis slot a column
   occupies, the solution space of FTRAN).  The factorization works in a
   third, private "step" space — step [k] is the k-th elimination pivot
   — with [prow]/[pcol] mapping steps back to rows/positions.  L is
   stored as per-step multiplier columns (targets are later steps), U as
   per-step rows (again later steps), both over step indices so the
   triangular solves are straight scatter/gather loops. *)

type core = {
  cm : int;
  prow : int array;  (* step -> row *)
  pcol : int array;  (* step -> position *)
  lmat : (int * float) array array;  (* per step: (later step, multiplier) *)
  umat : (int * float) array array;  (* per step: (later step, value) *)
  udiag : float array;
  cnnz : int;
}

type eta = { e_r : int; e_d : float; e_nz : (int * float) array }

type factor = { f_core : core; f_etas : eta array }

type t = {
  m : int;
  core : core;
  mutable etas : eta array;  (* buffer; [0, neta) live *)
  mutable neta : int;
  mutable enz : int;
  ws : float array;  (* step-space scratch for the triangular solves *)
}

let dim t = t.m

let neta t = t.neta

let nnz t = t.core.cnnz + t.enz

let factor_dim f = f.f_core.cm

let factor_neta f = Array.length f.f_etas

let dummy_eta = { e_r = 0; e_d = 1.; e_nz = [||] }

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

type stats = {
  s_ftran_calls : int;
  s_ftran_nnz : int;
  s_btran_calls : int;
  s_btran_nnz : int;
  s_factorizations : int;
}

(* Off by default: the nonzero census is an extra O(m) scan per solve,
   so only the bench turns it on.  Atomics because PR 4's workers share
   nothing but these counters. *)
let counting = Atomic.make false
let c_ftran = Atomic.make 0
let c_ftran_nnz = Atomic.make 0
let c_btran = Atomic.make 0
let c_btran_nnz = Atomic.make 0
let c_factor = Atomic.make 0

let set_stats_enabled b = Atomic.set counting b

let stats () =
  { s_ftran_calls = Atomic.get c_ftran;
    s_ftran_nnz = Atomic.get c_ftran_nnz;
    s_btran_calls = Atomic.get c_btran;
    s_btran_nnz = Atomic.get c_btran_nnz;
    s_factorizations = Atomic.get c_factor }

let reset_stats () =
  Atomic.set c_ftran 0;
  Atomic.set c_ftran_nnz 0;
  Atomic.set c_btran 0;
  Atomic.set c_btran_nnz 0;
  Atomic.set c_factor 0

let count_solve calls nnz x m =
  if Atomic.get counting then begin
    let k = ref 0 in
    for i = 0 to m - 1 do
      if x.(i) <> 0. then incr k
    done;
    ignore (Atomic.fetch_and_add calls 1);
    ignore (Atomic.fetch_and_add nnz !k)
  end

(* ------------------------------------------------------------------ *)
(* Solves                                                              *)
(* ------------------------------------------------------------------ *)

let ftran t x =
  let c = t.core in
  let m = t.m in
  let y = t.ws in
  for k = 0 to m - 1 do
    y.(k) <- x.(c.prow.(k))
  done;
  (* L y' = y, forward *)
  for k = 0 to m - 1 do
    let yk = y.(k) in
    if yk <> 0. then
      Array.iter (fun (j, mult) -> y.(j) <- y.(j) -. (mult *. yk)) c.lmat.(k)
  done;
  (* U z = y', backward (row-wise gather; later steps already solved) *)
  for k = m - 1 downto 0 do
    let acc = ref y.(k) in
    Array.iter (fun (j, v) -> acc := !acc -. (v *. y.(j))) c.umat.(k);
    y.(k) <- !acc /. c.udiag.(k)
  done;
  for k = 0 to m - 1 do
    x.(c.pcol.(k)) <- y.(k)
  done;
  (* eta file, oldest first: x := E_q⁻¹ x *)
  for q = 0 to t.neta - 1 do
    let e = t.etas.(q) in
    let xr = x.(e.e_r) /. e.e_d in
    x.(e.e_r) <- xr;
    if xr <> 0. then Array.iter (fun (i, v) -> x.(i) <- x.(i) -. (v *. xr)) e.e_nz
  done;
  count_solve c_ftran c_ftran_nnz x m

let btran t x =
  let c = t.core in
  let m = t.m in
  (* eta transposes, newest first: x := E_q⁻ᵀ x *)
  for q = t.neta - 1 downto 0 do
    let e = t.etas.(q) in
    let acc = ref x.(e.e_r) in
    Array.iter (fun (i, v) -> acc := !acc -. (v *. x.(i))) e.e_nz;
    x.(e.e_r) <- !acc /. e.e_d
  done;
  let y = t.ws in
  for k = 0 to m - 1 do
    y.(k) <- x.(c.pcol.(k))
  done;
  (* Uᵀ z = ĉ, forward (scatter: row k of U hits later steps) *)
  for k = 0 to m - 1 do
    let zk = y.(k) /. c.udiag.(k) in
    y.(k) <- zk;
    if zk <> 0. then Array.iter (fun (j, v) -> y.(j) <- y.(j) -. (v *. zk)) c.umat.(k)
  done;
  (* Lᵀ w = z, backward (gather: column k of L lists later steps) *)
  for k = m - 1 downto 0 do
    let acc = ref y.(k) in
    Array.iter (fun (j, v) -> acc := !acc -. (v *. y.(j))) c.lmat.(k);
    y.(k) <- !acc
  done;
  for k = 0 to m - 1 do
    x.(c.prow.(k)) <- y.(k)
  done;
  count_solve c_btran c_btran_nnz x m

(* ------------------------------------------------------------------ *)
(* Eta updates                                                         *)
(* ------------------------------------------------------------------ *)

let update t ~r ~w =
  let m = t.m in
  let d = w.(r) in
  let amax = ref 0. and cnt = ref 0 in
  for i = 0 to m - 1 do
    let a = Float.abs w.(i) in
    if a > !amax then amax := a;
    if i <> r && w.(i) <> 0. then incr cnt
  done;
  let nz = Array.make !cnt (0, 0.) in
  let k = ref 0 in
  for i = 0 to m - 1 do
    if i <> r && w.(i) <> 0. then begin
      nz.(!k) <- (i, w.(i));
      incr k
    end
  done;
  if t.neta >= Array.length t.etas then begin
    let grown = Array.make (max 8 (2 * Array.length t.etas)) dummy_eta in
    Array.blit t.etas 0 grown 0 t.neta;
    t.etas <- grown
  end;
  t.etas.(t.neta) <- { e_r = r; e_d = d; e_nz = nz };
  t.neta <- t.neta + 1;
  t.enz <- t.enz + !cnt + 1;
  Float.abs d >= 1e-9 && Float.abs d >= 1e-7 *. !amax

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let snapshot t = { f_core = t.core; f_etas = Array.sub t.etas 0 t.neta }

let of_factor f =
  let n = Array.length f.f_etas in
  let etas = Array.make (max 8 (2 * n)) dummy_eta in
  Array.blit f.f_etas 0 etas 0 n;
  let enz = Array.fold_left (fun acc e -> acc + 1 + Array.length e.e_nz) 0 f.f_etas in
  { m = f.f_core.cm; core = f.f_core; etas; neta = n; enz;
    ws = Array.make f.f_core.cm 0. }

(* ------------------------------------------------------------------ *)
(* Factorization                                                       *)
(* ------------------------------------------------------------------ *)

exception Singular

(* Entries smaller than this after an elimination update are treated as
   structural zeros (they are cancellation noise at the magnitudes these
   flow/implication matrices carry; the conditioning probe below guards
   the aggregate effect). *)
let drop_tol = 1e-13

let factorize ~m col =
  if m = 0 then
    Some
      { m = 0;
        core = { cm = 0; prow = [||]; pcol = [||]; lmat = [||]; umat = [||];
                 udiag = [||]; cnnz = 0 };
        etas = [||]; neta = 0; enz = 0; ws = [||] }
  else begin
    let acc = Array.make m 0. in
    let mark = Array.make m (-1) in
    (* Assemble deduplicated columns (constraint columns may repeat a
       row; the matrix FTRAN must invert sums them). *)
    let cols = Array.make m [||] in
    (try
       for c = 0 to m - 1 do
         let touched = ref [] in
         Array.iter
           (fun (r, a) ->
             if r < 0 || r >= m then raise Singular;
             if mark.(r) <> c then begin
               mark.(r) <- c;
               acc.(r) <- a;
               touched := r :: !touched
             end
             else acc.(r) <- acc.(r) +. a)
           (col c);
         let live = List.filter (fun r -> acc.(r) <> 0.) !touched in
         cols.(c) <- Array.of_list (List.rev_map (fun r -> (r, acc.(r))) live)
       done;
       let colent = Array.copy cols in
       let rowcols = Array.make m [] in
       let rcount = Array.make m 0 in
       let ccount = Array.make m 0 in
       let coldone = Array.make m false in
       for c = 0 to m - 1 do
         ccount.(c) <- Array.length colent.(c);
         Array.iter
           (fun (r, _) ->
             rcount.(r) <- rcount.(r) + 1;
             rowcols.(r) <- c :: rowcols.(r))
           colent.(c)
       done;
       let prow = Array.make m 0 and pcol = Array.make m 0 in
       let udiag = Array.make m 0. in
       let lraw = Array.make m [||] in
       (* (row, multiplier) *)
       let uraw = Array.make m [||] in
       (* (position, value) *)
       let seen = Array.make m (-1) in
       let amark = Array.make m (-1) in
       let stamp = ref (-1) in
       for step = 0 to m - 1 do
         (* Markowitz search under threshold pivoting: minimize the fill
            estimate (ccount-1)(rcount-1) over entries carrying at least
            a tenth of their column's largest active magnitude.  A zero
            score cannot be beaten, so stop scanning when one shows. *)
         let bc = ref (-1) and br = ref (-1) and ba = ref 0. in
         let bscore = ref max_int in
         let exception Done in
         (try
            for c = 0 to m - 1 do
              if not coldone.(c) then begin
                let entries = colent.(c) in
                let cmax = ref 0. in
                Array.iter
                  (fun (_, a) ->
                    let aa = Float.abs a in
                    if aa > !cmax then cmax := aa)
                  entries;
                if !cmax > 1e-11 then begin
                  let thresh = 0.1 *. !cmax in
                  let cc = ccount.(c) in
                  Array.iter
                    (fun (r, a) ->
                      let aa = Float.abs a in
                      if aa >= thresh then begin
                        let score = (cc - 1) * (rcount.(r) - 1) in
                        if score < !bscore || (score = !bscore && aa > Float.abs !ba)
                        then begin
                          bscore := score;
                          bc := c;
                          br := r;
                          ba := a
                        end
                      end)
                    entries;
                  if !bscore = 0 then raise Done
                end
              end
            done
          with Done -> ());
         if !bc < 0 then raise Singular;
         let pc = !bc and pr = !br and pa = !ba in
         prow.(step) <- pr;
         pcol.(step) <- pc;
         udiag.(step) <- pa;
         (* L multipliers: the pivot column's other active entries. *)
         let pivcol = colent.(pc) in
         let lcnt = ref 0 in
         Array.iter (fun (r, _) -> if r <> pr then incr lcnt) pivcol;
         let lents = Array.make !lcnt (0, 0.) in
         let k = ref 0 in
         Array.iter
           (fun (r, a) ->
             if r <> pr then begin
               lents.(!k) <- (r, a /. pa);
               incr k
             end)
           pivcol;
         lraw.(step) <- lents;
         Array.iter (fun (r, _) -> rcount.(r) <- rcount.(r) - 1) pivcol;
         colent.(pc) <- [||];
         ccount.(pc) <- 0;
         coldone.(pc) <- true;
         (* Eliminate the pivot row out of every active column carrying
            it.  [rowcols] is a superset hint (stale entries just miss on
            the scan); each touched column is rewritten through a dense
            accumulator so fill-in lands in one pass. *)
         let uacc = ref [] in
         List.iter
           (fun c ->
             if (not coldone.(c)) && seen.(c) <> step then begin
               seen.(c) <- step;
               let entries = colent.(c) in
               let upc = ref 0. and hit = ref false in
               Array.iter
                 (fun (r, a) ->
                   if r = pr then begin
                     upc := !upc +. a;
                     hit := true
                   end)
                 entries;
               if !hit then begin
                 let u = !upc in
                 uacc := (c, u) :: !uacc;
                 incr stamp;
                 let st = !stamp in
                 let touched = ref [] in
                 Array.iter
                   (fun (r, a) ->
                     if r <> pr then begin
                       amark.(r) <- st;
                       acc.(r) <- a;
                       touched := r :: !touched
                     end)
                   entries;
                 Array.iter
                   (fun (lr, mult) ->
                     let delta = mult *. u in
                     if amark.(lr) = st then acc.(lr) <- acc.(lr) -. delta
                     else begin
                       amark.(lr) <- st;
                       acc.(lr) <- -.delta;
                       touched := lr :: !touched;
                       rowcols.(lr) <- c :: rowcols.(lr)
                     end)
                   lents;
                 let keep = List.filter (fun r -> Float.abs acc.(r) > drop_tol) !touched in
                 Array.iter (fun (r, _) -> rcount.(r) <- rcount.(r) - 1) entries;
                 let arr = Array.of_list (List.rev_map (fun r -> (r, acc.(r))) keep) in
                 Array.iter (fun (r, _) -> rcount.(r) <- rcount.(r) + 1) arr;
                 colent.(c) <- arr;
                 ccount.(c) <- Array.length arr
               end
             end)
           rowcols.(pr);
         uraw.(step) <- Array.of_list !uacc;
         rowcols.(pr) <- []
       done;
       (* Re-index rows/positions to steps. *)
       let rstep = Array.make m 0 and posstep = Array.make m 0 in
       for k = 0 to m - 1 do
         rstep.(prow.(k)) <- k;
         posstep.(pcol.(k)) <- k
       done;
       let lmat = Array.map (Array.map (fun (r, v) -> (rstep.(r), v))) lraw in
       let umat = Array.map (Array.map (fun (c, v) -> (posstep.(c), v))) uraw in
       let cnnz = ref m in
       Array.iter (fun a -> cnnz := !cnnz + Array.length a) lmat;
       Array.iter (fun a -> cnnz := !cnnz + Array.length a) umat;
       let core = { cm = m; prow; pcol; lmat; umat; udiag; cnnz = !cnnz } in
       let t = { m; core; etas = [||]; neta = 0; enz = 0; ws = Array.make m 0. } in
       (* Conditioning probe, mirroring the dense kernel: a factorization
          whose solve cannot reproduce B·(B⁻¹·1) = 1 to a relative 1e-8
          would silently corrupt basic values downstream; reject it so
          callers fall back to a cold start. *)
       let x = Array.make m 1. in
       ftran t x;
       let z = Array.make m 0. in
       let xmax = ref 1. in
       for c = 0 to m - 1 do
         let xc = x.(c) in
         if xc <> 0. then Array.iter (fun (r, a) -> z.(r) <- z.(r) +. (a *. xc)) cols.(c);
         if Float.abs xc > !xmax then xmax := Float.abs xc
       done;
       let err = ref 0. in
       for r = 0 to m - 1 do
         err := Float.max !err (Float.abs (z.(r) -. 1.))
       done;
       if !err > 1e-8 *. !xmax then None
       else begin
         if Atomic.get counting then ignore (Atomic.fetch_and_add c_factor 1);
         Some t
       end
     with Singular -> None)
  end

(* ------------------------------------------------------------------ *)
(* Growing a factor for appended rows                                  *)
(* ------------------------------------------------------------------ *)

let extend_rows f vrows =
  let kext = Array.length vrows in
  if kext = 0 then f
  else begin
    let c = f.f_core in
    let m = c.cm in
    let m' = m + kext in
    let prow = Array.init m' (fun i -> if i < m then c.prow.(i) else i) in
    let pcol = Array.init m' (fun i -> if i < m then c.pcol.(i) else i) in
    let udiag = Array.init m' (fun i -> if i < m then c.udiag.(i) else 1.) in
    let umat = Array.init m' (fun i -> if i < m then c.umat.(i) else [||]) in
    (* Extra L entries per old step, targeting the new trivial steps:
       the grown matrix is [[B 0] [V I]] = [[L 0] [W I]]·[[U 0] [0 I]]
       with W U = V·E⁻¹ (V pushed through the eta file first, since the
       etas post-multiply the core).  New steps never feed old ones, so
       every old-step solve value is preserved bit-for-bit. *)
    let ext = Array.make (max m 1) [] in
    let extnnz = ref 0 in
    let v = Array.make (max m 1) 0. in
    let vh = Array.make (max m 1) 0. in
    for t0 = 0 to kext - 1 do
      Array.fill v 0 m 0.;
      Array.iter (fun (pos, a) -> v.(pos) <- v.(pos) +. a) vrows.(t0);
      for q = Array.length f.f_etas - 1 downto 0 do
        let e = f.f_etas.(q) in
        let a = ref v.(e.e_r) in
        Array.iter (fun (i, w) -> a := !a -. (w *. v.(i))) e.e_nz;
        v.(e.e_r) <- !a /. e.e_d
      done;
      for j = 0 to m - 1 do
        vh.(j) <- v.(c.pcol.(j))
      done;
      (* ŵ U = v̂: forward scatter over U's rows. *)
      for j = 0 to m - 1 do
        let wj = vh.(j) /. c.udiag.(j) in
        vh.(j) <- wj;
        if wj <> 0. then
          Array.iter (fun (j2, u) -> vh.(j2) <- vh.(j2) -. (wj *. u)) c.umat.(j)
      done;
      for j = 0 to m - 1 do
        if vh.(j) <> 0. then begin
          ext.(j) <- (m + t0, vh.(j)) :: ext.(j);
          incr extnnz
        end
      done
    done;
    let lmat =
      Array.init m' (fun j ->
          if j >= m then [||]
          else
            match ext.(j) with
            | [] -> c.lmat.(j)
            | l -> Array.append c.lmat.(j) (Array.of_list (List.rev l)))
    in
    { f_core =
        { cm = m'; prow; pcol; lmat; umat; udiag; cnnz = c.cnnz + kext + !extnnz };
      f_etas = f.f_etas }
  end
