(** Sparse LU factorization of a simplex basis with product-form (eta)
    updates.

    The basis matrix [B] is given column-wise by basis {e position}: the
    column basic in row slot [i] of the simplex state.  [factorize] runs
    a right-looking sparse Gaussian elimination with Markowitz pivot
    ordering (cheapest fill estimate first) under threshold pivoting
    (a pivot must carry a fixed fraction of its column's largest active
    magnitude), producing permuted triangular factors [P_r B P_c = L U]
    stored sparsely: [L] as per-step multiplier columns, [U] as per-step
    rows.  Both solves are O(factor nonzeros):

    - {!ftran}: [x := B⁻¹ x] — input indexed by row, output by position;
    - {!btran}: [x := B⁻ᵀ x] — input indexed by position, output by row.

    After a simplex pivot replaces the column at position [r] by a
    column whose FTRAN image is [w], {!update} appends a product-form
    eta ([B' = B·E], [E] the identity with column [r] replaced by [w])
    instead of refactorizing; solves apply the eta file after (FTRAN)
    or before (BTRAN) the triangular factors.  The eta file is meant to
    stay short — the caller refactorizes once {!neta} crosses its
    stability budget.

    A {!factor} is an immutable snapshot of a handle (shared triangular
    core plus a frozen copy of the eta file) safe to store in
    {!Basis.t} and to hand across domains; {!of_factor} reopens it as a
    private working handle.  {!extend_rows} grows a factor for appended
    constraint rows whose slacks start basic — the grown matrix is block
    triangular, so the old steps are kept verbatim and solves touching
    only the original rows remain bit-identical. *)

type t
(** Mutable working handle: triangular core + growing eta file + private
    scratch.  Owned by one solver state; never shared across domains. *)

type factor
(** Immutable snapshot of a handle, safe to share and to store in basis
    snapshots. *)

val factorize : m:int -> (int -> (int * float) array) -> t option
(** [factorize ~m col] factorizes the [m]×[m] matrix whose column at
    position [i] is the sparse vector [col i] (duplicate row entries are
    summed, as in constraint-column storage).  Returns [None] when the
    matrix is singular or fails the conditioning probe (solving against
    the all-ones vector must reproduce it to a relative 1e-8), so a
    caller can fall back to a cold start exactly as with the dense
    kernel. *)

val dim : t -> int

val neta : t -> int
(** Etas appended since the underlying factorization. *)

val nnz : t -> int
(** Nonzeros across [L], [U] and the eta file (stats only). *)

val ftran : t -> float array -> unit
(** In-place solve [B x' = x]: input indexed by row, output by basis
    position.  Length must be [dim]. *)

val btran : t -> float array -> unit
(** In-place solve [Bᵀ x' = x]: input indexed by basis position, output
    by row.  Length must be [dim]. *)

val update : t -> r:int -> w:float array -> bool
(** [update t ~r ~w] appends the product-form eta for a pivot that
    replaced the column at position [r], where [w] is the entering
    column's FTRAN image ([w = B⁻¹ a], so [w.(r)] is the pivot element).
    The eta is always appended — the handle stays algebraically
    consistent with the new basis — but the return value is [false]
    when the pivot is too small relative to [max_i |w_i|] for the eta to
    be numerically trustworthy; the caller should refactorize. *)

val snapshot : t -> factor
(** Freeze the handle (copies the eta file; shares the core). *)

val of_factor : factor -> t
(** Reopen a snapshot as a fresh working handle (copies the eta file
    back; shares the core). *)

val factor_dim : factor -> int

val factor_neta : factor -> int

type stats = {
  s_ftran_calls : int;
  s_ftran_nnz : int;  (** Total nonzeros across all FTRAN results. *)
  s_btran_calls : int;
  s_btran_nnz : int;  (** Total nonzeros across all BTRAN results. *)
  s_factorizations : int;  (** Successful {!factorize} runs. *)
}
(** Process-wide kernel counters (atomic; shared by all workers). *)

val set_stats_enabled : bool -> unit
(** Off by default — the per-solve nonzero census costs an extra O(m)
    scan, so only the bench harness turns it on. *)

val stats : unit -> stats

val reset_stats : unit -> unit

val extend_rows : factor -> (int * float) array array -> factor
(** [extend_rows f vrows] grows the factor by [k] appended rows whose
    own (slack) columns start basic, where [vrows.(t)] lists the new
    row's coefficients on the {e old basic columns by position}.  The
    grown matrix is the block-triangular [[B 0] [V I]]; the old steps
    and the eta file are kept verbatim and the new rows eliminate
    trivially on their unit diagonal, so FTRAN/BTRAN results on the
    original rows are bit-for-bit those of [f].  O(k · (dim + nnz)). *)
