type var_kind = Continuous | Integer | Binary

type sense = Le | Ge | Eq

type direction = Minimize | Maximize

type constr = { c_name : string; c_expr : Lin.t; c_sense : sense; c_rhs : float }

type var_info = {
  v_name : string;
  v_kind : var_kind;
  mutable v_lb : float;
  mutable v_ub : float;
  v_obj : float;
}

type t = {
  m_name : string;
  vars : var_info Vec.t;
  cons : constr Vec.t;
  (* Append-only log of row ids rewritten via [set_row]; watermarks
     record a position in it so incremental consumers (the template
     presolve of Session) can ask which existing rows changed. *)
  set_log : int Vec.t;
  mutable obj_dir : direction;
  mutable obj_expr : Lin.t;
}

let create ?(name = "model") () =
  { m_name = name; vars = Vec.create (); cons = Vec.create ();
    set_log = Vec.create (); obj_dir = Minimize; obj_expr = Lin.zero }

let name m = m.m_name

let add_var m ?lb ?ub ?(kind = Continuous) ?(obj = 0.) vname =
  let lb = match lb with Some l -> l | None -> 0. in
  let ub =
    match ub with
    | Some u -> u
    | None -> ( match kind with Binary -> 1. | Continuous | Integer -> infinity)
  in
  let lb, ub =
    match kind with
    | Binary -> (Float.max 0. lb, Float.min 1. ub)
    | Continuous | Integer -> (lb, ub)
  in
  if lb > ub then
    invalid_arg
      (Printf.sprintf "Model.add_var %S: lb (%g) > ub (%g)" vname lb ub);
  let id = Vec.length m.vars in
  Vec.add_last m.vars { v_name = vname; v_kind = kind; v_lb = lb; v_ub = ub; v_obj = obj };
  if obj <> 0. then m.obj_expr <- Lin.add_term m.obj_expr obj id;
  id

let add_binary m ?obj vname = add_var m ?obj ~kind:Binary vname

let add_row m ?name expr sense rhs =
  let cname =
    match name with Some n -> n | None -> Printf.sprintf "c%d" (Vec.length m.cons)
  in
  let cst = Lin.constant expr in
  let expr = Lin.add_const expr (-.cst) in
  let id = Vec.length m.cons in
  Vec.add_last m.cons { c_name = cname; c_expr = expr; c_sense = sense; c_rhs = rhs -. cst };
  id

let add_constr m ?name expr sense rhs = ignore (add_row m ?name expr sense rhs)

let set_row m row expr sense rhs =
  if row < 0 || row >= Vec.length m.cons then
    invalid_arg (Printf.sprintf "Model.set_row: row %d out of range" row);
  let old = Vec.get m.cons row in
  let cst = Lin.constant expr in
  let expr = Lin.add_const expr (-.cst) in
  Vec.add_last m.set_log row;
  Vec.set m.cons row { old with c_expr = expr; c_sense = sense; c_rhs = rhs -. cst }

let add_range m ?name lo expr hi =
  let base = match name with Some n -> n | None -> Printf.sprintf "r%d" (Vec.length m.cons) in
  add_constr m ~name:(base ^ "_lo") expr Ge lo;
  add_constr m ~name:(base ^ "_hi") expr Le hi

let set_objective m dir expr =
  m.obj_dir <- dir;
  m.obj_expr <- expr

let objective m = (m.obj_dir, m.obj_expr)

let get m v = Vec.get m.vars v

let set_bounds m v lb ub =
  let info = get m v in
  info.v_lb <- lb;
  info.v_ub <- ub

let nvars m = Vec.length m.vars

let nconstrs m = Vec.length m.cons

let var_name m v = (get m v).v_name

let var_kind m v = (get m v).v_kind

let var_lb m v = (get m v).v_lb

let var_ub m v = (get m v).v_ub

let var_obj m v = (get m v).v_obj

let is_integer m v =
  match (get m v).v_kind with Integer | Binary -> true | Continuous -> false

let constr m row = Vec.get m.cons row

type watermark = { w_vars : int; w_constrs : int; w_log : int }

let mark m =
  { w_vars = Vec.length m.vars; w_constrs = Vec.length m.cons;
    w_log = Vec.length m.set_log }

let vars_since m w =
  let n = Vec.length m.vars in
  let rec build i = if i >= n then [] else i :: build (i + 1) in
  build w.w_vars

let constrs_since m w =
  let n = Vec.length m.cons in
  let rec build i = if i >= n then [] else i :: build (i + 1) in
  build w.w_constrs

let touched_since m w =
  (* Rows that existed at the watermark and have been rewritten in place
     since; rows added after the watermark are reported by
     [constrs_since] instead, so the two lists partition the delta. *)
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  for k = Vec.length m.set_log - 1 downto w.w_log do
    let row = Vec.get m.set_log k in
    if row < w.w_constrs && not (Hashtbl.mem seen row) then begin
      Hashtbl.add seen row ();
      acc := row :: !acc
    end
  done;
  !acc

let constrs m = Vec.to_array m.cons

let iter_constrs f m = Vec.iteri f m.cons

let check_feasible ?(tol = 1e-6) m value =
  let violation = ref None in
  let record msg = if !violation = None then violation := Some msg in
  for v = 0 to nvars m - 1 do
    let info = get m v in
    let x = value v in
    if x < info.v_lb -. tol || x > info.v_ub +. tol then
      record
        (Printf.sprintf "variable %s = %g outside bounds [%g, %g]" info.v_name x info.v_lb
           info.v_ub);
    (match info.v_kind with
    | Integer | Binary ->
        if Float.abs (x -. Float.round x) > tol then
          record (Printf.sprintf "variable %s = %g not integral" info.v_name x)
    | Continuous -> ())
  done;
  let check_con _ c =
    let lhs = Lin.eval value c.c_expr in
    let ok =
      match c.c_sense with
      | Le -> lhs <= c.c_rhs +. tol
      | Ge -> lhs >= c.c_rhs -. tol
      | Eq -> Float.abs (lhs -. c.c_rhs) <= tol
    in
    if not ok then
      record
        (Printf.sprintf "constraint %s violated: lhs = %g, rhs = %g" c.c_name lhs c.c_rhs)
  in
  iter_constrs check_con m;
  match !violation with None -> Ok () | Some msg -> Error msg

let pp_stats ppf m =
  let nbin = ref 0 and nint = ref 0 and ncont = ref 0 in
  for v = 0 to nvars m - 1 do
    match (get m v).v_kind with
    | Binary -> incr nbin
    | Integer -> incr nint
    | Continuous -> incr ncont
  done;
  Format.fprintf ppf "%s: %d vars (%d bin, %d int, %d cont), %d constraints" m.m_name
    (nvars m) !nbin !nint !ncont (nconstrs m)
