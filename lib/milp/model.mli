(** Mutable MILP model builder.

    A model owns a set of variables (continuous, general integer, or
    binary), a set of linear constraints, and a linear objective.  Models
    are consumed by {!Presolve} and {!Branch_bound}, and can be exported
    in CPLEX LP format by {!Lp_format}. *)

type var_kind =
  | Continuous
  | Integer
  | Binary  (** Integer restricted to bounds [{0, 1}]. *)

type sense = Le | Ge | Eq
(** Constraint sense: [lhs <= rhs], [lhs >= rhs], [lhs = rhs]. *)

type direction = Minimize | Maximize

type t
(** A mutable model under construction. *)

type constr = {
  c_name : string;
  c_expr : Lin.t;  (** Left-hand side; its constant is folded into the rhs. *)
  c_sense : sense;
  c_rhs : float;
}

val create : ?name:string -> unit -> t
(** Fresh empty model. *)

val name : t -> string

val add_var :
  t ->
  ?lb:float ->
  ?ub:float ->
  ?kind:var_kind ->
  ?obj:float ->
  string ->
  int
(** [add_var m name] registers a new variable and returns its id.
    Defaults: [lb = 0.], [ub = infinity] ([0., 1.] for [Binary]),
    [kind = Continuous], objective coefficient [obj = 0.].
    @raise Invalid_argument if [lb > ub]. *)

val add_binary : t -> ?obj:float -> string -> int
(** Shorthand for [add_var ~kind:Binary]. *)

val add_constr : t -> ?name:string -> Lin.t -> sense -> float -> unit
(** [add_constr m lhs sense rhs] adds the constraint
    [lhs sense rhs]; any constant term in [lhs] is moved to the rhs. *)

val add_row : t -> ?name:string -> Lin.t -> sense -> float -> int
(** Like {!add_constr} but returns the new row's index, so the caller can
    later rewrite it with {!set_row} as an incremental encoding grows. *)

val set_row : t -> int -> Lin.t -> sense -> float -> unit
(** [set_row m row lhs sense rhs] replaces the body of constraint [row]
    in place (keeping its name).  The constant term of [lhs] is folded
    into the rhs exactly as in {!add_constr}.
    @raise Invalid_argument if [row] is out of range. *)

val add_range : t -> ?name:string -> float -> Lin.t -> float -> unit
(** [add_range m lo e hi] adds [lo <= e <= hi] as two constraints. *)

val set_objective : t -> direction -> Lin.t -> unit
(** Replace the objective.  The expression's constant term is kept and
    reported as part of objective values. *)

val objective : t -> direction * Lin.t

val set_bounds : t -> int -> float -> float -> unit
(** [set_bounds m v lb ub] overwrites the bounds of variable [v]. *)

val nvars : t -> int

val nconstrs : t -> int

val var_name : t -> int -> string

val var_kind : t -> int -> var_kind

val var_lb : t -> int -> float

val var_ub : t -> int -> float

val var_obj : t -> int -> float

val is_integer : t -> int -> bool
(** [true] for [Integer] and [Binary] variables. *)

val constr : t -> int -> constr
(** [constr m row] is the current body of constraint [row]. *)

type watermark
(** A point-in-time marker over a model's variable and constraint
    counts.  Models only ever grow, so everything at an index at or past
    a watermark was added after the watermark was taken. *)

val mark : t -> watermark
(** Record the current variable/constraint counts. *)

val vars_since : t -> watermark -> int list
(** Ids of variables added after [mark], in insertion order. *)

val constrs_since : t -> watermark -> int list
(** Indices of constraints added after [mark], in insertion order.
    Rows rewritten in place via {!set_row} are not reported. *)

val touched_since : t -> watermark -> int list
(** Indices of constraints that existed at [mark] and have since been
    rewritten in place via {!set_row} (deduplicated).
    Together with {!constrs_since} this is the exact row delta since the
    watermark — the input {!Presolve.reduce} needs to re-apply a
    template reduction trace instead of presolving from scratch. *)

val constrs : t -> constr array
(** Snapshot of the current constraints in insertion order. *)

val iter_constrs : (int -> constr -> unit) -> t -> unit

val check_feasible : ?tol:float -> t -> (int -> float) -> (unit, string) result
(** [check_feasible m value] verifies that the assignment satisfies every
    constraint, the variable bounds, and integrality, within tolerance
    [tol] (default [1e-6]).  On failure returns a human-readable
    description of the first violation. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: variable/constraint counts by kind. *)
