type 'a t = {
  nworkers : int;
  heaps : 'a Pqueue.t array;
  hlocks : Mutex.t array;
  (* Advisory minimum key of each heap ([infinity] = believed empty).
     Only a victim-selection hint: the authoritative state is the heap
     under its lock. *)
  mins : float Atomic.t array;
  (* Keys of nodes popped from heap [i] whose task_done has not run yet,
     guarded by [hlocks.(i)].  Kept so [best_bound] counts nodes that
     are mid-LP on some worker. *)
  inflight : float list ref array;
  (* Worker w's most recent pop: (heap it came from, key), written and
     read only by worker w between its pop and its task_done. *)
  out : (int * float) array;
  pending : int Atomic.t;
  stop_flag : bool Atomic.t;
  (* Sleep/wake channel.  Every broadcast happens while holding [wake]
     so a worker that checked the idle condition under [wake] cannot
     miss the wakeup that invalidates it. *)
  wake : Mutex.t;
  wake_cond : Condition.t;
}

let create ~nworkers =
  if nworkers < 1 then invalid_arg "Node_pool.create: nworkers must be >= 1";
  {
    nworkers;
    heaps = Array.init nworkers (fun _ -> Pqueue.create ());
    hlocks = Array.init nworkers (fun _ -> Mutex.create ());
    mins = Array.init nworkers (fun _ -> Atomic.make infinity);
    inflight = Array.init nworkers (fun _ -> ref []);
    out = Array.make nworkers (-1, nan);
    pending = Atomic.make 0;
    stop_flag = Atomic.make false;
    wake = Mutex.create ();
    wake_cond = Condition.create ();
  }

let broadcast t =
  Mutex.lock t.wake;
  Condition.broadcast t.wake_cond;
  Mutex.unlock t.wake

let push t ~worker key v =
  let i = worker mod t.nworkers in
  (* Count the node before it becomes poppable: [pending] may over-
     approximate live work but can never undershoot it, so pending = 0
     really means drained. *)
  Atomic.incr t.pending;
  Mutex.lock t.hlocks.(i);
  Pqueue.push t.heaps.(i) key v;
  if key < Atomic.get t.mins.(i) then Atomic.set t.mins.(i) key;
  Mutex.unlock t.hlocks.(i);
  broadcast t

(* Pop the best node of heap [i], recording it in-flight under the same
   lock acquisition so there is no instant where it is invisible to
   [best_bound]. *)
let try_heap t ~worker i =
  Mutex.lock t.hlocks.(i);
  match Pqueue.pop t.heaps.(i) with
  | Some (k, v) ->
      t.inflight.(i) := k :: !(t.inflight.(i));
      Atomic.set t.mins.(i)
        (match Pqueue.peek_key t.heaps.(i) with Some k' -> k' | None -> infinity);
      Mutex.unlock t.hlocks.(i);
      t.out.(worker) <- (i, k);
      Some (k, v)
  | None ->
      Atomic.set t.mins.(i) infinity;
      Mutex.unlock t.hlocks.(i);
      None

let rec pop t ~worker =
  if Atomic.get t.stop_flag then None
  else if Atomic.get t.pending = 0 then None
  else
    match try_heap t ~worker worker with
    | Some _ as r -> r
    | None -> (
        (* Steal from the victim advertising the best minimum. *)
        let victim = ref (-1) and best = ref infinity in
        for i = 0 to t.nworkers - 1 do
          if i <> worker then begin
            let k = Atomic.get t.mins.(i) in
            if k < !best then begin
              best := k;
              victim := i
            end
          end
        done;
        if !victim >= 0 then
          match try_heap t ~worker !victim with
          | Some _ as r -> r
          | None -> pop t ~worker (* raced another thief; retry *)
        else begin
          (* Nothing visible anywhere, but in-flight nodes may still
             spawn children: sleep until a push / retirement / stop.
             The idle re-check happens under [wake], the same lock every
             broadcaster holds, so the wakeup cannot be lost. *)
          Mutex.lock t.wake;
          let idle () =
            (not (Atomic.get t.stop_flag))
            && Atomic.get t.pending > 0
            && Array.for_all (fun m -> Atomic.get m = infinity) t.mins
          in
          if idle () then Condition.wait t.wake_cond t.wake;
          Mutex.unlock t.wake;
          pop t ~worker
        end)

(* Remove one occurrence of [k] (entries are a multiset of bounds, any
   float-equal entry is the same node for accounting purposes). *)
let rec remove_one k = function
  | [] -> []
  | x :: rest -> if x = k then rest else x :: remove_one k rest

let task_done t ~worker =
  let i, k = t.out.(worker) in
  if i < 0 then invalid_arg "Node_pool.task_done: no outstanding pop";
  t.out.(worker) <- (-1, nan);
  Mutex.lock t.hlocks.(i);
  t.inflight.(i) := remove_one k !(t.inflight.(i));
  Mutex.unlock t.hlocks.(i);
  let before = Atomic.fetch_and_add t.pending (-1) in
  if before = 1 then broadcast t (* drained: wake sleepers so they exit *)

let stop t =
  Atomic.set t.stop_flag true;
  broadcast t

let stopped t = Atomic.get t.stop_flag

let drained t = Atomic.get t.pending = 0

let best_bound t =
  let best = ref infinity in
  for i = 0 to t.nworkers - 1 do
    Mutex.lock t.hlocks.(i);
    (match Pqueue.peek_key t.heaps.(i) with
    | Some k -> if k < !best then best := k
    | None -> ());
    List.iter (fun k -> if k < !best then best := k) !(t.inflight.(i));
    Mutex.unlock t.hlocks.(i)
  done;
  !best

let length t =
  let n = ref 0 in
  for i = 0 to t.nworkers - 1 do
    Mutex.lock t.hlocks.(i);
    n := !n + Pqueue.length t.heaps.(i);
    Mutex.unlock t.hlocks.(i)
  done;
  !n
