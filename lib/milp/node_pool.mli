(** Concurrent work-stealing node pool for parallel branch & bound.

    One min-heap ({!Pqueue}) per worker domain, each guarded by its own
    mutex.  A worker pushes the children it generates onto its {e own}
    heap and pops from it best-bound first; when its heap is empty it
    steals from the victim whose advisory minimum key is best, so the
    collective expansion order stays close to global best-first while
    keeping every heap single-writer in the common case.

    Accounting is exact where it matters and advisory where it does not:

    - Every node is, at any instant, either inside some heap or recorded
      in that heap's in-flight list (a worker checks the popped key in
      {e under the same heap lock} as the pop, and {!task_done} removes
      it).  {!best_bound} therefore never misses a node that could still
      improve the tree bound, which makes gap-based termination sound.
    - A [pending] counter is incremented by {!push} {e before} the node
      is visible and decremented by {!task_done} {e after} the worker
      has pushed the node's children, so [pending = 0] proves the tree
      is exhausted (children bound at least their parent, so no node can
      reappear).
    - Per-heap minimum keys are plain {!Atomic} hints used only for
      victim selection; a stale hint costs one extra lock acquisition,
      never a lost node.

    Idle workers block on a condition variable — they never spin.  On
    machines where domains outnumber cores (including the degenerate
    single-core case) a spinning thief would steal the CPU from the
    worker actually solving LPs.

    Payloads are opaque to the pool, but size still matters: branch &
    bound nodes carry their parent's {!Basis.t}, which since the sparse
    revised-simplex rewrite holds an O(nonzeros) LU factor rather than a
    dense m×m inverse — so a deep frontier of queued and stolen nodes no
    longer pins O(nodes·m²) memory. *)

type 'a t

val create : nworkers:int -> 'a t
(** [nworkers >= 1] heaps; worker indices are [0 .. nworkers - 1]. *)

val push : 'a t -> worker:int -> float -> 'a -> unit
(** [push t ~worker key v] adds [v] (priority [key], smaller pops
    first) to [worker]'s heap and wakes any sleeping worker.  Safe from
    any domain; [worker] only selects the destination heap. *)

val pop : 'a t -> worker:int -> (float * 'a) option
(** Best node from the worker's own heap, else stolen from the best
    victim; blocks while the pool is merely {e momentarily} empty
    (nodes in flight may still produce children).  [None] means the
    pool is drained ([pending = 0]) or {!stop} was called — the worker
    should exit.  Each returned node {b must} be matched by exactly one
    {!task_done} after its children (if any) have been pushed. *)

val task_done : 'a t -> worker:int -> unit
(** Retire the node most recently popped by [worker]: drop it from the
    in-flight accounting and decrement [pending]. *)

val stop : 'a t -> unit
(** Make every subsequent {!pop} return [None] immediately (current
    LP solves finish; their late pushes are accepted and simply remain
    queued).  Used for gap-closed, node-limit and deadline shutdown,
    and to unwedge the pool when a worker dies mid-node. *)

val stopped : 'a t -> bool

val drained : 'a t -> bool
(** [pending = 0]: every pushed node was popped and retired — the tree
    is exhausted (only meaningful once workers have joined, or as a
    conservative hint while they run). *)

val best_bound : 'a t -> float
(** Minimum key over all queued {e and in-flight} nodes ([infinity]
    when none) — the best bound any open part of the tree can still
    attain.  Takes each heap lock in turn; never blocks on sleepers. *)

val length : 'a t -> int
(** Total queued (not in-flight) nodes, summed under the heap locks. *)
