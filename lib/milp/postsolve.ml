type fix = { fx_var : int; fx_value : float; fx_forced : bool }

type subst = {
  sb_var : int;
  sb_coef : float;
  sb_rhs : float;
  sb_terms : (int * float) array;
}

type t = {
  orig_ncols : int;
  orig_nrows : int;
  col_of_red : int array;
  red_of_col : int array;
  row_of_red : int array;
  red_of_row : int array;
  fixes : fix array;
  substs : subst array;
}

type col_state = Kept of int | Fixed of fix | Substituted

let inverse_map n fwd =
  let inv = Array.make n (-1) in
  Array.iteri (fun red orig -> inv.(orig) <- red) fwd;
  inv

let make ~ncols ~nrows ~col_of_red ~row_of_red ~fixes ~substs =
  (* Fixes are mutually independent, so they are stored sorted by
     variable id to make [col_state] a binary search. *)
  let fixes = Array.copy fixes in
  Array.sort (fun a b -> compare a.fx_var b.fx_var) fixes;
  {
    orig_ncols = ncols;
    orig_nrows = nrows;
    col_of_red;
    red_of_col = inverse_map ncols col_of_red;
    row_of_red;
    red_of_row = inverse_map nrows row_of_red;
    fixes;
    substs;
  }

let identity ~ncols ~nrows =
  make ~ncols ~nrows ~col_of_red:(Array.init ncols Fun.id)
    ~row_of_red:(Array.init nrows Fun.id) ~fixes:[||] ~substs:[||]

let col_state t j =
  let red = t.red_of_col.(j) in
  if red >= 0 then Kept red
  else begin
    (* Eliminated: exactly one fix or subst names it.  [fixes] is sorted
       by variable id (see [make]), so a binary search decides which. *)
    let lo = ref 0 and hi = ref (Array.length t.fixes - 1) in
    let found = ref None in
    while !found = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let f = t.fixes.(mid) in
      if f.fx_var = j then found := Some f
      else if f.fx_var < j then lo := mid + 1
      else hi := mid - 1
    done;
    match !found with Some f -> Fixed f | None -> Substituted
  end

let restore t xr =
  let x = Array.make t.orig_ncols 0. in
  Array.iteri (fun red orig -> x.(orig) <- xr.(red)) t.col_of_red;
  Array.iter (fun f -> x.(f.fx_var) <- f.fx_value) t.fixes;
  (* Reverse chronological order: a substitution's terms only mention
     columns that were still present when it was recorded, i.e. columns
     restored by a later (already-applied) substitution, a fix, or the
     reduced solution itself. *)
  for k = Array.length t.substs - 1 downto 0 do
    let s = t.substs.(k) in
    let acc = ref s.sb_rhs in
    for i = 0 to Array.length s.sb_terms - 1 do
      let j, a = s.sb_terms.(i) in
      acc := !acc -. (a *. x.(j))
    done;
    x.(s.sb_var) <- !acc /. s.sb_coef
  done;
  x

let restrict ?(tol = 1e-6) t x =
  let ok = ref true in
  Array.iter
    (fun f ->
      if f.fx_forced && Float.abs (x.(f.fx_var) -. f.fx_value) > tol then ok := false)
    t.fixes;
  if not !ok then None
  else Some (Array.map (fun orig -> x.(orig)) t.col_of_red)
