(** Postsolve record of a {!Presolve.reduce} reduction.

    A reduction maps an original problem ([orig_ncols] columns,
    [orig_nrows] rows) onto a smaller one by dropping rows and
    eliminating columns.  This record is the exact inverse: index maps
    in both directions, the value of every eliminated column, and the
    substitution equations of columns eliminated through an equality
    row.  With it a solution of the reduced problem maps back to the
    original space bit-for-bit up to float rounding ({!restore}), a
    full-space point maps forward ({!restrict}), and cuts separated on
    the reduced model can be re-expressed on the original
    ({!Cuts.lift} / {!Cuts.restrict}).

    Dropped-row duals policy: rows are only dropped when redundant
    under the reduced bounds, duplicated by a kept row, or consumed by
    a substitution, so a dual vector for the original problem assigns
    [0.] to every dropped row (the kept-row duals transfer through
    [row_of_red] unchanged; a duplicate's multiplier folds into the
    kept copy). *)

type fix = {
  fx_var : int;  (** Original column id. *)
  fx_value : float;
  fx_forced : bool;
      (** [true] when the value is implied by the constraints (bound
          propagation, probing): every feasible point agrees with it.
          [false] for objective-preferred choices on empty columns,
          which other feasible points may disagree with. *)
}

type subst = {
  sb_var : int;  (** Original column id of the eliminated variable. *)
  sb_coef : float;  (** Its coefficient in the consumed equality row. *)
  sb_rhs : float;  (** The row's right-hand side. *)
  sb_terms : (int * float) array;
      (** Remaining row terms over original column ids:
          [x_var = (rhs - terms . x) / coef]. *)
}

type t = private {
  orig_ncols : int;
  orig_nrows : int;
  col_of_red : int array;  (** Reduced column -> original column. *)
  red_of_col : int array;  (** Original column -> reduced column or -1. *)
  row_of_red : int array;  (** Reduced row -> original row. *)
  red_of_row : int array;  (** Original row -> reduced row or -1. *)
  fixes : fix array;  (** Sorted by [fx_var] (fixes are independent). *)
  substs : subst array;
      (** Chronological elimination order; {!restore} applies them in
          reverse, after the fixes, so each equation only reads values
          that are already restored. *)
}

type col_state =
  | Kept of int  (** Still present, at this reduced index. *)
  | Fixed of fix
  | Substituted

val make :
  ncols:int ->
  nrows:int ->
  col_of_red:int array ->
  row_of_red:int array ->
  fixes:fix array ->
  substs:subst array ->
  t
(** Build a record from the forward maps; the inverse maps are derived.
    [col_of_red]/[row_of_red] must be strictly increasing original
    indices. *)

val identity : ncols:int -> nrows:int -> t
(** The no-op reduction (presolve disabled). *)

val col_state : t -> int -> col_state
(** Classification of an original column (O(log #fixes) worst case). *)

val restore : t -> float array -> float array
(** [restore t xr] maps a reduced-space solution (length = reduced
    column count) back to original space: kept values are scattered,
    fixed columns take their recorded value, substituted columns are
    recomputed from their equality rows. *)

val restrict : ?tol:float -> t -> float array -> float array option
(** [restrict t x] maps an original-space point onto the reduced
    columns.  [None] when [x] disagrees with a {e forced} fixing by
    more than [tol] (default [1e-6]) — such a point cannot be feasible
    for the original problem.  Choice fixings and substituted columns
    are simply dropped (restoring swaps them for the recorded /
    recomputed values, which is feasibility- and
    objective-compatible). *)
