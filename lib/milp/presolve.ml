type outcome =
  | Feasible of {
      lb : float array;
      ub : float array;
      active : bool array;
      rounds : int;
    }
  | Proven_infeasible of string

(* Minimum and maximum activity of a row under the bounds; infinities
   propagate naturally through float arithmetic except for 0 * inf, which
   cannot occur because stored coefficients are non-zero.  Explicit [for]
   loop rather than [Array.iter]: a closure capturing float refs boxes
   every accumulator store, and this runs per active row, per round, per
   node — it was the dominant allocation site of the whole solver. *)
let activity row lb ub =
  let amin = ref 0. and amax = ref 0. in
  for k = 0 to Array.length row - 1 do
    let j, a = Array.unsafe_get row k in
    if a > 0. then begin
      amin := !amin +. (a *. lb.(j));
      amax := !amax +. (a *. ub.(j))
    end
    else begin
      amin := !amin +. (a *. ub.(j));
      amax := !amax +. (a *. lb.(j))
    end
  done;
  (!amin, !amax)

exception Infeasible of string

let run ?(max_rounds = 16) ?(tol = 1e-9) (p : Simplex.problem) ~integer ~lb ~ub =
  let n = p.Simplex.ncols in
  let m = Array.length p.Simplex.rows in
  let lb = Array.copy lb and ub = Array.copy ub in
  let active = Array.make m true in
  let changed = ref true in
  let rounds = ref 0 in
  let round_int j =
    if integer.(j) then begin
      lb.(j) <- Float.ceil (lb.(j) -. 1e-6);
      ub.(j) <- Float.floor (ub.(j) +. 1e-6)
    end
  in
  let tighten_lb j v =
    if v > lb.(j) +. tol then begin
      lb.(j) <- v;
      round_int j;
      changed := true;
      if lb.(j) > ub.(j) +. 1e-7 then
        raise (Infeasible (Printf.sprintf "empty domain for variable %d" j))
    end
  in
  let tighten_ub j v =
    if v < ub.(j) -. tol then begin
      ub.(j) <- v;
      round_int j;
      changed := true;
      if lb.(j) > ub.(j) +. 1e-7 then
        raise (Infeasible (Printf.sprintf "empty domain for variable %d" j))
    end
  in
  (* Propagate one inequality  row <= rhs  (Ge rows are negated on the
     fly; Eq rows are propagated in both directions).  [amin] is the
     row's minimum activity under the current bounds, already computed
     by the caller's redundancy check — negate the max activity for a
     negated row. *)
  let propagate_le row rhs neg i amin =
    let s = if neg then -1.0 else 1.0 in
    if amin > rhs +. 1e-7 then
      raise (Infeasible (Printf.sprintf "row %d cannot be satisfied" i));
    if Float.is_finite amin then
      for k = 0 to Array.length row - 1 do
        let j, a0 = Array.unsafe_get row k in
        let a = s *. a0 in
        let contrib = if a > 0. then a *. lb.(j) else a *. ub.(j) in
        let rest = amin -. contrib in
        if Float.is_finite rest then
          if a > 0. then tighten_ub j ((rhs -. rest) /. a)
          else tighten_lb j ((rhs -. rest) /. a)
      done
  in
  (try
     while !changed && !rounds < max_rounds do
       changed := false;
       incr rounds;
       for i = 0 to m - 1 do
         if active.(i) then begin
           let row = p.Simplex.rows.(i) and rhs = p.Simplex.rhs.(i) in
           let amin, amax = activity row lb ub in
           (match p.Simplex.senses.(i) with
           | Model.Le ->
               if amin > rhs +. 1e-7 then
                 raise (Infeasible (Printf.sprintf "row %d infeasible" i));
               if amax <= rhs +. tol then active.(i) <- false
               else propagate_le row rhs false i amin
           | Model.Ge ->
               if amax < rhs -. 1e-7 then
                 raise (Infeasible (Printf.sprintf "row %d infeasible" i));
               if amin >= rhs -. tol then active.(i) <- false
               else propagate_le row (-.rhs) true i (-.amax)
           | Model.Eq ->
               if amin > rhs +. 1e-7 || amax < rhs -. 1e-7 then
                 raise (Infeasible (Printf.sprintf "row %d infeasible" i));
               if amin >= rhs -. tol && amax <= rhs +. tol then active.(i) <- false
               else begin
                 propagate_le row rhs false i amin;
                 propagate_le row (-.rhs) true i (-.amax)
               end)
         end
       done
     done;
     ignore n;
     Feasible { lb; ub; active; rounds = !rounds }
   with Infeasible why -> Proven_infeasible why)

(* Coefficient strengthening on inequality rows, after Achterberg's rule
   (and GurobiPresolver's CoefficientStrengthening):  for  a x_j + rest
   <= b  with x_j integer on a unit box [l, l+1], let
   d = b - max_activity + |a|.  When 0 < d < |a| the coefficient can be
   pulled toward zero —  a' = a - d, b' = b - d*u  for a > 0 (mirrored
   via b' = b + d*l for a < 0) — without excluding any integer point:
   at x_j = u the new row coincides with the old one, and at x_j = l it
   is exactly the redundancy bound max_activity - |a|.  Only the LP
   relaxation gets tighter.  >= rows are strengthened through negation;
   = rows are left alone. *)
let strengthen ?(tol = 1e-9) (p : Simplex.problem) ~integer ~lb ~ub =
  let m = Array.length p.Simplex.rows in
  let rows = Array.copy p.Simplex.rows in
  let rhs = Array.copy p.Simplex.rhs in
  let changes = ref 0 in
  let unit_box j =
    integer.(j)
    && Float.is_finite lb.(j)
    && Float.is_finite ub.(j)
    && Float.abs (ub.(j) -. lb.(j) -. 1.) < 1e-6
  in
  for i = 0 to m - 1 do
    let s =
      match p.Simplex.senses.(i) with Model.Le -> 1.0 | Model.Ge -> -1.0 | Model.Eq -> 0.0
    in
    if s <> 0. then begin
      (* Max activity of the (possibly negated) <= form of the row. *)
      let amax = ref 0. in
      let row0 = rows.(i) in
      for k = 0 to Array.length row0 - 1 do
        let j, a0 = Array.unsafe_get row0 k in
        let a = s *. a0 in
        amax := !amax +. (if a > 0. then a *. ub.(j) else a *. lb.(j))
      done;
      if Float.is_finite !amax then begin
        let b = ref (s *. rhs.(i)) in
        let row = ref rows.(i) in
        Array.iteri
          (fun k (j, a0) ->
            let a = s *. a0 in
            if Float.abs a > tol && unit_box j then begin
              let d = !b -. !amax +. Float.abs a in
              if d > tol && d < Float.abs a -. tol then begin
                if !row == rows.(i) then row := Array.copy rows.(i);
                let a' = if a > 0. then a -. d else a +. d in
                !row.(k) <- (j, s *. a');
                if a > 0. then begin
                  b := !b -. (d *. ub.(j));
                  amax := !amax -. (d *. ub.(j))
                end
                else begin
                  b := !b +. (d *. lb.(j));
                  amax := !amax +. (d *. lb.(j))
                end;
                incr changes
              end
            end)
          !row;
        if !row != rows.(i) then begin
          rows.(i) <- !row;
          rhs.(i) <- s *. !b
        end
      end
    end
  done;
  if !changes = 0 then (p, 0)
  else ({ p with Simplex.rows; rhs }, !changes)

let reduced_problem (p : Simplex.problem) active =
  let keep = ref [] in
  for i = Array.length active - 1 downto 0 do
    if active.(i) then keep := i :: !keep
  done;
  let idx = Array.of_list !keep in
  {
    p with
    Simplex.rows = Array.map (fun i -> p.Simplex.rows.(i)) idx;
    senses = Array.map (fun i -> p.Simplex.senses.(i)) idx;
    rhs = Array.map (fun i -> p.Simplex.rhs.(i)) idx;
  }
