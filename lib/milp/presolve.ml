(* All feasibility/rounding slacks derive from the caller's [tol] (the
   bound-improvement threshold):

     feas_slack = 100  * tol   row/domain infeasibility detection
     int_slack  = 1000 * tol   integer rounding + unit-width tests

   At the default [tol = 1e-9] these are the 1e-7 / 1e-6 constants the
   solver has always used; a caller loosening [tol] now loosens every
   derived check consistently instead of racing hard-coded slacks. *)
let feas_slack tol = 100. *. tol
let int_slack tol = 1000. *. tol

type outcome =
  | Feasible of {
      lb : float array;
      ub : float array;
      active : bool array;
      rounds : int;
    }
  | Proven_infeasible of string

(* Minimum and maximum activity of a row under the bounds; infinities
   propagate naturally through float arithmetic except for 0 * inf, which
   cannot occur because stored coefficients are non-zero.  Explicit [for]
   loop rather than [Array.iter]: a closure capturing float refs boxes
   every accumulator store, and this runs per active row, per round, per
   node — it was the dominant allocation site of the whole solver. *)
let activity row lb ub =
  let amin = ref 0. and amax = ref 0. in
  for k = 0 to Array.length row - 1 do
    let j, a = Array.unsafe_get row k in
    if a > 0. then begin
      amin := !amin +. (a *. lb.(j));
      amax := !amax +. (a *. ub.(j))
    end
    else begin
      amin := !amin +. (a *. ub.(j));
      amax := !amax +. (a *. lb.(j))
    end
  done;
  (!amin, !amax)

exception Infeasible of string

let run ?(max_rounds = 16) ?(tol = 1e-9) (p : Simplex.problem) ~integer ~lb ~ub =
  let feas = feas_slack tol and islack = int_slack tol in
  let m = Array.length p.Simplex.rows in
  let lb = Array.copy lb and ub = Array.copy ub in
  let active = Array.make m true in
  let changed = ref true in
  let rounds = ref 0 in
  let round_int j =
    if integer.(j) then begin
      lb.(j) <- Float.ceil (lb.(j) -. islack);
      ub.(j) <- Float.floor (ub.(j) +. islack)
    end
  in
  let tighten_lb j v =
    if v > lb.(j) +. tol then begin
      lb.(j) <- v;
      round_int j;
      changed := true;
      if lb.(j) > ub.(j) +. feas then
        raise (Infeasible (Printf.sprintf "empty domain for variable %d" j))
    end
  in
  let tighten_ub j v =
    if v < ub.(j) -. tol then begin
      ub.(j) <- v;
      round_int j;
      changed := true;
      if lb.(j) > ub.(j) +. feas then
        raise (Infeasible (Printf.sprintf "empty domain for variable %d" j))
    end
  in
  (* Propagate one inequality  row <= rhs  (Ge rows are negated on the
     fly; Eq rows are propagated in both directions).  [amin] is the
     row's minimum activity under the current bounds, already computed
     by the caller's redundancy check — negate the max activity for a
     negated row. *)
  let propagate_le row rhs neg i amin =
    let s = if neg then -1.0 else 1.0 in
    if amin > rhs +. feas then
      raise (Infeasible (Printf.sprintf "row %d cannot be satisfied" i));
    if Float.is_finite amin then
      for k = 0 to Array.length row - 1 do
        let j, a0 = Array.unsafe_get row k in
        let a = s *. a0 in
        let contrib = if a > 0. then a *. lb.(j) else a *. ub.(j) in
        let rest = amin -. contrib in
        if Float.is_finite rest then
          if a > 0. then tighten_ub j ((rhs -. rest) /. a)
          else tighten_lb j ((rhs -. rest) /. a)
      done
  in
  (try
     while !changed && !rounds < max_rounds do
       changed := false;
       incr rounds;
       for i = 0 to m - 1 do
         if active.(i) then begin
           let row = p.Simplex.rows.(i) and rhs = p.Simplex.rhs.(i) in
           let amin, amax = activity row lb ub in
           (match p.Simplex.senses.(i) with
           | Model.Le ->
               if amin > rhs +. feas then
                 raise (Infeasible (Printf.sprintf "row %d infeasible" i));
               if amax <= rhs +. tol then active.(i) <- false
               else propagate_le row rhs false i amin
           | Model.Ge ->
               if amax < rhs -. feas then
                 raise (Infeasible (Printf.sprintf "row %d infeasible" i));
               if amin >= rhs -. tol then active.(i) <- false
               else propagate_le row (-.rhs) true i (-.amax)
           | Model.Eq ->
               if amin > rhs +. feas || amax < rhs -. feas then
                 raise (Infeasible (Printf.sprintf "row %d infeasible" i));
               if amin >= rhs -. tol && amax <= rhs +. tol then active.(i) <- false
               else begin
                 propagate_le row rhs false i amin;
                 propagate_le row (-.rhs) true i (-.amax)
               end)
         end
       done
     done;
     Feasible { lb; ub; active; rounds = !rounds }
   with Infeasible why -> Proven_infeasible why)

(* Coefficient strengthening on inequality rows, after Achterberg's rule
   (and GurobiPresolver's CoefficientStrengthening):  for  a x_j + rest
   <= b  with x_j integer on a finite box [l, u] of width >= 1, let
   d = b - max_activity + |a|.  When 0 < d < |a| the coefficient can be
   pulled toward zero —  a' = a - d, b' = b - d*u  for a > 0 (mirrored
   via b' = b + d*l for a < 0) — without excluding any integer point:
   at x_j = u the new row coincides with the old one, and for
   x_j = u - k (k >= 1) the new slack differs from the old by
   (k - 1)(d - |a|) <= 0, i.e. the new row is implied by the old one at
   every integer point below the top of the box while the LP relaxation
   only gets tighter.  (The classic statement is for unit boxes; the
   same algebra goes through for any integer width >= 1.)  >= rows are
   strengthened through negation; = rows are left alone. *)
let strengthen ?(tol = 1e-9) (p : Simplex.problem) ~integer ~lb ~ub =
  let islack = int_slack tol in
  let m = Array.length p.Simplex.rows in
  let rows = Array.copy p.Simplex.rows in
  let rhs = Array.copy p.Simplex.rhs in
  let changes = ref 0 in
  let int_box j =
    integer.(j)
    && Float.is_finite lb.(j)
    && Float.is_finite ub.(j)
    && ub.(j) -. lb.(j) >= 1. -. islack
  in
  for i = 0 to m - 1 do
    let s =
      match p.Simplex.senses.(i) with Model.Le -> 1.0 | Model.Ge -> -1.0 | Model.Eq -> 0.0
    in
    if s <> 0. then begin
      (* Max activity of the (possibly negated) <= form of the row. *)
      let amax = ref 0. in
      let row0 = rows.(i) in
      for k = 0 to Array.length row0 - 1 do
        let j, a0 = Array.unsafe_get row0 k in
        let a = s *. a0 in
        amax := !amax +. (if a > 0. then a *. ub.(j) else a *. lb.(j))
      done;
      if Float.is_finite !amax then begin
        let b = ref (s *. rhs.(i)) in
        let row = ref rows.(i) in
        Array.iteri
          (fun k (j, a0) ->
            let a = s *. a0 in
            if Float.abs a > tol && int_box j then begin
              let d = !b -. !amax +. Float.abs a in
              if d > tol && d < Float.abs a -. tol then begin
                if !row == rows.(i) then row := Array.copy rows.(i);
                let a' = if a > 0. then a -. d else a +. d in
                !row.(k) <- (j, s *. a');
                if a > 0. then begin
                  b := !b -. (d *. ub.(j));
                  amax := !amax -. (d *. ub.(j))
                end
                else begin
                  b := !b +. (d *. lb.(j));
                  amax := !amax +. (d *. lb.(j))
                end;
                incr changes
              end
            end)
          !row;
        if !row != rows.(i) then begin
          rows.(i) <- !row;
          rhs.(i) <- s *. !b
        end
      end
    end
  done;
  if !changes = 0 then (p, 0)
  else ({ p with Simplex.rows; rhs }, !changes)

let reduced_problem (p : Simplex.problem) active =
  let keep = ref [] in
  for i = Array.length active - 1 downto 0 do
    if active.(i) then keep := i :: !keep
  done;
  let idx = Array.of_list !keep in
  ( {
      p with
      Simplex.rows = Array.map (fun i -> p.Simplex.rows.(i)) idx;
      senses = Array.map (fun i -> p.Simplex.senses.(i)) idx;
      rhs = Array.map (fun i -> p.Simplex.rhs.(i)) idx;
    },
    idx )

(* ------------------------------------------------------------------ *)
(* Reduction stack                                                     *)
(* ------------------------------------------------------------------ *)

type pass =
  | Propagate
  | Probe
  | Parallel_rows
  | Fix_columns
  | Empty_columns
  | Substitute
  | Strengthen

let all_passes =
  [ Propagate; Probe; Parallel_rows; Fix_columns; Empty_columns; Substitute; Strengthen ]

let pass_name = function
  | Propagate -> "propagate"
  | Probe -> "probe"
  | Parallel_rows -> "parallel"
  | Fix_columns -> "fix"
  | Empty_columns -> "empty"
  | Substitute -> "subst"
  | Strengthen -> "strengthen"

let pass_of_name = function
  | "propagate" -> Some Propagate
  | "probe" -> Some Probe
  | "parallel" -> Some Parallel_rows
  | "fix" -> Some Fix_columns
  | "empty" -> Some Empty_columns
  | "subst" -> Some Substitute
  | "strengthen" -> Some Strengthen
  | _ -> None

let passes_of_string s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc rest
    | name :: rest -> (
        match pass_of_name (String.trim name) with
        | Some p -> go (p :: acc) rest
        | None -> Error (Printf.sprintf "unknown presolve pass %S" name))
  in
  go [] parts

type pass_stats = {
  ps_pass : pass;
  ps_rows_removed : int;
  ps_cols_removed : int;
  ps_changes : int;
}

type trace = {
  tr_ncols : int;
  tr_nrows : int;
  tr_lb0 : float array;  (* original bounds the template run started from *)
  tr_ub0 : float array;
  tr_lb : float array;  (* propagation fixpoint bounds *)
  tr_ub : float array;
  (* Chronological tightening events (var, justifying row); probing
     fixings carry row = -1 and are always re-derived on re-apply. *)
  tr_events : (int * int) array;
  (* Per-row activity verdict at the propagation-phase end (false =
     proven redundant).  A re-apply adopts the verdict for untouched
     rows whose support bounds sit exactly at the template fixpoint:
     the verdict is a function of (row, support bounds) and both are
     unchanged, so recomputing the activities would be pure waste. *)
  tr_active : bool array;
}

type reduction = {
  red_problem : Simplex.problem;
  red_integer : bool array;
  red_lb : float array;
  red_ub : float array;
  red_post : Postsolve.t;
  red_trace : trace;
  red_stats : pass_stats list;
  red_reapplied : bool;
}

type reduce_outcome = Reduced of reduction | Reduce_infeasible of string

(* Column-to-rows adjacency of the full row set, CSC-style. *)
let build_adjacency (p : Simplex.problem) =
  let n = p.Simplex.ncols in
  let cnt = Array.make (n + 1) 0 in
  Array.iter
    (fun row -> Array.iter (fun (j, _) -> cnt.(j) <- cnt.(j) + 1) row)
    p.Simplex.rows;
  let adjp = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    adjp.(j + 1) <- adjp.(j) + cnt.(j)
  done;
  let adj = Array.make adjp.(n) 0 in
  Array.fill cnt 0 (n + 1) 0;
  Array.iteri
    (fun i row ->
      Array.iter
        (fun (j, _) ->
          adj.(adjp.(j) + cnt.(j)) <- i;
          cnt.(j) <- cnt.(j) + 1)
        row)
    p.Simplex.rows;
  (adjp, adj)

let reduce ?(max_rounds = 16) ?(tol = 1e-9) ?(passes = all_passes) ?essential ?reuse
    (p : Simplex.problem) ~integer ~lb ~ub =
  let feas = feas_slack tol and islack = int_slack tol in
  let enabled pass = List.mem pass passes in
  let n = p.Simplex.ncols in
  let m = Array.length p.Simplex.rows in
  let wlb = Array.copy lb and wub = Array.copy ub in
  let active = Array.make m true in
  let events = ref [] in
  let nevents = ref 0 in
  let tightenings = ref 0 in
  let probe_fixed = ref 0 in
  let redundant_rows = ref 0 in
  (* Re-apply bookkeeping: did a usable template trace seed this run?
     [reuse_ctx] carries what the final redundancy sweep needs to adopt
     template verdicts: (touched rows, template row count, template
     verdicts, taint array, event count right after the adopt replay). *)
  let reapplied = ref false in
  let reuse_ctx = ref None in
  try
    (* Adjacency is only consulted when a bound actually tightens, so a
       template re-apply whose delta derives nothing never pays for it. *)
    let adjacency = lazy (build_adjacency p) in
    let inq = Array.make m false in
    let queue = Queue.create () in
    let enqueue i =
      if active.(i) && not inq.(i) then begin
        inq.(i) <- true;
        Queue.push i queue
      end
    in
    let enqueue_var j =
      let adjp, adj = Lazy.force adjacency in
      for k = adjp.(j) to adjp.(j + 1) - 1 do
        enqueue adj.(k)
      done
    in
    let round_int j =
      if integer.(j) then begin
        wlb.(j) <- Float.ceil (wlb.(j) -. islack);
        wub.(j) <- Float.floor (wub.(j) +. islack)
      end
    in
    let tighten just j keep_lb keep_ub =
      (* [keep_lb]/[keep_ub] are candidate new bounds; apply whichever
         improves by more than [tol], recording the event. *)
      let improved = ref false in
      if keep_lb > wlb.(j) +. tol then begin
        wlb.(j) <- keep_lb;
        improved := true
      end;
      if keep_ub < wub.(j) -. tol then begin
        wub.(j) <- keep_ub;
        improved := true
      end;
      if !improved then begin
        round_int j;
        incr tightenings;
        events := (j, just) :: !events;
        incr nevents;
        if wlb.(j) > wub.(j) +. feas then
          raise (Infeasible (Printf.sprintf "empty domain for variable %d" j));
        enqueue_var j
      end
    in
    let propagate_le row rhs neg i amin =
      let s = if neg then -1.0 else 1.0 in
      if amin > rhs +. feas then
        raise (Infeasible (Printf.sprintf "row %d cannot be satisfied" i));
      if Float.is_finite amin then
        for k = 0 to Array.length row - 1 do
          let j, a0 = Array.unsafe_get row k in
          let a = s *. a0 in
          let contrib = if a > 0. then a *. wlb.(j) else a *. wub.(j) in
          let rest = amin -. contrib in
          if Float.is_finite rest then
            if a > 0. then tighten i j neg_infinity ((rhs -. rest) /. a)
            else tighten i j ((rhs -. rest) /. a) infinity
        done
    in
    let process i =
      let row = p.Simplex.rows.(i) and rhs = p.Simplex.rhs.(i) in
      let amin, amax = activity row wlb wub in
      match p.Simplex.senses.(i) with
      | Model.Le ->
          if amin > rhs +. feas then
            raise (Infeasible (Printf.sprintf "row %d infeasible" i));
          if amax <= rhs +. tol then begin
            active.(i) <- false;
            incr redundant_rows
          end
          else propagate_le row rhs false i amin
      | Model.Ge ->
          if amax < rhs -. feas then
            raise (Infeasible (Printf.sprintf "row %d infeasible" i));
          if amin >= rhs -. tol then begin
            active.(i) <- false;
            incr redundant_rows
          end
          else propagate_le row (-.rhs) true i (-.amax)
      | Model.Eq ->
          if amin > rhs +. feas || amax < rhs -. feas then
            raise (Infeasible (Printf.sprintf "row %d infeasible" i));
          if amin >= rhs -. tol && amax <= rhs +. tol then begin
            active.(i) <- false;
            incr redundant_rows
          end
          else begin
            propagate_le row rhs false i amin;
            propagate_le row (-.rhs) true i (-.amax)
          end
    in
    let budget = ref (Int.max m (max_rounds * m)) in
    let drain () =
      while (not (Queue.is_empty queue)) && !budget > 0 do
        let i = Queue.pop queue in
        inq.(i) <- false;
        decr budget;
        if active.(i) then process i
      done;
      Queue.clear queue;
      Array.fill inq 0 m false
    in
    (* Seed the worklist: every row for a from-scratch run; for a
       template re-apply, only the delta and whatever it taints.  The
       replay only pays off when the delta is small next to the
       template: once a grow step rewrites or appends a sizeable
       fraction of the rows, the taint swallows most tightenings and
       the replay bookkeeping is pure overhead on top of what amounts
       to a full propagation — so fall back to from-scratch there and
       keep re-apply a never-lose fast path. *)
    (if enabled Propagate then begin
       match reuse with
       | Some (tr, touched_rows)
         when tr.tr_ncols <= n && tr.tr_nrows <= m
              && Array.length tr.tr_events <= 500_000
              && (m - tr.tr_nrows) + List.length touched_rows
                 <= Int.max 8 (tr.tr_nrows / 4) ->
           reapplied := true;
           let touched = Array.make m false in
           List.iter (fun r -> if r >= 0 && r < m then touched.(r) <- true) touched_rows;
           (* A template tightening survives iff its whole derivation
              chain avoids rewritten rows.  Taint seeds: variables whose
              original bounds differ from the template's (growth or the
              caller changed them).  Replaying the event log forward then
              spreads taint through each event's support, exactly
              mirroring how the tightenings were derived. *)
           let taint = Array.make n false in
           let any_taint = ref false in
           for j = 0 to tr.tr_ncols - 1 do
             if wlb.(j) <> tr.tr_lb0.(j) || wub.(j) <> tr.tr_ub0.(j) then begin
               taint.(j) <- true;
               any_taint := true
             end
           done;
           (* With no tainted variable anywhere, a support scan can
              never hit — the whole replay degenerates to the probe/
              touched-row test, which keeps the common taint-free grow
              step O(events) instead of O(events x support). *)
           Array.iter
             (fun (j, r) ->
               if not taint.(j) then
                 if r < 0 || touched.(r) then begin
                   taint.(j) <- true;
                   any_taint := true
                 end
                 else if !any_taint then begin
                   let row = p.Simplex.rows.(r) in
                   let k = ref 0 and len = Array.length row in
                   while (not taint.(j)) && !k < len do
                     let j', _ = Array.unsafe_get row !k in
                     if j' <> j && taint.(j') then taint.(j) <- true;
                     incr k
                   done
                 end)
             tr.tr_events;
           (* Adopt the surviving fixpoint bounds and replay their
              events into this run's log so the next trace stays
              self-justifying. *)
           for j = 0 to tr.tr_ncols - 1 do
             if not taint.(j) then begin
               if tr.tr_lb.(j) > wlb.(j) then wlb.(j) <- tr.tr_lb.(j);
               if tr.tr_ub.(j) < wub.(j) then wub.(j) <- tr.tr_ub.(j)
             end
           done;
           Array.iter
             (fun (j, r) ->
               if not taint.(j) then begin
                 events := (j, r) :: !events;
                 incr nevents
               end)
             tr.tr_events;
           reuse_ctx := Some (touched, tr.tr_nrows, tr.tr_active, taint, !nevents);
           (* Worklist: rewritten rows, new rows, and any row whose
              support lost a template bound (tainted variable).  Rows
              outside this set sit exactly at the template fixpoint and
              can derive nothing new.  Tainted supports are found
              through the adjacency rather than a full row scan, so a
              taint-free re-apply (the common grow step) never walks
              the template rows at all here. *)
           for i = 0 to m - 1 do
             if touched.(i) || i >= tr.tr_nrows then enqueue i
           done;
           for j = 0 to tr.tr_ncols - 1 do
             if taint.(j) then enqueue_var j
           done
       | _ ->
           for i = 0 to m - 1 do
             enqueue i
           done
     end);
    if enabled Propagate then drain ();
    (* Probing on the 0-1 structure: conflict (clique) pairs mined from
       <=-rows over binaries, exactly-one sets from unit Eq rows; a
       binary conflicting with every free member of an exactly-one set
       can never be 1.  Fixings re-enter the propagation worklist; their
       events carry row -1 so a re-apply always re-derives them (their
       justification spans several rows). *)
    if enabled Probe then begin
      let is_binary j =
        integer.(j) && wlb.(j) >= -.islack && wub.(j) <= 1. +. islack
      in
      let rounds = ref 0 in
      let again = ref true in
      while !again && !rounds < 3 do
        incr rounds;
        again := false;
        (* The shared conflict/clique table (also the substrate of the
           clique and odd-cycle cut separators) mined under the current
           working bounds; its slacks derive from the same [tol]. *)
        let tbl =
          Conflicts.build ~tol ~rows:active p ~nrows:m ~integer ~lb:wlb
            ~ub:wub
        in
        (* Exactly-one sets in descending row order (as the inline miner
           visited them): a binary conflicting with every free member of
           a set can never be 1. *)
        List.iter
          (fun (_, row) ->
            (* Free members of the exactly-one set; skip sets already
               decided (a member at 1, or all but one at 0). *)
            let free =
              Array.fold_left
                (fun acc j ->
                  if wub.(j) > 0.5 && wlb.(j) < 0.5 then j :: acc else acc)
                [] row
            in
            match free with
            | [] -> ()
            | pivot :: _ as members ->
                List.iter
                  (fun v ->
                    if
                      is_binary v && wub.(v) > 0.5 && wlb.(v) < 0.5
                      && (not (List.mem v members))
                      && List.for_all
                           (fun u -> u = v || Conflicts.conflict tbl v u)
                           members
                    then begin
                      (* Some free member is 1 in every feasible point,
                         and v conflicts with each of them. *)
                      wub.(v) <- 0.;
                      incr probe_fixed;
                      incr tightenings;
                      events := (v, -1) :: !events;
                      incr nevents;
                      again := true;
                      enqueue_var v
                    end)
                  (Conflicts.neighbors tbl pivot))
          (List.rev (Conflicts.cliques tbl));
        if !again && enabled Propagate then drain ()
      done
    end;
    (* Final redundancy sweep at the fixpoint bounds, so the verdict set
       never depends on worklist order (template re-apply and
       from-scratch runs agree).  On a re-apply, an untouched template
       row whose support bounds sit exactly at the template fixpoint —
       no taint, no tightening this run, and by the [touched_since]
       contract no new column — sees the very inputs the template's own
       sweep saw, so its verdict is adopted instead of recomputed; only
       rows reachable from a moved bound pay for their activities. *)
    if enabled Propagate then begin
      let adopt =
        match !reuse_ctx with
        | Some (touched, tr_nrows, tmpl_active, changed, replay_base) ->
            (* [changed] starts as the taint array; fold in every bound
               moved after the adopt replay (drain tightenings and probe
               fixings all append events, so the log head is exactly the
               delta). *)
            let rec mark l k =
              if k > 0 then
                match l with
                | (j, _) :: tl ->
                    changed.(j) <- true;
                    mark tl (k - 1)
                | [] -> ()
            in
            mark !events (!nevents - replay_base);
            let full = Array.make m false in
            for i = 0 to m - 1 do
              if i >= tr_nrows || touched.(i) then full.(i) <- true
            done;
            for j = 0 to n - 1 do
              if changed.(j) then begin
                let adjp, adj = Lazy.force adjacency in
                for k = adjp.(j) to adjp.(j + 1) - 1 do
                  full.(adj.(k)) <- true
                done
              end
            done;
            Some (full, tmpl_active)
        | None -> None
      in
      for i = 0 to m - 1 do
        if active.(i) then begin
          match adopt with
          | Some (full, tmpl_active) when not full.(i) ->
              if not tmpl_active.(i) then begin
                active.(i) <- false;
                incr redundant_rows
              end
          | _ -> (
              let row = p.Simplex.rows.(i) and rhs = p.Simplex.rhs.(i) in
              let amin, amax = activity row wlb wub in
              match p.Simplex.senses.(i) with
              | Model.Le ->
                  if amin > rhs +. feas then
                    raise (Infeasible (Printf.sprintf "row %d infeasible" i));
                  if amax <= rhs +. tol then begin
                    active.(i) <- false;
                    incr redundant_rows
                  end
              | Model.Ge ->
                  if amax < rhs -. feas then
                    raise (Infeasible (Printf.sprintf "row %d infeasible" i));
                  if amin >= rhs -. tol then begin
                    active.(i) <- false;
                    incr redundant_rows
                  end
              | Model.Eq ->
                  if amin > rhs +. feas || amax < rhs -. feas then
                    raise (Infeasible (Printf.sprintf "row %d infeasible" i));
                  if amin >= rhs -. tol && amax <= rhs +. tol then begin
                    active.(i) <- false;
                    incr redundant_rows
                  end)
        end
      done
    end;
    let tr =
      {
        tr_ncols = n;
        tr_nrows = m;
        tr_lb0 = Array.copy lb;
        tr_ub0 = Array.copy ub;
        tr_lb = Array.copy wlb;
        tr_ub = Array.copy wub;
        tr_events = Array.of_list (List.rev !events);
        tr_active = Array.copy active;
      }
    in
    (* ---------------- column passes ---------------- *)
    (* 0 = kept, 1 = fixed, 2 = empty-fixed, 3 = substituted *)
    let col_mark = Array.make n 0 in
    let fixes = ref [] in
    let fix_count = ref 0 and empty_count = ref 0 in
    if enabled Fix_columns then
      for j = 0 to n - 1 do
        if integer.(j) then begin
          if wub.(j) -. wlb.(j) < 0.5 then begin
            col_mark.(j) <- 1;
            incr fix_count;
            fixes :=
              {
                Postsolve.fx_var = j;
                fx_value = Float.round ((wlb.(j) +. wub.(j)) /. 2.);
                fx_forced = true;
              }
              :: !fixes
          end
        end
        else if wub.(j) -. wlb.(j) <= tol && Float.is_finite wlb.(j) then begin
          col_mark.(j) <- 1;
          incr fix_count;
          fixes :=
            {
              Postsolve.fx_var = j;
              fx_value = (wlb.(j) +. wub.(j)) /. 2.;
              fx_forced = true;
            }
            :: !fixes
        end
      done;
    (* Occurrences of each column in still-active rows, counting only
       columns that are not yet eliminated. *)
    let occ = Array.make n 0 in
    let occ_row = Array.make n (-1) in
    for i = 0 to m - 1 do
      if active.(i) then
        Array.iter
          (fun (j, _) ->
            occ.(j) <- occ.(j) + 1;
            occ_row.(j) <- i)
          p.Simplex.rows.(i)
    done;
    if enabled Empty_columns then
      for j = 0 to n - 1 do
        if col_mark.(j) = 0 && occ.(j) = 0 then begin
          (* Unconstrained column: park it at its objective-preferred
             bound.  No finite preferred bound means the LP is unbounded
             in this column — leave it for the simplex to report. *)
          let c = p.Simplex.obj.(j) in
          let v =
            if c > tol then (if Float.is_finite wlb.(j) then Some wlb.(j) else None)
            else if c < -.tol then
              if Float.is_finite wub.(j) then Some wub.(j) else None
            else if Float.is_finite wlb.(j) then Some wlb.(j)
            else if Float.is_finite wub.(j) then Some wub.(j)
            else Some 0.
          in
          match v with
          | Some v ->
              col_mark.(j) <- 2;
              incr empty_count;
              fixes := { Postsolve.fx_var = j; fx_value = v; fx_forced = false } :: !fixes
          | None -> ()
        end
      done;
    (* Free column singletons in equality rows: a continuous variable
       appearing in exactly one active row, an equality whose other
       terms already imply its bounds, is solved out of the problem; the
       row goes with it and the objective picks up the substitution. *)
    let substs = ref [] in
    let subst_count = ref 0 in
    let row_consumed = Array.make m false in
    if enabled Substitute then
      for j = 0 to n - 1 do
        if
          col_mark.(j) = 0
          && (not integer.(j))
          && occ.(j) = 1
          && (match essential with Some e -> not e.(j) | None -> true)
        then begin
          let i = occ_row.(j) in
          if active.(i) && (not row_consumed.(i)) && p.Simplex.senses.(i) = Model.Eq
          then begin
            let row = p.Simplex.rows.(i) in
            let aj = ref 0. in
            Array.iter (fun (k, a) -> if k = j then aj := a) row;
            if Float.abs !aj >= 1e-6 then begin
              (* Implied-free test: the range of (rhs - rest)/a_j under
                 the other terms' bounds must sit inside x_j's box. *)
              let rmin = ref 0. and rmax = ref 0. in
              Array.iter
                (fun (k, a) ->
                  if k <> j then begin
                    if a > 0. then begin
                      rmin := !rmin +. (a *. wlb.(k));
                      rmax := !rmax +. (a *. wub.(k))
                    end
                    else begin
                      rmin := !rmin +. (a *. wub.(k));
                      rmax := !rmax +. (a *. wlb.(k))
                    end
                  end)
                row;
              if Float.is_finite !rmin && Float.is_finite !rmax then begin
                let rhs = p.Simplex.rhs.(i) in
                let c1 = (rhs -. !rmin) /. !aj and c2 = (rhs -. !rmax) /. !aj in
                let lo = Float.min c1 c2 and hi = Float.max c1 c2 in
                if lo >= wlb.(j) -. feas && hi <= wub.(j) +. feas then begin
                  col_mark.(j) <- 3;
                  row_consumed.(i) <- true;
                  active.(i) <- false;
                  incr subst_count;
                  substs :=
                    {
                      Postsolve.sb_var = j;
                      sb_coef = !aj;
                      sb_rhs = rhs;
                      sb_terms = Array.of_seq (Seq.filter (fun (k, _) -> k <> j)
                                    (Array.to_seq row));
                    }
                    :: !substs
                end
              end
            end
          end
        end
      done;
    let substs = Array.of_list (List.rev !substs) in
    let fixes = Array.of_list !fixes in
    (* ---------------- assembly ---------------- *)
    let col_of_red =
      Array.of_list
        (List.filter (fun j -> col_mark.(j) = 0) (List.init n Fun.id))
    in
    let n_red = Array.length col_of_red in
    let red_of_col = Array.make n (-1) in
    Array.iteri (fun red j -> red_of_col.(j) <- red) col_of_red;
    (* Fixed values by original column, for rhs/objective folding. *)
    let fixed_val = Array.make n nan in
    Array.iter (fun f -> fixed_val.(f.Postsolve.fx_var) <- f.Postsolve.fx_value) fixes;
    let empty_row_drops = ref 0 in
    let assembled = ref [] in
    (* (orig row id, terms over reduced ids, sense, rhs) in row order *)
    for i = 0 to m - 1 do
      if active.(i) then begin
        let terms = ref [] and shift = ref 0. in
        Array.iter
          (fun (j, a) ->
            match col_mark.(j) with
            | 0 -> terms := (red_of_col.(j), a) :: !terms
            | 1 | 2 -> shift := !shift +. (a *. fixed_val.(j))
            | _ ->
                (* Substituted columns only ever live in their consumed
                   row, which is inactive here. *)
                assert false)
          p.Simplex.rows.(i);
        let rhs = p.Simplex.rhs.(i) -. !shift in
        match !terms with
        | [] ->
            (* All variables of the row were eliminated: it must hold as
               a ground fact, then it can be dropped. *)
            let ok =
              match p.Simplex.senses.(i) with
              | Model.Le -> 0. <= rhs +. feas
              | Model.Ge -> 0. >= rhs -. feas
              | Model.Eq -> Float.abs rhs <= feas
            in
            if not ok then
              raise (Infeasible (Printf.sprintf "row %d violated by fixings" i));
            incr empty_row_drops
        | ts ->
            let terms = Array.of_list (List.rev ts) in
            Array.sort (fun (a, _) (b, _) -> compare a b) terms;
            assembled := (i, terms, p.Simplex.senses.(i), rhs) :: !assembled
      end
    done;
    let assembled = Array.of_list (List.rev !assembled) in
    (* Parallel / duplicate / dominated-twin rows: rows with identical
       normalized coefficient vectors collapse to the tightest rhs.
       Normalization flips Ge to Le and scales by the leading
       coefficient's magnitude, so exact positive multiples collide. *)
    let parallel_dropped = ref 0 in
    let keep_row = Array.make (Array.length assembled) true in
    if enabled Parallel_rows && Array.length assembled > 1 then begin
      (* Bucket by a full-support integer digest of the normalized row
         computed without materializing key arrays (polymorphic hashing
         of float arrays only samples a prefix and the allocations
         dominate); rows are compared exactly, term by term, only on a
         digest collision, so grouping is identical to structural
         equality on the normalized keys. *)
      let norm (_, terms, sense, _) =
        let s =
          match sense with
          | Model.Le -> 1.0
          | Model.Ge -> -1.0
          | Model.Eq ->
              (* Sign-normalize Eq rows by their leading term. *)
              if snd terms.(0) < 0. then -1.0 else 1.0
        in
        (s, Float.abs (snd terms.(0)))
      in
      let same_key idx1 idx2 =
        let (_, t1, _, _) = assembled.(idx1) and (_, t2, _, _) = assembled.(idx2) in
        Array.length t1 = Array.length t2
        &&
        let s1, l1 = norm assembled.(idx1) and s2, l2 = norm assembled.(idx2) in
        let ok = ref true and k = ref 0 and len = Array.length t1 in
        while !ok && !k < len do
          let j1, a1 = Array.unsafe_get t1 !k and j2, a2 = Array.unsafe_get t2 !k in
          if j1 <> j2 || s1 *. a1 /. l1 <> s2 *. a2 /. l2 then ok := false;
          incr k
        done;
        !ok
      in
      let tbl : (int, (int * (int * bool * float) list ref) list ref) Hashtbl.t =
        Hashtbl.create (Array.length assembled)
      in
      let groups = ref [] in
      Array.iteri
        (fun idx row ->
          let _, terms, sense, rhs = row in
          let s, lead = norm row in
          if lead > 0. then begin
            let digest = ref (Array.length terms) in
            Array.iter
              (fun (j, a) ->
                digest := (!digest * 31) + j;
                digest :=
                  (!digest * 131)
                  lxor (Int64.to_int (Int64.bits_of_float (s *. a /. lead)) land max_int))
              terms;
            let nrhs = s *. rhs /. lead in
            let is_eq = sense = Model.Eq in
            let bucket =
              match Hashtbl.find_opt tbl !digest with
              | Some b -> b
              | None ->
                  let b = ref [] in
                  Hashtbl.add tbl !digest b;
                  b
            in
            match List.find_opt (fun (repr, _) -> same_key repr idx) !bucket with
            | Some (_, group) -> group := (idx, is_eq, nrhs) :: !group
            | None ->
                let group = ref [ (idx, is_eq, nrhs) ] in
                bucket := (idx, group) :: !bucket;
                groups := group :: !groups
          end)
        assembled;
      List.iter
        (fun group ->
          match !group with
          | [] | [ _ ] -> ()
          | members ->
              (* Prefer an equality (it dominates every parallel
                 inequality consistent with it); otherwise the tightest
                 <=-form rhs wins. *)
              let eqs = List.filter (fun (_, is_eq, _) -> is_eq) members in
              let keep_idx, keep_rhs =
                match eqs with
                | (idx, _, r) :: rest ->
                    List.iter
                      (fun (_, _, r') ->
                        if Float.abs (r' -. r) > feas then
                          raise (Infeasible "parallel equality rows disagree"))
                      rest;
                    (idx, r)
                | [] ->
                    List.fold_left
                      (fun (bi, br) (idx, _, r) ->
                        if r < br then (idx, r) else (bi, br))
                      (-1, infinity) members
              in
              List.iter
                (fun (idx, is_eq, r) ->
                  if idx <> keep_idx then
                    if is_eq then keep_row.(idx) <- false
                    else if r >= keep_rhs -. feas then begin
                      keep_row.(idx) <- false;
                      incr parallel_dropped
                    end
                    else if eqs <> [] then
                      (* A strictly tighter inequality than the equality
                         allows: infeasible. *)
                      raise (Infeasible "parallel rows conflict with equality")
                    else assert false)
                members;
              (* Count equality-duplicate drops too. *)
              parallel_dropped :=
                !parallel_dropped
                + List.length (List.filter (fun (i, e, _) -> e && i <> keep_idx) eqs))
        !groups
    end;
    let kept = ref [] in
    Array.iteri (fun idx row -> if keep_row.(idx) then kept := row :: !kept) assembled;
    let kept = Array.of_list (List.rev !kept) in
    let m_red = Array.length kept in
    let row_of_red = Array.map (fun (i, _, _, _) -> i) kept in
    let red_rows = Array.map (fun (_, t, _, _) -> t) kept in
    let red_senses = Array.map (fun (_, _, s, _) -> s) kept in
    let red_rhs = Array.map (fun (_, _, _, r) -> r) kept in
    (* Objective over kept columns, with eliminated columns folded into
       the constant and substitutions rewriting their row into it. *)
    let red_obj = Array.make n_red 0. in
    Array.iteri (fun red j -> red_obj.(red) <- p.Simplex.obj.(j)) col_of_red;
    let obj_const = ref p.Simplex.obj_const in
    Array.iter
      (fun (f : Postsolve.fix) ->
        obj_const := !obj_const +. (p.Simplex.obj.(f.fx_var) *. f.fx_value))
      fixes;
    Array.iter
      (fun (s : Postsolve.subst) ->
        let cj = p.Simplex.obj.(s.sb_var) in
        if cj <> 0. then begin
          let scale = cj /. s.sb_coef in
          obj_const := !obj_const +. (scale *. s.sb_rhs);
          Array.iter
            (fun (k, a) ->
              match col_mark.(k) with
              | 0 -> red_obj.(red_of_col.(k)) <- red_obj.(red_of_col.(k)) -. (scale *. a)
              | 1 | 2 -> obj_const := !obj_const -. (scale *. a *. fixed_val.(k))
              | _ -> assert false)
            s.sb_terms
        end)
      substs;
    let red_lb = Array.map (fun j -> wlb.(j)) col_of_red in
    let red_ub = Array.map (fun j -> wub.(j)) col_of_red in
    let red_integer = Array.map (fun j -> integer.(j)) col_of_red in
    let red_p =
      {
        Simplex.ncols = n_red;
        rows = red_rows;
        senses = red_senses;
        rhs = red_rhs;
        obj = red_obj;
        obj_const = !obj_const;
      }
    in
    let red_p, strengthened =
      if enabled Strengthen then
        strengthen ~tol red_p ~integer:red_integer ~lb:red_lb ~ub:red_ub
      else (red_p, 0)
    in
    let post =
      Postsolve.make ~ncols:n ~nrows:m ~col_of_red ~row_of_red ~fixes ~substs
    in
    ignore m_red;
    let stats =
      [
        {
          ps_pass = Propagate;
          ps_rows_removed = !redundant_rows;
          ps_cols_removed = 0;
          ps_changes = !tightenings;
        };
        {
          ps_pass = Probe;
          ps_rows_removed = 0;
          ps_cols_removed = 0;
          ps_changes = !probe_fixed;
        };
        {
          ps_pass = Parallel_rows;
          ps_rows_removed = !parallel_dropped;
          ps_cols_removed = 0;
          ps_changes = 0;
        };
        {
          ps_pass = Fix_columns;
          ps_rows_removed = !empty_row_drops;
          ps_cols_removed = !fix_count;
          ps_changes = 0;
        };
        {
          ps_pass = Empty_columns;
          ps_rows_removed = 0;
          ps_cols_removed = !empty_count;
          ps_changes = 0;
        };
        {
          ps_pass = Substitute;
          ps_rows_removed = !subst_count;
          ps_cols_removed = !subst_count;
          ps_changes = 0;
        };
        {
          ps_pass = Strengthen;
          ps_rows_removed = 0;
          ps_cols_removed = 0;
          ps_changes = strengthened;
        };
      ]
    in
    Reduced
      {
        red_problem = red_p;
        red_integer;
        red_lb;
        red_ub;
        red_post = post;
        red_trace = tr;
        red_stats = stats;
        red_reapplied = !reapplied;
      }
  with Infeasible why -> Reduce_infeasible why
