(** Presolve: a composable reduction stack over {!Simplex.problem}s.

    Two entry points share the same propagation core:

    - {!run} is the light per-node engine used inside branch & bound —
      activity-based bound propagation plus row-redundancy detection,
      nothing that would need an index mapping.
    - {!reduce} is the full root/template reduction stack: worklist
      bound propagation, probing over the 0-1 routing structure,
      parallel-row collapsing, fixed/empty column elimination, free
      column-singleton substitution, and coefficient strengthening.  It
      returns a genuinely smaller {!Simplex.problem} together with a
      {!Postsolve.t} record that maps reduced solutions (and cuts) back
      to the original index space, plus a re-usable {!trace}.

    Every tolerance in this module derives from the single [tol]
    parameter: bound improvements must exceed [tol]; infeasibility is
    declared beyond [100 * tol]; integer rounding and unit-width tests
    use [1000 * tol].  At the default [tol = 1e-9] these equal the
    historical hard-coded slacks (1e-7 feasibility, 1e-6 rounding). *)

type outcome =
  | Feasible of {
      lb : float array;  (** Tightened lower bounds. *)
      ub : float array;  (** Tightened upper bounds. *)
      active : bool array;  (** Per-row: still required after presolve. *)
      rounds : int;  (** Number of propagation passes performed. *)
    }
  | Proven_infeasible of string
      (** Human-readable reason (first violated row or empty domain). *)

val run :
  ?max_rounds:int ->
  ?tol:float ->
  Simplex.problem ->
  integer:bool array ->
  lb:float array ->
  ub:float array ->
  outcome
(** [run p ~integer ~lb ~ub] propagates to fixpoint (at most [max_rounds]
    passes, default 16).  Input arrays are not mutated.  Rows are never
    rewritten, only deactivated, so indices stay stable — this is the
    engine {!Branch_bound} runs per node. *)

val strengthen :
  ?tol:float ->
  Simplex.problem ->
  integer:bool array ->
  lb:float array ->
  ub:float array ->
  Simplex.problem * int
(** Coefficient strengthening on inequality rows: for an integer
    variable on a finite box of width at least 1 whose coefficient
    exceeds what the row's max activity can support
    ([d = rhs - amax + |a| > 0]), pull the coefficient toward zero and
    adjust the rhs so every integer point in the box is preserved while
    the LP relaxation tightens.  [>=] rows are handled through negation;
    [=] rows are skipped.  Returns the (possibly shared) problem and the
    number of coefficients changed; [p] itself is never mutated.  Only
    sound under bounds valid for the whole tree — call it once at the
    root. *)

val reduced_problem : Simplex.problem -> bool array -> Simplex.problem * int array
(** [reduced_problem p active] drops inactive rows.  Also returns the
    row index map: entry [k] of the second component is the original
    index of reduced row [k]. *)

(** {1 Reduction stack} *)

type pass =
  | Propagate  (** Worklist bound propagation + row redundancy. *)
  | Probe
      (** Clique/implication mining over 0-1 rows; fixes binaries that
          conflict with every member of an exactly-one set. *)
  | Parallel_rows  (** Collapse duplicate / dominated parallel rows. *)
  | Fix_columns  (** Eliminate columns whose domain shrank to a point. *)
  | Empty_columns
      (** Eliminate columns absent from every surviving row, parked at
          their objective-preferred bound. *)
  | Substitute
      (** Solve continuous column singletons out of equality rows
          (implied-free check; the row is consumed). *)
  | Strengthen  (** Coefficient strengthening on the reduced problem. *)

val all_passes : pass list
(** Every pass, in execution order — the default for {!reduce}. *)

val pass_name : pass -> string

val pass_of_name : string -> pass option

val passes_of_string : string -> (pass list, string) result
(** Parse a comma-separated pass list, e.g. ["propagate,fix,strengthen"]. *)

type pass_stats = {
  ps_pass : pass;
  ps_rows_removed : int;
  ps_cols_removed : int;
  ps_changes : int;
      (** Pass-specific change count: bound tightenings for
          [Propagate], probing fixings for [Probe], coefficients
          changed for [Strengthen]. *)
}

type trace = {
  tr_ncols : int;
  tr_nrows : int;
  tr_lb0 : float array;  (** Variable bounds the run started from. *)
  tr_ub0 : float array;
  tr_lb : float array;  (** Propagation-fixpoint bounds. *)
  tr_ub : float array;
  tr_events : (int * int) array;
      (** Chronological tightening log [(var, justifying row)].
          Probing fixings carry row [-1]: their justification spans
          several rows, so a re-apply always re-derives them. *)
  tr_active : bool array;
      (** Per-row activity verdict at the propagation-phase end (false
          = proven redundant).  A re-apply adopts the verdict for
          untouched rows whose support bounds still sit exactly at the
          template fixpoint instead of recomputing their activities. *)
}
(** A replayable record of one {!reduce} propagation.  Passing it back
    via [?reuse] lets the next call adopt every tightening whose
    derivation chain avoids the changed rows, instead of propagating
    from scratch — the template-presolve path of the K* sweep. *)

type reduction = {
  red_problem : Simplex.problem;
      (** The reduced problem.  Its [obj_const] already folds the
          objective contribution of every eliminated column, so reduced
          objective values equal original ones exactly. *)
  red_integer : bool array;
  red_lb : float array;
  red_ub : float array;
  red_post : Postsolve.t;
  red_trace : trace;
  red_stats : pass_stats list;  (** One entry per pass in {!all_passes}. *)
  red_reapplied : bool;
      (** [true] when a [?reuse] trace seeded this run. *)
}

type reduce_outcome = Reduced of reduction | Reduce_infeasible of string

val reduce :
  ?max_rounds:int ->
  ?tol:float ->
  ?passes:pass list ->
  ?essential:bool array ->
  ?reuse:trace * int list ->
  Simplex.problem ->
  integer:bool array ->
  lb:float array ->
  ub:float array ->
  reduce_outcome
(** [reduce p ~integer ~lb ~ub] runs the enabled [passes] (default
    {!all_passes}) to fixpoint and assembles the reduced problem plus
    its postsolve record.  Input arrays are not mutated.

    [?essential] marks original columns that must survive in the
    reduced problem (e.g. variables referenced by warm-start cuts);
    they are never substituted out.

    [?reuse] is [(trace, touched_rows)] from a previous call on a
    template of this problem: [touched_rows] are the indices of rows
    rewritten in place since the trace was recorded
    ({!Model.touched_since}); rows past [trace.tr_nrows] are treated as
    new automatically.  Tightenings whose derivation avoids the delta
    are adopted wholesale; only the delta and what it taints is
    re-propagated.  The final row-redundancy sweep always runs over all
    rows at the fixpoint bounds, so re-applied and from-scratch runs
    reach identical verdicts. *)
