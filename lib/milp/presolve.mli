(** Root-node presolve: activity-based bound propagation.

    Works directly on a {!Simplex.problem} plus working bounds.  Repeated
    passes compute each row's minimum/maximum activity from the current
    bounds and use them to (i) detect infeasibility, (ii) drop redundant
    rows, and (iii) tighten variable bounds (rounded for integer
    variables).  Rows are never rewritten, only deactivated, so variable
    indices are stable and no post-solve mapping is needed. *)

type outcome =
  | Feasible of {
      lb : float array;  (** Tightened lower bounds. *)
      ub : float array;  (** Tightened upper bounds. *)
      active : bool array;  (** Per-row: still required after presolve. *)
      rounds : int;  (** Number of propagation passes performed. *)
    }
  | Proven_infeasible of string
      (** Human-readable reason (first violated row or empty domain). *)

val run :
  ?max_rounds:int ->
  ?tol:float ->
  Simplex.problem ->
  integer:bool array ->
  lb:float array ->
  ub:float array ->
  outcome
(** [run p ~integer ~lb ~ub] propagates to fixpoint (at most [max_rounds]
    passes, default 16).  Input arrays are not mutated. *)

val strengthen :
  ?tol:float ->
  Simplex.problem ->
  integer:bool array ->
  lb:float array ->
  ub:float array ->
  Simplex.problem * int
(** Coefficient strengthening on inequality rows: for an integer
    variable on a unit box whose coefficient exceeds what the row's max
    activity can support ([d = rhs - amax + |a| > 0]), pull the
    coefficient toward zero and adjust the rhs so every integer point is
    preserved while the LP relaxation tightens.  Returns the (possibly
    shared) problem and the number of coefficients changed; [p] itself
    is never mutated.  Only sound under bounds valid for the whole tree
    — call it once at the root. *)

val reduced_problem : Simplex.problem -> bool array -> Simplex.problem
(** [reduced_problem p active] drops inactive rows (used once at the root
    before branch & bound). *)
