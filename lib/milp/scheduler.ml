(* Many-solves-many-workers generalization of [Node_pool]: the pool of
   worker domains is owned here, for the life of the process, and every
   registered solve brings its own heaps, in-flight lists and pending
   counter.  The per-solve locking discipline is exactly the PR4 one;
   what is new is the claim step, which first picks a *solve* (weighted
   fair by tasks served) and only then a heap within it. *)

type solve = {
  weight : float;
  heaps : (int -> unit) Pqueue.t array;
  hlocks : Mutex.t array;
  (* Advisory minimum key per heap ([infinity] = believed empty); a
     victim-selection hint only, the heap under its lock is
     authoritative. *)
  mins : float Atomic.t array;
  (* Keys popped from heap [i] whose task has not retired yet, guarded
     by [hlocks.(i)], so [best_bound] counts nodes mid-LP on a worker. *)
  inflight : float list ref array;
  (* Incremented before a node is visible, decremented after its task
     returned (children already pushed): 0 proves this solve drained. *)
  pending : int Atomic.t;
  (* Tasks of this solve claimed but not yet retired.  Incremented
     *before* the claim re-checks [stop_flag], so [stopped && running=0]
     proves no task is executing and none can start. *)
  running : int Atomic.t;
  (* Tasks retired, the numerator of the fair-share ratio. *)
  served : int Atomic.t;
  stop_flag : bool Atomic.t;
  (* First exception a task of this solve raised; re-raised by await. *)
  err : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  nworkers : int;
  (* Guards [solves]/[down] and doubles as the sleep/wake channel:
     every broadcast happens while holding it, so a worker or awaiter
     that checked its wait condition under the lock cannot miss the
     wakeup that invalidates it. *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable solves : solve list;
  mutable down : bool;
  shutdown_flag : bool Atomic.t;
  mutable domains : unit Domain.t list;
}

type handle = { sched : t; sv : solve }

let nworkers t = t.nworkers

let broadcast t =
  Mutex.lock t.lock;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

(* Pop the best node of [sv]'s heap [i], recording it in-flight under
   the same lock acquisition so there is no instant where it is
   invisible to [best_bound]. *)
let try_heap sv i =
  Mutex.lock sv.hlocks.(i);
  match Pqueue.pop sv.heaps.(i) with
  | Some (k, task) ->
      sv.inflight.(i) := k :: !(sv.inflight.(i));
      Atomic.set sv.mins.(i)
        (match Pqueue.peek_key sv.heaps.(i) with Some k' -> k' | None -> infinity);
      Mutex.unlock sv.hlocks.(i);
      Some (i, k, task)
  | None ->
      Atomic.set sv.mins.(i) infinity;
      Mutex.unlock sv.hlocks.(i);
      None

(* Claim one node of [sv]: own heap first, then steal from the heap
   advertising the best minimum.  [running] is incremented *before* the
   stop re-check so the stop/await handshake is race-free: once an
   awaiter has observed [stopped && running = 0], any claim that started
   after must itself observe the stop flag and back out. *)
let claim_solve sv slot =
  Atomic.incr sv.running;
  let bail () =
    Atomic.decr sv.running;
    None
  in
  if Atomic.get sv.stop_flag || Atomic.get sv.pending = 0 then bail ()
  else
    match try_heap sv slot with
    | Some _ as r -> r
    | None ->
        let n = Array.length sv.heaps in
        let victim = ref (-1) and best = ref infinity in
        for i = 0 to n - 1 do
          if i <> slot then begin
            let k = Atomic.get sv.mins.(i) in
            if k < !best then begin
              best := k;
              victim := i
            end
          end
        done;
        if !victim >= 0 then
          match try_heap sv !victim with Some _ as r -> r | None -> bail ()
        else bail ()

let fair_ratio sv = float_of_int (Atomic.get sv.served) /. sv.weight

(* Pick work across solves: least-served-per-weight first among the
   active ones.  The registry snapshot is taken under the lock; the
   per-solve claim runs outside it. *)
let claim t slot =
  Mutex.lock t.lock;
  let solves = t.solves in
  Mutex.unlock t.lock;
  let cands =
    List.filter
      (fun sv -> (not (Atomic.get sv.stop_flag)) && Atomic.get sv.pending > 0)
      solves
  in
  let cands =
    List.stable_sort (fun a b -> Float.compare (fair_ratio a) (fair_ratio b)) cands
  in
  let rec go = function
    | [] -> None
    | sv :: rest -> (
        match claim_solve sv slot with
        | Some (i, k, task) -> Some (sv, i, k, task)
        | None -> go rest)
  in
  go cands

(* Remove one occurrence of [k] (entries are a multiset of bounds; any
   float-equal entry is the same node for accounting purposes). *)
let rec remove_one k = function
  | [] -> []
  | x :: rest -> if x = k then rest else x :: remove_one k rest

let retire t sv i k =
  Mutex.lock sv.hlocks.(i);
  sv.inflight.(i) := remove_one k !(sv.inflight.(i));
  Mutex.unlock sv.hlocks.(i);
  Atomic.incr sv.served;
  let pending_left = Atomic.fetch_and_add sv.pending (-1) - 1 in
  let running_left = Atomic.fetch_and_add sv.running (-1) - 1 in
  (* Drained, or stopped with the last running task gone: wake both
     idle workers and the solve's awaiter. *)
  if pending_left = 0 || (running_left = 0 && Atomic.get sv.stop_flag) then broadcast t

let has_visible sv =
  (not (Atomic.get sv.stop_flag))
  && Atomic.get sv.pending > 0
  && Array.exists (fun m -> Atomic.get m < infinity) sv.mins

let rec run_worker t slot =
  if Atomic.get t.shutdown_flag then ()
  else begin
    (match claim t slot with
    | Some (sv, i, k, task) ->
        (try task slot
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set sv.err None (Some (e, bt)));
           Atomic.set sv.stop_flag true);
        retire t sv i k
    | None ->
        (* Nothing visible in any solve; in-flight tasks may still push
           children, so sleep until a push / retirement / submit / stop.
           The re-check happens under the same lock every broadcaster
           holds, so the wakeup cannot be lost.  A stale advisory min
           (thief race) keeps [has_visible] true and we retry the claim
           instead of sleeping; the losing [try_heap] corrects it. *)
        Mutex.lock t.lock;
        let idle =
          (not (Atomic.get t.shutdown_flag)) && not (List.exists has_visible t.solves)
        in
        if idle then Condition.wait t.cond t.lock;
        Mutex.unlock t.lock);
    run_worker t slot
  end

let create ~nworkers =
  if nworkers < 1 then invalid_arg "Scheduler.create: nworkers must be >= 1";
  let t =
    {
      nworkers;
      lock = Mutex.create ();
      cond = Condition.create ();
      solves = [];
      down = false;
      shutdown_flag = Atomic.make false;
      domains = [];
    }
  in
  t.domains <- List.init nworkers (fun slot -> Domain.spawn (fun () -> run_worker t slot));
  t

let submit ?(weight = 1.) t =
  if not (weight > 0.) then invalid_arg "Scheduler.submit: weight must be positive";
  let sv =
    {
      weight;
      heaps = Array.init t.nworkers (fun _ -> Pqueue.create ());
      hlocks = Array.init t.nworkers (fun _ -> Mutex.create ());
      mins = Array.init t.nworkers (fun _ -> Atomic.make infinity);
      inflight = Array.init t.nworkers (fun _ -> ref []);
      pending = Atomic.make 0;
      running = Atomic.make 0;
      served = Atomic.make 0;
      stop_flag = Atomic.make false;
      err = Atomic.make None;
    }
  in
  Mutex.lock t.lock;
  if t.down then begin
    Mutex.unlock t.lock;
    invalid_arg "Scheduler.submit: scheduler was shut down"
  end;
  t.solves <- sv :: t.solves;
  Mutex.unlock t.lock;
  { sched = t; sv }

let push h ~worker key task =
  let sv = h.sv in
  let i = worker mod h.sched.nworkers in
  (* Count the node before it becomes poppable: [pending] may over-
     approximate live work but can never undershoot it, so pending = 0
     really means drained. *)
  Atomic.incr sv.pending;
  Mutex.lock sv.hlocks.(i);
  Pqueue.push sv.heaps.(i) key task;
  if key < Atomic.get sv.mins.(i) then Atomic.set sv.mins.(i) key;
  Mutex.unlock sv.hlocks.(i);
  broadcast h.sched

let best_bound h =
  let sv = h.sv in
  let best = ref infinity in
  for i = 0 to Array.length sv.heaps - 1 do
    Mutex.lock sv.hlocks.(i);
    (match Pqueue.peek_key sv.heaps.(i) with
    | Some k -> if k < !best then best := k
    | None -> ());
    List.iter (fun k -> if k < !best then best := k) !(sv.inflight.(i));
    Mutex.unlock sv.hlocks.(i)
  done;
  !best

let queued h =
  let sv = h.sv in
  let n = ref 0 in
  for i = 0 to Array.length sv.heaps - 1 do
    Mutex.lock sv.hlocks.(i);
    n := !n + Pqueue.length sv.heaps.(i);
    Mutex.unlock sv.hlocks.(i)
  done;
  !n

let stop h =
  Atomic.set h.sv.stop_flag true;
  broadcast h.sched

let stopped h = Atomic.get h.sv.stop_flag

let drained h = Atomic.get h.sv.pending = 0

let finished sv =
  Atomic.get sv.pending = 0 || (Atomic.get sv.stop_flag && Atomic.get sv.running = 0)

let await h =
  let t = h.sched and sv = h.sv in
  Mutex.lock t.lock;
  while not (finished sv) do
    Condition.wait t.cond t.lock
  done;
  t.solves <- List.filter (fun s -> s != sv) t.solves;
  Mutex.unlock t.lock;
  match Atomic.get sv.err with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let shutdown t =
  Mutex.lock t.lock;
  if t.down then Mutex.unlock t.lock
  else begin
    t.down <- true;
    Atomic.set t.shutdown_flag true;
    List.iter (fun sv -> Atomic.set sv.stop_flag true) t.solves;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    List.iter Domain.join t.domains;
    t.domains <- []
  end
