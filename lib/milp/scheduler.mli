(** Cross-solve domain scheduler: many solves, many workers.

    {!Node_pool} (PR4) schedules the nodes of {e one} branch & bound
    search over [nworkers] domains it does not own — the search spawns
    the domains, runs them to exhaustion, and joins them.  A persistent
    process serving many concurrent solves cannot afford that shape:
    spawning a domain set per request thrashes the OS scheduler, and a
    solve that finishes early leaves its domains idle while another
    solve starves.  This module inverts the ownership: the scheduler
    {e owns} a fixed pool of worker domains for the life of the process
    and multiplexes them across every concurrently registered solve.

    Structure per registered solve (a {!handle}), generalizing the
    node-pool invariants one level up:

    - One min-heap per worker slot, each under its own mutex — a worker
      pushes children onto its own heap and steals within the solve by
      advisory minimum key, exactly the PR4 discipline, so per-solve
      expansion order stays close to global best-first.
    - A per-solve [pending] counter incremented {e before} a node is
      visible and decremented {e after} its children are pushed, so
      [pending = 0] is an exhaustion proof for {e that} solve alone,
      unaffected by its neighbours.
    - Per-solve in-flight key lists under the heap locks, so
      {!best_bound} never misses a node that is mid-LP on some worker
      and gap-based termination stays sound per solve.

    Across solves, victim selection is weighted-fair: a claiming worker
    orders the active solves by [tasks served / weight] and takes work
    from the least-served solve that has any visible node (own heap
    first, then the best advertised minimum).  A solve with weight 2
    therefore receives about twice the worker attention of a weight-1
    neighbour under contention, and an idle pool devotes every domain
    to whichever solve has work.

    Nodes are payload-free closures: the submitting search captures its
    node record in a [worker:int -> unit] thunk, and the worker slot
    index it receives at run time selects per-slot scratch state (the
    simplex workspace arena).  Retirement is automatic — the scheduler
    decrements [pending] when the closure returns (normally or not), so
    the push-before-visible / retire-after-children accounting cannot
    be broken by a forgotten [task_done].

    Workers sleep on one condition variable when no registered solve
    has visible work; every push, retirement-to-drain, submit, stop and
    shutdown broadcasts while holding the same lock, so wakeups cannot
    be lost.  A closure that raises stops its own solve (not the pool)
    and {!await} re-raises in the submitting thread. *)

type t
(** A domain pool plus the set of currently registered solves. *)

type handle
(** One registered solve. *)

val create : nworkers:int -> t
(** Spawn [nworkers >= 1] worker domains, idle until a solve is
    submitted.  @raise Invalid_argument on [nworkers < 1]. *)

val nworkers : t -> int

val submit : ?weight:float -> t -> handle
(** Register a solve with the given fair-share weight (default [1.],
    must be positive).  The handle starts empty and drained; push its
    root node(s) to start work.
    @raise Invalid_argument if the scheduler was shut down or the
    weight is not positive. *)

val push : handle -> worker:int -> float -> (int -> unit) -> unit
(** [push h ~worker key task] queues [task] at priority [key] (smaller
    runs first) on heap [worker mod nworkers] of [h]'s solve.  The task
    runs as [task slot] on some worker slot; children it pushes should
    use that slot as their [~worker].  Safe from any domain or thread,
    including after {!stop} (the node is accepted and simply remains
    queued, as in {!Node_pool}). *)

val best_bound : handle -> float
(** Minimum key over this solve's queued and in-flight nodes
    ([infinity] when none). *)

val queued : handle -> int
(** Queued (not in-flight) nodes of this solve. *)

val stop : handle -> unit
(** Make workers ignore this solve's remaining nodes; tasks already
    running finish normally.  Idempotent. *)

val stopped : handle -> bool

val drained : handle -> bool
(** [pending = 0]: every node pushed to this solve was run and retired
    — the per-solve exhaustion proof. *)

val await : handle -> unit
(** Block until this solve is finished: drained, or stopped with no
    task still running.  Deregisters the solve (its heaps stay readable
    for {!best_bound}/{!queued}) and re-raises, with its original
    backtrace, the first exception any of its tasks raised. *)

val shutdown : t -> unit
(** Stop every registered solve, wake and join all worker domains.
    Idempotent; {!submit} afterwards raises.  Pending {!await} calls
    return once their running tasks finish. *)
